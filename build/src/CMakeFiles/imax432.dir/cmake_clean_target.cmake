file(REMOVE_RECURSE
  "libimax432.a"
)

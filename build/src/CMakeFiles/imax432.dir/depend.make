# Empty dependencies file for imax432.
# This may be replaced when dependencies are built.

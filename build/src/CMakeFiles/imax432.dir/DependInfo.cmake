
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/addressing_unit.cc" "src/CMakeFiles/imax432.dir/arch/addressing_unit.cc.o" "gcc" "src/CMakeFiles/imax432.dir/arch/addressing_unit.cc.o.d"
  "/root/repo/src/arch/object_table.cc" "src/CMakeFiles/imax432.dir/arch/object_table.cc.o" "gcc" "src/CMakeFiles/imax432.dir/arch/object_table.cc.o.d"
  "/root/repo/src/arch/types.cc" "src/CMakeFiles/imax432.dir/arch/types.cc.o" "gcc" "src/CMakeFiles/imax432.dir/arch/types.cc.o.d"
  "/root/repo/src/base/log.cc" "src/CMakeFiles/imax432.dir/base/log.cc.o" "gcc" "src/CMakeFiles/imax432.dir/base/log.cc.o.d"
  "/root/repo/src/base/result.cc" "src/CMakeFiles/imax432.dir/base/result.cc.o" "gcc" "src/CMakeFiles/imax432.dir/base/result.cc.o.d"
  "/root/repo/src/exec/kernel.cc" "src/CMakeFiles/imax432.dir/exec/kernel.cc.o" "gcc" "src/CMakeFiles/imax432.dir/exec/kernel.cc.o.d"
  "/root/repo/src/filing/object_store.cc" "src/CMakeFiles/imax432.dir/filing/object_store.cc.o" "gcc" "src/CMakeFiles/imax432.dir/filing/object_store.cc.o.d"
  "/root/repo/src/gc/collector.cc" "src/CMakeFiles/imax432.dir/gc/collector.cc.o" "gcc" "src/CMakeFiles/imax432.dir/gc/collector.cc.o.d"
  "/root/repo/src/io/device.cc" "src/CMakeFiles/imax432.dir/io/device.cc.o" "gcc" "src/CMakeFiles/imax432.dir/io/device.cc.o.d"
  "/root/repo/src/io/devices.cc" "src/CMakeFiles/imax432.dir/io/devices.cc.o" "gcc" "src/CMakeFiles/imax432.dir/io/devices.cc.o.d"
  "/root/repo/src/ipc/port_subsystem.cc" "src/CMakeFiles/imax432.dir/ipc/port_subsystem.cc.o" "gcc" "src/CMakeFiles/imax432.dir/ipc/port_subsystem.cc.o.d"
  "/root/repo/src/isa/disassembler.cc" "src/CMakeFiles/imax432.dir/isa/disassembler.cc.o" "gcc" "src/CMakeFiles/imax432.dir/isa/disassembler.cc.o.d"
  "/root/repo/src/memory/basic_memory_manager.cc" "src/CMakeFiles/imax432.dir/memory/basic_memory_manager.cc.o" "gcc" "src/CMakeFiles/imax432.dir/memory/basic_memory_manager.cc.o.d"
  "/root/repo/src/memory/sro.cc" "src/CMakeFiles/imax432.dir/memory/sro.cc.o" "gcc" "src/CMakeFiles/imax432.dir/memory/sro.cc.o.d"
  "/root/repo/src/memory/swapping_memory_manager.cc" "src/CMakeFiles/imax432.dir/memory/swapping_memory_manager.cc.o" "gcc" "src/CMakeFiles/imax432.dir/memory/swapping_memory_manager.cc.o.d"
  "/root/repo/src/os/ada_runtime.cc" "src/CMakeFiles/imax432.dir/os/ada_runtime.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/ada_runtime.cc.o.d"
  "/root/repo/src/os/fault_service.cc" "src/CMakeFiles/imax432.dir/os/fault_service.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/fault_service.cc.o.d"
  "/root/repo/src/os/introspection.cc" "src/CMakeFiles/imax432.dir/os/introspection.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/introspection.cc.o.d"
  "/root/repo/src/os/process_manager.cc" "src/CMakeFiles/imax432.dir/os/process_manager.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/process_manager.cc.o.d"
  "/root/repo/src/os/schedulers.cc" "src/CMakeFiles/imax432.dir/os/schedulers.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/schedulers.cc.o.d"
  "/root/repo/src/os/system.cc" "src/CMakeFiles/imax432.dir/os/system.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/system.cc.o.d"
  "/root/repo/src/os/type_manager.cc" "src/CMakeFiles/imax432.dir/os/type_manager.cc.o" "gcc" "src/CMakeFiles/imax432.dir/os/type_manager.cc.o.d"
  "/root/repo/src/proc/layouts.cc" "src/CMakeFiles/imax432.dir/proc/layouts.cc.o" "gcc" "src/CMakeFiles/imax432.dir/proc/layouts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_destruction_filter.dir/bench_destruction_filter.cpp.o"
  "CMakeFiles/bench_destruction_filter.dir/bench_destruction_filter.cpp.o.d"
  "bench_destruction_filter"
  "bench_destruction_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_destruction_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

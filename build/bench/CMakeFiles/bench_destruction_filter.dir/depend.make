# Empty dependencies file for bench_destruction_filter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_process_tree.dir/bench_process_tree.cpp.o"
  "CMakeFiles/bench_process_tree.dir/bench_process_tree.cpp.o.d"
  "bench_process_tree"
  "bench_process_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_process_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

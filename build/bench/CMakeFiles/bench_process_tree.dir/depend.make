# Empty dependencies file for bench_process_tree.
# This may be replaced when dependencies are built.

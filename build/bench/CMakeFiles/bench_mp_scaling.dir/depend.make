# Empty dependencies file for bench_mp_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_mp_scaling.dir/bench_mp_scaling.cpp.o"
  "CMakeFiles/bench_mp_scaling.dir/bench_mp_scaling.cpp.o.d"
  "bench_mp_scaling"
  "bench_mp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_managers.dir/bench_memory_managers.cpp.o"
  "CMakeFiles/bench_memory_managers.dir/bench_memory_managers.cpp.o.d"
  "bench_memory_managers"
  "bench_memory_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_memory_managers.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ports.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_typed_ports.dir/bench_typed_ports.cpp.o"
  "CMakeFiles/bench_typed_ports.dir/bench_typed_ports.cpp.o.d"
  "bench_typed_ports"
  "bench_typed_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_typed_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

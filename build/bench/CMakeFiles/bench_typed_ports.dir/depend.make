# Empty dependencies file for bench_typed_ports.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_switch.dir/bench_domain_switch.cpp.o"
  "CMakeFiles/bench_domain_switch.dir/bench_domain_switch.cpp.o.d"
  "bench_domain_switch"
  "bench_domain_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

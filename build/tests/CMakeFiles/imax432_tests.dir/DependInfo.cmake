
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/access_descriptor_test.cc" "tests/CMakeFiles/imax432_tests.dir/arch/access_descriptor_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/arch/access_descriptor_test.cc.o.d"
  "/root/repo/tests/arch/addressing_unit_test.cc" "tests/CMakeFiles/imax432_tests.dir/arch/addressing_unit_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/arch/addressing_unit_test.cc.o.d"
  "/root/repo/tests/arch/object_table_test.cc" "tests/CMakeFiles/imax432_tests.dir/arch/object_table_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/arch/object_table_test.cc.o.d"
  "/root/repo/tests/arch/physical_memory_test.cc" "tests/CMakeFiles/imax432_tests.dir/arch/physical_memory_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/arch/physical_memory_test.cc.o.d"
  "/root/repo/tests/base/result_test.cc" "tests/CMakeFiles/imax432_tests.dir/base/result_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/base/result_test.cc.o.d"
  "/root/repo/tests/base/xorshift_test.cc" "tests/CMakeFiles/imax432_tests.dir/base/xorshift_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/base/xorshift_test.cc.o.d"
  "/root/repo/tests/exec/dispatch_discipline_test.cc" "tests/CMakeFiles/imax432_tests.dir/exec/dispatch_discipline_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/exec/dispatch_discipline_test.cc.o.d"
  "/root/repo/tests/exec/interpreter_edge_test.cc" "tests/CMakeFiles/imax432_tests.dir/exec/interpreter_edge_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/exec/interpreter_edge_test.cc.o.d"
  "/root/repo/tests/exec/kernel_test.cc" "tests/CMakeFiles/imax432_tests.dir/exec/kernel_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/exec/kernel_test.cc.o.d"
  "/root/repo/tests/exec/timed_receive_test.cc" "tests/CMakeFiles/imax432_tests.dir/exec/timed_receive_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/exec/timed_receive_test.cc.o.d"
  "/root/repo/tests/filing/object_store_test.cc" "tests/CMakeFiles/imax432_tests.dir/filing/object_store_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/filing/object_store_test.cc.o.d"
  "/root/repo/tests/gc/collector_test.cc" "tests/CMakeFiles/imax432_tests.dir/gc/collector_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/gc/collector_test.cc.o.d"
  "/root/repo/tests/gc/local_collection_test.cc" "tests/CMakeFiles/imax432_tests.dir/gc/local_collection_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/gc/local_collection_test.cc.o.d"
  "/root/repo/tests/integration/full_system_test.cc" "tests/CMakeFiles/imax432_tests.dir/integration/full_system_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/integration/full_system_test.cc.o.d"
  "/root/repo/tests/integration/stress_test.cc" "tests/CMakeFiles/imax432_tests.dir/integration/stress_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/integration/stress_test.cc.o.d"
  "/root/repo/tests/io/device_test.cc" "tests/CMakeFiles/imax432_tests.dir/io/device_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/io/device_test.cc.o.d"
  "/root/repo/tests/ipc/port_subsystem_test.cc" "tests/CMakeFiles/imax432_tests.dir/ipc/port_subsystem_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/ipc/port_subsystem_test.cc.o.d"
  "/root/repo/tests/isa/assembler_test.cc" "tests/CMakeFiles/imax432_tests.dir/isa/assembler_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/isa/assembler_test.cc.o.d"
  "/root/repo/tests/isa/disassembler_test.cc" "tests/CMakeFiles/imax432_tests.dir/isa/disassembler_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/isa/disassembler_test.cc.o.d"
  "/root/repo/tests/memory/basic_memory_manager_test.cc" "tests/CMakeFiles/imax432_tests.dir/memory/basic_memory_manager_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/memory/basic_memory_manager_test.cc.o.d"
  "/root/repo/tests/memory/sro_test.cc" "tests/CMakeFiles/imax432_tests.dir/memory/sro_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/memory/sro_test.cc.o.d"
  "/root/repo/tests/memory/swapping_memory_manager_test.cc" "tests/CMakeFiles/imax432_tests.dir/memory/swapping_memory_manager_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/memory/swapping_memory_manager_test.cc.o.d"
  "/root/repo/tests/os/ada_runtime_test.cc" "tests/CMakeFiles/imax432_tests.dir/os/ada_runtime_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/os/ada_runtime_test.cc.o.d"
  "/root/repo/tests/os/fault_service_test.cc" "tests/CMakeFiles/imax432_tests.dir/os/fault_service_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/os/fault_service_test.cc.o.d"
  "/root/repo/tests/os/introspection_test.cc" "tests/CMakeFiles/imax432_tests.dir/os/introspection_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/os/introspection_test.cc.o.d"
  "/root/repo/tests/os/process_manager_test.cc" "tests/CMakeFiles/imax432_tests.dir/os/process_manager_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/os/process_manager_test.cc.o.d"
  "/root/repo/tests/os/system_test.cc" "tests/CMakeFiles/imax432_tests.dir/os/system_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/os/system_test.cc.o.d"
  "/root/repo/tests/os/type_manager_test.cc" "tests/CMakeFiles/imax432_tests.dir/os/type_manager_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/os/type_manager_test.cc.o.d"
  "/root/repo/tests/param/param_sweeps_test.cc" "tests/CMakeFiles/imax432_tests.dir/param/param_sweeps_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/param/param_sweeps_test.cc.o.d"
  "/root/repo/tests/sim/bus_test.cc" "tests/CMakeFiles/imax432_tests.dir/sim/bus_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/sim/bus_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/imax432_tests.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/imax432_tests.dir/sim/event_queue_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/imax432.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

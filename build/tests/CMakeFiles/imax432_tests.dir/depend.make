# Empty dependencies file for imax432_tests.
# This may be replaced when dependencies are built.

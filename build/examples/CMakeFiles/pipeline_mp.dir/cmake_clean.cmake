file(REMOVE_RECURSE
  "CMakeFiles/pipeline_mp.dir/pipeline_mp.cpp.o"
  "CMakeFiles/pipeline_mp.dir/pipeline_mp.cpp.o.d"
  "pipeline_mp"
  "pipeline_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

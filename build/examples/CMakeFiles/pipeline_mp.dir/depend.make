# Empty dependencies file for pipeline_mp.
# This may be replaced when dependencies are built.

# Empty dependencies file for device_io.
# This may be replaced when dependencies are built.

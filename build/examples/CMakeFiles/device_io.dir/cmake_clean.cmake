file(REMOVE_RECURSE
  "CMakeFiles/device_io.dir/device_io.cpp.o"
  "CMakeFiles/device_io.dir/device_io.cpp.o.d"
  "device_io"
  "device_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

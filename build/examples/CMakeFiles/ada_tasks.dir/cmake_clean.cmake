file(REMOVE_RECURSE
  "CMakeFiles/ada_tasks.dir/ada_tasks.cpp.o"
  "CMakeFiles/ada_tasks.dir/ada_tasks.cpp.o.d"
  "ada_tasks"
  "ada_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ada_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

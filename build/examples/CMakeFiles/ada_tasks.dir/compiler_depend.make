# Empty compiler generated dependencies file for ada_tasks.
# This may be replaced when dependencies are built.

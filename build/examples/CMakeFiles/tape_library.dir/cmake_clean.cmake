file(REMOVE_RECURSE
  "CMakeFiles/tape_library.dir/tape_library.cpp.o"
  "CMakeFiles/tape_library.dir/tape_library.cpp.o.d"
  "tape_library"
  "tape_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

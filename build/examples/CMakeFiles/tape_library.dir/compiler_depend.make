# Empty compiler generated dependencies file for tape_library.
# This may be replaced when dependencies are built.

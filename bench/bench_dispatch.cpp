// E10 — Implicit hardware dispatching (paper §2, §5).
//
// Claims: "ready processes are dispatched on processors automatically by the hardware via
// algorithms that involve processor, process, and dispatching port objects" and "All
// hardware operations involving a process object occur implicitly, as the result of such
// events as time-slice end and successful message communications."
//
// Rows reported:
//   - DispatchLatency      : ready-to-running time on an idle processor
//   - ReadyQueueDepth      : dispatch behaviour as the ready queue grows (priority port)
//   - TimeSliceOverhead    : throughput tax of shorter slices (more implicit switches)
//   - WakeupOnMessage      : blocked-to-running on a message arrival

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

void BM_DispatchLatency(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    system.Run();  // processor idles at the dispatching port
    Assembler a("unit");
    a.Halt();
    Cycles before = system.now();
    auto process = system.Spawn(a.Build());
    IMAX_CHECK(process.ok());
    system.Run();
    // Ready -> bound -> first (and only) instruction -> terminated.
    us = ToUs(system.now() - before);
  }
  state.counters["ready_to_done_us"] = us;
  state.counters["model_dispatch_cycles"] = static_cast<double>(cycles::kDispatch);
}
BENCHMARK(BM_DispatchLatency)->Iterations(1);

void BM_ReadyQueueDepth(benchmark::State& state) {
  int ready = static_cast<int>(state.range(0));
  double us_per_dispatch = 0;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    Assembler a("unit");
    a.Compute(100).Halt();
    Cycles before = system.now();
    for (int i = 0; i < ready; ++i) {
      IMAX_CHECK(system.Spawn(a.Build()).ok());
    }
    system.Run();
    us_per_dispatch = ToUs(system.now() - before) / ready;
  }
  // Flat in queue depth: the dispatching port is a hardware queue, not a scheduler scan.
  state.counters["ready_processes"] = ready;
  state.counters["us_per_dispatch"] = us_per_dispatch;
}
BENCHMARK(BM_ReadyQueueDepth)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Iterations(1);

void BM_TimeSliceOverhead(benchmark::State& state) {
  Cycles slice = static_cast<Cycles>(state.range(0));
  double throughput_tax = 0;
  uint64_t slice_ends = 0;
  for (auto _ : state) {
    SystemConfig config = DefaultConfig(1);
    config.machine.time_slice = slice;
    System system(config);
    auto make_spinner = [] {
      Assembler a("spin");
      auto loop = a.NewLabel();
      a.LoadImm(0, 0).LoadImm(1, 500).Bind(loop).Compute(400).AddImm(0, 0, 1).BranchIfLess(
          0, 1, loop);
      a.Halt();
      return a.Build();
    };
    for (int i = 0; i < 4; ++i) {
      IMAX_CHECK(system.Spawn(make_spinner()).ok());
    }
    system.Run();
    Cycles with_slicing = system.now();
    slice_ends = system.kernel().stats().time_slice_ends;

    // Reference: one huge slice (no implicit switches).
    SystemConfig reference_config = DefaultConfig(1);
    reference_config.machine.time_slice = ~Cycles{0} >> 1;
    System reference(reference_config);
    for (int i = 0; i < 4; ++i) {
      IMAX_CHECK(reference.Spawn(make_spinner()).ok());
    }
    reference.Run();
    throughput_tax = static_cast<double>(with_slicing) /
                         static_cast<double>(reference.now()) -
                     1.0;
  }
  state.counters["slice_us"] = ToUs(slice);
  state.counters["time_slice_ends"] = static_cast<double>(slice_ends);
  state.counters["throughput_tax"] = throughput_tax;
}
BENCHMARK(BM_TimeSliceOverhead)->Arg(2000)->Arg(8000)->Arg(32000)->Arg(80000)->Iterations(1);

void BM_WakeupOnMessage(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 4,
                                                   QueueDiscipline::kFifo);
    IMAX_CHECK(port.ok());
    AccessDescriptor carrier = MakeCarrier(system, {port.value()});
    Assembler waiter("waiter");
    waiter.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    auto process = system.Spawn(waiter.Build(), options);
    IMAX_CHECK(process.ok());
    system.Run();  // waiter blocks
    IMAX_CHECK(system.kernel().process_view(process.value()).state() ==
               ProcessState::kBlocked);
    Cycles before = system.now();
    IMAX_CHECK(system.kernel().PostMessage(port.value(), system.memory().global_heap()).ok());
    system.Run();
    us = ToUs(system.now() - before);
  }
  // "successful message communications" put the process back in the mix implicitly.
  state.counters["message_to_done_us"] = us;
}
BENCHMARK(BM_WakeupOnMessage)->Iterations(1);

// Ablation: the dispatching port's service discipline. Under FIFO an urgent arrival waits
// behind the whole backlog; under the hardware's priority discipline it runs next. This is
// the design-choice behind the default priority dispatching port.
void BM_DispatchDisciplineAblation(benchmark::State& state) {
  auto discipline = static_cast<QueueDiscipline>(state.range(0));
  double urgent_wait_us = 0;
  for (auto _ : state) {
    SystemConfig config = DefaultConfig(1);
    config.start_gc_daemon = false;
    System system(config);
    auto& kernel = system.kernel();

    // A dedicated dispatch port with the chosen discipline, and one processor on it.
    auto dispatch_port = kernel.ports().CreatePort(system.memory().global_heap(), 256,
                                                   discipline);
    IMAX_CHECK(dispatch_port.ok());
    IMAX_CHECK(kernel.AddProcessors(1, dispatch_port.value()).ok());

    // Backlog: 16 low-priority spinners.
    auto make_worker = [](Cycles work) {
      Assembler a("w");
      a.Compute(work).Halt();
      return a.Build();
    };
    for (int i = 0; i < 16; ++i) {
      ProcessOptions options;
      options.priority = 10;
      options.dispatch_port = dispatch_port.value();
      IMAX_CHECK(system.Spawn(make_worker(20000), options).ok());
    }
    // The urgent arrival.
    auto carrier = bench::MakeCarrier(system, {});
    Assembler urgent("urgent");
    urgent.MoveAd(1, kArgAdReg).OsCall(os_service::kGetTime).StoreData(1, 7, 0, 8).Halt();
    ProcessOptions options;
    options.priority = 240;
    options.dispatch_port = dispatch_port.value();
    options.initial_arg = carrier;
    Cycles submitted = system.now();
    auto process = system.Spawn(urgent.Build(), options);
    IMAX_CHECK(process.ok());
    system.Run();
    uint64_t started =
        system.machine().addressing().ReadData(carrier, 0, 8).value();
    urgent_wait_us = ToUs(started - submitted);
  }
  state.counters["discipline"] = state.range(0);
  state.counters["urgent_start_latency_us"] = urgent_wait_us;
}
BENCHMARK(BM_DispatchDisciplineAblation)
    ->Arg(static_cast<int>(QueueDiscipline::kFifo))
    ->Arg(static_cast<int>(QueueDiscipline::kPriority))
    ->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E2 — Segment allocation cost (paper §5).
//
// Claim: "assuming that sufficient free storage is available, it takes 80 microseconds at 8
// megahertz to allocate a segment from an SRO via the creation instruction. It is important
// that this function be relatively fast since storage allocation plays an important role in
// an object oriented system."
//
// Rows reported:
//   - AllocateBySize : us per create-object instruction vs segment size (64 B should read
//     exactly 80 us; larger segments add zeroing cost)
//   - GlobalVsLocalSro : allocation cost is the same from either heap (lifetime is free at
//     allocation time; the difference appears at reclamation — see E6)
//   - AllocateDestroyPair : steady-state allocate/destroy round trip

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

// Measures average virtual us per create-object of `bytes` from the given heap setup.
double MeasureAllocCost(uint32_t bytes, bool local_sro, int count, bool destroy_each,
                        bool demote = false) {
  SystemConfig config = DefaultConfig();
  if (demote) {
    // Lifetime demotion re-targets provably context-local allocations at the per-context
    // demote SRO (verify_on_load computes the verdicts at load time).
    config.verify_on_load = true;
    config.lifetime_demote = true;
    config.lifetime_audit = true;
    config.demote_sro_bytes = 256 * 1024;
  }
  System system(config);

  std::vector<AccessDescriptor> slots = {system.memory().global_heap()};
  AccessDescriptor carrier = MakeCarrier(system, slots);

  Assembler a("allocator");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0);  // a2 = global heap
  if (local_sro) {
    // Allocate from a local heap instead; sized to hold the whole run if not destroying.
    uint32_t heap_bytes = destroy_each ? bytes * 4 + 4096
                                       : (bytes + 64) * static_cast<uint32_t>(count) + 4096;
    a.CreateSro(3, 2, heap_bytes).MoveAd(2, 3);
  }
  a.LoadImm(0, 0).LoadImm(1, static_cast<uint64_t>(count)).Bind(loop);
  a.CreateObject(4, 2, bytes);
  if (destroy_each) {
    a.DestroyObject(4);
  } else {
    a.ClearAd(4);  // drop the reference; the object stays allocated
  }
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, loop).Halt();

  ProcessOptions options;
  options.initial_arg = carrier;
  auto process = system.Spawn(a.Build(), options);
  IMAX_CHECK(process.ok());
  system.Run();
  IMAX_CHECK(system.kernel().process_view(process.value()).state() ==
             ProcessState::kTerminated);
  Cycles consumed = system.kernel().process_view(process.value()).consumed();

  // Subtract the loop scaffolding measured with a Compute(0) placeholder.
  System calibration(DefaultConfig());
  Assembler empty("empty");
  auto empty_loop = empty.NewLabel();
  empty.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(count))
      .Bind(empty_loop)
      .ClearAd(4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, empty_loop)
      .Halt();
  AccessDescriptor calibration_carrier =
      MakeCarrier(calibration, {calibration.memory().global_heap()});
  ProcessOptions calibration_options;
  calibration_options.initial_arg = calibration_carrier;
  auto calibration_process = calibration.Spawn(empty.Build(), calibration_options);
  IMAX_CHECK(calibration_process.ok());
  calibration.Run();
  Cycles loop_only =
      calibration.kernel().process_view(calibration_process.value()).consumed();

  return ToUs((consumed - loop_only) / static_cast<Cycles>(count));
}

void BM_AllocateBySize(benchmark::State& state) {
  uint32_t bytes = static_cast<uint32_t>(state.range(0));
  double us = 0;
  for (auto _ : state) {
    // Pure allocation (no destroy): the create-object instruction plus its interconnect
    // share. 64 objects of the largest size still fit in physical memory.
    us = MeasureAllocCost(bytes, /*local_sro=*/false, /*count=*/64, /*destroy_each=*/false);
  }
  state.counters["segment_bytes"] = bytes;
  state.counters["us_per_alloc"] = us;
  state.counters["paper_us_small_segment"] = 80.0;
}
BENCHMARK(BM_AllocateBySize)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Iterations(1);

void BM_AllocateGlobalHeap(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureAllocCost(64, /*local_sro=*/false, 256, /*destroy_each=*/false);
  }
  state.counters["us_per_alloc"] = us;
}
BENCHMARK(BM_AllocateGlobalHeap)->Iterations(1);

void BM_AllocateLocalHeap(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureAllocCost(64, /*local_sro=*/true, 256, /*destroy_each=*/false);
  }
  // Same instruction, same cost: lifetime policy is free at allocation time.
  state.counters["us_per_alloc"] = us;
}
BENCHMARK(BM_AllocateLocalHeap)->Iterations(1);

void BM_AllocateDemoted(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureAllocCost(64, /*local_sro=*/false, 256, /*destroy_each=*/false,
                          /*demote=*/true);
  }
  // The demoted path charges the same create-object cycles by design: demotion moves the
  // reclamation (bulk destroy at context exit, GC exemption in between), not the
  // allocation. Any gap between this row and BM_AllocateGlobalHeap is a regression.
  state.counters["us_per_alloc"] = us;
}
BENCHMARK(BM_AllocateDemoted)->Iterations(1);

void BM_AllocateDestroyPair(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureAllocCost(64, /*local_sro=*/false, 256, /*destroy_each=*/true);
  }
  // Steady-state explicit management: the create plus the explicit destroy instruction.
  state.counters["us_per_pair"] = us;
}
BENCHMARK(BM_AllocateDestroyPair)->Iterations(1);

// The raw cost-model check: the instruction's charged cycles for the paper's case.
void BM_ModelCalibration(benchmark::State& state) {
  for (auto _ : state) {
  }
  state.counters["create_64B_cycles"] = static_cast<double>(cycles::CreateObjectCost(64, 0));
  state.counters["create_64B_us"] = ToUs(cycles::CreateObjectCost(64, 0));
  state.counters["paper_us"] = 80.0;
}
BENCHMARK(BM_ModelCalibration)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

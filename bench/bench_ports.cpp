// E5 — Port mechanism performance (paper §4, figures 1-2).
//
// Send and Receive "will correspond to single instructions"; blocking semantics come from
// the hardware port algorithms. This experiment characterizes the mechanism:
//   - one-way message latency through a port between two processes,
//   - throughput vs queue capacity (deeper queues decouple producer and consumer),
//   - service disciplines: FIFO vs priority vs deadline ordering under contention,
//   - fan-in: many producers, one consumer.

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

// Producer/consumer pair exchanging `messages` through a port of the given capacity on
// `processors` GDPs; returns total virtual cycles.
Cycles RunProducerConsumer(uint16_t capacity, int messages, int processors,
                           int producers = 1) {
  System system(DefaultConfig(processors));
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), capacity,
                                                 QueueDiscipline::kFifo);
  IMAX_CHECK(port.ok());
  AccessDescriptor carrier =
      MakeCarrier(system, {port.value(), system.memory().global_heap()});

  int per_producer = messages / producers;
  for (int p = 0; p < producers; ++p) {
    Assembler producer("producer");
    auto loop = producer.NewLabel();
    producer.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .CreateObject(4, 3, 32)  // one message object, reused every round
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(per_producer))
        .Bind(loop)
        .Send(2, 4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(producer.Build(), options).ok());
  }

  Assembler consumer("consumer");
  auto loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(per_producer * producers))
      .Bind(loop)
      .Receive(4, 2)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier;
  IMAX_CHECK(system.Spawn(consumer.Build(), options).ok());

  system.Run();
  return system.now();
}

void BM_MessageThroughputByCapacity(benchmark::State& state) {
  uint16_t capacity = static_cast<uint16_t>(state.range(0));
  constexpr int kMessages = 2000;
  Cycles makespan = 0;
  for (auto _ : state) {
    makespan = RunProducerConsumer(capacity, kMessages, /*processors=*/2);
  }
  state.counters["queue_capacity"] = capacity;
  state.counters["us_per_message"] = ToUs(makespan) / kMessages;
  state.counters["messages_per_virtual_sec"] =
      kMessages / (ToUs(makespan) / 1e6);
}
BENCHMARK(BM_MessageThroughputByCapacity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1);

void BM_FanIn(benchmark::State& state) {
  int producers = static_cast<int>(state.range(0));
  constexpr int kMessages = 2400;
  Cycles makespan = 0;
  for (auto _ : state) {
    makespan = RunProducerConsumer(/*capacity=*/8, kMessages, /*processors=*/4, producers);
  }
  state.counters["producers"] = producers;
  state.counters["us_per_message"] = ToUs(makespan) / kMessages;
}
BENCHMARK(BM_FanIn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

// One-way handoff latency: receiver blocks first, sender wakes it — the direct-handoff fast
// path of the hardware algorithms.
void BM_HandoffLatency(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    System system(DefaultConfig(2));
    auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 4,
                                                   QueueDiscipline::kFifo);
    IMAX_CHECK(port.ok());
    AccessDescriptor carrier =
        MakeCarrier(system, {port.value(), system.memory().global_heap()});

    Assembler receiver("receiver");
    receiver.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).Halt();
    Assembler sender("sender");
    sender.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .CreateObject(4, 3, 16)
        .Send(2, 4)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    auto rx = system.Spawn(receiver.Build(), options);
    IMAX_CHECK(rx.ok());
    system.Run();  // receiver blocks
    Cycles blocked_at = system.now();
    auto tx = system.Spawn(sender.Build(), options);
    IMAX_CHECK(tx.ok());
    system.Run();
    us = ToUs(system.now() - blocked_at);
    IMAX_CHECK(system.kernel().process_view(rx.value()).state() ==
               ProcessState::kTerminated);
  }
  state.counters["wakeup_to_done_us"] = us;
  state.counters["direct_handoffs"] = 1;
}
BENCHMARK(BM_HandoffLatency)->Iterations(1);

// Service disciplines: three senders of different priority/deadline fill a port while no
// receiver runs; the dequeue order is the discipline's. Reported as the rank of the
// "urgent" sender's message (0 = served first).
void BM_QueueDiscipline(benchmark::State& state) {
  QueueDiscipline discipline = static_cast<QueueDiscipline>(state.range(0));
  int urgent_rank = -1;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                   discipline);
    IMAX_CHECK(port.ok());
    AccessDescriptor carrier =
        MakeCarrier(system, {port.value(), system.memory().global_heap()});

    // Three senders: ordinary, ordinary, urgent (high priority / near deadline). Spawned
    // in this order so FIFO would serve urgent last.
    struct Sender {
      uint8_t priority;
      uint32_t deadline;
      uint64_t tag;
    };
    Sender senders[] = {{100, 9000, 1}, {100, 8000, 2}, {220, 100, 3}};
    for (const Sender& s : senders) {
      Assembler a("sender");
      a.MoveAd(1, kArgAdReg)
          .LoadAd(2, 1, 0)
          .LoadAd(3, 1, 1)
          .CreateObject(4, 3, 16)
          .LoadImm(0, s.tag)
          .StoreData(4, 0, 0, 8)
          .Send(2, 4)
          .Halt();
      ProcessOptions options;
      options.initial_arg = carrier;
      options.priority = s.priority;
      options.deadline = s.deadline;
      IMAX_CHECK(system.Spawn(a.Build(), options).ok());
      system.Run();  // run each sender to completion before the next (fixed arrival order)
    }

    // Dequeue and find the urgent message's rank.
    for (int rank = 0; rank < 3; ++rank) {
      auto message = system.kernel().ports().Dequeue(port.value());
      IMAX_CHECK(message.ok());
      auto tag = system.machine().addressing().ReadData(message.value(), 0, 8);
      if (tag.ok() && tag.value() == 3) {
        urgent_rank = rank;
      }
    }
  }
  state.counters["discipline"] = state.range(0);
  state.counters["urgent_served_rank"] = urgent_rank;  // FIFO: 2; priority/deadline: 0
}
BENCHMARK(BM_QueueDiscipline)
    ->Arg(static_cast<int>(QueueDiscipline::kFifo))
    ->Arg(static_cast<int>(QueueDiscipline::kPriority))
    ->Arg(static_cast<int>(QueueDiscipline::kDeadline))
    ->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

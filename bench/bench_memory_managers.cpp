// E8 — Swapping vs non-swapping memory managers behind one specification (paper §6.2).
//
// Claims: "A single Ada specification defines the common interface. ... Both a swapping and
// a non-swapping implementation meet this specification but are optimized internally to the
// level of function they provide. ... The system is configured by selecting one of the
// alternate implementations; most applications will not be affected by this selection."
//
// The experiment runs a working-set workload at three pressures:
//   - fits in memory : both managers identical (the transparency claim)
//   - near capacity  : swapping pays a small residency tax
//   - over capacity  : non-swapping fails with kStorageExhausted; swapping completes,
//                      paying the backing-store transfer time
// Reported: completion, virtual makespan, swap traffic.

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::MakeCarrier;
using bench::ToUs;

struct WorkloadResult {
  bool completed = false;
  Fault fault = Fault::kNone;
  Cycles makespan = 0;
  uint64_t swap_ins = 0;
  uint64_t swap_outs = 0;
};

// Allocates `objects` of 16 KB each and sweeps over them `passes` times touching each.
WorkloadResult RunWorkingSet(MemoryManagerKind kind, int objects, int passes) {
  SystemConfig config;
  config.processors = 1;
  config.machine.memory_bytes = 256 * 1024;  // tight physical memory
  config.machine.object_table_capacity = 4096;
  config.memory_manager = kind;
  config.start_gc_daemon = false;
  System system(config);

  // Holder with one slot per object plus the heap.
  auto holder = system.memory().CreateObject(
      system.memory().global_heap(), SystemType::kGeneric, 8,
      static_cast<uint32_t>(objects) + 1, rights::kRead | rights::kWrite);
  IMAX_CHECK(holder.ok());
  IMAX_CHECK(system.machine()
                 .addressing()
                 .WriteAd(holder.value(), static_cast<uint32_t>(objects),
                          system.memory().global_heap())
                 .ok());

  Assembler a("working-set");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, static_cast<uint32_t>(objects));
  // Allocation phase.
  auto alloc_loop = a.NewLabel();
  a.LoadImm(0, 0).LoadImm(1, static_cast<uint64_t>(objects)).Bind(alloc_loop);
  a.CreateObject(3, 2, 16 * 1024);
  a.StoreAdIndexed(1, 3, 0);  // holder[r0] = object
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, alloc_loop);
  // Sweep phase: touch every object, `passes` times.
  auto pass_loop = a.NewLabel();
  auto touch_loop = a.NewLabel();
  a.LoadImm(2, 0).LoadImm(3, static_cast<uint64_t>(passes)).Bind(pass_loop);
  a.LoadImm(0, 0).Bind(touch_loop);
  a.LoadAdIndexed(3, 1, 0);
  a.LoadData(4, 3, 0, 8);
  a.AddImm(4, 4, 1);
  a.StoreData(3, 4, 0, 8);
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, touch_loop);
  a.AddImm(2, 2, 1);
  a.BranchIfLess(2, 3, pass_loop);
  a.Halt();

  ProcessOptions options;
  options.initial_arg = holder.value();
  auto process = system.Spawn(a.Build(), options);
  IMAX_CHECK(process.ok());
  system.Run();

  WorkloadResult result;
  ProcessView view = system.kernel().process_view(process.value());
  result.completed = view.state() == ProcessState::kTerminated &&
                     view.fault_code() == Fault::kNone;
  result.fault = view.fault_code();
  result.makespan = system.now();
  result.swap_ins = system.memory().stats().swap_ins;
  result.swap_outs = system.memory().stats().swap_outs;
  return result;
}

void ManagerBench(benchmark::State& state, MemoryManagerKind kind) {
  int objects = static_cast<int>(state.range(0));
  WorkloadResult result;
  for (auto _ : state) {
    result = RunWorkingSet(kind, objects, /*passes=*/3);
  }
  state.counters["working_set_kb"] = objects * 16;
  state.counters["physical_kb"] = 256;
  state.counters["completed"] = result.completed ? 1 : 0;
  state.counters["fault"] = static_cast<double>(result.fault);
  state.counters["makespan_ms"] = ToUs(result.makespan) / 1000.0;
  state.counters["swap_ins"] = static_cast<double>(result.swap_ins);
  state.counters["swap_outs"] = static_cast<double>(result.swap_outs);
}

void BM_NonSwapping(benchmark::State& state) {
  ManagerBench(state, MemoryManagerKind::kNonSwapping);
}
void BM_Swapping(benchmark::State& state) {
  ManagerBench(state, MemoryManagerKind::kSwapping);
}

// Working sets: 8 objects = 128 KB (fits), 13 = 208 KB (near the ~230 KB usable), 24 =
// 384 KB (over capacity: only the swapping manager completes).
BENCHMARK(BM_NonSwapping)->Arg(8)->Arg(13)->Arg(24)->Iterations(1);
BENCHMARK(BM_Swapping)->Arg(8)->Arg(13)->Arg(24)->Iterations(1);

// Thrash curve: the swapping manager's cost as the working set grows past memory.
void BM_SwappingThrashCurve(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  WorkloadResult result;
  for (auto _ : state) {
    result = RunWorkingSet(MemoryManagerKind::kSwapping, objects, /*passes=*/3);
  }
  state.counters["working_set_kb"] = objects * 16;
  state.counters["makespan_ms"] = ToUs(result.makespan) / 1000.0;
  state.counters["swap_ins_per_pass"] = static_cast<double>(result.swap_ins) / 3.0;
}
BENCHMARK(BM_SwappingThrashCurve)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(28)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

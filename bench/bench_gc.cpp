// E6 — Garbage collection vs local-heap reclamation (paper §5, §8.1).
//
// Claims: "All objects are subject to garbage collection; those allocated from local SRO's
// will be collected more efficiently whenever their ancestral SRO is destroyed." The
// collector runs as "a daemon process that globally scans the system" and "requires only
// minimal synchronization with the rest of the operating system."
//
// Rows reported:
//   - GlobalGcReclaim : us of collector work per reclaimed object (global heap garbage)
//   - LocalHeapBulkDestroy : us per object when the ancestral SRO is destroyed instead
//   - GcScalesWithHeap : cost of a cycle vs live-heap size (mark dominates)
//   - MutatorInterference : mutator slowdown while the daemon collects alongside it

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

// Makes `count` garbage objects on the global heap (host-held ADs are not roots).
void MakeGlobalGarbage(System& system, int count) {
  for (int i = 0; i < count; ++i) {
    IMAX_CHECK(system.memory()
                   .CreateObject(system.memory().global_heap(), SystemType::kGeneric, 64, 2,
                                 rights::kAll)
                   .ok());
  }
}

void BM_GlobalGcReclaim(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  double us_per_object = 0;
  uint64_t reclaimed = 0;
  for (auto _ : state) {
    SystemConfig config = DefaultConfig(1);
    config.start_gc_daemon = true;
    // Size the table to the workload: a collection cycle scans the whole table, so a vastly
    // oversized table would bury the per-object costs this experiment isolates.
    config.machine.object_table_capacity = 4096;
    System system(config);
    system.Run();  // daemon parks
    MakeGlobalGarbage(system, count);
    Cycles before = system.now();
    uint64_t reclaimed_before = system.gc().stats().objects_reclaimed;
    IMAX_CHECK(system.RequestCollection().ok());
    system.Run();
    reclaimed = system.gc().stats().objects_reclaimed - reclaimed_before;
    us_per_object = ToUs(system.now() - before) / static_cast<double>(count);
  }
  state.counters["garbage_objects"] = count;
  state.counters["reclaimed"] = static_cast<double>(reclaimed);
  state.counters["gc_us_per_object"] = us_per_object;
}
BENCHMARK(BM_GlobalGcReclaim)->Arg(100)->Arg(400)->Arg(1600)->Iterations(1);

void BM_LocalHeapBulkDestroy(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  double us_per_object = 0;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
    // A process that creates a local heap, fills it with `count` objects, then destroys
    // the heap — timing the destroy alone via the GetTime service.
    Assembler a("bulk");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .CreateSro(3, 2, static_cast<uint32_t>(count) * 96 + 8192)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 3, 64)
        .ClearAd(4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .OsCall(os_service::kGetTime)
        .StoreData(1, 7, 0, 8)  // carrier[0] = t0
        .DestroySro(3)
        .OsCall(os_service::kGetTime)
        .StoreData(1, 7, 8, 8)  // carrier[8] = t1
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    auto process = system.Spawn(a.Build(), options);
    IMAX_CHECK(process.ok());
    system.Run();
    uint64_t t0 = system.machine().addressing().ReadData(carrier, 0, 8).value();
    uint64_t t1 = system.machine().addressing().ReadData(carrier, 8, 8).value();
    us_per_object = ToUs(t1 - t0) / static_cast<double>(count);
  }
  state.counters["objects"] = count;
  state.counters["bulk_us_per_object"] = us_per_object;
}
BENCHMARK(BM_LocalHeapBulkDestroy)->Arg(100)->Arg(400)->Arg(1600)->Iterations(1);

void BM_GcScalesWithLiveHeap(benchmark::State& state) {
  int live = static_cast<int>(state.range(0));
  double cycle_us = 0;
  for (auto _ : state) {
    SystemConfig config = DefaultConfig(1);
    config.start_gc_daemon = true;
    config.machine.object_table_capacity = 16384;
    System system(config);
    system.Run();
    // Live objects: chained from a root so they survive; plus a fixed amount of garbage.
    std::vector<AccessDescriptor> keep;
    for (int i = 0; i < live; ++i) {
      auto object = system.memory().CreateObject(system.memory().global_heap(),
                                                 SystemType::kGeneric, 64, 2, rights::kAll);
      IMAX_CHECK(object.ok());
      keep.push_back(object.value());
    }
    system.kernel().AddRootProvider([&keep](std::vector<AccessDescriptor>* roots) {
      for (const AccessDescriptor& ad : keep) {
        roots->push_back(ad);
      }
    });
    MakeGlobalGarbage(system, 100);
    Cycles before = system.now();
    IMAX_CHECK(system.RequestCollection().ok());
    system.Run();
    cycle_us = ToUs(system.now() - before);
  }
  state.counters["live_objects"] = live;
  state.counters["gc_cycle_us"] = cycle_us;
}
BENCHMARK(BM_GcScalesWithLiveHeap)->Arg(0)->Arg(500)->Arg(2000)->Arg(8000)->Iterations(1);

// The on-the-fly property made quantitative: a mutator runs a fixed workload with and
// without the collector cycling alongside on the same single processor. The slowdown is the
// collection's true cost; there are no stop-the-world pauses to measure because there is no
// stop-the-world.
void BM_MutatorInterference(benchmark::State& state) {
  bool collect = state.range(0) != 0;
  double mutator_us = 0;
  for (auto _ : state) {
    SystemConfig config = DefaultConfig(1);
    config.start_gc_daemon = true;
    config.machine.object_table_capacity = 4096;
    System system(config);
    system.Run();

    AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
    // The mutator: allocate-and-drop loop (generates garbage while running).
    Assembler mutator("mutator");
    auto loop = mutator.NewLabel();
    mutator.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, 400)
        .Bind(loop)
        .CreateObject(3, 2, 64)
        .ClearAd(3)
        .Compute(200)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    auto process = system.Spawn(mutator.Build(), options);
    IMAX_CHECK(process.ok());
    // The bench reads the process object after it terminates; collections run in between,
    // so the harness must hold a root for it (host-side ADs are not roots).
    system.kernel().AddRootProvider(
        [ad = process.value()](std::vector<AccessDescriptor>* roots) {
          roots->push_back(ad);
        });
    if (collect) {
      // Keep the collector busy for the whole run.
      for (int i = 0; i < 4; ++i) {
        IMAX_CHECK(system.RequestCollection().ok());
      }
    }
    system.Run();
    mutator_us = ToUs(system.kernel().process_view(process.value()).consumed());
    // Wall-clock completion of the mutator is what interference stretches:
    state.counters["mutator_makespan_us"] = ToUs(system.now());
  }
  state.counters["collector_running"] = collect ? 1 : 0;
  state.counters["mutator_cpu_us"] = mutator_us;
}
BENCHMARK(BM_MutatorInterference)->Arg(0)->Arg(1)->Iterations(1);

// Gray-bit traffic: how often the hardware shades during a pointer-heavy workload. Only
// stores whose target is white shade, so steady-state pointer churn costs one color test.
void BM_GrayBitTraffic(benchmark::State& state) {
  uint64_t shades = 0;
  uint64_t stores = 2000;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    auto container = system.memory().CreateObject(system.memory().global_heap(),
                                                  SystemType::kGeneric, 0, 4, rights::kAll);
    auto target = system.memory().CreateObject(system.memory().global_heap(),
                                               SystemType::kGeneric, 16, 0, rights::kAll);
    IMAX_CHECK(container.ok() && target.ok());
    uint64_t before = system.machine().addressing().shade_count();
    for (uint64_t i = 0; i < stores; ++i) {
      IMAX_CHECK(system.machine().addressing().WriteAd(container.value(), 0, target.value())
                     .ok());
    }
    shades = system.machine().addressing().shade_count() - before;
  }
  state.counters["ad_stores"] = static_cast<double>(stores);
  state.counters["gray_shades"] = static_cast<double>(shades);
  // Only the first store of an already-gray target shades: the gray bit is cheap.
  state.counters["shades_per_store"] = static_cast<double>(shades) / stores;
}
BENCHMARK(BM_GrayBitTraffic)->Iterations(1);

// The paper's deferred extension, evaluated: "It would be possible to perform garbage
// collection on a local basis ... but we have not chosen to do this until we have data that
// suggests that it would be worthwhile." This is that data: a small dirty local heap inside
// a large live system, collected locally vs globally.
void BM_LocalVsGlobalCollection(benchmark::State& state) {
  int live_global = static_cast<int>(state.range(0));
  constexpr int kLocalGarbage = 50;
  uint64_t local_work = 0;
  uint64_t global_work = 0;

  auto build = [&](System& system, std::vector<AccessDescriptor>& keep,
                   AccessDescriptor& local_sro) {
    for (int i = 0; i < live_global; ++i) {
      auto object = system.memory().CreateObject(system.memory().global_heap(),
                                                 SystemType::kGeneric, 32, 2, rights::kAll);
      IMAX_CHECK(object.ok());
      if (!keep.empty()) {
        IMAX_CHECK(
            system.machine().addressing().WriteAd(object.value(), 0, keep.back()).ok());
      }
      keep.push_back(object.value());
    }
    system.kernel().AddRootProvider([&keep](std::vector<AccessDescriptor>* roots) {
      if (!keep.empty()) {
        roots->push_back(keep.back());
      }
    });
    auto sro = system.memory().CreateLocalSro(system.memory().global_heap(), 64 * 1024, 1);
    IMAX_CHECK(sro.ok());
    local_sro = sro.value();
    for (int i = 0; i < kLocalGarbage; ++i) {
      IMAX_CHECK(system.memory()
                     .CreateObject(local_sro, SystemType::kGeneric, 64, 0, rights::kAll)
                     .ok());
    }
  };

  for (auto _ : state) {
    {
      SystemConfig config = DefaultConfig(1);
      config.machine.object_table_capacity = 16384;
      config.start_gc_daemon = false;
      System system(config);
      std::vector<AccessDescriptor> keep;
      AccessDescriptor local_sro;
      build(system, keep, local_sro);
      uint64_t before = system.gc().work_units();
      auto stats = system.gc().CollectLocalNow(local_sro);
      IMAX_CHECK(stats.ok() && stats.value().objects_reclaimed == kLocalGarbage);
      local_work = system.gc().work_units() - before;
    }
    {
      SystemConfig config = DefaultConfig(1);
      config.machine.object_table_capacity = 16384;
      config.start_gc_daemon = false;
      System system(config);
      std::vector<AccessDescriptor> keep;
      AccessDescriptor local_sro;
      build(system, keep, local_sro);
      uint64_t before = system.gc().work_units();
      system.gc().CollectNow();
      global_work = system.gc().work_units() - before;
    }
  }
  state.counters["live_global_objects"] = live_global;
  state.counters["local_pass_work_units"] = static_cast<double>(local_work);
  state.counters["global_pass_work_units"] = static_cast<double>(global_work);
  state.counters["local_advantage"] =
      static_cast<double>(global_work) / static_cast<double>(local_work);
}
BENCHMARK(BM_LocalVsGlobalCollection)->Arg(100)->Arg(1000)->Arg(4000)->Iterations(1);

// Ablation: collector work granularity (units per daemon step). Finer steps interleave with
// mutators more responsively; coarser steps finish cycles sooner. The incremental design
// makes this a pure configuration knob.
void BM_GcStepGranularity(benchmark::State& state) {
  uint32_t units = static_cast<uint32_t>(state.range(0));
  double cycle_ms = 0;
  double mutator_makespan_ms = 0;
  for (auto _ : state) {
    SystemConfig config = DefaultConfig(1);
    config.machine.object_table_capacity = 8192;
    config.start_gc_daemon = true;
    config.gc_units_per_step = units;
    System system(config);
    system.Run();
    MakeGlobalGarbage(system, 500);

    AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
    Assembler mutator("mutator");
    auto loop = mutator.NewLabel();
    mutator.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, 200)
        .Bind(loop)
        .Compute(400)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    auto process = system.Spawn(mutator.Build(), options);
    IMAX_CHECK(process.ok());

    Cycles before = system.now();
    IMAX_CHECK(system.RequestCollection().ok());
    system.Run();
    cycle_ms = ToUs(system.now() - before) / 1000.0;
    mutator_makespan_ms = cycle_ms;  // shared single processor: same window
  }
  state.counters["units_per_step"] = units;
  state.counters["combined_window_ms"] = cycle_ms;
  (void)mutator_makespan_ms;
}
BENCHMARK(BM_GcStepGranularity)->Arg(32)->Arg(128)->Arg(512)->Arg(4096)->Iterations(1);

// GC-load demotion (E15 companion): a mutator parks on a receive holding a context-local
// chain of `chain` objects live, and the collector runs a full cycle against it. With
// lifetime demotion the whole chain is gc_exempt — the cycle never traces it — so the
// traced-object count drops by the chain's share of the heap. Both configurations run in
// the same iteration and the delta ships in the --json counters.
void BM_DemotionGcLoad(benchmark::State& state) {
  int chain = static_cast<int>(state.range(0));
  uint64_t traced[2] = {0, 0};
  uint64_t demotions = 0;
  uint64_t violations = 0;
  for (auto _ : state) {
    for (int demote = 0; demote < 2; ++demote) {
      SystemConfig config = DefaultConfig(1);
      config.machine.object_table_capacity = 8192;
      config.start_gc_daemon = true;
      config.verify_on_load = true;
      config.lifetime_demote = demote != 0;
      config.lifetime_audit = demote != 0;
      config.demote_sro_bytes = 512 * 1024;
      System system(config);
      system.Run();  // daemon parks
      auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 4,
                                                     QueueDiscipline::kFifo);
      IMAX_CHECK(port.ok());
      AccessDescriptor carrier =
          MakeCarrier(system, {system.memory().global_heap(), port.value()});
      // The chain: every new object stores its predecessor (a sibling store, so the whole
      // chain stays demotable), then the process blocks on the port with the chain live.
      Assembler a("demotion-chain");
      auto loop = a.NewLabel();
      a.MoveAd(1, kArgAdReg)
          .LoadAd(2, 1, 0)
          .LoadAd(3, 1, 1)
          .CreateObject(4, 2, 16, 1)
          .LoadImm(0, 1)
          .LoadImm(1, static_cast<uint64_t>(chain))
          .Bind(loop)
          .CreateObject(5, 2, 16, 1)
          .StoreAd(5, 4, 0)
          .MoveAd(4, 5)
          .AddImm(0, 0, 1)
          .BranchIfLess(0, 1, loop)
          .Receive(6, 3)
          .Halt();
      ProcessOptions options;
      options.initial_arg = carrier;
      auto process = system.Spawn(a.Build(), options);
      IMAX_CHECK(process.ok());
      system.Run();  // mutator parks on the receive, chain live

      uint64_t before = system.gc().stats().objects_scanned;
      IMAX_CHECK(system.RequestCollection().ok());
      system.Run();  // full cycle against the parked chain
      traced[demote] = system.gc().stats().objects_scanned - before;

      IMAX_CHECK(system.kernel().PostMessage(port.value(), carrier).ok());
      system.Run();  // unblock; context exit bulk-reclaims the demote SRO
      if (demote != 0) {
        demotions = system.kernel().stats().demotions;
        IMAX_CHECK(system.kernel().stats().demote_fallbacks == 0);
      }
      violations += system.kernel().stats().lifetime_violations;
    }
  }
  state.counters["chain_objects"] = chain;
  state.counters["traced_full"] = static_cast<double>(traced[0]);
  state.counters["traced_demoted"] = static_cast<double>(traced[1]);
  state.counters["reduction_pct"] =
      100.0 * static_cast<double>(traced[0] - traced[1]) / static_cast<double>(traced[0]);
  state.counters["demotions"] = static_cast<double>(demotions);
  state.counters["audit_violations"] = static_cast<double>(violations);
}
BENCHMARK(BM_DemotionGcLoad)->Arg(200)->Arg(600)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

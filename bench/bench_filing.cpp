// E19 — Crash-consistent filing: journal-append overhead, recovery cost vs journal length,
// checkpoint compaction wins.
//
// The filing store is write-ahead journaled to a simulated stable device (fixed access
// latency + per-byte streaming cost, like the swap device). This experiment prices the
// durability mechanics in the same virtual-time terms as the rest of the suite:
//   - append overhead: virtual cycles the stable-device syncs add per filed mutation,
//     journaled vs plain (a plain store finishes at cycle 0 — filing itself is free)
//   - recovery vs journal length: bytes read and transactions replayed by a cold boot as
//     the un-checkpointed log grows, with the modeled media-transfer cost of the read
//   - checkpoint compaction: durable log size and boot-replay work for the same mutation
//     stream under never / coarse / fine automatic checkpoint intervals

#include "bench/bench_util.h"

#include "src/filing/object_store.h"
#include "src/filing/stable_store.h"
#include "src/memory/basic_memory_manager.h"

namespace imax432 {
namespace {

using bench::ToUs;

// A minimal filing host: machine + memory + kernel + types + store, no processes. The
// journal's syncs are the only event-queue activity, so machine.now() after RunUntilIdle
// is exactly the virtual time durability cost.
struct FilingHost {
  Machine machine;
  BasicMemoryManager memory;
  Kernel kernel;
  TypeManagerFacility types;
  ObjectStore store;

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 2 * 1024 * 1024;
    config.object_table_capacity = 8192;
    return config;
  }

  FilingHost()
      : machine(MakeConfig()),
        memory(&machine),
        kernel(&machine, &memory),
        types(&kernel),
        store(&kernel, &types) {}

  // Files `count` fresh 128-byte images under rotating names (so Remove/refile churn the
  // same namespace the campaign uses).
  void FileImages(int count) {
    for (int i = 0; i < count; ++i) {
      auto object = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 128, 0,
                                        rights::kRead | rights::kWrite | rights::kDelete);
      IMAX_CHECK(object.ok());
      IMAX_CHECK(machine.addressing()
                     .WriteData(object.value(), 0, 8, static_cast<uint64_t>(i))
                     .ok());
      IMAX_CHECK(store.File("img-" + std::to_string(i % 32), object.value()).ok());
      IMAX_CHECK(memory.DestroyObject(object.value()).ok());
    }
  }
};

// Journal-append overhead: the same mutation stream against a plain store and a journaled
// one. The delta is pure durability cost — append bytes plus the async sync transfers.
void BM_JournalAppendOverhead(benchmark::State& state) {
  const int mutations = static_cast<int>(state.range(0));
  Cycles journaled_time = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  Cycles plain_time = 0;
  for (auto _ : state) {
    {
      FilingHost plain;
      plain.FileImages(mutations);
      plain.machine.events().RunUntilIdle();
      plain_time = plain.machine.now();
    }
    StableStore device;
    FilingHost host;
    Journal journal(&device, &host.machine);
    host.store.AttachJournal(&journal, /*checkpoint_interval=*/0);
    host.FileImages(mutations);
    host.machine.events().RunUntilIdle();
    journaled_time = host.machine.now();
    bytes_appended = journal.stats().bytes_appended;
    syncs = journal.stats().syncs;
  }
  state.counters["mutations"] = mutations;
  state.counters["plain_us"] = ToUs(plain_time);
  state.counters["journaled_us"] = ToUs(journaled_time);
  state.counters["overhead_us_per_mutation"] =
      mutations > 0 ? (ToUs(journaled_time) - ToUs(plain_time)) / mutations : 0;
  state.counters["bytes_appended"] = static_cast<double>(bytes_appended);
  state.counters["syncs"] = static_cast<double>(syncs);
}
BENCHMARK(BM_JournalAppendOverhead)->Arg(16)->Arg(64)->Arg(256)->Iterations(1);

// Recovery cost vs journal length: a cold boot replays the whole un-checkpointed log. The
// replay itself is host-side bookkeeping; its virtual cost is the modeled media read of the
// log, which grows linearly with the un-compacted history.
void BM_RecoveryVsJournalLength(benchmark::State& state) {
  const int mutations = static_cast<int>(state.range(0));
  uint64_t log_bytes = 0;
  uint64_t replayed = 0;
  uint64_t recovered_images = 0;
  for (auto _ : state) {
    StableStore device;
    {
      FilingHost writer;
      Journal journal(&device, &writer.machine);
      writer.store.AttachJournal(&journal, /*checkpoint_interval=*/0);  // never compact
      writer.FileImages(mutations);
      writer.machine.events().RunUntilIdle();
    }
    log_bytes = device.durable_size() + device.tail_size();

    FilingHost reader;
    Journal journal(&device, &reader.machine);
    reader.store.AttachJournal(&journal, /*checkpoint_interval=*/0);
    IMAX_CHECK(reader.store.Recover().ok());
    replayed = journal.stats().replayed_transactions;
    recovered_images = reader.store.stats().recovered_images;
  }
  state.counters["mutations"] = mutations;
  state.counters["log_bytes"] = static_cast<double>(log_bytes);
  state.counters["replayed_transactions"] = static_cast<double>(replayed);
  state.counters["recovered_images"] = static_cast<double>(recovered_images);
  state.counters["modeled_read_us"] =
      ToUs(StableStore::TransferCost(static_cast<uint32_t>(log_bytes)));
}
BENCHMARK(BM_RecoveryVsJournalLength)->Arg(32)->Arg(128)->Arg(512)->Iterations(1);

// Checkpoint compaction: the same 256-mutation stream under different automatic checkpoint
// intervals. Fine-grained checkpoints keep the durable log near one snapshot long, so a
// cold boot replays a handful of records instead of the whole history.
void BM_CheckpointCompaction(benchmark::State& state) {
  const uint32_t interval = static_cast<uint32_t>(state.range(0));  // 0 = never
  constexpr int kMutations = 256;
  uint64_t log_bytes = 0;
  uint64_t checkpoints = 0;
  uint64_t boot_replayed_records = 0;
  for (auto _ : state) {
    StableStore device;
    {
      FilingHost writer;
      Journal journal(&device, &writer.machine);
      writer.store.AttachJournal(&journal, interval);
      writer.FileImages(kMutations);
      writer.machine.events().RunUntilIdle();
      checkpoints = journal.stats().checkpoints;
    }
    log_bytes = device.durable_size() + device.tail_size();

    FilingHost reader;
    Journal journal(&device, &reader.machine);
    reader.store.AttachJournal(&journal, interval);
    IMAX_CHECK(reader.store.Recover().ok());
    boot_replayed_records = journal.stats().replayed_records;
  }
  state.counters["checkpoint_interval"] = interval;
  state.counters["mutations"] = kMutations;
  state.counters["log_bytes"] = static_cast<double>(log_bytes);
  state.counters["checkpoints_written"] = static_cast<double>(checkpoints);
  state.counters["boot_replayed_records"] = static_cast<double>(boot_replayed_records);
}
BENCHMARK(BM_CheckpointCompaction)->Arg(0)->Arg(64)->Arg(16)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// Shared helpers for the experiment benchmarks.
//
// Every benchmark runs a fresh simulated system and reports *virtual-time* metrics (the
// machine's own cycle clock at 8 MHz) through benchmark counters; host wall-time columns are
// meaningless for these experiments and should be ignored. Each benchmark uses exactly one
// iteration: the simulation is deterministic, so repetition adds nothing.

#ifndef IMAX432_BENCH_BENCH_UTIL_H_
#define IMAX432_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "src/os/system.h"

namespace imax432::bench {

inline SystemConfig DefaultConfig(int processors = 1) {
  SystemConfig config;
  config.processors = processors;
  config.machine.memory_bytes = 8 * 1024 * 1024;
  config.machine.object_table_capacity = 65536;
  config.start_gc_daemon = false;  // benches that need the daemon start it explicitly
  return config;
}

// Creates a carrier object whose access slots hand ADs into a program (the standard way the
// benches pass ports/SROs to workload processes).
inline AccessDescriptor MakeCarrier(System& system, const std::vector<AccessDescriptor>& ads,
                                    uint32_t data_bytes = 64) {
  auto carrier = system.memory().CreateObject(
      system.memory().global_heap(), SystemType::kGeneric, data_bytes,
      static_cast<uint32_t>(ads.size()), rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  for (size_t i = 0; i < ads.size(); ++i) {
    IMAX_CHECK(system.machine()
                   .addressing()
                   .WriteAd(carrier.value(), static_cast<uint32_t>(i), ads[i])
                   .ok());
  }
  return carrier.value();
}

inline double ToUs(Cycles c) { return cycles::ToMicroseconds(c); }

}  // namespace imax432::bench

#endif  // IMAX432_BENCH_BENCH_UTIL_H_

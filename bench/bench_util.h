// Shared helpers for the experiment benchmarks.
//
// Every benchmark runs a fresh simulated system and reports *virtual-time* metrics (the
// machine's own cycle clock at 8 MHz) through benchmark counters; host wall-time columns are
// meaningless for these experiments and should be ignored. Each benchmark uses exactly one
// iteration: the simulation is deterministic, so repetition adds nothing.

#ifndef IMAX432_BENCH_BENCH_UTIL_H_
#define IMAX432_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "src/os/system.h"

namespace imax432::bench {

inline SystemConfig DefaultConfig(int processors = 1) {
  SystemConfig config;
  config.processors = processors;
  config.machine.memory_bytes = 8 * 1024 * 1024;
  config.machine.object_table_capacity = 65536;
  config.start_gc_daemon = false;  // benches that need the daemon start it explicitly
  return config;
}

// Creates a carrier object whose access slots hand ADs into a program (the standard way the
// benches pass ports/SROs to workload processes).
inline AccessDescriptor MakeCarrier(System& system, const std::vector<AccessDescriptor>& ads,
                                    uint32_t data_bytes = 64) {
  auto carrier = system.memory().CreateObject(
      system.memory().global_heap(), SystemType::kGeneric, data_bytes,
      static_cast<uint32_t>(ads.size()), rights::kRead | rights::kWrite);
  IMAX_CHECK(carrier.ok());
  for (size_t i = 0; i < ads.size(); ++i) {
    IMAX_CHECK(system.machine()
                   .addressing()
                   .WriteAd(carrier.value(), static_cast<uint32_t>(i), ads[i])
                   .ok());
  }
  return carrier.value();
}

inline double ToUs(Cycles c) { return cycles::ToMicroseconds(c); }

// Machine-readable reporter selected by the --json flag: one JSON object per line per run,
// with the benchmark name, iteration count, host real time, and every user counter (which
// is where all the virtual-time results live). Schema documented in EXPERIMENTS.md.
class JsonLineReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      std::ostream& out = GetOutputStream();
      double iterations = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      out << "{\"name\":\"" << run.benchmark_name() << "\",\"iterations\":" << run.iterations
          << ",\"real_time_ns\":" << run.real_accumulated_time * 1e9 / iterations;
      for (const auto& [name, counter] : run.counters) {
        out << ",\"" << name << "\":" << counter.value;
      }
      out << "}\n";
    }
  }
};

// Shared main: strips --json from argv (google benchmark rejects unknown flags), then runs
// with either the default console reporter or the one-line JSON reporter.
inline int BenchMain(int argc, char** argv) {
  bool json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json) {
    JsonLineReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace imax432::bench

#define IMAX_BENCH_MAIN()                                  \
  int main(int argc, char** argv) {                        \
    return ::imax432::bench::BenchMain(argc, argv);        \
  }

#endif  // IMAX432_BENCH_BENCH_UTIL_H_

// E7 — Nested start/stop over process trees (paper §6.1).
//
// Claims: start/stop "apply to entire trees" without the controller knowing the tree's
// structure; transitions in and out of the dispatching mix are sent to the process's
// scheduler, which "can then make resource decisions by regarding it as an individual
// process without concern for the logical structure of a computation of which it is a
// part."
//
// Rows reported:
//   - StopStartByTreeSize : us per tree-wide stop+start vs number of processes
//   - SchedulerMediationCost : transition cost with and without a scheduler port
//   - NotificationsScaleWithTransitions : scheduler sees one message per transition,
//     independent of how many redundant stop/start requests were applied

#include "bench/bench_util.h"
#include "src/os/process_manager.h"
#include "src/os/schedulers.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::ToUs;

ProgramRef Spinner() {
  Assembler a("spinner");
  auto loop = a.NewLabel();
  a.LoadImm(0, 0).LoadImm(1, 1u << 30).Bind(loop).Compute(100).AddImm(0, 0, 1).BranchIfLess(
      0, 1, loop);
  a.Halt();
  return a.Build();
}

// Builds a balanced tree of `size` processes under one root; returns the root.
AccessDescriptor BuildTree(BasicProcessManager& manager, int size,
                           const AccessDescriptor& scheduler_port = {}) {
  ProcessOptions root_options;
  root_options.scheduler_port = scheduler_port;
  auto root = manager.Create(Spinner(), root_options);
  IMAX_CHECK(root.ok());
  std::vector<AccessDescriptor> frontier = {root.value()};
  int created = 1;
  size_t parent_cursor = 0;
  while (created < size) {
    ProcessOptions options;
    options.parent = frontier[parent_cursor];
    options.scheduler_port = scheduler_port;
    auto child = manager.Create(Spinner(), options);
    IMAX_CHECK(child.ok());
    frontier.push_back(child.value());
    ++created;
    // Two children per parent.
    if (created % 2 == 0) {
      ++parent_cursor;
    }
  }
  return root.value();
}

void BM_StopStartByTreeSize(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  double stop_us = 0;
  double start_us = 0;
  uint64_t transitions = 0;
  for (auto _ : state) {
    System system(DefaultConfig(2));
    BasicProcessManager manager(&system.kernel());
    AccessDescriptor root = BuildTree(manager, size);
    IMAX_CHECK(manager.Start(root).ok());
    system.RunUntil(system.now() + 20000);

    Cycles t0 = system.now();
    IMAX_CHECK(manager.Stop(root).ok());
    system.Run();  // drain until everything parks
    Cycles t1 = system.now();
    IMAX_CHECK(manager.Start(root).ok());
    system.RunUntil(system.now() + 20000);
    Cycles t2 = system.now();
    stop_us = ToUs(t1 - t0);
    start_us = ToUs(t2 - t1);
    transitions = manager.stats().transitions;
  }
  state.counters["tree_size"] = size;
  state.counters["stop_tree_us"] = stop_us;
  state.counters["restart_window_us"] = start_us;
  state.counters["transitions"] = static_cast<double>(transitions);
}
BENCHMARK(BM_StopStartByTreeSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Iterations(1);

void BM_SchedulerMediation(benchmark::State& state) {
  bool mediated = state.range(0) != 0;
  constexpr int kTransitionRounds = 20;
  double us_per_round = 0;
  uint64_t scheduler_messages = 0;
  for (auto _ : state) {
    System system(DefaultConfig(2));
    BasicProcessManager manager(&system.kernel());
    AccessDescriptor scheduler_port;
    SchedulerStats sched_stats;
    if (mediated) {
      auto scheduler = SpawnPassThroughScheduler(&system.kernel(), &manager, &sched_stats);
      IMAX_CHECK(scheduler.ok());
      scheduler_port = scheduler.value().port;
    }
    AccessDescriptor root = BuildTree(manager, 4, scheduler_port);
    IMAX_CHECK(manager.Start(root).ok());
    system.RunUntil(system.now() + 20000);

    Cycles t0 = system.now();
    for (int round = 0; round < kTransitionRounds; ++round) {
      IMAX_CHECK(manager.Stop(root).ok());
      system.RunUntil(system.now() + 30000);
      IMAX_CHECK(manager.Start(root).ok());
      system.RunUntil(system.now() + 30000);
    }
    us_per_round = ToUs(system.now() - t0) / kTransitionRounds;
    scheduler_messages = manager.stats().scheduler_notifications;
  }
  state.counters["scheduler_mediated"] = mediated ? 1 : 0;
  state.counters["us_per_stop_start_round"] = us_per_round;
  state.counters["scheduler_notifications"] = static_cast<double>(scheduler_messages);
}
BENCHMARK(BM_SchedulerMediation)->Arg(0)->Arg(1)->Iterations(1);

void BM_RedundantRequestsAreCheap(benchmark::State& state) {
  // Nested counts: extra stops on an already-stopped tree must not generate scheduler
  // traffic ("Control requests can be passed through a process scheduler ... without being
  // tracked").
  uint64_t transitions = 0;
  uint64_t requests = 0;
  for (auto _ : state) {
    System system(DefaultConfig(1));
    BasicProcessManager manager(&system.kernel());
    AccessDescriptor root = BuildTree(manager, 8);
    IMAX_CHECK(manager.Start(root).ok());
    system.RunUntil(system.now() + 20000);
    for (int i = 0; i < 10; ++i) {
      IMAX_CHECK(manager.Stop(root).ok());  // only the first one transitions
      ++requests;
    }
    system.Run();
    for (int i = 0; i < 10; ++i) {
      IMAX_CHECK(manager.Start(root).ok());  // only the last one transitions
      ++requests;
    }
    transitions = manager.stats().transitions;
  }
  state.counters["tree_requests"] = static_cast<double>(requests);
  state.counters["individual_transitions"] = static_cast<double>(transitions);
}
BENCHMARK(BM_RedundantRequestsAreCheap)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

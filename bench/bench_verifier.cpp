// E11 — Static verification throughput.
//
// The verifier runs at load time, on the host: its cost is real wall-clock overhead added to
// CreateProcess/CreateDomain, not virtual 432 time. These benchmarks therefore report host
// time (unlike E1–E10) and the derived instructions-per-second rate, over three program
// shapes that stress different parts of the analysis:
//   - StraightLine : one basic block, transfer-function cost only
//   - DiamondChain : repeated if/else joins, exercises the lattice join
//   - LoopNest     : back edges force extra fixpoint iterations per block
//
// Rows scale the program size; `items_per_second` is verified instructions per second.

#include "bench/bench_util.h"

#include "src/analysis/verifier.h"
#include "src/isa/assembler.h"

namespace imax432 {
namespace {

// `size` instructions of straight-line AD and data traffic.
ProgramRef BuildStraightLine(uint32_t size) {
  Assembler a("straight_line");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 256, 4);
  while (a.here() + 2 < size) {
    a.StoreData(2, 0, (a.here() * 8) % 248, 8).MoveAd(3, 2);
  }
  a.Halt();
  return a.Build();
}

// `diamonds` sequential if/else diamonds whose arms disagree about a3, forcing a real join.
ProgramRef BuildDiamondChain(uint32_t diamonds) {
  Assembler a("diamond_chain");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 64).LoadImm(0, 1);
  for (uint32_t i = 0; i < diamonds; ++i) {
    auto else_arm = a.NewLabel();
    auto done = a.NewLabel();
    a.BranchIfZero(0, else_arm)
        .MoveAd(3, 2)
        .RestrictRights(3, rights::kRead)
        .Branch(done)
        .Bind(else_arm)
        .ClearAd(3)
        .Bind(done)
        .LoadData(4, 2, 0, 8);
  }
  a.Halt();
  return a.Build();
}

// `loops` nested-feel sequential loops, each with a back edge over AD traffic.
ProgramRef BuildLoopNest(uint32_t loops) {
  Assembler a("loop_nest");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 64, 2);
  for (uint32_t i = 0; i < loops; ++i) {
    auto head = a.NewLabel();
    a.LoadImm(0, 8)
        .Bind(head)
        .MoveAd(3, 2)
        .StoreAd(2, 3, 0)
        .AddImm(0, 0, 0xffffffffu)  // r0 -= 1 (two's complement)
        .BranchIfNotZero(0, head);
  }
  a.Halt();
  return a.Build();
}

void RunVerify(benchmark::State& state, const ProgramRef& program) {
  analysis::VerifyOptions options;
  options.initial_arg = analysis::AdAbstract::Object(
      SystemType::kStorageResource, rights::kRead | rights::kSroAllocate,
      analysis::LevelRange::Exact(0));
  uint64_t instructions = 0;
  for (auto _ : state) {
    auto result = analysis::Verifier::Verify(*program, options);
    benchmark::DoNotOptimize(result);
    IMAX_CHECK(result.ok());
    instructions += program->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
  state.counters["program_size"] = static_cast<double>(program->size());
}

void BM_VerifyStraightLine(benchmark::State& state) {
  RunVerify(state, BuildStraightLine(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_VerifyStraightLine)->Arg(64)->Arg(512)->Arg(4096);

void BM_VerifyDiamondChain(benchmark::State& state) {
  RunVerify(state, BuildDiamondChain(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_VerifyDiamondChain)->Arg(8)->Arg(64)->Arg(512);

void BM_VerifyLoopNest(benchmark::State& state) {
  RunVerify(state, BuildLoopNest(static_cast<uint32_t>(state.range(0))));
}
BENCHMARK(BM_VerifyLoopNest)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

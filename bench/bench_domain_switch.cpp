// E1 — Domain switch cost (paper §2).
//
// Claim: "a domain switch on the 432 takes about 65 microseconds for an 8 megahertz
// processor with no wait state memory. This compares reasonably with the cost of procedure
// activation on other contemporary processors."
//
// Rows reported:
//   - InterDomainCall/us_per_call : should be ~65 us plus small return overhead
//   - IntraDomainCall/us_per_call : the cheaper non-switching activation
//   - CallDepth sweep             : cost is flat in depth (each call is one context)

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

// Measures average virtual us per call+return for `calls` invocations of a domain entry.
// `same_domain` selects intra-domain (CallLocal-style) versus inter-domain calls.
double MeasureCallCost(int calls, bool same_domain, int depth = 1) {
  System system(DefaultConfig());

  // Callee chain: entry d calls entry d+1 until depth runs out, then returns.
  Assembler leaf("leaf");
  leaf.ClearAd(7).Return();
  auto leaf_segment = system.kernel().programs().Register(leaf.Build());
  IMAX_CHECK(leaf_segment.ok());
  std::vector<AccessDescriptor> entries = {leaf_segment.value()};
  for (int d = 1; d < depth; ++d) {
    Assembler inner("inner");
    // Call the next-shallower entry of the same domain, then return.
    inner.CallLocal(static_cast<uint32_t>(d - 1)).ClearAd(7).Return();
    auto segment = system.kernel().programs().Register(inner.Build());
    IMAX_CHECK(segment.ok());
    entries.push_back(segment.value());
  }
  auto domain = system.kernel().CreateDomain(entries);
  IMAX_CHECK(domain.ok());

  ProgramRef program;
  AccessDescriptor carrier;
  if (same_domain) {
    // Intra-domain variant: a looping entry *inside* the domain performs the measured
    // CallLocal activations, so every measured call stays within one protection domain.
    Assembler inside("inside-loop");
    auto inner_loop = inside.NewLabel();
    inside.LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(calls))
        .Bind(inner_loop)
        .CallLocal(0)  // intra-domain activation of the leaf
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, inner_loop)
        .ClearAd(7)
        .Return();
    auto inside_segment = system.kernel().programs().Register(inside.Build());
    IMAX_CHECK(inside_segment.ok());
    entries.push_back(inside_segment.value());
    auto looped_domain = system.kernel().CreateDomain(entries);
    IMAX_CHECK(looped_domain.ok());
    carrier = MakeCarrier(system, {looped_domain.value()});
    Assembler outer("outer");
    outer.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .Call(2, static_cast<uint32_t>(entries.size() - 1))
        .Halt();
    program = outer.Build();
  } else {
    // Inter-domain variant: the caller's domain differs from the callee's on every call.
    carrier = MakeCarrier(system, {domain.value()});
    Assembler caller("caller");
    auto loop = caller.NewLabel();
    caller.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)  // a2 = domain
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(calls))
        .Bind(loop)
        .Call(2, static_cast<uint32_t>(depth - 1))
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    program = caller.Build();
  }

  ProcessOptions options;
  options.initial_arg = carrier;
  auto process = system.Spawn(program, options);
  IMAX_CHECK(process.ok());

  // Baseline: the loop overhead without the call. Measure total time, subtract a calibrated
  // empty-loop run.
  system.Run();
  Cycles with_calls = system.kernel().process_view(process.value()).consumed();

  // Empty-loop calibration in a fresh system.
  System calibration(DefaultConfig());
  Assembler empty("empty");
  auto empty_loop = empty.NewLabel();
  empty.LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(calls))
      .Bind(empty_loop)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, empty_loop)
      .Halt();
  auto empty_process = calibration.Spawn(empty.Build());
  IMAX_CHECK(empty_process.ok());
  calibration.Run();
  Cycles loop_only = calibration.kernel().process_view(empty_process.value()).consumed();

  Cycles per_call = (with_calls - loop_only) / static_cast<Cycles>(calls);
  return ToUs(per_call);
}

void BM_InterDomainCall(benchmark::State& state) {
  double us_per_call = 0;
  for (auto _ : state) {
    us_per_call = MeasureCallCost(2000, /*same_domain=*/false);
  }
  state.counters["us_per_call_return"] = us_per_call;
  state.counters["paper_us_per_switch"] = 65.0;
  state.counters["model_call_cycles"] = static_cast<double>(cycles::kDomainCall);
}
BENCHMARK(BM_InterDomainCall)->Iterations(1);

void BM_IntraDomainCall(benchmark::State& state) {
  double us_per_call = 0;
  for (auto _ : state) {
    us_per_call = MeasureCallCost(2000, /*same_domain=*/true);
  }
  state.counters["us_per_call_return"] = us_per_call;
}
BENCHMARK(BM_IntraDomainCall)->Iterations(1);

void BM_DomainCallByDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  double us_per_call = 0;
  for (auto _ : state) {
    us_per_call = MeasureCallCost(500, /*same_domain=*/false, depth);
  }
  // The figure: cost per call is flat in nesting depth (contexts are constant-cost).
  state.counters["depth"] = depth;
  state.counters["us_per_chain"] = us_per_call;
  state.counters["us_per_activation"] = us_per_call / depth;
}
BENCHMARK(BM_DomainCallByDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

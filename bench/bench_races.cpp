// E13 — data-race analysis throughput and sanitizer overhead.
//
// The static passes run on the host at load/analysis time (host wall-clock, like E11/E12):
//   - BM_AccessSummary   : per-program access-summary cost vs program size — the Phase 1
//     extension of the effect summaries, paid once per loaded program
//   - BM_RaceAnalyzeSync : AnalyzeRaces() vs program count over token-synchronized
//     writer/reader pairs — exercises the happens-before proofs (every pair ordered)
//   - BM_RaceAnalyzeRacy : same sweep over unsynchronized pairs — exercises the conflict
//     scan and diagnostic rendering (every pair reported)
//
// The dynamic cross-check costs host time only (virtual time is bit-identical by design):
//   - BM_SanitizerRun    : the same kernel workload with race_sanitize off (arg 0) and on
//     (arg 1); `items_per_second` is simulated instructions per host second, and the
//     off/on ratio is the sanitizer's interpreter-hook overhead. The `virtual_cycles`
//     counter must be identical across the two args.

#include "bench/bench_util.h"

#include <string>
#include <vector>

#include "src/analysis/races/races.h"
#include "src/analysis/races/sanitizer.h"
#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kFirstObject = 1000;
constexpr ObjectIndex kFirstPort = 100;

// `size` instructions of data and access-part traffic through a couple of shared objects:
// stresses the access-site recording and recvs-before/sends-after maintenance.
ProgramRef BuildAccessProgram(uint32_t size) {
  Assembler a("access");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1);
  while (a.here() + 4 < size) {
    a.StoreData(2, 0, 0).LoadData(0, 3, 0).MoveAd(4, 2).MoveAd(2, 4);
  }
  a.Halt();
  return a.Build();
}

void BM_AccessSummary(benchmark::State& state) {
  ProgramRef program = BuildAccessProgram(static_cast<uint32_t>(state.range(0)));
  analysis::EffectOptions options;
  options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
  options.slot_reader = [](ObjectIndex object, uint32_t slot) {
    if (object == kCarrier) {
      return AccessDescriptor(kFirstObject + slot, 1, rights::kAll);
    }
    return AccessDescriptor();
  };
  uint64_t instructions = 0;
  for (auto _ : state) {
    analysis::EffectSummary summary = analysis::EffectAnalyzer::Analyze(*program, options);
    benchmark::DoNotOptimize(summary);
    instructions += program->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
  state.counters["program_size"] = static_cast<double>(program->size());
}
BENCHMARK(BM_AccessSummary)->Arg(16)->Arg(128)->Arg(1024);

// `count` programs as writer/reader pairs over one shared object each. With `sync` the
// writer provably sends a token the reader receives before reading, so the analysis proves
// every pair ordered; without it every pair is a reported candidate race.
analysis::SystemEffectGraph BuildPairGraph(uint32_t count, bool sync) {
  analysis::SystemEffectGraph graph;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t pair = i / 2;
    const bool is_writer = (i % 2) == 0;
    const ObjectIndex shared = kFirstObject + pair;
    const ObjectIndex port = kFirstPort + pair;
    Assembler a((is_writer ? "w." : "r.") + std::to_string(pair));
    if (is_writer) {
      a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).StoreData(2, 0, 0);
      if (sync) a.LoadAd(3, 1, 1).Send(3, 1);
      a.Halt();
    } else {
      a.MoveAd(1, kArgAdReg);
      if (sync) a.LoadAd(3, 1, 1).Receive(4, 3);
      a.LoadAd(2, 1, 0).LoadData(0, 2, 0).Halt();
    }
    analysis::EffectOptions options;
    options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
    options.slot_reader = [shared, port](ObjectIndex object, uint32_t slot) {
      if (object != kCarrier) return AccessDescriptor();
      return AccessDescriptor(slot == 0 ? shared : port, 1, rights::kAll);
    };
    graph.AddProgram(2000 + i, analysis::EffectAnalyzer::Analyze(*a.Build(), options));
  }
  return graph;
}

void BM_RaceAnalyzeSync(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  analysis::SystemEffectGraph graph = BuildPairGraph(count, /*sync=*/true);
  uint64_t analyzed = 0;
  uint64_t ordered = 0;
  for (auto _ : state) {
    analysis::RaceAnalysisReport report = analysis::AnalyzeRaces(graph);
    benchmark::DoNotOptimize(report);
    analyzed += count;
    ordered = report.pairs_ordered;
  }
  state.SetItemsProcessed(static_cast<int64_t>(analyzed));
  state.counters["programs"] = static_cast<double>(count);
  state.counters["pairs_ordered"] = static_cast<double>(ordered);
}
BENCHMARK(BM_RaceAnalyzeSync)->Arg(8)->Arg(64)->Arg(512);

void BM_RaceAnalyzeRacy(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  analysis::SystemEffectGraph graph = BuildPairGraph(count, /*sync=*/false);
  uint64_t analyzed = 0;
  uint64_t reported = 0;
  for (auto _ : state) {
    analysis::RaceAnalysisReport report = analysis::AnalyzeRaces(graph);
    benchmark::DoNotOptimize(report);
    analyzed += count;
    reported = static_cast<uint64_t>(report.diagnostics.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(analyzed));
  state.counters["programs"] = static_cast<double>(count);
  state.counters["diagnostics"] = static_cast<double>(reported);
}
BENCHMARK(BM_RaceAnalyzeRacy)->Arg(8)->Arg(64)->Arg(512);

// Four processes hammering a shared object for a fixed instruction budget, with and without
// the sanitizer observing every access.
void BM_SanitizerRun(benchmark::State& state) {
  const bool sanitize = state.range(0) != 0;
  uint64_t instructions = 0;
  Cycles virtual_end = 0;
  uint64_t races = 0;
  for (auto _ : state) {
    MachineConfig config;
    config.memory_bytes = 4 * 1024 * 1024;
    config.object_table_capacity = 16384;
    Machine machine(config);
    BasicMemoryManager memory(&machine);
    Kernel kernel(&machine, &memory);
    IMAX_CHECK(kernel.AddProcessors(2).ok());
    if (sanitize) kernel.EnableRaceSanitizer();

    auto shared = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 64, 0,
                                      rights::kRead | rights::kWrite);
    auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 1,
                                       rights::kRead | rights::kWrite);
    IMAX_CHECK(shared.ok() && carrier.ok());
    IMAX_CHECK(machine.addressing().WriteAd(carrier.value(), 0, shared.value()).ok());

    for (int p = 0; p < 4; ++p) {
      Assembler a("hammer." + std::to_string(p));
      Assembler::Label loop = a.NewLabel();
      a.MoveAd(1, kArgAdReg)
          .LoadAd(2, 1, 0)
          .LoadImm(0, 0)
          .LoadImm(2, 256)
          .Bind(loop)
          .StoreData(2, 3, 0)
          .LoadData(3, 2, 0)
          .AddImm(0, 0, 1)
          .BranchIfLess(0, 2, loop)
          .Halt();
      ProcessOptions options;
      options.initial_arg = carrier.value();
      auto process = kernel.CreateProcess(a.Build(), options);
      IMAX_CHECK(process.ok());
      IMAX_CHECK(kernel.StartProcess(process.value()).ok());
    }
    kernel.Run();
    instructions += kernel.stats().instructions_executed;
    virtual_end = machine.now();
    races = sanitize ? kernel.race_sanitizer()->stats().races_detected : 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
  state.counters["virtual_cycles"] = static_cast<double>(virtual_end);
  state.counters["races_detected"] = static_cast<double>(races);
  state.counters["sanitize"] = sanitize ? 1.0 : 0.0;
}
BENCHMARK(BM_SanitizerRun)->Arg(0)->Arg(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

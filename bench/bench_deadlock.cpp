// E12 — IPC effect summaries and system deadlock analysis throughput.
//
// Like the verifier (E11), both passes run on the host at load/analysis time, so these
// report host wall-clock, not virtual 432 cycles. Two costs matter in practice:
//   - BM_EffectSummary : per-program summary cost vs program size — paid once per
//     CreateProcess/CreateDomain under verify-on-load (incremental path)
//   - BM_SystemAnalyze : whole-system wait-for graph + SCC pass vs program count — paid per
//     Kernel::AnalyzeSystem() call, over pre-built summaries (rings exercise the cycle
//     detector; pipelines the orphan/starvation scans)
//
// `items_per_second` is summarized instructions (BM_EffectSummary) or analyzed programs
// (BM_SystemAnalyze) per second.

#include "bench/bench_util.h"

#include <string>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/effects.h"
#include "src/isa/assembler.h"

namespace imax432 {
namespace {

constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kFirstPort = 100;

// Slot reader for a synthetic world: carrier slot i resolves to port kFirstPort + i.
analysis::EffectOptions SyntheticOptions() {
  analysis::EffectOptions options;
  options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
  options.slot_reader = [](ObjectIndex object, uint32_t slot) {
    if (object == kCarrier) {
      return AccessDescriptor(kFirstPort + slot, 1, rights::kAll);
    }
    return AccessDescriptor();
  };
  return options;
}

// `size` instructions of AD shuffling around a send/receive pair: stresses the abstract-AD
// transfer functions and the must-send set maintenance.
ProgramRef BuildTrafficProgram(uint32_t size) {
  Assembler a("traffic");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1);
  while (a.here() + 4 < size) {
    a.MoveAd(4, 2).Send(3, 4).Receive(5, 2).MoveAd(2, 5);
  }
  a.Halt();
  return a.Build();
}

// One ring member: receives from carrier slot 0, forwards to slot 1.
ProgramRef BuildRingMember(uint32_t i) {
  Assembler a("ring.p" + std::to_string(i));
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1).Receive(4, 2).Send(3, 4).Halt();
  return a.Build();
}

void BM_EffectSummary(benchmark::State& state) {
  ProgramRef program = BuildTrafficProgram(static_cast<uint32_t>(state.range(0)));
  analysis::EffectOptions options = SyntheticOptions();
  uint64_t instructions = 0;
  for (auto _ : state) {
    analysis::EffectSummary summary = analysis::EffectAnalyzer::Analyze(*program, options);
    benchmark::DoNotOptimize(summary);
    instructions += program->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
  state.counters["program_size"] = static_cast<double>(program->size());
}
BENCHMARK(BM_EffectSummary)->Arg(16)->Arg(128)->Arg(1024);

// `count` programs arranged as rings of 8 (each member's slot reader wires its own/next
// port), so the SCC pass sees count/8 genuine cycles to find and render.
void BM_SystemAnalyzeRings(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  analysis::SystemEffectGraph graph;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t ring_base = (i / 8) * 8;
    const ObjectIndex own = kFirstPort + i;
    const ObjectIndex next = kFirstPort + ring_base + ((i + 1) % 8 == 0 ? 0 : (i % 8) + 1);
    analysis::EffectOptions options;
    options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
    options.slot_reader = [own, next](ObjectIndex object, uint32_t slot) {
      if (object != kCarrier) return AccessDescriptor();
      return AccessDescriptor(slot == 0 ? own : next, 1, rights::kAll);
    };
    graph.AddProgram(1000 + i, analysis::EffectAnalyzer::Analyze(*BuildRingMember(i), options));
  }
  uint64_t analyzed = 0;
  for (auto _ : state) {
    analysis::SystemAnalysisReport report = graph.Analyze();
    benchmark::DoNotOptimize(report);
    analyzed += count;
  }
  state.SetItemsProcessed(static_cast<int64_t>(analyzed));
  state.counters["programs"] = static_cast<double>(count);
}
BENCHMARK(BM_SystemAnalyzeRings)->Arg(8)->Arg(64)->Arg(512);

// A linear pipeline: head feeds p0 -> p1 -> ... -> tail. No cycles; the head port is
// externally fed and the tail port externally drained, so the report is clean and the
// benchmark measures the pure graph-construction + scan cost.
void BM_SystemAnalyzePipeline(benchmark::State& state) {
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  analysis::SystemEffectGraph graph;
  for (uint32_t i = 0; i < count; ++i) {
    const ObjectIndex own = kFirstPort + i;
    const ObjectIndex next = kFirstPort + i + 1;
    analysis::EffectOptions options;
    options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
    options.slot_reader = [own, next](ObjectIndex object, uint32_t slot) {
      if (object != kCarrier) return AccessDescriptor();
      return AccessDescriptor(slot == 0 ? own : next, 1, rights::kAll);
    };
    graph.AddProgram(1000 + i, analysis::EffectAnalyzer::Analyze(*BuildRingMember(i), options));
  }
  graph.MarkExternalSender(kFirstPort);
  graph.MarkExternalReceiver(kFirstPort + count);
  uint64_t analyzed = 0;
  for (auto _ : state) {
    analysis::SystemAnalysisReport report = graph.Analyze();
    benchmark::DoNotOptimize(report);
    analyzed += count;
  }
  state.SetItemsProcessed(static_cast<int64_t>(analyzed));
  state.counters["programs"] = static_cast<double>(count);
}
BENCHMARK(BM_SystemAnalyzePipeline)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E4 — Typed ports are a zero-overhead abstraction (paper §4).
//
// Claim: "The inline facility allows the code generated for any instance of this package
// [Typed_Ports] to be identical to that generated for the untyped port package. Thus the
// user of typed ports suffers no penalty relative to even a hypothetical assembly language
// programmer." And, one step further: dynamic runtime checking "would require a few more
// generated instructions making use of user-defined types."
//
// Rows reported:
//   - Untyped / Typed     : identical us per send+receive round trip (typed - untyped = 0)
//   - RuntimeChecked      : the measurable cost of the dynamic check
//   - CodeIdentity        : instruction-stream equality as a 0/1 counter

#include "bench/bench_util.h"
#include "src/os/ports_api.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

struct Telegram {};  // the user_message type of the generic instance

enum class Variant { kUntyped, kTyped, kChecked };

// Measures average virtual us per send+receive pair through a port, self-loopback: one
// process sends to and receives from the same port, so no blocking occurs and the numbers
// are pure instruction cost.
double MeasureRoundTrip(Variant variant, int rounds) {
  System system(DefaultConfig());
  auto tdo = system.types().CreateTypeDefinition(0x7e1e);
  IMAX_CHECK(tdo.ok());
  CheckedPorts<Telegram> checked(&system.kernel(), &system.types(), tdo.value());

  auto port = system.ports().Create(8);
  IMAX_CHECK(port.ok());

  // The message: typed for the checked variant so the check passes.
  AccessDescriptor message;
  if (variant == Variant::kChecked) {
    auto typed = system.types().CreateTypedObject(tdo.value(), system.memory().global_heap(),
                                                  32, 0, rights::kRead);
    IMAX_CHECK(typed.ok());
    message = typed.value();
  } else {
    auto plain = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 32, 0, rights::kRead);
    IMAX_CHECK(plain.ok());
    message = plain.value();
  }

  AccessDescriptor carrier = MakeCarrier(system, {port.value().ad, message});

  Assembler a("roundtrip");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)  // a2 = port
      .LoadAd(3, 1, 1)  // a3 = message
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(rounds))
      .Bind(loop);
  switch (variant) {
    case Variant::kUntyped:
      UntypedPorts::EmitSend(a, 2, 3);
      UntypedPorts::EmitReceive(a, 4, 2);
      break;
    case Variant::kTyped:
      TypedPorts<Telegram>::EmitSend(a, 2, 3);
      TypedPorts<Telegram>::EmitReceive(a, 4, 2);
      break;
    case Variant::kChecked:
      checked.EmitSend(a, 2, 3);
      checked.EmitReceive(a, 4, 2);
      break;
  }
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, loop).Halt();

  ProcessOptions options;
  options.initial_arg = carrier;
  auto process = system.Spawn(a.Build(), options);
  IMAX_CHECK(process.ok());
  system.Run();
  IMAX_CHECK(system.kernel().process_view(process.value()).state() ==
             ProcessState::kTerminated);
  Cycles consumed = system.kernel().process_view(process.value()).consumed();
  return ToUs(consumed) / rounds;
}

void BM_UntypedRoundTrip(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureRoundTrip(Variant::kUntyped, 2000);
  }
  state.counters["us_per_send_receive"] = us;
}
BENCHMARK(BM_UntypedRoundTrip)->Iterations(1);

void BM_TypedRoundTrip(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureRoundTrip(Variant::kTyped, 2000);
  }
  double untyped = MeasureRoundTrip(Variant::kUntyped, 2000);
  state.counters["us_per_send_receive"] = us;
  state.counters["overhead_vs_untyped_us"] = us - untyped;  // the zero-penalty claim
}
BENCHMARK(BM_TypedRoundTrip)->Iterations(1);

void BM_RuntimeCheckedRoundTrip(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = MeasureRoundTrip(Variant::kChecked, 2000);
  }
  double untyped = MeasureRoundTrip(Variant::kUntyped, 2000);
  state.counters["us_per_send_receive"] = us;
  state.counters["overhead_vs_untyped_us"] = us - untyped;  // "a few more instructions"
}
BENCHMARK(BM_RuntimeCheckedRoundTrip)->Iterations(1);

void BM_CodeIdentity(benchmark::State& state) {
  for (auto _ : state) {
  }
  // Static verification of the identical-code claim: compare the emitted streams.
  Assembler untyped("u");
  UntypedPorts::EmitSend(untyped, 1, 2);
  UntypedPorts::EmitReceive(untyped, 3, 1);
  Assembler typed("t");
  TypedPorts<Telegram>::EmitSend(typed, 1, 2);
  TypedPorts<Telegram>::EmitReceive(typed, 3, 1);
  ProgramRef u = untyped.Build();
  ProgramRef t = typed.Build();
  bool identical = u->size() == t->size();
  for (uint32_t i = 0; identical && i < u->size(); ++i) {
    identical = u->at(i).op == t->at(i).op && u->at(i).a == t->at(i).a &&
                u->at(i).b == t->at(i).b && u->at(i).c == t->at(i).c &&
                u->at(i).imm == t->at(i).imm;
  }
  state.counters["typed_code_identical"] = identical ? 1 : 0;
  state.counters["typed_instruction_count"] = t->size();
  state.counters["untyped_instruction_count"] = u->size();
}
BENCHMARK(BM_CodeIdentity)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E9 — Destruction filters and lost-object recovery (paper §8.2).
//
// Claims: a type manager "can specify to the system via a type definition object that it
// wishes to have an opportunity to see any of its objects as they become garbage"; without
// this, a lost tape drive is simply collected "and the system will be short one tape drive."
//
// Rows reported:
//   - RecoveryByLossRate : with the filter armed, every lost drive is recovered; without
//     it, every lost drive is gone (the resource-count table)
//   - FilterOverhead     : collector cycle cost with 0%..100% of garbage being filtered
//   - FilterLatency      : virtual time from collection request to the manager seeing the
//     dying object

#include "bench/bench_util.h"
#include "src/base/xorshift.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::ToUs;

struct RecoveryResult {
  int lost = 0;
  int recovered = 0;
  Cycles gc_time = 0;
};

// `drives` typed objects; `lost_percent` of them become garbage (handles dropped); the rest
// stay referenced by the manager's pool. Runs one collection and counts recoveries.
RecoveryResult RunRecovery(int drives, int lost_percent, bool filter_armed) {
  SystemConfig config = DefaultConfig(1);
  config.start_gc_daemon = true;
  // Size the table to the workload so the filter's per-object cost is visible over the
  // fixed table-scan cost of a cycle.
  config.machine.object_table_capacity = 2048;
  System system(config);
  system.Run();

  auto filter_port = system.kernel().ports().CreatePort(
      system.memory().global_heap(), static_cast<uint16_t>(drives + 1),
      QueueDiscipline::kFifo);
  IMAX_CHECK(filter_port.ok());
  auto tdo = system.types().CreateTypeDefinition(
      0xd21e, filter_armed ? filter_port.value() : AccessDescriptor());
  IMAX_CHECK(tdo.ok());

  std::vector<AccessDescriptor> pool;  // the manager's kept references
  system.kernel().AddRootProvider(
      [&pool, tdo = tdo.value(), port = filter_port.value()](
          std::vector<AccessDescriptor>* roots) {
        roots->push_back(tdo);
        roots->push_back(port);
        for (const AccessDescriptor& ad : pool) {
          roots->push_back(ad);
        }
      });

  RecoveryResult result;
  Xorshift rng(99);
  for (int i = 0; i < drives; ++i) {
    auto drive = system.types().CreateTypedObject(
        tdo.value(), system.memory().global_heap(), 32, 0, rights::kRead | rights::kWrite);
    IMAX_CHECK(drive.ok());
    if (rng.NextChance(static_cast<uint64_t>(lost_percent), 100)) {
      ++result.lost;  // handle dropped: the drive is garbage
    } else {
      pool.push_back(drive.value());
    }
  }

  Cycles before = system.now();
  IMAX_CHECK(system.RequestCollection().ok());
  system.Run();
  result.gc_time = system.now() - before;

  // The manager drains its filter port.
  while (true) {
    auto dying = system.kernel().ports().Dequeue(filter_port.value());
    if (!dying.ok()) {
      break;
    }
    pool.push_back(dying.value());
    ++result.recovered;
  }
  return result;
}

void BM_RecoveryByLossRate(benchmark::State& state) {
  int lost_percent = static_cast<int>(state.range(0));
  constexpr int kDrives = 64;
  RecoveryResult with_filter;
  for (auto _ : state) {
    with_filter = RunRecovery(kDrives, lost_percent, /*filter_armed=*/true);
  }
  RecoveryResult without_filter = RunRecovery(kDrives, lost_percent, /*filter_armed=*/false);
  state.counters["drives"] = kDrives;
  state.counters["lost"] = with_filter.lost;
  state.counters["recovered_with_filter"] = with_filter.recovered;
  state.counters["recovered_without_filter"] = without_filter.recovered;
}
BENCHMARK(BM_RecoveryByLossRate)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Iterations(1);

void BM_FilterOverhead(benchmark::State& state) {
  int lost_percent = static_cast<int>(state.range(0));
  constexpr int kDrives = 128;
  RecoveryResult armed;
  for (auto _ : state) {
    armed = RunRecovery(kDrives, lost_percent, /*filter_armed=*/true);
  }
  RecoveryResult unarmed = RunRecovery(kDrives, lost_percent, /*filter_armed=*/false);
  state.counters["lost_percent"] = lost_percent;
  state.counters["gc_ms_with_filter"] = ToUs(armed.gc_time) / 1000.0;
  state.counters["gc_ms_without_filter"] = ToUs(unarmed.gc_time) / 1000.0;
  state.counters["filter_overhead_us_per_object"] =
      armed.lost > 0 ? (ToUs(armed.gc_time) - ToUs(unarmed.gc_time)) / armed.lost : 0.0;
}
BENCHMARK(BM_FilterOverhead)->Arg(0)->Arg(25)->Arg(50)->Arg(100)->Iterations(1);

void BM_FilterLatency(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    RecoveryResult result = RunRecovery(/*drives=*/8, /*lost_percent=*/50,
                                        /*filter_armed=*/true);
    us = ToUs(result.gc_time);
  }
  // Request-to-recovery time: one full collection cycle in virtual time.
  state.counters["request_to_recovery_us"] = us;
}
BENCHMARK(BM_FilterLatency)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E16 — Static interference analysis and the certified AD-translation cache (DESIGN.md §6.4).
//
// The interference pass claims four things worth pricing: (1) the per-program footprint
// summary is cheap enough to ride along with verify-on-load, (2) whole-system composition
// scales with program count, (3) the certified/epoch-keyed translation cache buys real host
// wall-clock on the interpreter hot path without moving virtual time by a single cycle, and
// (4) the dynamic auditor that cross-checks every certified hit is a pure observer.
//
// Rows reported:
//   - InterferenceSummary : per-program Phase 1 cost vs program size (host time)
//   - InterferenceCompose : AnalyzeInterference() vs program count (host time)
//   - XlatAllocHotPath    : E2-shaped allocation loop, cache off/on — host best-of-N,
//                           speedup_pct, hit rate; virtual makespans must be identical
//   - XlatChurnHotPath    : E6-shaped churn-then-collect loop, cache off/on — same contract
//   - XlatAuditObserver   : certified reader run with the auditor off/on — the virtual-time
//                           delta must be exactly zero and the auditor must stay silent
//
// Unlike most experiment rows, host time IS the result here: the cache exists to make the
// emulator faster, and the virtual clock is the invariant, not the metric.

#include <chrono>

#include "bench/bench_util.h"
#include "src/analysis/interference/interference.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kContainerBase = 100;
constexpr ObjectIndex kPortBase = 5000;

// Phase-1 options mirroring what the kernel seeds at load time: a resolvable carrier whose
// slot 1 is a shared container and slot 2 a port.
analysis::EffectOptions SyntheticOptions(ObjectIndex container) {
  analysis::EffectOptions options;
  options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
  options.slot_reader = [container](ObjectIndex object, uint32_t slot) {
    if (object == kCarrier && slot == 1) {
      return AccessDescriptor(container, 1, rights::kAll);
    }
    if (object == kCarrier && slot == 2) {
      return AccessDescriptor(kPortBase, 1, rights::kAll);
    }
    return AccessDescriptor();
  };
  return options;
}

// Region-dense program: every trip reads and republishes the container through the port,
// so the summary walks many inter-sync regions and the publication fixpoint.
ProgramRef BuildRegionProgram(uint32_t size) {
  Assembler a("regions");
  a.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).LoadAd(5, 1, 2);
  while (a.here() + 4 < size) {
    a.LoadData(2, 3, 0, 8).StoreData(3, 2, 8, 8).Send(5, 3);
  }
  a.Halt();
  return a.Build();
}

void BM_InterferenceSummary(benchmark::State& state) {
  ProgramRef program = BuildRegionProgram(static_cast<uint32_t>(state.range(0)));
  analysis::EffectOptions options = SyntheticOptions(kContainerBase);
  uint64_t instructions = 0;
  uint32_t regions = 0;
  for (auto _ : state) {
    analysis::InterferenceSummary summary =
        analysis::InterferenceAnalyzer::Analyze(*program, options);
    benchmark::DoNotOptimize(summary);
    instructions += program->size();
    regions = summary.region_count;
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
  state.counters["program_size"] = static_cast<double>(program->size());
  state.counters["regions"] = static_cast<double>(regions);
}
BENCHMARK(BM_InterferenceSummary)->Arg(16)->Arg(128)->Arg(1024);

// `count` writer programs, each over its own container; every fourth container also gets a
// reader, so composition exercises both the interfering-pair path and the independence
// sweep across all O(n^2) pairs.
void BM_InterferenceCompose(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  analysis::SystemEffectGraph graph;
  std::map<ObjectIndex, analysis::InterferenceSummary> summaries;
  ObjectIndex key = 1;
  for (int i = 0; i < count; ++i) {
    ObjectIndex container = kContainerBase + static_cast<ObjectIndex>(i);
    analysis::EffectOptions options = SyntheticOptions(container);
    Assembler writer("writer");
    writer.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).LoadImm(2, 7).StoreData(3, 2, 0, 8).Halt();
    ProgramRef program = writer.Build();
    graph.AddProgram(key, analysis::EffectAnalyzer::Analyze(*program, options));
    summaries[key] = analysis::InterferenceAnalyzer::Analyze(*program, options);
    ++key;
    if (i % 4 == 0) {
      Assembler reader("reader");
      reader.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).LoadData(2, 3, 0, 8).Halt();
      ProgramRef read_program = reader.Build();
      graph.AddProgram(key, analysis::EffectAnalyzer::Analyze(*read_program, options));
      summaries[key] = analysis::InterferenceAnalyzer::Analyze(*read_program, options);
      ++key;
    }
  }
  uint64_t interfering = 0;
  uint64_t independent = 0;
  uint64_t certificates = 0;
  for (auto _ : state) {
    analysis::InterferenceAnalysisReport report =
        analysis::AnalyzeInterference(graph, summaries);
    benchmark::DoNotOptimize(report);
    interfering = report.pairs_interfering;
    independent = report.pairs_independent;
    certificates = report.certificates.size();
  }
  state.counters["programs"] = static_cast<double>(summaries.size());
  state.counters["pairs_interfering"] = static_cast<double>(interfering);
  state.counters["pairs_independent"] = static_cast<double>(independent);
  state.counters["certificates"] = static_cast<double>(certificates);
}
BENCHMARK(BM_InterferenceCompose)->Arg(8)->Arg(64)->Arg(512);

// --- The cache rows: host wall-clock on the interpreter hot path ------------------------

SystemConfig CacheConfig(bool cache, bool audit = false, bool gc = false) {
  SystemConfig config = DefaultConfig(1);
  config.verify_on_load = true;  // summaries (and with them the certified set) land at spawn
  config.xlat_cache = cache;
  config.interference_audit = audit;
  config.start_gc_daemon = gc;  // the churn row requests a collection mid-run
  return config;
}

struct HotPathRun {
  double best_us = 1e300;  // best-of-N host time for System::Run
  Cycles virtual_now = 0;
  XlatCacheStats stats;
};

// Builds a fresh system per repeat, spawns the workload, and times only the interpreter
// run. Host timing on millisecond workloads is noisy; best-of-N discards scheduler
// interference instead of averaging it in.
template <typename SpawnFn>
void TimeHotPathOnce(bool cache, bool gc, SpawnFn&& spawn, HotPathRun* result) {
  using Clock = std::chrono::steady_clock;
  System system(CacheConfig(cache, /*audit=*/false, gc));
  if (gc) {
    system.Run();  // the collector daemon starts and parks before the workload spawns
  }
  spawn(system);
  auto t0 = Clock::now();
  system.Run();
  auto t1 = Clock::now();
  double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  result->best_us = std::min(result->best_us, us);
  result->virtual_now = system.now();
  result->stats = system.kernel().xlat_stats();
}

// Repeats are interleaved off/on so a host-load drift during the run skews both
// configurations equally instead of poisoning one side's best-of-N.
template <typename SpawnFn>
void TimeHotPathPair(int repeats, bool gc, SpawnFn&& spawn, HotPathRun* off, HotPathRun* on) {
  for (int i = 0; i < repeats; ++i) {
    TimeHotPathOnce(/*cache=*/false, gc, spawn, off);
    TimeHotPathOnce(/*cache=*/true, gc, spawn, on);
  }
}

void ReportHotPath(benchmark::State& state, const HotPathRun& off, const HotPathRun& on) {
  // The cache is an observer of virtual time: both configurations must reach the same
  // cycle, or the cache participated in the simulation and the row is void.
  IMAX_CHECK(off.virtual_now == on.virtual_now);
  uint64_t hits = on.stats.hits + on.stats.certified_hits + on.stats.program_hits +
                  on.stats.certified_program_hits;
  uint64_t misses = on.stats.misses + on.stats.program_misses;
  state.counters["host_ms_off"] = off.best_us / 1000.0;
  state.counters["host_ms_on"] = on.best_us / 1000.0;
  state.counters["speedup_pct"] = (off.best_us / on.best_us - 1.0) * 100.0;
  state.counters["hit_rate_pct"] =
      hits + misses > 0 ? 100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses)
                        : 0.0;
  state.counters["certified_hits"] = static_cast<double>(on.stats.certified_hits);
  state.counters["certified_program_hits"] =
      static_cast<double>(on.stats.certified_program_hits);
  state.counters["epoch_hits"] = static_cast<double>(on.stats.hits + on.stats.program_hits);
  state.counters["virtual_us"] = ToUs(on.virtual_now);
}

// E2-shaped hot path: the allocation loop from bench_allocation — create, initialize, drop,
// repeat. Every instruction pays a program fetch and every operand access a translation.
void BM_XlatAllocHotPath(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  auto spawn = [count](System& system) {
    AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
    Assembler a("alloc-hot");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 2, 32)
        .StoreData(4, 0, 0, 8)
        .LoadData(3, 4, 0, 8)
        .ClearAd(4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
  };
  constexpr int kRepeats = 7;
  for (auto _ : state) {
    HotPathRun off;
    HotPathRun on;
    TimeHotPathPair(kRepeats, /*gc=*/false, spawn, &off, &on);
    ReportHotPath(state, off, on);
  }
  state.counters["allocations"] = count;
}
BENCHMARK(BM_XlatAllocHotPath)->Arg(4000)->Iterations(1);

// E6-shaped hot path: the churn loop from bench_gc — create, initialize, read back,
// republish; every store orphans the slot's old occupant, then a full collection reclaims
// the garbage with the mutator parked.
void BM_XlatChurnHotPath(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  auto spawn = [count](System& system) {
    AccessDescriptor carrier =
        MakeCarrier(system, {system.memory().global_heap(), AccessDescriptor()});
    Assembler a("churn-hot");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 2, 64);
    for (uint32_t off = 0; off < 64; off += 8) {
      a.StoreData(4, 0, off, 8);  // initialize the whole data part before publishing
    }
    a.LoadData(3, 4, 0, 8)
        .StoreAd(1, 4, 1)  // orphans the previous iteration's object
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
    IMAX_CHECK(system.RequestCollection().ok());
  };
  constexpr int kRepeats = 7;
  for (auto _ : state) {
    HotPathRun off;
    HotPathRun on;
    TimeHotPathPair(kRepeats, /*gc=*/true, spawn, &off, &on);
    ReportHotPath(state, off, on);
  }
  state.counters["allocations"] = count;
}
BENCHMARK(BM_XlatChurnHotPath)->Arg(3000)->Iterations(1);

// The auditor's contract, priced: an identical certified-reader run with the auditor off
// and on. The auditor is host-side bookkeeping hanging off certified hits, so the virtual
// clocks must agree to the cycle and the canned workload must audit clean.
void BM_XlatAuditObserver(benchmark::State& state) {
  constexpr uint32_t kIterations = 2000;
  Cycles clock[2] = {0, 0};
  uint64_t checked = 0;
  uint64_t certified = 0;
  for (auto _ : state) {
    for (int audit = 0; audit < 2; ++audit) {
      System system(CacheConfig(/*cache=*/true, audit != 0));
      auto shared = system.memory().CreateObject(system.memory().global_heap(),
                                                 SystemType::kGeneric, 64, 0,
                                                 rights::kRead | rights::kWrite);
      IMAX_CHECK(shared.ok());
      IMAX_CHECK(system.machine().addressing().WriteData(shared.value(), 0, 8, 5).ok());
      Assembler a("certified-reader");
      auto loop = a.NewLabel();
      a.MoveAd(1, kArgAdReg)
          .LoadImm(0, 0)
          .LoadImm(4, kIterations)
          .LoadImm(3, 0)
          .Bind(loop)
          .LoadData(2, 1, 0, 8)
          .Add(3, 3, 2)
          .AddImm(0, 0, 1)
          .BranchIfLess(0, 4, loop)
          .Halt();
      ProcessOptions options;
      options.initial_arg = shared.value();
      IMAX_CHECK(system.Spawn(a.Build(), options).ok());
      system.Run();
      clock[audit] = system.now();
      certified = system.kernel().xlat_stats().certified_hits;
      if (audit != 0) {
        const analysis::InterferenceAuditorStats& stats =
            system.kernel().interference_auditor()->stats();
        checked = stats.hits_checked;
        IMAX_CHECK(stats.violations == 0);
        IMAX_CHECK(system.kernel().stats().interference_violations == 0);
      }
    }
    IMAX_CHECK(clock[0] == clock[1]);
  }
  state.counters["virtual_us"] = ToUs(clock[1]);
  state.counters["virtual_delta_cycles"] =
      static_cast<double>(clock[1] > clock[0] ? clock[1] - clock[0] : clock[0] - clock[1]);
  state.counters["certified_hits"] = static_cast<double>(certified);
  state.counters["audited_hits"] = static_cast<double>(checked);
}
BENCHMARK(BM_XlatAuditObserver)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E18 — Guard-dominance analysis and the pre-validated decode cache (DESIGN.md §6.5).
//
// The decode cache claims three things worth pricing: (1) caching the decoded instruction
// vector removes the per-step program fetch + re-decode from the interpreter hot path,
// (2) the certified elision masks let the addressing unit skip statically proven rights and
// bounds checks on top of that, and (3) the guard auditor that re-executes every skipped
// check is a pure observer. Host wall-clock IS the result here — the cache exists to make
// the emulator faster — and the virtual clock is the invariant, not the metric: both
// configurations must reach the same cycle or the row is void.
//
// Rows reported:
//   - DecodeAllocHotPath : E2-shaped allocation loop, off={verify_on_load} vs
//                          on={verify_on_load, xlat_cache, decode_cache} — host best-of-N,
//                          speedup_pct, decode hit rate, elided executions; identical
//                          virtual makespans enforced
//   - DecodeChurnHotPath : E6-shaped churn-then-collect loop — same contract with the GC
//                          daemon resident
//   - DecodeAuditObserver: check-elided alloc run with the guard auditor off/on — the
//                          virtual-time delta must be exactly zero, every elision must be
//                          audited, and the auditor must stay silent

#include <chrono>

#include "bench/bench_util.h"
#include "src/analysis/guards/auditor.h"
#include "src/analysis/guards/guards.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

// off: the plain layered interpreter (verify-on-load only, so both sides pay the same
// load-time analysis). on: the full stacked fast path — certified AD translations plus
// pre-validated decode with check-elided execution.
SystemConfig CacheConfig(bool on, bool audit = false, bool gc = false) {
  SystemConfig config = DefaultConfig(1);
  config.verify_on_load = true;  // summaries (and elision certificates) land at spawn
  config.xlat_cache = on;
  config.decode_cache = on;
  config.guard_audit = audit;
  config.start_gc_daemon = gc;  // the churn row requests a collection mid-run
  return config;
}

struct HotPathRun {
  double best_us = 1e300;  // best-of-N host time for System::Run
  Cycles virtual_now = 0;
  DecodeCacheStats decode;
  uint64_t elisions = 0;
};

// Builds a fresh system per repeat, spawns the workload, and times only the interpreter
// run. Host timing on millisecond workloads is noisy; best-of-N discards scheduler
// interference instead of averaging it in.
template <typename SpawnFn>
void TimeHotPathOnce(bool on, bool gc, SpawnFn&& spawn, HotPathRun* result) {
  using Clock = std::chrono::steady_clock;
  System system(CacheConfig(on, /*audit=*/false, gc));
  if (gc) {
    system.Run();  // the collector daemon starts and parks before the workload spawns
  }
  spawn(system);
  auto t0 = Clock::now();
  system.Run();
  auto t1 = Clock::now();
  double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  result->best_us = std::min(result->best_us, us);
  result->virtual_now = system.now();
  result->decode = system.kernel().decode_stats();
  result->elisions = system.kernel().stats().guard_elisions;
}

// Repeats are interleaved off/on so a host-load drift during the run skews both
// configurations equally instead of poisoning one side's best-of-N.
template <typename SpawnFn>
void TimeHotPathPair(int repeats, bool gc, SpawnFn&& spawn, HotPathRun* off, HotPathRun* on) {
  for (int i = 0; i < repeats; ++i) {
    TimeHotPathOnce(/*on=*/false, gc, spawn, off);
    TimeHotPathOnce(/*on=*/true, gc, spawn, on);
  }
}

void ReportHotPath(benchmark::State& state, const HotPathRun& off, const HotPathRun& on) {
  // The decode cache is an observer of virtual time: both configurations must reach the
  // same cycle, or the cache participated in the simulation and the row is void.
  IMAX_CHECK(off.virtual_now == on.virtual_now);
  uint64_t probes = on.decode.hits + on.decode.misses;
  state.counters["host_ms_off"] = off.best_us / 1000.0;
  state.counters["host_ms_on"] = on.best_us / 1000.0;
  state.counters["speedup_pct"] = (off.best_us / on.best_us - 1.0) * 100.0;
  state.counters["decode_hit_rate_pct"] =
      probes > 0 ? 100.0 * static_cast<double>(on.decode.hits) / static_cast<double>(probes)
                 : 0.0;
  state.counters["guard_elisions"] = static_cast<double>(on.elisions);
  state.counters["virtual_us"] = ToUs(on.virtual_now);
}

// E2-shaped hot path: create, initialize, read back, drop, repeat. Every iteration's store
// and load sit in the create_object's dominance shadow, so the decode cache serves them
// check-elided on the fast path.
void BM_DecodeAllocHotPath(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  auto spawn = [count](System& system) {
    AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
    Assembler a("alloc-hot");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 2, 32)
        .StoreData(4, 0, 0, 8)
        .LoadData(3, 4, 0, 8)
        .ClearAd(4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
  };
  constexpr int kRepeats = 7;
  for (auto _ : state) {
    HotPathRun off;
    HotPathRun on;
    TimeHotPathPair(kRepeats, /*gc=*/false, spawn, &off, &on);
    ReportHotPath(state, off, on);
  }
  state.counters["allocations"] = count;
}
BENCHMARK(BM_DecodeAllocHotPath)->Arg(4000)->Iterations(1);

// E6-shaped hot path: create, initialize the whole data part, read back, republish; every
// store orphans the slot's old occupant, then a full collection reclaims the garbage with
// the mutator parked.
void BM_DecodeChurnHotPath(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  auto spawn = [count](System& system) {
    AccessDescriptor carrier =
        MakeCarrier(system, {system.memory().global_heap(), AccessDescriptor()});
    Assembler a("churn-hot");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 2, 64);
    for (uint32_t off = 0; off < 64; off += 8) {
      a.StoreData(4, 0, off, 8);  // initialize the whole data part before publishing
    }
    a.LoadData(3, 4, 0, 8)
        .StoreAd(1, 4, 1)  // orphans the previous iteration's object
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
    IMAX_CHECK(system.RequestCollection().ok());
  };
  constexpr int kRepeats = 7;
  for (auto _ : state) {
    HotPathRun off;
    HotPathRun on;
    TimeHotPathPair(kRepeats, /*gc=*/true, spawn, &off, &on);
    ReportHotPath(state, off, on);
  }
  state.counters["allocations"] = count;
}
BENCHMARK(BM_DecodeChurnHotPath)->Arg(3000)->Iterations(1);

// The auditor's contract, priced: an identical check-elided alloc run with the guard
// auditor off and on. The auditor is host-side bookkeeping hanging off elided executions,
// so the virtual clocks must agree to the cycle, every elision must be cross-checked, and
// the canned workload must audit clean.
void BM_DecodeAuditObserver(benchmark::State& state) {
  constexpr uint32_t kIterations = 2000;
  Cycles clock[2] = {0, 0};
  uint64_t elided = 0;
  uint64_t checked = 0;
  for (auto _ : state) {
    for (int audit = 0; audit < 2; ++audit) {
      System system(CacheConfig(/*on=*/true, audit != 0));
      AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
      Assembler a("elided-alloc");
      auto loop = a.NewLabel();
      a.MoveAd(1, kArgAdReg)
          .LoadAd(2, 1, 0)
          .LoadImm(0, 0)
          .LoadImm(1, kIterations)
          .Bind(loop)
          .CreateObject(4, 2, 32)
          .StoreData(4, 0, 0, 8)
          .LoadData(3, 4, 0, 8)
          .ClearAd(4)
          .AddImm(0, 0, 1)
          .BranchIfLess(0, 1, loop)
          .Halt();
      ProcessOptions options;
      options.initial_arg = carrier;
      IMAX_CHECK(system.Spawn(a.Build(), options).ok());
      system.Run();
      clock[audit] = system.now();
      elided = system.kernel().stats().guard_elisions;
      if (audit != 0) {
        const analysis::GuardAuditorStats& stats = system.kernel().guard_auditor()->stats();
        checked = stats.hits_checked;
        IMAX_CHECK(stats.hits_checked == elided);
        IMAX_CHECK(stats.violations == 0);
        IMAX_CHECK(system.kernel().stats().guard_violations == 0);
      }
    }
    IMAX_CHECK(clock[0] == clock[1]);
  }
  state.counters["virtual_us"] = ToUs(clock[1]);
  state.counters["virtual_delta_cycles"] =
      static_cast<double>(clock[1] > clock[0] ? clock[1] - clock[0] : clock[0] - clock[1]);
  state.counters["guard_elisions"] = static_cast<double>(elided);
  state.counters["audited_hits"] = static_cast<double>(checked);
}
BENCHMARK(BM_DecodeAuditObserver)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E3 — Multiprocessor scaling (paper §3).
//
// Claim: "With the bussing schemes designed for the 432, a factor of 10 in total processing
// power of a single 432 system is realizable."
//
// The experiment sweeps 1..16 GDPs over three workload mixes on a single-channel
// interconnect, then shows the effect of adding bus channels:
//   - ComputeHeavy : long microcoded operations, little memory traffic -> near-linear
//   - Mixed       : a realistic object-program mix -> saturates around the paper's factor
//   - BusHeavy    : memory-traffic dominated -> saturates early (the interconnect wall)
//   - Channels    : the mixed workload at 16 GDPs vs interconnect channel count
// Reported per row: speedup over 1 GDP, bus utilization, processor utilization.

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;

enum class Mix { kComputeHeavy, kMixed, kBusHeavy };

// One worker: `iterations` rounds of (compute burst + data-part traffic).
ProgramRef MakeWorker(Mix mix, int iterations) {
  Assembler a("worker");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)      // a1 = carrier
      .LoadAd(2, 1, 0)        // a2 = heap
      .CreateObject(3, 2, 512)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(iterations))
      .Bind(loop);
  switch (mix) {
    case Mix::kComputeHeavy:
      a.Compute(800);
      a.LoadData(2, 3, 0, 8);
      break;
    case Mix::kMixed:
      a.Compute(200);
      for (int i = 0; i < 4; ++i) {
        a.LoadData(2, 3, static_cast<uint32_t>(i * 8), 8);
        a.StoreData(3, 2, static_cast<uint32_t>(i * 8 + 64), 8);
      }
      break;
    case Mix::kBusHeavy:
      for (int i = 0; i < 10; ++i) {
        a.LoadData(2, 3, static_cast<uint32_t>(i * 8), 8);
        a.StoreData(3, 2, static_cast<uint32_t>(i * 8 + 128), 8);
      }
      break;
  }
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, loop).Halt();
  return a.Build();
}

struct ScalingResult {
  Cycles makespan = 0;
  double bus_utilization = 0;
  double processor_utilization = 0;
};

ScalingResult RunWorkload(int processors, int bus_channels, Mix mix, int workers,
                          int iterations) {
  SystemConfig config = DefaultConfig(processors);
  config.machine.bus_channels = bus_channels;
  System system(config);

  AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
  ProcessOptions options;
  options.initial_arg = carrier;
  for (int i = 0; i < workers; ++i) {
    auto process = system.Spawn(MakeWorker(mix, iterations), options);
    IMAX_CHECK(process.ok());
  }
  system.Run();

  ScalingResult result;
  result.makespan = system.now();
  result.bus_utilization = system.machine().bus().Utilization(system.now());
  Cycles busy = system.kernel().TotalBusyCycles();
  result.processor_utilization =
      static_cast<double>(busy) /
      (static_cast<double>(system.now()) * static_cast<double>(processors));
  return result;
}

void ScalingBench(benchmark::State& state, Mix mix) {
  int processors = static_cast<int>(state.range(0));
  constexpr int kWorkers = 32;
  constexpr int kIterations = 120;

  ScalingResult result;
  for (auto _ : state) {
    result = RunWorkload(processors, /*bus_channels=*/1, mix, kWorkers, kIterations);
  }
  ScalingResult baseline = RunWorkload(1, 1, mix, kWorkers, kIterations);

  state.counters["processors"] = processors;
  state.counters["speedup"] =
      static_cast<double>(baseline.makespan) / static_cast<double>(result.makespan);
  state.counters["bus_util"] = result.bus_utilization;
  state.counters["cpu_util"] = result.processor_utilization;
}

void BM_ComputeHeavy(benchmark::State& state) { ScalingBench(state, Mix::kComputeHeavy); }
void BM_Mixed(benchmark::State& state) { ScalingBench(state, Mix::kMixed); }
void BM_BusHeavy(benchmark::State& state) { ScalingBench(state, Mix::kBusHeavy); }

BENCHMARK(BM_ComputeHeavy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Iterations(1);
BENCHMARK(BM_Mixed)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Iterations(1);
BENCHMARK(BM_BusHeavy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Iterations(1);

// The bussing-scheme variable: same mixed workload on 16 GDPs, more interconnect channels.
void BM_MixedBusChannels(benchmark::State& state) {
  int channels = static_cast<int>(state.range(0));
  constexpr int kWorkers = 32;
  constexpr int kIterations = 120;
  ScalingResult result;
  for (auto _ : state) {
    result = RunWorkload(16, channels, Mix::kMixed, kWorkers, kIterations);
  }
  ScalingResult baseline = RunWorkload(1, 1, Mix::kMixed, kWorkers, kIterations);
  state.counters["bus_channels"] = channels;
  state.counters["speedup_at_16p"] =
      static_cast<double>(baseline.makespan) / static_cast<double>(result.makespan);
  state.counters["bus_util"] = result.bus_utilization;
}
BENCHMARK(BM_MixedBusChannels)->Arg(1)->Arg(2)->Arg(4)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

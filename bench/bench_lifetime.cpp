// E15 — Static lifetime analysis and GC-load demotion (DESIGN.md §6.3).
//
// The lifetime pass claims three things worth pricing: (1) the per-program summary is
// cheap enough to ride along with verify-on-load, (2) whole-system composition scales with
// program count, and (3) demotion moves reclamation out of the collector's cycle without
// touching allocation cost or virtual time — the dynamic auditor included, which must be a
// pure observer.
//
// Rows reported:
//   - LifetimeSummary      : per-program Phase 1 cost vs program size (host time)
//   - LifetimeCompose      : AnalyzeLifetimes() vs program count (host time)
//   - DemotionReclaimShift : allocate-heavy run, demote off/on — who reclaims, and the
//                            virtual makespan of each configuration
//   - AuditObserverCost    : same demoted run with the auditor off/on — the virtual-time
//                            delta must be exactly zero

#include "bench/bench_util.h"
#include "src/analysis/lifetime/lifetime.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kContainerBase = 100;

// Phase-1 options mirroring what the kernel seeds at load time: a resolvable carrier whose
// slot 1 is a long-lived container.
analysis::EffectOptions SyntheticOptions(ObjectIndex container) {
  analysis::EffectOptions options;
  options.initial_arg = AccessDescriptor(kCarrier, 1, rights::kAll);
  options.slot_reader = [container](ObjectIndex object, uint32_t slot) {
    if (object == kCarrier && slot == 1) {
      return AccessDescriptor(container, 1, rights::kAll);
    }
    return AccessDescriptor();
  };
  return options;
}

// Allocation-site-dense program: every trip allocates, stores into the container, and
// drops the register — exercising sites, heap cells, and the anomaly machinery.
ProgramRef BuildSiteProgram(uint32_t size) {
  Assembler a("sites");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadAd(3, 1, 1);
  while (a.here() + 4 < size) {
    a.CreateObject(4, 2, 16).StoreAd(3, 4, 0).ClearAd(4);
  }
  a.Halt();
  return a.Build();
}

void BM_LifetimeSummary(benchmark::State& state) {
  ProgramRef program = BuildSiteProgram(static_cast<uint32_t>(state.range(0)));
  analysis::EffectOptions options = SyntheticOptions(kContainerBase);
  uint64_t instructions = 0;
  for (auto _ : state) {
    analysis::LifetimeSummary summary = analysis::LifetimeAnalyzer::Analyze(*program, options);
    benchmark::DoNotOptimize(summary);
    instructions += program->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(instructions));
  state.counters["program_size"] = static_cast<double>(program->size());
}
BENCHMARK(BM_LifetimeSummary)->Arg(16)->Arg(128)->Arg(1024);

// `count` producer programs, each leaking one allocation into its own container; every
// fourth container also gets a reader program, so composition exercises both the leak
// report path and the read-back retraction.
void BM_LifetimeCompose(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  analysis::SystemEffectGraph graph;
  std::map<ObjectIndex, analysis::LifetimeSummary> lifetimes;
  ObjectIndex key = 1;
  for (int i = 0; i < count; ++i) {
    ObjectIndex container = kContainerBase + static_cast<ObjectIndex>(i);
    analysis::EffectOptions options = SyntheticOptions(container);
    Assembler producer("producer");
    producer.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .CreateObject(4, 2, 16)
        .StoreAd(3, 4, 0)
        .Halt();
    ProgramRef program = producer.Build();
    graph.AddProgram(key, analysis::EffectAnalyzer::Analyze(*program, options));
    lifetimes[key] = analysis::LifetimeAnalyzer::Analyze(*program, options);
    ++key;
    if (i % 4 == 0) {
      Assembler reader("reader");
      reader.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).LoadAd(4, 3, 0).Halt();
      ProgramRef read_program = reader.Build();
      graph.AddProgram(key, analysis::EffectAnalyzer::Analyze(*read_program, options));
      lifetimes[key] = analysis::LifetimeAnalyzer::Analyze(*read_program, options);
      ++key;
    }
  }
  uint64_t leaks = 0;
  uint64_t retracted = 0;
  for (auto _ : state) {
    analysis::LifetimeAnalysisReport report = analysis::AnalyzeLifetimes(graph, lifetimes);
    benchmark::DoNotOptimize(report);
    leaks = report.leaks.size();
    retracted = report.leaks_suppressed;
  }
  state.counters["programs"] = static_cast<double>(lifetimes.size());
  state.counters["leaks_reported"] = static_cast<double>(leaks);
  state.counters["leaks_retracted"] = static_cast<double>(retracted);
}
BENCHMARK(BM_LifetimeCompose)->Arg(8)->Arg(64)->Arg(512);

// The demotion-heavy workload used for the reclamation-shift rows: `count` context-local
// allocations, reference dropped each trip, then halt.
Result<AccessDescriptor> SpawnAllocLoop(System& system, int count) {
  AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
  Assembler a("alloc-loop");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(count))
      .Bind(loop)
      .CreateObject(4, 2, 32)
      .ClearAd(4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier;
  return system.Spawn(a.Build(), options);
}

SystemConfig DemoteConfig(bool demote, bool audit) {
  SystemConfig config = DefaultConfig(1);
  config.machine.object_table_capacity = 8192;
  config.start_gc_daemon = true;
  config.verify_on_load = true;
  config.lifetime_demote = demote;
  config.lifetime_audit = audit;
  config.demote_sro_bytes = 512 * 1024;
  return config;
}

// Reclamation shift: without demotion the dropped allocations are collector garbage;
// with demotion every one of them is bulk-reclaimed at context exit and the collector's
// cycle never sees them.
void BM_DemotionReclaimShift(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  double makespan_us[2] = {0, 0};
  uint64_t gc_reclaimed[2] = {0, 0};
  uint64_t bulk_reclaimed[2] = {0, 0};
  for (auto _ : state) {
    for (int demote = 0; demote < 2; ++demote) {
      System system(DemoteConfig(demote != 0, demote != 0));
      system.Run();  // daemon parks
      auto process = SpawnAllocLoop(system, count);
      IMAX_CHECK(process.ok());
      IMAX_CHECK(system.RequestCollection().ok());
      system.Run();
      makespan_us[demote] = ToUs(system.now());
      gc_reclaimed[demote] = system.gc().stats().objects_reclaimed;
      bulk_reclaimed[demote] = system.kernel().stats().demoted_bulk_reclaimed;
      IMAX_CHECK(system.kernel().stats().lifetime_violations == 0);
    }
  }
  state.counters["allocations"] = count;
  state.counters["makespan_full_us"] = makespan_us[0];
  state.counters["makespan_demoted_us"] = makespan_us[1];
  state.counters["gc_reclaimed_full"] = static_cast<double>(gc_reclaimed[0]);
  state.counters["gc_reclaimed_demoted"] = static_cast<double>(gc_reclaimed[1]);
  state.counters["bulk_reclaimed_demoted"] = static_cast<double>(bulk_reclaimed[1]);
}
BENCHMARK(BM_DemotionReclaimShift)->Arg(200)->Arg(800)->Iterations(1);

// The auditor's contract, priced: identical demoted run with the auditor off and on. The
// auditor is host-side bookkeeping only, so the virtual clocks must agree to the cycle.
void BM_AuditObserverCost(benchmark::State& state) {
  constexpr int kAllocations = 400;
  Cycles clock[2] = {0, 0};
  for (auto _ : state) {
    for (int audit = 0; audit < 2; ++audit) {
      System system(DemoteConfig(/*demote=*/true, audit != 0));
      system.Run();
      auto process = SpawnAllocLoop(system, kAllocations);
      IMAX_CHECK(process.ok());
      system.Run();
      clock[audit] = system.now();
    }
    IMAX_CHECK(clock[0] == clock[1]);
  }
  state.counters["virtual_us"] = ToUs(clock[1]);
  state.counters["virtual_delta_cycles"] =
      static_cast<double>(clock[1] > clock[0] ? clock[1] - clock[0] : clock[0] - clock[1]);
}
BENCHMARK(BM_AuditObserverCost)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

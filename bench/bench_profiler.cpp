// E17 — Cycle-attribution profiler and causal span tracing (DESIGN.md §7).
//
// The observability layer makes three claims this experiment prices and verifies:
//   (1) the profiler and span tracer are pure observers — arming both must not move the
//       virtual clock by a single cycle, and the host-time overhead must be modest;
//   (2) cycle attribution is gap-free — after FlushOpenIntervals, each GDP's per-bucket
//       sums equal its online time *exactly* (±0), on compute-bound, gc-heavy, and
//       port-heavy shapes alike;
//   (3) the span trees support end-to-end request-latency percentiles and a critical-path
//       chain whose dominant bucket names the serialized resource.
//
// Rows reported:
//   - ProfilerObserver    : 2-stage pipeline, observers off/on — identical virtual
//                           makespan (checked), host_ms_off/on, overhead_pct
//   - AttributionAlloc    : E2-shaped allocation loop — per-bucket composition,
//                           attribution_exact must be 1
//   - AttributionGc       : E6-shaped churn + full collection — kGc bucket must be
//                           populated (the daemon tag rebins collector cycles)
//   - RequestLatency      : multi-process producer/forwarder/consumer pipeline —
//                           p50/p99/p999/max end-to-end latency, roots, spans,
//                           dominant_bucket (index into CycleBucketName order)

#include <chrono>

#include "bench/bench_util.h"
#include "src/obs/critical_path.h"

namespace imax432 {
namespace {

using bench::DefaultConfig;
using bench::MakeCarrier;
using bench::ToUs;

SystemConfig ObserverConfig(int processors, bool observers, bool gc = false) {
  SystemConfig config = DefaultConfig(processors);
  config.profile = observers;
  config.span_trace = observers;
  config.start_gc_daemon = gc;
  return config;
}

// Flushes the profiler and checks the gap-free identity: every GDP's bucket sums must
// equal its online time exactly. Returns 1.0 when the attribution is exact on every GDP.
double AttributionExact(System& system) {
  CycleProfiler& profiler = system.machine().profiler();
  profiler.FlushOpenIntervals(system.now());
  for (uint16_t cpu = 0; cpu < profiler.cpus().size(); ++cpu) {
    Cycles online = system.now() - profiler.cpus()[cpu].epoch_start;
    if (profiler.CpuTotal(cpu) != online) {
      return 0.0;
    }
  }
  return 1.0;
}

// Reports every populated bucket (as cycles summed over all GDPs) plus the exactness bit.
void ReportBuckets(benchmark::State& state, System& system) {
  state.counters["attribution_exact"] = AttributionExact(system);
  CycleBucketArray totals = system.machine().profiler().Totals();
  Cycles total = 0;
  for (size_t b = 0; b < kCycleBucketCount; ++b) {
    total += totals[b];
    if (totals[b] != 0) {
      state.counters[std::string("cycles_") + CycleBucketName(static_cast<CycleBucket>(b))] =
          static_cast<double>(totals[b]);
    }
  }
  state.counters["cycles_attributed"] = static_cast<double>(total);
  state.counters["virtual_us"] = ToUs(system.now());
}

// Producer -> forwarder -> consumer pipeline: `producers` producers push `per_producer`
// messages each into stage A; one forwarder relays A -> B; one consumer drains B. Every
// message becomes a causal request tree rooted at its producer send.
void SpawnPipeline(System& system, int producers, int per_producer) {
  auto port_a = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                   QueueDiscipline::kFifo);
  auto port_b = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                   QueueDiscipline::kFifo);
  IMAX_CHECK(port_a.ok() && port_b.ok());
  AccessDescriptor carrier = MakeCarrier(
      system, {port_a.value(), port_b.value(), system.memory().global_heap()});
  int total = producers * per_producer;

  for (int p = 0; p < producers; ++p) {
    Assembler producer("producer");
    auto loop = producer.NewLabel();
    producer.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 2)
        .CreateObject(4, 3, 32)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(per_producer))
        .Bind(loop)
        .Send(2, 4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(producer.Build(), options).ok());
  }

  Assembler forwarder("forwarder");
  auto fwd_loop = forwarder.NewLabel();
  forwarder.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(total))
      .Bind(fwd_loop)
      .Receive(4, 2)
      .Send(3, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, fwd_loop)
      .Halt();
  ProcessOptions fwd_options;
  fwd_options.initial_arg = carrier;
  IMAX_CHECK(system.Spawn(forwarder.Build(), fwd_options).ok());

  Assembler consumer("consumer");
  auto con_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 1)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(total))
      .Bind(con_loop)
      .Receive(4, 2)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, con_loop)
      .Halt();
  ProcessOptions con_options;
  con_options.initial_arg = carrier;
  IMAX_CHECK(system.Spawn(consumer.Build(), con_options).ok());
}

// --- Row 1: pure-observer contract + host overhead --------------------------------------

// One timed pipeline run; returns host microseconds for System::Run and the final cycle.
double TimePipelineOnce(bool observers, Cycles* virtual_now) {
  using Clock = std::chrono::steady_clock;
  System system(ObserverConfig(4, observers));
  SpawnPipeline(system, /*producers=*/3, /*per_producer=*/200);
  auto t0 = Clock::now();
  system.Run();
  auto t1 = Clock::now();
  *virtual_now = system.now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void BM_ProfilerObserver(benchmark::State& state) {
  // Interleaved best-of-N, same rationale as the E16 cache rows: host load drifts skew
  // both configurations equally.
  constexpr int kRepeats = 7;
  for (auto _ : state) {
    double best_off = 1e300;
    double best_on = 1e300;
    Cycles now_off = 0;
    Cycles now_on = 0;
    for (int i = 0; i < kRepeats; ++i) {
      best_off = std::min(best_off, TimePipelineOnce(false, &now_off));
      best_on = std::min(best_on, TimePipelineOnce(true, &now_on));
    }
    // The observers must not participate in the simulation: identical virtual makespan
    // or the whole experiment is void.
    IMAX_CHECK(now_off == now_on);
    state.counters["host_ms_off"] = best_off / 1000.0;
    state.counters["host_ms_on"] = best_on / 1000.0;
    state.counters["overhead_pct"] = (best_on / best_off - 1.0) * 100.0;
    state.counters["virtual_us"] = ToUs(now_on);
  }
}
BENCHMARK(BM_ProfilerObserver)->Iterations(1);

// --- Row 2: gap-free attribution on a compute/allocation shape --------------------------

void BM_AttributionAlloc(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    System system(ObserverConfig(2, /*observers=*/true));
    AccessDescriptor carrier = MakeCarrier(system, {system.memory().global_heap()});
    Assembler a("alloc");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 2, 32)
        .StoreData(4, 0, 0, 8)
        .LoadData(3, 4, 0, 8)
        .ClearAd(4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
    system.Run();
    ReportBuckets(state, system);
    state.counters["hot_sites"] =
        static_cast<double>(system.machine().profiler().hot_sites().size());
    state.counters["samples_taken"] =
        static_cast<double>(system.machine().profiler().samples_taken());
  }
  state.counters["allocations"] = count;
}
BENCHMARK(BM_AttributionAlloc)->Arg(4000)->Iterations(1);

// --- Row 3: daemon rebinning on a gc-heavy shape ----------------------------------------

void BM_AttributionGc(benchmark::State& state) {
  int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    System system(ObserverConfig(2, /*observers=*/true, /*gc=*/true));
    system.Run();  // the collector daemon starts and parks before the workload spawns
    AccessDescriptor carrier =
        MakeCarrier(system, {system.memory().global_heap(), AccessDescriptor()});
    Assembler a("churn");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, static_cast<uint64_t>(count))
        .Bind(loop)
        .CreateObject(4, 2, 64)
        .StoreData(4, 0, 0, 8)
        .StoreAd(1, 4, 1)  // orphans the previous iteration's object
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
    IMAX_CHECK(system.RequestCollection().ok());
    system.Run();
    // A second collection after the mutator halts reclaims the orphans the first one
    // raced past; its cycles land in the same kGc bucket.
    IMAX_CHECK(system.RequestCollection().ok());
    system.Run();
    ReportBuckets(state, system);
    // The daemon tag must rebin the collector's interpreter cycles: a churn run that
    // reclaims thousands of objects with an idle kGc bucket means the tag is broken.
    IMAX_CHECK(system.machine().profiler().Totals()[static_cast<size_t>(
                   CycleBucket::kGc)] > 0);
    state.counters["objects_reclaimed"] =
        static_cast<double>(system.gc().stats().objects_reclaimed);
  }
  state.counters["churn_objects"] = count;
}
BENCHMARK(BM_AttributionGc)->Arg(3000)->Iterations(1);

// --- Row 4: request-latency percentiles + critical path ---------------------------------

void BM_RequestLatency(benchmark::State& state) {
  int per_producer = static_cast<int>(state.range(0));
  for (auto _ : state) {
    System system(ObserverConfig(4, /*observers=*/true));
    SpawnPipeline(system, /*producers=*/3, per_producer);
    system.Run();
    state.counters["attribution_exact"] = AttributionExact(system);
    SpanTracer& spans = system.machine().spans();
    spans.FlushOpen();
    CriticalPathReport report = AnalyzeCriticalPath(spans);
    state.counters["roots"] = static_cast<double>(report.roots);
    state.counters["spans"] = static_cast<double>(report.spans);
    state.counters["spans_dropped"] = static_cast<double>(report.dropped);
    state.counters["p50_us"] = ToUs(report.p50);
    state.counters["p99_us"] = ToUs(report.p99);
    state.counters["p999_us"] = ToUs(report.p999);
    state.counters["max_us"] = ToUs(report.max_latency);
    state.counters["critical_depth"] = static_cast<double>(report.longest_depth);
    // Index into the CycleBucketName order (0 = interpreter, 2 = bus_transfer, ...).
    state.counters["dominant_bucket"] = static_cast<double>(report.dominant);
    state.counters["virtual_us"] = ToUs(system.now());
  }
  state.counters["messages"] = 3.0 * per_producer;
}
BENCHMARK(BM_RequestLatency)->Arg(120)->Arg(400)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

// E14 — Fault recovery: retirement latency, degraded-mode throughput, device retry cost,
// patrol sweep cost.
//
// The paper's hardware provides "multiprocessing ... transparent to software" and iMAX's
// services survive partial hardware failure by recovery rather than by prevention: a dead
// GDP's in-flight process is re-queued at its dispatching port, a flaky swap device is
// retried with exponential backoff before the fault surfaces, and the object-table patrol
// quarantines corrupt objects instead of letting them propagate. This experiment prices
// those mechanisms in virtual time:
//   - recovery latency: GDP retirement to the orphaned process's next dispatch
//   - degraded throughput: fleet makespan as 0..3 of 4 GDPs retire mid-run
//   - device retry: makespan and backoff cycles added by transient transfer failures
//   - patrol sweep: virtual cost of one full descriptor sweep vs table population

#include "bench/bench_util.h"

namespace imax432 {
namespace {

using bench::ToUs;

SystemConfig FaultConfig(int processors, MemoryManagerKind kind) {
  SystemConfig config;
  config.processors = processors;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.memory_manager = kind;
  config.start_gc_daemon = false;
  config.trace = true;  // recovery latency is read off the event timeline
  return config;
}

// Compute-bound fleet: `workers` processes, each `iters` slices of 2000 cycles. Enough
// work per process that a retirement always catches some process mid-quantum.
void SpawnFleet(System& system, int workers, uint64_t iters) {
  for (int w = 0; w < workers; ++w) {
    Assembler a("fleet");
    auto loop = a.NewLabel();
    a.LoadImm(0, 0)
        .LoadImm(1, iters)
        .Bind(loop)
        .Compute(2000)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.imax_level = kImaxLevelServices;
    IMAX_CHECK(system.Spawn(a.Build(), options).ok());
  }
}

// Retires one GDP mid-run and reports the virtual latency from the kProcessorRetired event
// to the orphaned process's next dispatch on a surviving GDP.
void BM_RetirementRecoveryLatency(benchmark::State& state) {
  Cycles latency = 0;
  Cycles makespan = 0;
  uint64_t requeues = 0;
  for (auto _ : state) {
    System system(FaultConfig(2, MemoryManagerKind::kNonSwapping));
    SpawnFleet(system, /*workers=*/4, /*iters=*/400);
    System* sys = &system;
    system.machine().events().ScheduleAt(
        500'000, [sys] { (void)sys->kernel().RetireProcessor(0); });
    system.Run();

    Cycles retired_at = 0;
    uint32_t orphan = kTraceNoProcess;
    for (const TraceEvent& event : system.machine().trace().Snapshot()) {
      if (event.kind == TraceEventKind::kProcessorRetired) {
        retired_at = event.ts;
        orphan = event.process;
      } else if (event.kind == TraceEventKind::kDispatch && retired_at != 0 &&
                 event.process == orphan && event.ts >= retired_at) {
        latency = event.ts - retired_at;
        break;
      }
    }
    makespan = system.now();
    requeues = system.kernel().stats().retirement_requeues;
  }
  state.counters["recovery_latency_us"] = ToUs(latency);
  state.counters["makespan_ms"] = ToUs(makespan) / 1000.0;
  state.counters["requeues"] = static_cast<double>(requeues);
}
BENCHMARK(BM_RetirementRecoveryLatency)->Iterations(1);

// Fleet makespan with k of 4 GDPs retiring early: graceful degradation, not a cliff. The
// k = 0 row is the baseline; throughput degrades roughly as 4/(4-k).
void BM_DegradedThroughput(benchmark::State& state) {
  int retire = static_cast<int>(state.range(0));
  Cycles makespan = 0;
  int survivors = 0;
  for (auto _ : state) {
    System system(FaultConfig(4, MemoryManagerKind::kNonSwapping));
    SpawnFleet(system, /*workers=*/8, /*iters=*/400);
    System* sys = &system;
    for (int i = 0; i < retire; ++i) {
      system.machine().events().ScheduleAt(
          300'000 + static_cast<Cycles>(i) * 100'000,
          [sys, i] { (void)sys->kernel().RetireProcessor(static_cast<uint16_t>(i)); });
    }
    system.Run();
    makespan = system.now();
    survivors = system.kernel().active_processor_count();
  }
  state.counters["retired"] = retire;
  state.counters["survivors"] = survivors;
  state.counters["makespan_ms"] = ToUs(makespan) / 1000.0;
}
BENCHMARK(BM_DegradedThroughput)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1);

// A swapping working-set sweep (16 KB objects through 256 KB of memory) with transient
// device failures injected on a timer. The delta against the zero-failure baseline is the
// backoff tax; device_errors stays zero because every burst fits the retry budget.
Cycles RunDeviceWorkload(bool inject, uint64_t* retries, uint64_t* errors) {
  SystemConfig config = FaultConfig(1, MemoryManagerKind::kSwapping);
  config.machine.memory_bytes = 256 * 1024;
  config.machine.object_table_capacity = 4096;
  System system(config);
  auto& memory = system.memory();

  constexpr int kObjects = 20;  // 320 KB working set: forced evictions
  auto holder = system.memory().CreateObject(
      memory.global_heap(), SystemType::kGeneric, 8, kObjects + 1,
      rights::kRead | rights::kWrite);
  IMAX_CHECK(holder.ok());
  IMAX_CHECK(system.machine()
                 .addressing()
                 .WriteAd(holder.value(), kObjects, memory.global_heap())
                 .ok());

  Assembler a("device-sweep");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, kObjects);
  auto alloc_loop = a.NewLabel();
  a.LoadImm(0, 0).LoadImm(1, kObjects).Bind(alloc_loop);
  a.CreateObject(3, 2, 16 * 1024);
  a.StoreAdIndexed(1, 3, 0);
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, alloc_loop);
  auto pass_loop = a.NewLabel();
  auto touch_loop = a.NewLabel();
  a.LoadImm(2, 0).LoadImm(3, 3).Bind(pass_loop);
  a.LoadImm(0, 0).Bind(touch_loop);
  a.LoadAdIndexed(3, 1, 0);
  a.LoadData(4, 3, 0, 8);
  a.AddImm(0, 0, 1).BranchIfLess(0, 1, touch_loop);
  a.AddImm(2, 2, 1).BranchIfLess(2, 3, pass_loop);
  a.Halt();

  ProcessOptions options;
  options.initial_arg = holder.value();
  options.imax_level = kImaxLevelServices;
  IMAX_CHECK(system.Spawn(a.Build(), options).ok());

  if (inject) {
    auto* swap = static_cast<SwappingMemoryManager*>(&memory);
    for (Cycles t = 200'000; t < 4'000'000; t += 400'000) {
      system.machine().events().ScheduleAt(t, [swap] {
        swap->mutable_backing_store().InjectTransientFailures(2);
      });
    }
  }
  system.Run();
  *retries = system.memory().stats().device_retries;
  *errors = system.memory().stats().device_errors;
  return system.now();
}

void BM_DeviceRetryCost(benchmark::State& state) {
  Cycles baseline = 0;
  Cycles injected = 0;
  uint64_t retries = 0;
  uint64_t errors = 0;
  for (auto _ : state) {
    uint64_t ignored_retries = 0;
    uint64_t ignored_errors = 0;
    baseline = RunDeviceWorkload(false, &ignored_retries, &ignored_errors);
    injected = RunDeviceWorkload(true, &retries, &errors);
  }
  state.counters["baseline_ms"] = ToUs(baseline) / 1000.0;
  state.counters["injected_ms"] = ToUs(injected) / 1000.0;
  state.counters["retry_tax_ms"] =
      ToUs(injected >= baseline ? injected - baseline : 0) / 1000.0;
  state.counters["device_retries"] = static_cast<double>(retries);
  state.counters["device_errors"] = static_cast<double>(errors);
}
BENCHMARK(BM_DeviceRetryCost)->Iterations(1);

// One full patrol sweep (daemon-driven, in virtual time) over a table with N live generic
// objects. Cost scales with descriptors scanned plus data CRC'd.
void BM_PatrolSweepCost(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  Cycles sweep_time = 0;
  uint64_t scanned = 0;
  uint64_t work_units = 0;
  for (auto _ : state) {
    SystemConfig config = FaultConfig(1, MemoryManagerKind::kNonSwapping);
    config.machine.memory_bytes = 8 * 1024 * 1024;
    config.start_patrol_daemon = true;
    System system(config);
    for (int i = 0; i < objects; ++i) {
      IMAX_CHECK(system.memory()
                     .CreateObject(system.memory().global_heap(), SystemType::kGeneric,
                                   256, 0, rights::kRead | rights::kWrite)
                     .ok());
    }
    IMAX_CHECK(system.RequestPatrolSweep().ok());
    system.Run();
    sweep_time = system.now();
    scanned = system.patrol().stats().descriptors_scanned;
    work_units = system.patrol().work_units();
  }
  state.counters["objects"] = objects;
  state.counters["sweep_ms"] = ToUs(sweep_time) / 1000.0;
  state.counters["descriptors_scanned"] = static_cast<double>(scanned);
  state.counters["work_units"] = static_cast<double>(work_units);
}
BENCHMARK(BM_PatrolSweepCost)->Arg(64)->Arg(256)->Arg(1024)->Iterations(1);

}  // namespace
}  // namespace imax432

IMAX_BENCH_MAIN()

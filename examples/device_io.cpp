// device_io: device-independent I/O across three device implementations (§6.3).
//
// One client routine drives a console, a tape drive and a disk through the identical
// device-independent interface — there is no central device table or I/O controller; each
// device is its own package instance reached through its request port. The example then
// uses the device-dependent superset (tape mount/rewind, disk seek, console bell) through
// the very same ports, and finishes by creating a *new* device implementation at "runtime"
// without touching any system code.

#include <cstdio>
#include <cstring>

#include "src/io/devices.h"
#include "src/os/system.h"

using namespace imax432;

namespace {

// A user-written device implementation: a FIFO "pipe" device, created without modifying any
// system code — the §6.3 extensibility claim.
class PipeDevice : public DeviceModel {
 public:
  const char* kind() const override { return "pipe"; }

  IoOutcome Read(uint32_t, uint8_t* out, uint32_t length) override {
    IoOutcome outcome;
    outcome.actual = std::min<uint32_t>(length, static_cast<uint32_t>(fifo_.size()));
    std::memcpy(out, fifo_.data(), outcome.actual);
    fifo_.erase(fifo_.begin(), fifo_.begin() + outcome.actual);
    outcome.cost = outcome.actual * 8;
    if (outcome.actual < length) {
      outcome.status = io_status::kEndOfMedium;
    }
    return outcome;
  }

  IoOutcome Write(uint32_t, const uint8_t* in, uint32_t length) override {
    IoOutcome outcome;
    fifo_.insert(fifo_.end(), in, in + length);
    outcome.actual = length;
    outcome.cost = length * 8;
    return outcome;
  }

  IoOutcome Control(uint8_t, uint32_t) override {
    IoOutcome outcome;
    outcome.status = io_status::kBadOperation;  // the minimal subset only
    return outcome;
  }

  uint64_t StatusWord() const override { return fifo_.size(); }

 private:
  std::vector<uint8_t> fifo_;
};

}  // namespace

int main() {
  SystemConfig config;
  config.processors = 2;
  System system(config);
  auto& kernel = system.kernel();
  auto& memory = system.memory();

  // Bring up the device instances.
  TapeDevice::VolumeLibrary volumes;
  auto console_model = std::make_unique<ConsoleDevice>();
  ConsoleDevice* console = console_model.get();
  auto console_server = DeviceServer::Spawn(&kernel, std::move(console_model));
  auto tape_server = DeviceServer::Spawn(&kernel, std::make_unique<TapeDevice>(&volumes));
  auto disk_server = DeviceServer::Spawn(&kernel, std::make_unique<DiskDevice>());
  auto pipe_server = DeviceServer::Spawn(&kernel, std::make_unique<PipeDevice>());
  if (!console_server.ok() || !tape_server.ok() || !disk_server.ok() || !pipe_server.ok()) {
    return 1;
  }
  system.Run();  // servers park at their request ports

  IoClient client(&kernel);
  auto buffer = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 256, 0,
                                    rights::kRead | rights::kWrite);
  if (!buffer.ok()) {
    return 1;
  }

  // Prepare the tape (device-dependent op through the same port as everything else).
  (void)client.Control(tape_server.value()->request_port(), io_op::kMount, /*volume=*/3);

  // --- The device-independent loop: identical client code for all four devices ---
  const char* payload = "device independence!";
  uint32_t payload_length = static_cast<uint32_t>(std::strlen(payload));
  (void)system.machine().addressing().WriteDataBlock(buffer.value(), 0, payload,
                                                     payload_length);

  struct Target {
    const char* name;
    AccessDescriptor port;
  } targets[] = {
      {"console", console_server.value()->request_port()},
      {"tape", tape_server.value()->request_port()},
      {"disk", disk_server.value()->request_port()},
      {"pipe", pipe_server.value()->request_port()},
  };

  std::printf("%-10s %-8s %-8s %-14s\n", "device", "write", "read", "status word");
  for (const Target& target : targets) {
    auto write = client.Transfer(target.port, io_op::kWrite, 0, buffer.value(),
                                 payload_length);
    // Rewind block devices so the read starts where the write did; the console and pipe
    // ignore positioning entirely — same calls, device-specific meaning.
    (void)client.Control(target.port, io_op::kSeek, 0);
    auto read = client.Transfer(target.port, io_op::kRead, 0, buffer.value(),
                                payload_length);
    auto status = client.Control(target.port, io_op::kStatus, 0);
    std::printf("%-10s %-8s %-8s %llu\n", target.name,
                write.ok() && write.value().status == io_status::kOk ? "ok" : "err",
                read.ok() ? "ok" : "err",
                status.ok() ? static_cast<unsigned long long>(status.value().value) : 0ull);
  }

  // --- Device-dependent superset ---
  std::printf("\ndevice-dependent operations through the same ports:\n");
  auto bell = client.Control(console_server.value()->request_port(), io_op::kBell, 0);
  std::printf("  console bell: %s (%u rings)\n",
              bell.ok() && bell.value().status == io_status::kOk ? "ok" : "err",
              console->bells());
  auto rewind = client.Control(tape_server.value()->request_port(), io_op::kRewind, 0);
  std::printf("  tape rewind: %s\n",
              rewind.ok() && rewind.value().status == io_status::kOk ? "ok" : "err");
  auto seek = client.Control(disk_server.value()->request_port(), io_op::kSeek, 65536);
  std::printf("  disk seek to 64K: %s\n",
              seek.ok() && seek.value().status == io_status::kOk ? "ok" : "err");
  // And an operation outside a device's repertoire is cleanly rejected:
  auto bad = client.Control(pipe_server.value()->request_port(), io_op::kRewind, 0);
  std::printf("  pipe rewind: %s (pipes implement only the common subset)\n",
              bad.ok() && bad.value().status == io_status::kBadOperation ? "rejected"
                                                                         : "unexpected");

  std::printf("\nconsole transcript: \"%s\"\n", console->output().c_str());
  std::printf("virtual time elapsed: %.2f ms (device latencies are real in this system)\n",
              cycles::ToMicroseconds(system.now()) / 1000.0);
  return 0;
}

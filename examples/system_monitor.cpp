// system_monitor: a maintenance/operations view of a loaded system.
//
// Runs a mixed workload (compute tasks, a message pipeline, allocation churn) on a
// 4-processor system under memory pressure with the swapping manager, sampling the
// introspection package at intervals: object census by type, per-GDP utilization, bus load,
// kernel and memory counters — the operator's view of a live iMAX machine.

#include <cstdio>

#include "src/os/introspection.h"
#include "src/os/system.h"

using namespace imax432;

int main() {
  SystemConfig config;
  config.processors = 4;
  config.machine.memory_bytes = 1536 * 1024;
  config.memory_manager = MemoryManagerKind::kSwapping;
  System system(config);
  Introspection monitor(&system.kernel());
  monitor.AttachGc(&system.gc());

  std::printf("=== boot ===\n%s\n", Introspection::Format(monitor.Report()).c_str());

  // Workload 1: compute tasks.
  for (int i = 0; i < 6; ++i) {
    Assembler a("cruncher");
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, 300).Bind(loop).Compute(900).AddImm(0, 0, 1).BranchIfLess(
        0, 1, loop);
    a.Halt();
    if (!system.Spawn(a.Build()).ok()) {
      return 1;
    }
  }

  // Workload 2: a producer/consumer pair.
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                 QueueDiscipline::kFifo);
  if (!port.ok()) {
    return 1;
  }
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  {
    Assembler producer("producer");
    auto loop = producer.NewLabel();
    producer.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .LoadImm(0, 0)
        .LoadImm(1, 200)
        .Bind(loop)
        .CreateObject(4, 3, 128)
        .Send(2, 4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    Assembler consumer("consumer");
    auto loop2 = consumer.NewLabel();
    consumer.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, 200)
        .Bind(loop2)
        .Receive(4, 2)
        .Compute(300)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop2)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    if (!system.Spawn(consumer.Build(), options).ok() ||
        !system.Spawn(producer.Build(), options).ok()) {
      return 1;
    }
  }

  // Workload 3: allocation churn under memory pressure (exercises the swapping manager).
  {
    Assembler churner("churner");
    auto loop = churner.NewLabel();
    churner.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 1)
        .LoadImm(0, 0)
        .LoadImm(1, 40)
        .Bind(loop)
        .CreateObject(3, 2, 32 * 1024)
        .LoadImm(4, 7)
        .StoreData(3, 4, 0, 8)
        .ClearAd(3)  // drop it: garbage under pressure
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    if (!system.Spawn(churner.Build(), options).ok()) {
      return 1;
    }
  }

  // Sample the system a few times while it runs.
  for (int sample = 1; sample <= 3; ++sample) {
    system.RunUntil(system.now() + 400000);  // 50 virtual ms per sample window
    std::printf("=== sample %d ===\n%s\n", sample,
                Introspection::Format(monitor.Report()).c_str());
  }

  system.Run();
  (void)system.RequestCollection();
  system.Run();
  std::printf("=== after completion + gc ===\n%s\n",
              Introspection::Format(monitor.Report()).c_str());

  SystemReport final_report = monitor.Report();
  bool healthy = final_report.kernel.panics == 0;
  std::printf("monitor done: %s\n", healthy ? "system healthy" : "PANICS OBSERVED");
  return healthy ? 0 : 1;
}

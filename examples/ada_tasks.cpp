// ada_tasks: the Ada task and lifetime model mapped onto the 432 process-memory model (§5).
//
// Demonstrates, in one scenario:
//   - a task tree (parent process with child tasks), controlled as a unit by nested
//     start/stop through the basic process manager;
//   - local heaps: a subprogram creates a local SRO, allocates from it, and the heap is
//     destroyed automatically at scope exit — no dangling references are possible because
//     the level rule already prevented any escaping store;
//   - the lifetime rule itself: a deliberate attempt to store a local object into a global
//     container faults with kLevelViolation, which is exactly Ada's accessibility rule
//     enforced by hardware.

#include <cstdio>

#include "src/os/system.h"

using namespace imax432;

int main() {
  SystemConfig config;
  config.processors = 2;
  System system(config);
  auto& kernel = system.kernel();
  auto& memory = system.memory();
  auto& manager = system.process_manager();

  // =========================================================================
  // Part 1: a task tree controlled as a unit.
  // =========================================================================
  std::printf("--- part 1: task trees with nested start/stop ---\n");

  auto make_worker = [] {
    Assembler a("worker-task");
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, 2000).Bind(loop).Compute(200).AddImm(0, 0, 1).BranchIfLess(
        0, 1, loop);
    a.Halt();
    return a.Build();
  };

  auto parent = manager.Create(make_worker(), {});
  if (!parent.ok()) {
    return 1;
  }
  for (int i = 0; i < 3; ++i) {
    ProcessOptions options;
    options.parent = parent.value();
    if (!manager.Create(make_worker(), options).ok()) {
      return 1;
    }
  }
  std::printf("task tree size: %u (parent + 3 children)\n",
              manager.TreeSize(parent.value()).value());

  (void)manager.Start(parent.value());
  system.RunUntil(system.now() + 100000);
  (void)manager.Stop(parent.value());
  system.Run();

  uint64_t frozen_consumed = 0;
  (void)manager.VisitTree(parent.value(), [&](const AccessDescriptor& node) {
    frozen_consumed += kernel.process_view(node).consumed();
  });
  system.RunUntil(system.now() + 100000);
  uint64_t still_frozen = 0;
  (void)manager.VisitTree(parent.value(), [&](const AccessDescriptor& node) {
    still_frozen += kernel.process_view(node).consumed();
  });
  std::printf("one Stop froze the whole tree: consumed %llu -> %llu cycles while stopped\n",
              static_cast<unsigned long long>(frozen_consumed),
              static_cast<unsigned long long>(still_frozen));

  (void)manager.Start(parent.value());
  system.Run();
  std::printf("one Start released it; all tasks terminated\n\n");

  // =========================================================================
  // Part 2: local heaps die at scope exit.
  // =========================================================================
  std::printf("--- part 2: local heaps reclaimed at scope exit ---\n");

  // Callee: declare a local access type (create a local SRO), allocate three objects from
  // it, use them, and just return. No cleanup code.
  Assembler callee("scope-with-local-heap");
  callee.MoveAd(1, kArgAdReg)  // a1 = global heap (passed as the call argument)
      .CreateSro(2, 1, 8192)   // "declare type T is access ...;" at this depth
      .CreateObject(3, 2, 128)
      .CreateObject(4, 2, 128)
      .CreateObject(5, 2, 128)
      .LoadImm(0, 99)
      .StoreData(3, 0, 0, 8)   // use the locals
      .ClearAd(7)
      .Return();               // scope exit: the heap and its objects vanish here
  auto segment = kernel.programs().Register(callee.Build());
  auto domain = kernel.CreateDomain({segment.value()});
  if (!segment.ok() || !domain.ok()) {
    return 1;
  }

  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 8, 2,
                                     rights::kRead | rights::kWrite);
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, domain.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1, memory.global_heap());

  Assembler caller("caller");
  caller.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)  // a2 = domain
      .LoadAd(7, 1, 1)  // a7 = heap (argument)
      .Call(2, 0)
      .Halt();
  MemoryStats before = memory.stats();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = system.Spawn(caller.Build(), options);
  system.Run();
  MemoryStats after = memory.stats();
  std::printf("callee created a local heap + 3 objects; on return the system bulk-reclaimed "
              "%llu objects\n(no garbage collection involved: \"collected more efficiently "
              "whenever their ancestral SRO is destroyed\")\n\n",
              static_cast<unsigned long long>(after.bulk_reclaimed_objects -
                                              before.bulk_reclaimed_objects));
  (void)process;

  // =========================================================================
  // Part 3: the lifetime (accessibility) rule, enforced by hardware.
  // =========================================================================
  std::printf("--- part 3: the level rule faults escaping stores ---\n");

  Assembler escape("escaping-store");
  escape.MoveAd(1, kArgAdReg)  // a1 = carrier (global, level 0)
      .LoadAd(2, 1, 1)         // a2 = global heap
      .CreateSro(3, 2, 4096)   // local heap at this activation's depth
      .CreateObject(4, 3, 64)  // a local object
      .StoreAd(1, 4, 1)        // try to store it into the global carrier: must fault
      .Halt();
  auto escaping = system.Spawn(escape.Build(), options);
  system.Run();
  ProcessView view = kernel.process_view(escaping.value());
  std::printf("storing a local object into a global container: fault = %s\n",
              FaultName(view.fault_code()));
  std::printf("(Ada's accessibility rule, enforced at 'store' time by the addressing unit)\n");

  return view.fault_code() == Fault::kLevelViolation ? 0 : 1;
}

// quickstart: boot a two-processor iMAX-432 system, run a pair of communicating processes,
// and request a garbage collection.
//
// This is the smallest end-to-end tour of the public API:
//   1. configure and construct a System (boot),
//   2. create a typed port,
//   3. assemble two small programs (a producer and a consumer),
//   4. spawn them as processes and run the machine in virtual time,
//   5. inspect the results and ask the GC daemon for a cycle.

#include <cstdio>

#include "src/os/system.h"

using namespace imax432;

int main() {
  // 1. Boot: 2 GDPs, non-swapping memory manager (the first-release configuration).
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  System system(config);
  std::printf("booted: %d processors, %u bytes of memory, object table capacity %u\n",
              system.kernel().processor_count(), system.machine().memory().size(),
              system.machine().table().capacity());

  // 2. A port for the two processes to communicate through. Typed ports give compile-time
  //    checking with code identical to the untyped package (paper §4).
  struct WorkItem {};
  TypedPorts<WorkItem> work_ports(&system.kernel());
  auto port = work_ports.Create(/*message_count=*/8);
  if (!port.ok()) {
    std::printf("port creation failed: %s\n", FaultName(port.fault()));
    return 1;
  }

  // A carrier object hands the port and the global heap to both processes.
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 2,
                                              rights::kRead | rights::kWrite);
  if (!carrier.ok()) {
    return 1;
  }
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value().ad);
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());

  // 3a. Producer: create 10 message objects, stamp each with its sequence number, send.
  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)  // a1 = carrier
      .LoadAd(2, 1, 0)           // a2 = port
      .LoadAd(3, 1, 1)           // a3 = global heap
      .LoadImm(0, 0)             // r0 = i
      .LoadImm(1, 10)            // r1 = bound
      .Bind(send_loop)
      .CreateObject(4, 3, 32)    // a4 = fresh message object
      .StoreData(4, 0, 0, 8);    // message.data[0] = i
  TypedPorts<WorkItem>::EmitSend(producer, 2, 4);  // the single send instruction, inlined
  producer.AddImm(0, 0, 1).BranchIfLess(0, 1, send_loop).Halt();

  // 3b. Consumer: receive 10 messages, accumulate their stamps, store the sum in the
  //     carrier so the host can read it.
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 10)
      .LoadImm(2, 0);  // r2 = sum
  consumer.Bind(recv_loop);
  TypedPorts<WorkItem>::EmitReceive(consumer, 4, 2);
  consumer.LoadData(3, 4, 0, 8)
      .Add(2, 2, 3)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .StoreData(1, 2, 0, 8)  // carrier.data[0] = sum
      .Halt();

  // 4. Spawn and run.
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto consumer_process = system.Spawn(consumer.Build(), options);
  auto producer_process = system.Spawn(producer.Build(), options);
  if (!consumer_process.ok() || !producer_process.ok()) {
    return 1;
  }
  system.Run();

  // 5. Results.
  auto sum = system.machine().addressing().ReadData(carrier.value(), 0, 8);
  std::printf("consumer observed sum 0+1+...+9 = %llu (expected 45)\n",
              static_cast<unsigned long long>(sum.value()));
  std::printf("virtual time: %.1f us; instructions executed: %llu; dispatches: %llu\n",
              cycles::ToMicroseconds(system.now()),
              static_cast<unsigned long long>(system.kernel().stats().instructions_executed),
              static_cast<unsigned long long>(system.kernel().stats().dispatches));

  // The 10 message objects are now garbage; ask the collector daemon for a cycle.
  uint32_t live_before = system.machine().table().live_count();
  (void)system.RequestCollection();
  system.Run();
  std::printf("gc: %u live objects -> %u (reclaimed %llu so far)\n", live_before,
              system.machine().table().live_count(),
              static_cast<unsigned long long>(system.gc().stats().objects_reclaimed));

  std::printf("quickstart complete at %.1f virtual ms\n",
              cycles::ToMicroseconds(system.now()) / 1000.0);
  return sum.ok() && sum.value() == 45 ? 0 : 1;
}

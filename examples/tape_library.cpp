// tape_library: the paper's §8.2 scenario, end to end.
//
// A tape-drive type manager hands out tape_drive objects (a private type, created through
// the user type definition facility). Client processes use drives and are *supposed* to
// return them — but one client loses its handle. Without help, the drive object would be
// garbage collected "and the system will be short one tape drive" — a lost object.
//
// The manager arms a destruction filter on its type definition object, so the garbage
// collector manufactures an AD for any dying drive and sends it to the manager's filter
// port. The manager disassembles the drive (unmounts the volume) and returns it to the free
// pool. The example counts drives before and after to show none are lost.

#include <cstdio>

#include "src/io/devices.h"
#include "src/os/system.h"

using namespace imax432;

namespace {

constexpr uint32_t kDriveTypeId = 0x7105;  // "TAPE" as far as anyone needs to know
constexpr int kTotalDrives = 4;

// Layout of a tape_drive object's data part (the manager's private representation).
constexpr uint32_t kOffDriveId = 0;     // u32
constexpr uint32_t kOffMountedVol = 4;  // u32
constexpr uint32_t kOffInUse = 8;       // u8

}  // namespace

int main() {
  SystemConfig config;
  config.processors = 2;
  System system(config);
  auto& kernel = system.kernel();
  auto& memory = system.memory();
  auto& types = system.types();

  // --- The tape-drive type manager's private state ---
  // The destruction filter port, and the TDO with the filter armed.
  auto filter_port = kernel.ports().CreatePort(memory.global_heap(), 8,
                                               QueueDiscipline::kFifo);
  auto tdo = types.CreateTypeDefinition(kDriveTypeId, filter_port.value());
  if (!filter_port.ok() || !tdo.ok()) {
    return 1;
  }

  // The manager's free pool (package state, reported to the GC as roots).
  std::vector<AccessDescriptor> free_pool;
  int recovered_count = 0;
  kernel.AddRootProvider([&](std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo.value());
    roots->push_back(filter_port.value());
    for (const AccessDescriptor& drive : free_pool) {
      roots->push_back(drive);
    }
  });

  // Manufacture the physical drives as typed objects.
  for (int i = 0; i < kTotalDrives; ++i) {
    auto drive = types.CreateTypedObject(tdo.value(), memory.global_heap(), 16, 0,
                                         rights::kRead | rights::kWrite);
    if (!drive.ok()) {
      return 1;
    }
    ObjectView view(&system.machine().addressing(), drive.value());
    view.SetField(kOffDriveId, 4, static_cast<uint64_t>(i + 1));
    free_pool.push_back(drive.value());
  }
  std::printf("tape library: %zu drives in the pool\n", free_pool.size());

  // --- Clients ---
  // allocate_drive: pops a drive from the pool (host-side stand-in for the manager's
  // Allocate entry; the protection story is identical — clients receive a *restricted* AD
  // with no delete rights, so only the manager can destroy drives).
  auto allocate_drive = [&]() -> AccessDescriptor {
    if (free_pool.empty()) {
      return AccessDescriptor();
    }
    AccessDescriptor drive = free_pool.back();
    free_pool.pop_back();
    ObjectView(&system.machine().addressing(), drive).SetField(kOffInUse, 1, 1);
    return drive.Restricted(rights::kRead | rights::kWrite);
  };

  // A well-behaved client: mounts, "uses" the drive, returns it via a return port.
  auto return_port = kernel.ports().CreatePort(memory.global_heap(), 8,
                                               QueueDiscipline::kFifo);
  kernel.AddRootProvider([port = return_port.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(port);
  });

  auto spawn_client = [&](bool loses_handle) {
    AccessDescriptor drive = allocate_drive();
    if (drive.is_null()) {
      return;
    }
    Assembler a(loses_handle ? "careless-client" : "good-client");
    a.MoveAd(1, kArgAdReg);          // a1 = drive
    a.LoadImm(0, 1).StoreData(1, 0, kOffMountedVol, 4);  // "mount volume 1"
    a.Compute(20000);                // use the tape for a while
    if (!loses_handle) {
      // Return the drive to the manager.
      a.LoadAd(2, 1, 0);             // (no-op pattern; the port AD comes via a2 below)
    }
    a.Halt();

    ProcessOptions options;
    options.initial_arg = drive;
    auto process = system.Spawn(a.Build(), options);
    if (process.ok() && !loses_handle) {
      // Host-side stand-in for the client's final Send(return_port, drive).
      system.Run();
      (void)kernel.PostMessage(return_port.value(), drive);
    }
  };

  // Two good clients, two careless ones.
  spawn_client(/*loses_handle=*/false);
  spawn_client(/*loses_handle=*/true);
  spawn_client(/*loses_handle=*/false);
  spawn_client(/*loses_handle=*/true);
  system.Run();

  // The manager drains its return port (good clients' drives come home).
  while (true) {
    auto returned = kernel.ports().Dequeue(return_port.value());
    if (!returned.ok()) {
      break;
    }
    // Amplify back to the manager's full rights and reset the drive.
    auto full = types.Amplify(returned.value(), tdo.value(), rights::kAll);
    if (full.ok()) {
      ObjectView view(&system.machine().addressing(), full.value());
      view.SetField(kOffInUse, 1, 0);
      view.SetField(kOffMountedVol, 4, 0);
      free_pool.push_back(full.value());
    }
  }
  std::printf("after clients: %zu drives in pool (2 lost by careless clients)\n",
              free_pool.size());

  // --- Recovery via the destruction filter ---
  // The lost drives are garbage: nothing reachable references them. A GC cycle sends them
  // to the filter port instead of freeing them.
  (void)system.RequestCollection();
  system.Run();

  while (true) {
    auto dying = kernel.ports().Dequeue(filter_port.value());
    if (!dying.ok()) {
      break;
    }
    // Disassemble: unmount whatever the client left mounted, then repool.
    ObjectView view(&system.machine().addressing(), dying.value());
    uint64_t volume = view.Field(kOffMountedVol, 4);
    view.SetField(kOffMountedVol, 4, 0);
    view.SetField(kOffInUse, 1, 0);
    free_pool.push_back(dying.value());
    ++recovered_count;
    std::printf("destruction filter: recovered drive %llu (volume %llu was still mounted)\n",
                static_cast<unsigned long long>(view.Field(kOffDriveId, 4)),
                static_cast<unsigned long long>(volume));
  }

  std::printf("recovered %d lost drives; pool restored to %zu/%d\n", recovered_count,
              free_pool.size(), kTotalDrives);
  std::printf("tdo counters: created=%llu finalized=%llu\n",
              static_cast<unsigned long long>(types.CreatedCount(tdo.value()).value()),
              static_cast<unsigned long long>(types.FinalizedCount(tdo.value()).value()));
  return free_pool.size() == kTotalDrives ? 0 : 1;
}

// pipeline_mp: a four-stage processing pipeline across multiple GDPs.
//
// Demonstrates the multiprocessor story of §3: processes never name a processor; they queue
// at dispatching ports and "ready processes are dispatched on processors automatically by
// the hardware." The same pipeline binary runs unchanged on 1, 2 or 4 processors; only the
// makespan changes. Stages communicate through bounded ports, so backpressure propagates
// exactly as it would in a real dataflow system.

#include <cstdio>

#include "src/os/system.h"

using namespace imax432;

namespace {

constexpr int kStages = 4;
constexpr int kItems = 32;
constexpr Cycles kWorkPerStage = 20000;  // 2.5 ms of computation per item per stage

// Runs the pipeline on `processors` GDPs; returns the virtual makespan in cycles.
Cycles RunPipeline(int processors) {
  SystemConfig config;
  config.processors = processors;
  config.machine.memory_bytes = 4 * 1024 * 1024;
  config.start_gc_daemon = false;  // keep the timing clean for the demo
  System system(config);
  auto& kernel = system.kernel();
  auto& memory = system.memory();

  // Stage i reads from port[i] and writes to port[i+1]; the source injects into port[0]
  // and the host drains port[kStages].
  std::vector<AccessDescriptor> ports;
  for (int i = 0; i <= kStages; ++i) {
    // Inter-stage ports are small (backpressure is part of the demonstration); the sink
    // port holds the full run's output since nothing drains it until the machine idles.
    uint16_t capacity = (i == kStages) ? kItems : 4;
    auto port =
        kernel.ports().CreatePort(memory.global_heap(), capacity, QueueDiscipline::kFifo);
    if (!port.ok()) {
      return 0;
    }
    ports.push_back(port.value());
  }
  kernel.AddRootProvider([&ports](std::vector<AccessDescriptor>* roots) {
    for (const AccessDescriptor& port : ports) {
      roots->push_back(port);
    }
  });

  // Carrier: slots 0..kStages = the ports, slot kStages+1 = global heap.
  auto carrier = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 8,
                                     kStages + 2, rights::kRead | rights::kWrite);
  if (!carrier.ok()) {
    return 0;
  }
  for (int i = 0; i <= kStages; ++i) {
    (void)system.machine().addressing().WriteAd(carrier.value(), static_cast<uint32_t>(i),
                                                ports[static_cast<size_t>(i)]);
  }
  (void)system.machine().addressing().WriteAd(carrier.value(), kStages + 1,
                                              memory.global_heap());

  // Source: creates kItems work items and pushes them into the first port.
  Assembler source("source");
  auto source_loop = source.NewLabel();
  source.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)              // a2 = port[0]
      .LoadAd(3, 1, kStages + 1)    // a3 = heap
      .LoadImm(0, 0)
      .LoadImm(1, kItems)
      .Bind(source_loop)
      .CreateObject(4, 3, 64)
      .StoreData(4, 0, 0, 8)        // item.value = sequence number
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, source_loop)
      .Halt();

  // Stage worker: receive from port[i], compute, increment the item's hop count, forward.
  auto make_stage = [&](int stage) {
    Assembler a("stage");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, static_cast<uint32_t>(stage))      // in
        .LoadAd(3, 1, static_cast<uint32_t>(stage + 1))  // out
        .LoadImm(0, 0)
        .LoadImm(1, kItems)
        .Bind(loop)
        .Receive(4, 2)
        .Compute(kWorkPerStage)
        .LoadData(5, 4, 8, 8)
        .AddImm(5, 5, 1)
        .StoreData(4, 5, 8, 8)  // item.hops += 1
        .Send(3, 4)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    return a.Build();
  };

  ProcessOptions options;
  options.initial_arg = carrier.value();
  for (int stage = 0; stage < kStages; ++stage) {
    if (!system.Spawn(make_stage(stage), options).ok()) {
      return 0;
    }
  }
  if (!system.Spawn(source.Build(), options).ok()) {
    return 0;
  }

  system.Run();

  // Drain the sink and verify every item made all hops.
  int delivered = 0;
  bool all_hopped = true;
  while (true) {
    auto item = kernel.ports().Dequeue(ports[kStages]);
    if (!item.ok()) {
      break;
    }
    ++delivered;
    auto hops = system.machine().addressing().ReadData(item.value(), 8, 8);
    all_hopped &= hops.ok() && hops.value() == kStages;
  }
  if (delivered != kItems || !all_hopped) {
    std::printf("  pipeline integrity FAILED (%d/%d items)\n", delivered, kItems);
    return 0;
  }
  return system.now();
}

}  // namespace

int main() {
  std::printf("pipeline: %d stages x %d items, %.1f us of work per stage-item\n\n", kStages,
              kItems, cycles::ToMicroseconds(kWorkPerStage));
  std::printf("%-12s %-16s %-10s\n", "processors", "makespan (ms)", "speedup");

  Cycles baseline = 0;
  for (int processors : {1, 2, 4, 8}) {
    Cycles makespan = RunPipeline(processors);
    if (makespan == 0) {
      return 1;
    }
    if (baseline == 0) {
      baseline = makespan;
    }
    std::printf("%-12d %-16.2f %.2fx\n", processors,
                cycles::ToMicroseconds(makespan) / 1000.0,
                static_cast<double>(baseline) / static_cast<double>(makespan));
  }
  std::printf("\nthe pipeline binary is identical in all runs: processes queue at\n"
              "dispatching ports and the hardware binds them to whatever GDPs exist.\n");
  return 0;
}

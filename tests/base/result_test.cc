#include "src/base/result.h"

#include <gtest/gtest.h>

#include <string>

namespace imax432 {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.fault(), Fault::kNone);
}

TEST(ResultTest, HoldsFault) {
  Result<int> result(Fault::kBoundsViolation);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.fault(), Fault::kBoundsViolation);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("imax"));
  EXPECT_EQ(result->size(), 4u);
}

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.fault(), Fault::kNone);
}

TEST(StatusTest, CarriesFault) {
  Status status(Fault::kLevelViolation);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.fault(), Fault::kLevelViolation);
}

Status FailingOperation() { return Fault::kTypeMismatch; }

Status PropagatesViaMacro() {
  IMAX_RETURN_IF_FAULT(FailingOperation());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfFaultPropagates) {
  EXPECT_EQ(PropagatesViaMacro().fault(), Fault::kTypeMismatch);
}

Result<int> ProducesValue() { return 9; }

Result<int> AssignsViaMacro() {
  IMAX_ASSIGN_OR_RETURN(int v, ProducesValue());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto result = AssignsViaMacro();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 10);
}

TEST(FaultTest, AllFaultsHaveNames) {
  // Spot-check representative names; the switch in FaultName covers every enumerator, so a
  // missing case is a compile warning, but string identity matters for logs.
  EXPECT_STREQ(FaultName(Fault::kNone), "kNone");
  EXPECT_STREQ(FaultName(Fault::kLevelViolation), "kLevelViolation");
  EXPECT_STREQ(FaultName(Fault::kSegmentSwapped), "kSegmentSwapped");
  EXPECT_STREQ(FaultName(Fault::kFaultNotPermitted), "kFaultNotPermitted");
}

}  // namespace
}  // namespace imax432

#include "src/base/xorshift.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(XorshiftTest, DeterministicForSameSeed) {
  Xorshift a(12345);
  Xorshift b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(XorshiftTest, DifferentSeedsDiverge) {
  Xorshift a(1);
  Xorshift b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 90);
}

TEST(XorshiftTest, ZeroSeedIsUsable) {
  Xorshift rng(0);
  EXPECT_NE(rng.Next(), 0u);
}

TEST(XorshiftTest, NextBelowRespectsBound) {
  Xorshift rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(XorshiftTest, NextInRangeInclusive) {
  Xorshift rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(XorshiftTest, NextDoubleInUnitInterval) {
  Xorshift rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XorshiftTest, ChanceIsRoughlyCalibrated) {
  Xorshift rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextChance(1, 4)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits, 2500, 200);
}

}  // namespace
}  // namespace imax432

// Ground truth for the guard-dominance analysis: fresh-site elisions run clean under the
// auditor, a dominated load over a writer-free shared object certifies non-fresh and serves
// audited elided hits, a writer entering the system retracts that certificate, a forced
// host-side mutation of a certified object's bounds is caught as a kGuardViolation, a
// hot-patched segment retracts its analysis through the ProgramStore replace hook, and the
// PR 5 replay contract: the trace fingerprint is bit-identical with the decode cache and
// guard auditor armed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/guards/auditor.h"
#include "src/analysis/guards/guards.h"
#include "src/arch/rights.h"
#include "src/exec/kernel.h"
#include "src/isa/assembler.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

SystemConfig CorpusConfig(bool cache, bool audit) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 1;
  config.verify_on_load = true;
  config.start_gc_daemon = false;  // the daemon's native steps would opaque the system
  config.decode_cache = cache;
  config.guard_audit = audit;
  return config;
}

uint64_t FingerprintTrace(const std::vector<TraceEvent>& events) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over every payload word
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const TraceEvent& event : events) {
    mix(event.ts);
    mix(event.process);
    mix(event.a);
    mix(event.b);
    mix(event.c);
    mix(event.cpu);
    mix(static_cast<uint64_t>(event.kind));
  }
  return h;
}

AccessDescriptor MakeShared(System& system, const std::string& name,
                            uint64_t initial_value = 0) {
  auto object = system.memory().CreateObject(system.memory().global_heap(),
                                             SystemType::kGeneric, 64, 0,
                                             rights::kRead | rights::kWrite);
  EXPECT_TRUE(object.ok());
  system.kernel().symbols().Name(object.value().index(), name);
  EXPECT_TRUE(
      system.machine().addressing().WriteData(object.value(), 0, 8, initial_value).ok());
  return object.value();
}

void Spawn(System& system, Assembler& a, const AccessDescriptor& arg) {
  ProcessOptions options;
  options.initial_arg = arg;
  auto process = system.Spawn(a.Build(), options);
  ASSERT_TRUE(process.ok()) << FaultName(process.fault());
}

// Reads the shared object twice per iteration: the second load's rights + bounds are
// dominated by the first, so it is the elidable (and, writer-free, certifiable) site.
Assembler DominatedReadLoop(const std::string& name, uint32_t iters) {
  Assembler a(name);
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(4, iters)
      .Bind(loop)
      .LoadData(2, 1, 0, 8)
      .LoadData(3, 1, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 4, loop)
      .Halt();
  return a;
}

Assembler WriteOnce(const std::string& name, uint64_t value) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadImm(2, value).StoreData(1, 2, 0, 8).Halt();
  return a;
}

// Allocation-shaped loop: the store + load against the fresh object certify even when the
// rest of the system is opaque.
Assembler AllocLoop(const std::string& name, uint32_t iters) {
  Assembler a(name);
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(3, iters)
      .LoadImm(5, 41)
      .Bind(loop)
      .CreateObject(4, 1, 32)
      .StoreData(4, 5, 0, 8)
      .LoadData(6, 4, 0, 8)
      .DestroyObject(4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 3, loop)
      .Halt();
  return a;
}

TEST(GuardsCorpusTest, FreshSiteElisionsRunCleanUnderTheAuditor) {
  System system(CorpusConfig(true, true));
  Assembler a = AllocLoop("guards.alloc", 200);
  Spawn(system, a, system.memory().global_heap());
  system.Run();
  EXPECT_GE(system.kernel().stats().guard_elisions, 2u * 200u);
  EXPECT_GT(system.kernel().guard_auditor()->stats().hits_checked, 0u);
  EXPECT_EQ(system.kernel().guard_auditor()->stats().violations, 0u);
  EXPECT_EQ(system.kernel().stats().guard_violations, 0u);
}

TEST(GuardsCorpusTest, WriterFreeSharedObjectCertifiesNonFreshAndServesElided) {
  System system(CorpusConfig(true, true));
  AccessDescriptor shared = MakeShared(system, "guards.table", 5);
  Assembler reader = DominatedReadLoop("guards.reader", 200);
  Spawn(system, reader, shared);

  // Static claim first: the dominated load certifies without being fresh.
  analysis::GuardAnalysisReport report = system.kernel().AnalyzeGuards();
  EXPECT_GT(report.checks_certified, 0u);
  EXPECT_EQ(report.certified_fresh, 0u);
  EXPECT_EQ(report.suppressed_interference, 0u);

  // Dynamic ground truth: elided executions happen and the auditor confirms every one.
  system.Run();
  EXPECT_GT(system.kernel().stats().guard_elisions, 0u);
  EXPECT_GT(system.kernel().guard_auditor()->stats().hits_checked, 0u);
  EXPECT_EQ(system.kernel().guard_auditor()->stats().violations, 0u);
}

TEST(GuardsCorpusTest, WriterEnteringTheSystemRetractsTheCertificate) {
  System system(CorpusConfig(true, true));
  AccessDescriptor shared = MakeShared(system, "guards.retract", 5);
  Assembler reader = DominatedReadLoop("guards.reader", 50);
  Spawn(system, reader, shared);

  analysis::GuardAnalysisReport before = system.kernel().AnalyzeGuards();
  ASSERT_GT(before.checks_certified, 0u);
  uint64_t invalidations = system.kernel().stats().decode_invalidations;

  // The writer's summary lands at spawn, clearing every decode cache before it executes a
  // single instruction; the recomputed certificate set suppresses the reader's site.
  Assembler writer = WriteOnce("guards.writer", 9);
  Spawn(system, writer, shared);
  EXPECT_GT(system.kernel().stats().decode_invalidations, invalidations);

  analysis::GuardAnalysisReport after = system.kernel().AnalyzeGuards();
  EXPECT_EQ(after.checks_certified, 0u);
  EXPECT_GT(after.suppressed_interference, 0u);

  system.Run();
  EXPECT_EQ(system.kernel().stats().guard_violations, 0u);
}

TEST(GuardsCorpusTest, ForcedBoundsMutationOfACertifiedObjectTripsTheAuditor) {
  System system(CorpusConfig(true, true));
  AccessDescriptor shared = MakeShared(system, "guards.victim", 5);
  system.machine().trace().Enable();

  // pc 1 proves the access; the long compute leaves a window to corrupt the object behind
  // the analysis's back before the certified, check-elided load at pc 3 executes.
  Assembler a("guards.window");
  a.MoveAd(1, kArgAdReg)
      .LoadData(2, 1, 0, 8)
      .Compute(100000)
      .LoadData(3, 1, 0, 8)
      .Halt();
  Spawn(system, a, shared);

  system.RunUntil(50000);  // inside the compute window
  system.machine().table().At(shared.index()).data_length = 4;
  system.Run();

  EXPECT_GT(system.kernel().stats().guard_violations, 0u);
  EXPECT_GT(system.kernel().guard_auditor()->stats().violations, 0u);
  bool traced = false;
  for (const TraceEvent& event : system.machine().trace().Snapshot()) {
    if (event.kind == TraceEventKind::kGuardViolation) {
      traced = true;
      EXPECT_EQ(event.a, shared.index());
      EXPECT_EQ(event.b,
                static_cast<uint32_t>(analysis::GuardViolationKind::kDataBounds));
      EXPECT_EQ(event.c, 3u);  // the elided site's pc
    }
  }
  EXPECT_TRUE(traced);
}

TEST(GuardsCorpusTest, ReplaceRetractsAnalysisThroughTheStoreHook) {
  System system(CorpusConfig(true, true));
  Assembler a = AllocLoop("guards.patch", 400);
  Spawn(system, a, system.memory().global_heap());
  system.RunUntil(20000);  // mid-loop: decode entries live, elisions flowing

  ASSERT_FALSE(system.kernel().guard_summaries().empty());
  ObjectIndex segment = system.kernel().guard_summaries().begin()->first;
  uint64_t invalidations = system.kernel().stats().decode_invalidations;

  // Hot-patch the segment with identical code: content is equal, but the store must still
  // bump both staleness keys and retract the old analysis through the replace hook.
  AccessDescriptor segment_ad(segment, system.machine().table().At(segment).generation,
                              rights::kRead);
  Assembler patched = AllocLoop("guards.patch", 400);
  uint64_t version = system.kernel().programs().version();
  uint32_t epoch = system.machine().table().At(segment).data_epoch;
  ASSERT_TRUE(system.kernel().programs().Replace(segment_ad, patched.Build()).ok());
  EXPECT_GT(system.kernel().programs().version(), version);
  EXPECT_GT(system.machine().table().At(segment).data_epoch, epoch);
  EXPECT_GT(system.kernel().stats().decode_invalidations, invalidations);
  EXPECT_EQ(system.kernel().guard_summaries().count(segment), 0u);

  // The replacement re-summarizes lazily and the run completes clean.
  system.Run();
  EXPECT_EQ(system.kernel().stats().guard_violations, 0u);
}

TEST(GuardsCorpusTest, BootedSystemWithDaemonsRunsCleanUnderElision) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 2;
  config.verify_on_load = true;
  config.decode_cache = true;
  config.guard_audit = true;
  System system(config);  // GC daemon on: an opaque resident program in the mix

  Assembler a = AllocLoop("guards.daemons", 100);
  ProcessOptions options;
  options.initial_arg = system.memory().global_heap();
  ASSERT_TRUE(system.Spawn(a.Build(), options).ok());
  system.RunUntil(200000);
  // Fresh sites certify even with the opaque daemon resident; nothing trips the audit.
  EXPECT_GT(system.kernel().stats().guard_elisions, 0u);
  EXPECT_EQ(system.kernel().stats().guard_violations, 0u);
}

TEST(GuardsCorpusTest, ReplayFingerprintIsBitIdenticalWithCacheAndAuditor) {
  auto run = [](bool cache, bool audit) {
    System system(CorpusConfig(cache, audit));
    system.machine().trace().Enable();
    AccessDescriptor shared = MakeShared(system, "guards.shared", 7);
    Assembler reader = DominatedReadLoop("guards.reader", 100);
    Assembler alloc = AllocLoop("guards.alloc", 60);
    Spawn(system, reader, shared);
    Spawn(system, alloc, system.memory().global_heap());
    system.Run();
    return FingerprintTrace(system.machine().trace().Snapshot());
  };
  uint64_t off = run(false, false);
  uint64_t on = run(true, true);
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace imax432

// End-to-end fault-injection campaigns: the acceptance contract of the injection harness.
// Same {seed, schedule} => bit-identical replay (virtual end time and full trace
// fingerprint), and every injected fault ends in documented recovery or a policy-driven
// termination — never a kernel panic.

#include <gtest/gtest.h>

#include "src/memory/swapping_memory_manager.h"
#include "src/os/fault_service.h"
#include "src/os/system.h"
#include "src/sim/fault_injector.h"

namespace imax432 {
namespace {

uint64_t FingerprintTrace(const std::vector<TraceEvent>& events) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  for (const TraceEvent& event : events) {
    mix(event.ts);
    mix(event.process);
    mix((static_cast<uint64_t>(event.a) << 32) | event.b);
    mix((static_cast<uint64_t>(event.c) << 16) | event.cpu);
    mix(static_cast<uint64_t>(event.kind));
  }
  return hash;
}

struct CampaignOutcome {
  Cycles end = 0;
  uint64_t fingerprint = 0;
  uint64_t panics = 0;
  uint64_t injections = 0;
  uint64_t faults_delivered = 0;
  uint64_t quarantined = 0;
  uint64_t terminated_by_policy = 0;
};

// A compact version of the imax_trace --inject campaign: swapping storage under pressure,
// service-level workers wired to a recovery-policy fault service, the patrol daemon armed,
// and a seeded schedule of every injection kind.
CampaignOutcome RunCampaign(uint64_t seed, uint32_t count, Cycles horizon) {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 192 * 1024;
  config.machine.object_table_capacity = 4096;
  config.memory_manager = MemoryManagerKind::kSwapping;
  config.trace = true;
  config.start_patrol_daemon = true;
  System system(config);

  FaultService service(&system.kernel(), FaultService::MakeRecoveryPolicy());
  auto fault_port = service.Spawn();
  EXPECT_TRUE(fault_port.ok());

  FaultInjector injector(&system.kernel(),
                         static_cast<SwappingMemoryManager*>(&system.memory()));
  injector.Arm(FaultInjector::GenerateSchedule(seed, count, horizon));

  // Three churn workers: each allocates 4 KB objects in a loop (swap pressure), re-reads
  // the previous one (swap-ins; walks into quarantined objects), and computes. Services
  // level + fault port: injected faults are delivered and recovered, never panicked.
  for (int w = 0; w < 3; ++w) {
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 8, 2,
                                                rights::kRead | rights::kWrite);
    EXPECT_TRUE(carrier.ok());
    EXPECT_TRUE(system.machine()
                    .addressing()
                    .WriteAd(carrier.value(), 0, system.memory().global_heap())
                    .ok());
    Assembler a("churn");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0);
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, 40).Bind(loop);
    a.CreateObject(3, 2, 4 * 1024);
    a.StoreData(3, 0, 0, 8);
    a.StoreAd(1, 3, 1);  // keep the newest object reachable via the carrier
    a.LoadAd(4, 1, 1);   // ... and re-read it (possible swap-in / quarantine)
    a.LoadData(5, 4, 0, 8);
    a.Compute(400);
    a.AddImm(0, 0, 1).BranchIfLess(0, 1, loop);
    a.Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    options.imax_level = kImaxLevelServices;
    options.fault_port = fault_port.value();
    EXPECT_TRUE(system.Spawn(a.Build(), options).ok());
  }

  // Patrol sweeps on a timer so injected corruption is found during the campaign.
  for (Cycles t = horizon / 4; t <= horizon; t += horizon / 4) {
    System* sys = &system;
    system.machine().events().ScheduleAt(t, [sys] { (void)sys->RequestPatrolSweep(); });
  }

  system.Run();
  system.patrol().SweepNow();  // final host-side scan: nothing corrupt may survive unseen

  CampaignOutcome outcome;
  outcome.end = system.now();
  outcome.fingerprint = FingerprintTrace(system.machine().trace().Snapshot());
  outcome.panics = system.kernel().stats().panics;
  outcome.injections = injector.stats().fired;
  outcome.faults_delivered = system.kernel().stats().faults_delivered;
  outcome.quarantined = system.patrol().stats().objects_quarantined;
  outcome.terminated_by_policy = service.stats().terminated;
  return outcome;
}

TEST(FaultCampaignTest, ReplayIsBitIdentical) {
  CampaignOutcome first = RunCampaign(432, 24, 600'000);
  CampaignOutcome second = RunCampaign(432, 24, 600'000);
  EXPECT_EQ(first.end, second.end);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.injections, second.injections);
  EXPECT_EQ(first.quarantined, second.quarantined);
}

TEST(FaultCampaignTest, DifferentSeedsProduceDifferentTimelines) {
  CampaignOutcome a = RunCampaign(1, 24, 600'000);
  CampaignOutcome b = RunCampaign(2, 24, 600'000);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(FaultCampaignTest, EveryInjectedFaultEndsInRecoveryNeverPanic) {
  // A handful of seeds, each mixing all eight injection kinds against live workers. The
  // invariant under test: injections land (fired > 0) and the kernel never panics — every
  // fault either recovers (retry, requeue, re-baseline) or terminates by policy.
  for (uint64_t seed : {3ull, 17ull, 20260805ull}) {
    CampaignOutcome outcome = RunCampaign(seed, 24, 600'000);
    EXPECT_GT(outcome.injections, 0u) << "seed " << seed;
    EXPECT_EQ(outcome.panics, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace imax432

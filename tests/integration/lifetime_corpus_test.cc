// Static <-> dynamic ground-truth corpus for the lifetime analysis: every program the
// static pass calls demotable must run violation-free under the dynamic auditor (the
// zero-false-positive contract), and programs whose allocations escape must never be
// demoted at all. Each case boots a full System (GC daemon included) with verify_on_load +
// lifetime_demote + lifetime_audit.

#include <gtest/gtest.h>

#include <functional>

#include "src/os/system.h"

namespace imax432 {
namespace {

struct CorpusCase {
  const char* name;
  std::function<ProgramRef()> build;
  uint64_t expected_demotions;
};

// Programs address a carrier in a7: slot 0 = allocation SRO (the global heap).
ProgramRef LocalSingle() {
  Assembler a("local-single");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 16).Halt();
  return a.Build();
}

ProgramRef LocalLoop() {
  Assembler a("local-loop");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 12)
      .Bind(loop)
      .CreateObject(4, 2, 32)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  return a.Build();
}

ProgramRef SiblingGraph() {
  // Two local objects referencing each other: both demotable, both in one demote SRO.
  Assembler a("sibling-graph");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .CreateObject(4, 2, 0, 2)
      .CreateObject(5, 2, 0, 2)
      .StoreAd(4, 5, 0)
      .StoreAd(5, 4, 0)
      .Halt();
  return a.Build();
}

ProgramRef EscapeByStore() {
  Assembler a("escape-store");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 16).StoreAd(1, 4, 1).Halt();
  return a.Build();
}

ProgramRef EscapeBySend() {
  // Carrier slot 1 holds a port; the allocated object ships through it.
  Assembler a("escape-send");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 2, 16)
      .CondSend(3, 4, 0)
      .Halt();
  return a.Build();
}

ProgramRef ExplicitDestroy() {
  Assembler a("explicit-destroy");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 16).DestroyObject(4).Halt();
  return a.Build();
}

ProgramRef Mixed() {
  // One local, one escaping: exactly one demotion.
  Assembler a("mixed");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .CreateObject(4, 2, 16)
      .CreateObject(5, 2, 16)
      .StoreAd(1, 5, 1)
      .Halt();
  return a.Build();
}

ProgramRef LocalHeapSite() {
  // Allocating from a program-created local SRO still demotes: the demote SRO's reclaim at
  // context exit is never later than the owned SRO's.
  Assembler a("local-heap-site");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .CreateSro(3, 2, 4096)
      .CreateObject(4, 3, 16)
      .Halt();
  return a.Build();
}

class LifetimeCorpusTest : public ::testing::Test {
 protected:
  static SystemConfig Config() {
    SystemConfig config;
    config.machine.memory_bytes = 4 * 1024 * 1024;
    config.machine.object_table_capacity = 8192;
    config.processors = 1;
    config.verify_on_load = true;
    config.lifetime_demote = true;
    config.lifetime_audit = true;
    return config;
  }

  // Runs one corpus program to termination; returns the kernel stats afterwards.
  static KernelStats RunCase(const CorpusCase& test_case) {
    System system(Config());
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 8, 2, rights::kAll);
    EXPECT_TRUE(carrier.ok());
    auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 8,
                                                   QueueDiscipline::kFifo);
    EXPECT_TRUE(port.ok());
    AddressingUnit& au = system.machine().addressing();
    EXPECT_TRUE(au.WriteAd(carrier.value(), 0, system.memory().global_heap()).ok());
    EXPECT_TRUE(au.WriteAd(carrier.value(), 1, port.value()).ok());

    ProcessOptions options;
    options.initial_arg = carrier.value();
    auto process = system.Spawn(test_case.build(), options);
    EXPECT_TRUE(process.ok()) << test_case.name << ": " << FaultName(process.fault());
    system.Run();
    EXPECT_EQ(system.kernel().process_view(process.value()).state(),
              ProcessState::kTerminated)
        << test_case.name;
    return system.kernel().stats();
  }
};

TEST_F(LifetimeCorpusTest, StaticVerdictsMatchDynamicGroundTruth) {
  const CorpusCase kCorpus[] = {
      {"local-single", LocalSingle, 1},
      {"local-loop", LocalLoop, 12},
      {"sibling-graph", SiblingGraph, 2},
      {"escape-store", EscapeByStore, 0},
      {"escape-send", EscapeBySend, 0},
      {"explicit-destroy", ExplicitDestroy, 0},
      {"mixed", Mixed, 1},
      {"local-heap-site", LocalHeapSite, 1},
  };
  for (const CorpusCase& test_case : kCorpus) {
    KernelStats stats = RunCase(test_case);
    EXPECT_EQ(stats.demotions, test_case.expected_demotions) << test_case.name;
    // The contract that makes demotion safe to ship: zero audit violations, ever.
    EXPECT_EQ(stats.lifetime_violations, 0u) << test_case.name;
    EXPECT_EQ(stats.demoted_bulk_reclaimed, test_case.expected_demotions) << test_case.name;
  }
}

TEST_F(LifetimeCorpusTest, CollectionInterleavedWithDemotionsStaysClean) {
  // A GC cycle racing the mutator in virtual time must neither sweep a demoted object nor
  // trip the auditor: exempt objects stay black through whiten/mark/sweep. Once the
  // process terminates its object is garbage to the collector, so recovery must be on for
  // the post-run state inspection to have something to read.
  SystemConfig config = Config();
  config.recover_lost_processes = true;
  System system(config);
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 1, rights::kAll);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(system.machine()
                  .addressing()
                  .WriteAd(carrier.value(), 0, system.memory().global_heap())
                  .ok());
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = system.Spawn(LocalLoop(), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  EXPECT_EQ(system.kernel().process_view(process.value()).state(),
            ProcessState::kTerminated);
  EXPECT_EQ(system.kernel().stats().demotions, 12u);
  EXPECT_EQ(system.kernel().stats().lifetime_violations, 0u);
  EXPECT_GE(system.gc().stats().cycles_completed, 1u);
}

TEST_F(LifetimeCorpusTest, BootedSystemLifetimeReportIsClean) {
  // The GC daemon is native code: whole-system opacity suppresses every leak / anomaly
  // claim, so a healthy booted system reports clean rather than speculating.
  System system(Config());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2, rights::kAll);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(system.machine()
                  .addressing()
                  .WriteAd(carrier.value(), 0, system.memory().global_heap())
                  .ok());
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = system.Spawn(EscapeByStore(), options);
  ASSERT_TRUE(process.ok());
  system.Run();
  analysis::LifetimeAnalysisReport report = system.kernel().AnalyzeLifetimes();
  EXPECT_TRUE(report.ok()) << analysis::FormatLifetimeReport(report);
  EXPECT_GE(report.opaque_programs, 1u);
  EXPECT_GE(report.leaks_suppressed, 1u);
}

}  // namespace
}  // namespace imax432

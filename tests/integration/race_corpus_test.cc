// Ground truth for the static race detector: a pair the static pass reports really does
// race when run under the dynamic sanitizer, and a pair it proves ordered really is silent.
// Also covers the analysis-state lifecycle (ForgetProgramAnalysis drops the summary, the
// deferred initial argument, and the diagnostic name) and the SystemConfig wiring.

#include <gtest/gtest.h>

#include <string>

#include "src/analysis/races/races.h"
#include "src/analysis/races/sanitizer.h"
#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class RaceCorpusTest : public ::testing::Test {
 protected:
  RaceCorpusTest() : machine_(SmallConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
    kernel_.EnableRaceSanitizer();
  }

  AccessDescriptor MakeObject(const std::string& name, uint32_t access_slots = 0) {
    auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64,
                                       access_slots, rights::kRead | rights::kWrite);
    EXPECT_TRUE(object.ok());
    kernel_.symbols().Name(object.value().index(), name);
    return object.value();
  }

  AccessDescriptor MakePort(const std::string& name) {
    auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
    EXPECT_TRUE(port.ok());
    kernel_.symbols().Name(port.value().index(), name);
    return port.value();
  }

  // carrier slot 0 = shared object, slot 1 = port (when given).
  AccessDescriptor MakeCarrier(const AccessDescriptor& shared, const AccessDescriptor& port) {
    AccessDescriptor carrier = MakeObject("carrier", /*access_slots=*/2);
    EXPECT_TRUE(machine_.addressing().WriteAd(carrier, 0, shared).ok());
    if (!port.is_null()) {
      EXPECT_TRUE(machine_.addressing().WriteAd(carrier, 1, port).ok());
    }
    return carrier;
  }

  AccessDescriptor Spawn(Assembler& assembler, const AccessDescriptor& carrier) {
    ProcessOptions options;
    options.initial_arg = carrier;
    auto process = kernel_.CreateProcess(assembler.Build(), options);
    EXPECT_TRUE(process.ok()) << FaultName(process.fault());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    return process.value();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(RaceCorpusTest, StaticReportIsConfirmedByTheSanitizer) {
  AccessDescriptor shared = MakeObject("corpus.counter");
  AccessDescriptor carrier = MakeCarrier(shared, AccessDescriptor());
  Assembler w0("corpus.w0");
  w0.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadImm(0, 1).StoreData(2, 0, 0).Halt();
  Assembler w1("corpus.w1");
  w1.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadImm(0, 2).StoreData(2, 0, 0).Halt();
  Spawn(w0, carrier);
  Spawn(w1, carrier);

  // Static verdict before a single instruction executes: one write-write diagnostic on the
  // shared counter, named in the rendered message.
  analysis::RaceAnalysisReport report = kernel_.AnalyzeRaces();
  ASSERT_EQ(report.diagnostics.size(), 1u) << analysis::FormatRaceReport(report);
  EXPECT_EQ(report.diagnostics[0].object, shared.index());
  EXPECT_EQ(report.diagnostics[0].part, analysis::ObjectPart::kData);
  EXPECT_NE(report.diagnostics[0].message.find("corpus.counter"), std::string::npos)
      << report.diagnostics[0].message;

  // Dynamic ground truth: running the pair trips the sanitizer on the same object.
  kernel_.Run();
  ASSERT_FALSE(kernel_.race_sanitizer()->races().empty());
  EXPECT_EQ(kernel_.race_sanitizer()->races().front().object, shared.index());
}

TEST_F(RaceCorpusTest, StaticOrderedPairStaysSilentDynamically) {
  AccessDescriptor shared = MakeObject("corpus.cell");
  AccessDescriptor port = MakePort("corpus.token");
  AccessDescriptor carrier = MakeCarrier(shared, port);
  Assembler writer("corpus.writer");
  writer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadImm(0, 7)
      .StoreData(2, 0, 0)
      .Send(3, 1)
      .Halt();
  Assembler reader("corpus.reader");
  reader.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 1)
      .Receive(4, 3)
      .LoadAd(2, 1, 0)
      .LoadData(0, 2, 0)
      .Halt();
  Spawn(writer, carrier);
  Spawn(reader, carrier);

  analysis::RaceAnalysisReport report = kernel_.AnalyzeRaces();
  EXPECT_TRUE(report.ok()) << analysis::FormatRaceReport(report);
  EXPECT_GE(report.pairs_ordered, 1u);

  kernel_.Run();
  EXPECT_TRUE(kernel_.race_sanitizer()->races().empty());
}

TEST_F(RaceCorpusTest, ForgetProgramAnalysisClearsSummaryNameAndDeferredArgument) {
  AccessDescriptor shared = MakeObject("forget.cell");
  AccessDescriptor port = MakePort("forget.port");
  AccessDescriptor carrier = MakeCarrier(shared, port);
  Assembler sender("forget.sender");
  sender.MoveAd(1, kArgAdReg).LoadAd(3, 1, 1).Send(3, 1).Halt();
  Spawn(sender, carrier);

  // The first analysis computes the deferred summary; the concrete carrier argument makes
  // the send resolve to the named port.
  kernel_.AnalyzeRaces();
  ASSERT_EQ(kernel_.effect_graph().programs().size(), 1u);
  const ObjectIndex segment = kernel_.effect_graph().programs().begin()->first;
  EXPECT_TRUE(kernel_.effect_graph().programs().begin()->second.summary.SendsTo(port.index()));
  kernel_.symbols().Name(segment, "forget.segment");
  ASSERT_NE(kernel_.symbols().Find(segment), nullptr);

  kernel_.ForgetProgramAnalysis(segment);
  EXPECT_FALSE(kernel_.effect_graph().HasProgram(segment));
  EXPECT_EQ(kernel_.symbols().Find(segment), nullptr);

  // The program itself is still registered, so re-analysis recomputes a summary — but the
  // deferred initial-argument fact is gone too, so the send no longer resolves. A stale
  // cached argument here would quietly resurrect the old resolution.
  kernel_.AnalyzeRaces();
  ASSERT_TRUE(kernel_.effect_graph().HasProgram(segment));
  const analysis::EffectSummary& recomputed =
      kernel_.effect_graph().programs().at(segment).summary;
  EXPECT_FALSE(recomputed.SendsTo(port.index()));
  EXPECT_TRUE(recomputed.has_unresolved_send);
}

TEST(RaceCorpusSystemTest, SystemConfigWiresTheSanitizer) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 1;
  config.start_gc_daemon = false;
  ASSERT_EQ(System(config).kernel().race_sanitizer(), nullptr);

  config.race_sanitize = true;
  System system(config);
  ASSERT_NE(system.kernel().race_sanitizer(), nullptr);

  auto shared = system.memory().CreateObject(system.memory().global_heap(),
                                             SystemType::kGeneric, 64, 0,
                                             rights::kRead | rights::kWrite);
  ASSERT_TRUE(shared.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 1,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(system.machine().addressing().WriteAd(carrier.value(), 0, shared.value()).ok());

  for (int i = 0; i < 2; ++i) {
    Assembler a("system.w" + std::to_string(i));
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadImm(0, i).StoreData(2, 0, 0).Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    ASSERT_TRUE(system.Spawn(a.Build(), options).ok());
  }
  system.Run();
  EXPECT_FALSE(system.kernel().race_sanitizer()->races().empty());
}

TEST(RaceCorpusSystemTest, BootedSystemIsCleanStaticallyAndDynamically) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 2;
  config.race_sanitize = true;
  System system(config);  // GC daemon on: a real resident process in the mix

  analysis::RaceAnalysisReport report = system.kernel().AnalyzeRaces();
  EXPECT_TRUE(report.ok()) << analysis::FormatRaceReport(report);

  system.RunUntil(200000);
  EXPECT_TRUE(system.kernel().race_sanitizer()->races().empty());
}

}  // namespace
}  // namespace imax432

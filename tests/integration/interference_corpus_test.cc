// Ground truth for the interference analysis: a pair it claims independent runs with zero
// auditor findings, a shared-write pair it reports really conflicts, a certified-immutable
// object serves certified cache hits that the runtime auditor confirms, mutation after
// certification retracts the certificate, and a forced host-side mutation of a certified
// object is caught as a kInterferenceViolation. Plus the PR 5 replay contract: the trace
// fingerprint is bit-identical with the cache and auditor armed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/interference/interference.h"
#include "src/arch/rights.h"
#include "src/exec/kernel.h"
#include "src/isa/assembler.h"
#include "src/memory/basic_memory_manager.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

SystemConfig CorpusConfig(bool cache, bool audit) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 1;
  config.start_gc_daemon = false;  // the daemon's native steps would caveat every certificate
  config.xlat_cache = cache;
  config.interference_audit = audit;
  return config;
}

uint64_t FingerprintTrace(const std::vector<TraceEvent>& events) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over every payload word
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const TraceEvent& event : events) {
    mix(event.ts);
    mix(event.process);
    mix(event.a);
    mix(event.b);
    mix(event.c);
    mix(event.cpu);
    mix(static_cast<uint64_t>(event.kind));
  }
  return h;
}

AccessDescriptor MakeShared(System& system, const std::string& name,
                            uint64_t initial_value = 0) {
  auto object = system.memory().CreateObject(system.memory().global_heap(),
                                             SystemType::kGeneric, 64, 0,
                                             rights::kRead | rights::kWrite);
  EXPECT_TRUE(object.ok());
  system.kernel().symbols().Name(object.value().index(), name);
  EXPECT_TRUE(
      system.machine().addressing().WriteData(object.value(), 0, 8, initial_value).ok());
  return object.value();
}

void Spawn(System& system, Assembler& a, const AccessDescriptor& arg) {
  ProcessOptions options;
  options.initial_arg = arg;
  auto process = system.Spawn(a.Build(), options);
  ASSERT_TRUE(process.ok()) << FaultName(process.fault());
}

// Sums the shared object into a private total `iters` times (read-only workload).
Assembler ReadLoop(const std::string& name, uint32_t iters) {
  Assembler a(name);
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(4, iters)
      .LoadImm(3, 0)
      .Bind(loop)
      .LoadData(2, 1, 0, 8)
      .Add(3, 3, 2)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 4, loop)
      .Halt();
  return a;
}

Assembler WriteOnce(const std::string& name, uint64_t value) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadImm(2, value).StoreData(1, 2, 0, 8).Halt();
  return a;
}

TEST(InterferenceCorpusTest, DisjointFootprintPairIsIndependentAndRunsClean) {
  System system(CorpusConfig(true, true));
  AccessDescriptor left = MakeShared(system, "corpus.left", 1);
  AccessDescriptor right = MakeShared(system, "corpus.right", 2);
  Assembler a = ReadLoop("corpus.a", 20);
  Assembler b = ReadLoop("corpus.b", 20);
  Spawn(system, a, left);
  Spawn(system, b, right);

  analysis::InterferenceAnalysisReport report = system.kernel().AnalyzeInterference();
  EXPECT_TRUE(report.ok()) << analysis::FormatInterferenceReport(report);
  EXPECT_EQ(report.pairs_independent, 1u);
  EXPECT_EQ(report.pairs_interfering, 0u);

  system.Run();
  EXPECT_EQ(system.kernel().stats().interference_violations, 0u);
}

TEST(InterferenceCorpusTest, SharedWritePairIsReportedWithNamedWitness) {
  System system(CorpusConfig(false, false));
  AccessDescriptor shared = MakeShared(system, "corpus.cell");
  Assembler w0 = WriteOnce("corpus.w0", 1);
  Assembler w1 = WriteOnce("corpus.w1", 2);
  Spawn(system, w0, shared);
  Spawn(system, w1, shared);

  analysis::InterferenceAnalysisReport report = system.kernel().AnalyzeInterference();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.pairs_interfering, 1u);
  bool found = false;
  for (const analysis::InterferenceVerdict& verdict : report.verdicts) {
    if (verdict.verdict != analysis::PairVerdict::kInterfering) continue;
    found = true;
    ASSERT_EQ(verdict.shared.size(), 1u);
    EXPECT_EQ(verdict.shared[0], shared.index());
    EXPECT_NE(verdict.message.find("corpus.cell"), std::string::npos) << verdict.message;
  }
  EXPECT_TRUE(found);
  system.Run();
}

TEST(InterferenceCorpusTest, ImmutableCertifiedObjectServesAuditedCertifiedHits) {
  System system(CorpusConfig(true, true));
  AccessDescriptor shared = MakeShared(system, "corpus.table", 5);
  Assembler reader = ReadLoop("corpus.reader", 200);
  Spawn(system, reader, shared);

  // Static claim first: the read-only object earns a strict immutable certificate.
  analysis::InterferenceAnalysisReport report = system.kernel().AnalyzeInterference();
  const analysis::CacheCertificate* cert = nullptr;
  for (const analysis::CacheCertificate& c : report.certificates) {
    if (c.object == shared.index() && c.part == analysis::ObjectPart::kData) cert = &c;
  }
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->grade, analysis::CacheGrade::kImmutable);
  EXPECT_FALSE(cert->caveat);

  // Dynamic ground truth: certified hits happen, and the auditor confirms every one.
  system.Run();
  XlatCacheStats stats = system.kernel().xlat_stats();
  EXPECT_GT(stats.certified_hits, 0u);
  EXPECT_GT(system.kernel().interference_auditor()->stats().hits_checked, 0u);
  EXPECT_EQ(system.kernel().interference_auditor()->stats().violations, 0u);
  EXPECT_EQ(system.kernel().stats().interference_violations, 0u);
}

TEST(InterferenceCorpusTest, MutationAfterCertificationRetractsTheCertificate) {
  System system(CorpusConfig(true, true));
  AccessDescriptor shared = MakeShared(system, "corpus.retract", 5);
  Assembler reader = ReadLoop("corpus.reader", 50);
  Spawn(system, reader, shared);

  analysis::InterferenceAnalysisReport before = system.kernel().AnalyzeInterference();
  ASSERT_EQ(before.certified_immutable, 1u);
  uint64_t invalidations = system.kernel().stats().xlat_invalidations;

  // A writer entering the system retracts immutability before it executes a single
  // instruction: registering unsummarized code clears every cache at spawn.
  Assembler writer = WriteOnce("corpus.writer", 9);
  Spawn(system, writer, shared);
  EXPECT_GT(system.kernel().stats().xlat_invalidations, invalidations);

  analysis::InterferenceAnalysisReport after = system.kernel().AnalyzeInterference();
  const analysis::CacheCertificate* cert = nullptr;
  for (const analysis::CacheCertificate& c : after.certificates) {
    if (c.object == shared.index() && c.part == analysis::ObjectPart::kData) cert = &c;
  }
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->grade, analysis::CacheGrade::kMutable);

  // The run stays clean: the retraction happened before any certified entry could serve.
  system.Run();
  EXPECT_EQ(system.kernel().stats().interference_violations, 0u);
}

TEST(InterferenceCorpusTest, ForcedMutationOfACertifiedObjectTripsTheAuditor) {
  System system(CorpusConfig(true, true));
  AccessDescriptor shared = MakeShared(system, "corpus.victim", 5);
  Assembler reader = ReadLoop("corpus.reader", 400);
  Spawn(system, reader, shared);
  system.machine().trace().Enable();

  // Let the certified entry fill and serve, then corrupt the object behind the analysis's
  // back — the host-side equivalent of unsummarized code mutating certified state.
  system.RunUntil(2000);
  system.machine().table().At(shared.index()).data_epoch += 1;
  system.Run();

  EXPECT_GT(system.kernel().stats().interference_violations, 0u);
  EXPECT_GT(system.kernel().interference_auditor()->stats().violations, 0u);
  bool traced = false;
  for (const TraceEvent& event : system.machine().trace().Snapshot()) {
    if (event.kind == TraceEventKind::kInterferenceViolation) {
      traced = true;
      EXPECT_EQ(event.a, shared.index());
      EXPECT_EQ(event.b,
                static_cast<uint32_t>(analysis::InterferenceViolationKind::kMutated));
    }
  }
  EXPECT_TRUE(traced);
}

TEST(InterferenceCorpusTest, BootedSystemAnalyzesCleanWithTheDaemonRunning) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 2;
  config.xlat_cache = true;
  config.interference_audit = true;
  System system(config);  // GC daemon on: an opaque resident program in the mix

  analysis::InterferenceAnalysisReport report = system.kernel().AnalyzeInterference();
  EXPECT_TRUE(report.ok()) << analysis::FormatInterferenceReport(report);

  system.RunUntil(200000);
  EXPECT_EQ(system.kernel().stats().interference_violations, 0u);
}

TEST(InterferenceCorpusTest, ReplayFingerprintIsBitIdenticalWithCacheAndAuditor) {
  auto run = [](bool cache, bool audit) {
    System system(CorpusConfig(cache, audit));
    system.machine().trace().Enable();
    AccessDescriptor left = MakeShared(system, "corpus.left", 1);
    AccessDescriptor right = MakeShared(system, "corpus.right", 2);
    Assembler a = ReadLoop("corpus.a", 100);
    Assembler b("corpus.b");
    auto loop = b.NewLabel();
    b.MoveAd(1, kArgAdReg)
        .LoadImm(0, 0)
        .LoadImm(3, 60)
        .Bind(loop)
        .LoadData(2, 1, 0, 8)
        .AddImm(2, 2, 1)
        .StoreData(1, 2, 0, 8)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 3, loop)
        .Halt();
    Spawn(system, a, left);
    Spawn(system, b, right);
    system.Run();
    return FingerprintTrace(system.machine().trace().Snapshot());
  };
  uint64_t off = run(false, false);
  uint64_t on = run(true, true);
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace imax432

// Ground truth for the static deadlock detector: a real 3-process receive ring is both
// flagged by Kernel::AnalyzeSystem() *and* actually deadlocks when run — every process ends
// blocked at its port with the simulation idle. The clean counterpart (same topology, but a
// message primed into the ring) is neither flagged nor stuck.

#include <gtest/gtest.h>

#include <string>

#include "src/analysis/deadlock.h"
#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class DeadlockCycleTest : public ::testing::Test {
 protected:
  DeadlockCycleTest() : machine_(SmallConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  AccessDescriptor MakePort(const std::string& name) {
    auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
    EXPECT_TRUE(port.ok());
    kernel_.symbols().Name(port.value().index(), name);
    return port.value();
  }

  // carrier slot 0 = receive-from port, slot 1 = send-to port.
  AccessDescriptor MakeCarrier(const AccessDescriptor& recv, const AccessDescriptor& send) {
    auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 2,
                                        rights::kRead | rights::kWrite);
    EXPECT_TRUE(carrier.ok());
    EXPECT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, recv).ok());
    EXPECT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, send).ok());
    return carrier.value();
  }

  // Receives once from its own port, forwards the message to the next member, halts.
  AccessDescriptor SpawnRingMember(int i, const AccessDescriptor& own,
                                   const AccessDescriptor& next) {
    Assembler a("ring.p" + std::to_string(i));
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadAd(3, 1, 1)
        .Receive(4, 2)
        .Send(3, 4)
        .Halt();
    ProcessOptions options;
    options.initial_arg = MakeCarrier(own, next);
    auto process = kernel_.CreateProcess(a.Build(), options);
    EXPECT_TRUE(process.ok()) << FaultName(process.fault());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    return process.value();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(DeadlockCycleTest, StaticDetectorFlagsTheRingAndTheRingReallyDeadlocks) {
  AccessDescriptor ports[3] = {MakePort("ring.0"), MakePort("ring.1"), MakePort("ring.2")};
  AccessDescriptor procs[3];
  for (int i = 0; i < 3; ++i) procs[i] = SpawnRingMember(i, ports[i], ports[(i + 1) % 3]);

  // Static verdict first, before a single instruction executes.
  analysis::SystemAnalysisReport report = kernel_.AnalyzeSystem();
  ASSERT_EQ(report.diagnostics.size(), 1u) << analysis::FormatReport(report);
  const analysis::SystemDiagnostic& diagnostic = report.diagnostics[0];
  EXPECT_EQ(diagnostic.rule, analysis::SystemRule::kDeadlockCycle);
  EXPECT_EQ(diagnostic.programs.size(), 3u);
  EXPECT_EQ(diagnostic.ports.size(), 3u);
  EXPECT_NE(diagnostic.message.find("'ring.0'"), std::string::npos) << diagnostic.message;

  // Dynamic ground truth: the simulation drains to idle with every member still blocked.
  kernel_.Run();
  for (const AccessDescriptor& process : procs) {
    EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kBlocked)
        << analysis::FormatReport(report);
  }
}

TEST_F(DeadlockCycleTest, PrimedRingIsCleanAndRunsToCompletion) {
  AccessDescriptor ports[3] = {MakePort("ring.0"), MakePort("ring.1"), MakePort("ring.2")};
  AccessDescriptor procs[3];
  for (int i = 0; i < 3; ++i) procs[i] = SpawnRingMember(i, ports[i], ports[(i + 1) % 3]);

  // A token primed into the ring from outside: PostMessage both unblocks the ring at run
  // time and marks ring.0 externally fed, so the static cycle claim must not fire.
  auto token = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                    rights::kRead | rights::kWrite);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(kernel_.PostMessage(ports[0], token.value()).ok());

  analysis::SystemAnalysisReport report = kernel_.AnalyzeSystem();
  EXPECT_TRUE(report.ok()) << analysis::FormatReport(report);

  kernel_.Run();
  for (const AccessDescriptor& process : procs) {
    EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);
  }
}

}  // namespace
}  // namespace imax432

// Integration tests: several iMAX packages cooperating in one running system, plus the §4
// extensibility property ("any system interface can be mimicked by a user package. This
// makes it straightforward for a user to extend the system interface, trap certain system
// calls, or otherwise alter iMAX services.").

#include <gtest/gtest.h>

#include "src/filing/object_store.h"
#include "src/io/devices.h"
#include "src/os/schedulers.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

SystemConfig IntegrationConfig() {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 4 * 1024 * 1024;
  config.machine.object_table_capacity = 16384;
  return config;
}

// A user package that interposes on the Untyped_Ports interface: identical surface,
// observable side effects (message counting). No special compiler or kernel support — the
// paper's point that system interfaces are ordinary interfaces.
class CountingPorts {
 public:
  explicit CountingPorts(Kernel* kernel) : inner_(kernel) {}

  Result<Port> Create(uint16_t message_count,
                      QueueDiscipline discipline = QueueDiscipline::kFifo) {
    return inner_.Create(message_count, discipline);
  }
  Status Send(const Port& port, const AnyAccess& message) {
    ++sends_;
    return inner_.Send(port, message);
  }
  Result<AnyAccess> Receive(const Port& port) {
    ++receives_;
    return inner_.Receive(port);
  }
  uint64_t sends() const { return sends_; }
  uint64_t receives() const { return receives_; }

 private:
  UntypedPorts inner_;
  uint64_t sends_ = 0;
  uint64_t receives_ = 0;
};

TEST(InterpositionTest, UserPackageMimicsSystemInterface) {
  System system(IntegrationConfig());
  CountingPorts counting(&system.kernel());
  auto port = counting.Create(4);
  ASSERT_TRUE(port.ok());
  auto message = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 0, rights::kRead);
  ASSERT_TRUE(message.ok());
  // Client code written against the Untyped_Ports surface runs unchanged on the wrapper.
  ASSERT_TRUE(counting.Send(port.value(), message.value()).ok());
  auto back = counting.Receive(port.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().SameObject(message.value()));
  EXPECT_EQ(counting.sends(), 1u);
  EXPECT_EQ(counting.receives(), 1u);
}

TEST(IntegrationTest, PackagesComposeInOneRunningSystem) {
  // One system: a device (console), a typed-object manager with a destruction filter, a
  // scheduler-mediated worker tree, the GC daemon, and object filing — all at once.
  SystemConfig config = IntegrationConfig();
  config.recover_lost_processes = true;
  System system(config);
  auto& kernel = system.kernel();

  // Device.
  auto console_model = std::make_unique<ConsoleDevice>();
  ConsoleDevice* console = console_model.get();
  auto console_server = DeviceServer::Spawn(&kernel, std::move(console_model));
  ASSERT_TRUE(console_server.ok());

  // Typed resource with filter.
  auto filter_port =
      kernel.ports().CreatePort(system.memory().global_heap(), 8, QueueDiscipline::kFifo);
  auto tdo = system.types().CreateTypeDefinition(0xcafe, filter_port.value());
  ASSERT_TRUE(filter_port.ok() && tdo.ok());
  kernel.AddRootProvider([tdo = tdo.value(), port = filter_port.value()](
                             std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(port);
  });
  auto resource = system.types().CreateTypedObject(
      tdo.value(), system.memory().global_heap(), 32, 0, rights::kRead);
  ASSERT_TRUE(resource.ok());  // ...and immediately lost (host AD is no root)

  // Scheduler-mediated workers.
  SchedulerStats sched_stats;
  auto scheduler =
      SpawnPassThroughScheduler(&kernel, &system.process_manager(), &sched_stats);
  ASSERT_TRUE(scheduler.ok());
  std::vector<AccessDescriptor> workers;
  for (int i = 0; i < 3; ++i) {
    Assembler a("worker");
    a.Compute(5000).Halt();
    ProcessOptions options;
    options.scheduler_port = scheduler.value().port;
    auto worker = system.process_manager().Create(a.Build(), options);
    ASSERT_TRUE(worker.ok());
    workers.push_back(worker.value());
    kernel.AddRootProvider([ad = worker.value()](std::vector<AccessDescriptor>* roots) {
      roots->push_back(ad);
    });
    ASSERT_TRUE(system.process_manager().Start(worker.value()).ok());
  }

  // Filing.
  ObjectStore store(&kernel, &system.types());
  auto document = system.memory().CreateObject(system.memory().global_heap(),
                                               SystemType::kGeneric, 64, 0,
                                               rights::kRead | rights::kWrite);
  ASSERT_TRUE(document.ok());
  ASSERT_TRUE(system.machine().addressing().WriteData(document.value(), 0, 8, 4242).ok());
  ASSERT_TRUE(store.File("report", document.value()).ok());

  // Run everything, write to the console, collect garbage.
  system.Run();
  IoClient client(&kernel);
  auto buffer = system.memory().CreateObject(system.memory().global_heap(),
                                             SystemType::kGeneric, 32, 0,
                                             rights::kRead | rights::kWrite);
  ASSERT_TRUE(buffer.ok());
  ASSERT_TRUE(
      system.machine().addressing().WriteDataBlock(buffer.value(), 0, "done\n", 5).ok());
  ASSERT_TRUE(client
                  .Transfer(console_server.value()->request_port(), io_op::kWrite, 0,
                            buffer.value(), 5)
                  .ok());
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();

  // Everyone did their job.
  for (const AccessDescriptor& worker : workers) {
    EXPECT_EQ(kernel.process_view(worker).state(), ProcessState::kTerminated);
  }
  EXPECT_EQ(sched_stats.admitted, 3u);
  EXPECT_EQ(console->output(), "done\n");
  // The lost typed resource came back through its filter.
  auto recovered = kernel.ports().Dequeue(filter_port.value());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().SameObject(resource.value()));
  // The filed document survives independent of its original.
  auto restored = store.Retrieve("report", system.memory().global_heap());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(system.machine().addressing().ReadData(restored.value(), 0, 8).value(), 4242u);
  // And the system is still healthy: another program runs fine.
  Assembler epilogue("epilogue");
  epilogue.Compute(100).Halt();
  auto last = system.Spawn(epilogue.Build());
  ASSERT_TRUE(last.ok());
  system.Run();
  EXPECT_EQ(kernel.process_view(last.value()).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel.stats().panics, 0u);
}

TEST(IntegrationTest, DomainsProtectPackageState) {
  // A counter package: its state object is reachable only through the domain's access part.
  // Clients holding only the (call-rights) domain AD can invoke entries but cannot read or
  // forge the state — the "small protection domain" in action.
  System system(IntegrationConfig());
  auto& kernel = system.kernel();

  // State object: one u64 counter.
  auto counter = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 0,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(counter.ok());

  // Entry 0: increment the counter and return its new value in r7. The entry code reaches
  // the state through the domain (a6), slot index entry_count + 0.
  Assembler increment("increment");
  increment.LoadAd(1, kDomainAdReg, 1)  // a1 = state (slot 1 = after the 1 entry)
      .LoadData(0, 1, 0, 8)
      .AddImm(0, 0, 1)
      .StoreData(1, 0, 0, 8)
      .Move(7, 0)
      .ClearAd(7)
      .Return();
  auto segment = kernel.programs().Register(increment.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel.CreateDomain({segment.value()}, /*state_slots=*/1);
  ASSERT_TRUE(domain.ok());
  ASSERT_TRUE(kernel.SetDomainState(domain.value(), 0, counter.value()).ok());

  // But wait: entry code reads the domain via a6, which carries only call rights — reading
  // its access part must be amplified by the call machinery. Verify the *client-side*
  // protection too: a client cannot LoadAd from the domain AD.
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 1,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(
      system.machine().addressing().WriteAd(carrier.value(), 0, domain.value()).ok());

  Assembler snoop("snoop");
  snoop.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)   // a2 = domain (call rights only)
      .LoadAd(3, 2, 1)   // attempt to read the state slot: must fault
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto snooper = system.Spawn(snoop.Build(), options);
  ASSERT_TRUE(snooper.ok());
  system.Run();
  EXPECT_EQ(kernel.process_view(snooper.value()).fault_code(), Fault::kRightsViolation);
}

}  // namespace
}  // namespace imax432

// Stress and failure-injection tests: randomized fleets of processes — including deliberately
// broken ones — must never corrupt the kernel. Every process ends in a terminal or parked
// state, every fault is delivered or contained, and the machine stays serviceable.

#include <gtest/gtest.h>

#include "src/base/xorshift.h"
#include "src/os/ada_runtime.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

SystemConfig StressConfig(int processors) {
  SystemConfig config;
  config.processors = processors;
  config.machine.memory_bytes = 4 * 1024 * 1024;
  config.machine.object_table_capacity = 16384;
  config.machine.time_slice = 8000;  // aggressive slicing: more interleavings
  return config;
}

// Builds a random program. `hostile` programs include operations that fault (null
// dereference, rights violations, bad slots, escaping stores).
ProgramRef RandomProgram(Xorshift& rng, bool hostile) {
  Assembler a(hostile ? "hostile" : "benign");
  a.MoveAd(1, kArgAdReg);  // a1 = heap
  int length = static_cast<int>(rng.NextInRange(4, 24));
  for (int i = 0; i < length; ++i) {
    switch (rng.NextBelow(hostile ? 8 : 5)) {
      case 0:
        a.Compute(static_cast<uint32_t>(rng.NextInRange(10, 800)));
        break;
      case 1:
        a.LoadImm(static_cast<uint8_t>(rng.NextBelow(7)), rng.Next());
        break;
      case 2:
        a.CreateObject(2, 1, static_cast<uint32_t>(rng.NextInRange(8, 512)));
        break;
      case 3:
        a.CreateObject(2, 1, 64).LoadImm(0, 5).StoreData(2, 0, 0, 8).LoadData(3, 2, 0, 8);
        break;
      case 4:
        a.CreateSro(3, 1, 4096).CreateObject(4, 3, 64).DestroySro(3);
        break;
      case 5:  // hostile: null dereference
        a.ClearAd(5).LoadData(0, 5, 0, 8);
        break;
      case 6:  // hostile: rights violation
        a.CreateObject(2, 1, 32).RestrictRights(2, rights::kRead).StoreData(2, 0, 0, 8);
        break;
      case 7:  // hostile: dangling use after local heap destruction
        a.CreateSro(3, 1, 2048).CreateObject(4, 3, 32).DestroySro(3).LoadData(0, 4, 0, 8);
        break;
    }
  }
  a.Halt();
  return a.Build();
}

TEST(StressTest, RandomFleetNeverCorruptsTheKernel) {
  for (uint64_t seed : {7u, 77u, 777u}) {
    Xorshift rng(seed);
    System system(StressConfig(4));
    std::vector<AccessDescriptor> processes;
    auto fault_port = system.kernel().ports().CreatePort(system.memory().global_heap(), 128,
                                                         QueueDiscipline::kFifo);
    ASSERT_TRUE(fault_port.ok());
    system.kernel().AddRootProvider(
        [&processes, port = fault_port.value()](std::vector<AccessDescriptor>* roots) {
          roots->push_back(port);
          for (const AccessDescriptor& process : processes) {
            roots->push_back(process);
          }
        });

    for (int i = 0; i < 40; ++i) {
      bool hostile = rng.NextChance(1, 3);
      ProcessOptions options;
      options.initial_arg = system.memory().global_heap();
      options.priority = static_cast<uint8_t>(rng.NextInRange(1, 250));
      options.fault_port = rng.NextChance(1, 2) ? fault_port.value() : AccessDescriptor();
      auto process = system.Spawn(RandomProgram(rng, hostile), options);
      ASSERT_TRUE(process.ok()) << "seed " << seed << " process " << i;
      processes.push_back(process.value());
    }
    system.Run();

    // Every process reached a terminal state (user-level faults never panic the system).
    for (const AccessDescriptor& process : processes) {
      ProcessState state = system.kernel().process_view(process).state();
      EXPECT_TRUE(state == ProcessState::kTerminated || state == ProcessState::kFaulted)
          << "seed " << seed << ": " << ProcessStateName(state);
    }
    EXPECT_EQ(system.kernel().stats().panics, 0u);

    // Collection still works over whatever the fleet left behind, repeatedly.
    ASSERT_TRUE(system.RequestCollection().ok());
    system.Run();
    ASSERT_TRUE(system.RequestCollection().ok());
    system.Run();

    // The machine is still serviceable.
    Assembler epilogue("epilogue");
    epilogue.Compute(100).Halt();
    auto last = system.Spawn(epilogue.Build());
    ASSERT_TRUE(last.ok());
    system.Run();
    EXPECT_EQ(system.kernel().process_view(last.value()).state(),
              ProcessState::kTerminated);
  }
}

TEST(StressTest, FaultStormIsFullyDelivered) {
  // 30 processes all fault; every one is delivered to the fault port exactly once.
  System system(StressConfig(2));
  auto fault_port = system.kernel().ports().CreatePort(system.memory().global_heap(), 64,
                                                       QueueDiscipline::kFifo);
  ASSERT_TRUE(fault_port.ok());
  system.kernel().AddRootProvider(
      [port = fault_port.value()](std::vector<AccessDescriptor>* roots) {
        roots->push_back(port);
      });
  constexpr int kCount = 30;
  for (int i = 0; i < kCount; ++i) {
    Assembler a("faulter");
    a.ClearAd(1).LoadData(0, 1, 0, 8).Halt();
    ProcessOptions options;
    options.fault_port = fault_port.value();
    ASSERT_TRUE(system.Spawn(a.Build(), options).ok());
  }
  system.Run();
  int delivered = 0;
  while (system.kernel().ports().Dequeue(fault_port.value()).ok()) {
    ++delivered;
  }
  EXPECT_EQ(delivered, kCount);
  EXPECT_EQ(system.kernel().stats().faults_delivered, static_cast<uint64_t>(kCount));
}

TEST(StressTest, DanglingDispatchEntriesAreSkipped) {
  // A local-lifetime task is ready (queued at the global dispatching port) when its whole
  // scope is destroyed. The stale dispatch entry must be skipped, not executed.
  System system(StressConfig(1));
  BasicProcessManager manager(&system.kernel());

  // Occupy the single processor so the victim stays queued.
  Assembler hog_program("hog");
  auto loop = hog_program.NewLabel();
  hog_program.LoadImm(0, 0).LoadImm(1, 1u << 20).Bind(loop).Compute(500).AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop).Halt();
  ProcessOptions hog_options;
  hog_options.priority = 200;
  auto hog = system.Spawn(hog_program.Build(), hog_options);
  ASSERT_TRUE(hog.ok());
  system.RunUntil(system.now() + 5000);  // hog is running

  auto scope = TaskScope::Open(&system.kernel(), &manager, 64 * 1024);
  ASSERT_TRUE(scope.ok());
  Assembler task_program("victim");
  task_program.Compute(100).Halt();
  ProcessOptions task_options;
  task_options.priority = 10;  // below the hog: stays queued
  auto victim = scope.value().DeclareTask(task_program.Build(), task_options);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(scope.value().Activate().ok());
  system.RunUntil(system.now() + 5000);  // victim now queued at the dispatch port

  // Destroy the scope out from under the queued task (the task has not completed, so Close
  // refuses; model an abortive teardown by destroying the SRO directly).
  ASSERT_TRUE(system.memory().DestroySro(scope.value().sro()).ok());
  EXPECT_FALSE(system.machine().table().Resolve(victim.value()).ok());

  // Drain: the hog finishes; the stale entry is skipped without a crash; the system stays
  // healthy and can run new work.
  system.Run();
  EXPECT_EQ(system.kernel().process_view(hog.value()).state(), ProcessState::kTerminated);
  Assembler epilogue("epilogue");
  epilogue.Compute(10).Halt();
  auto last = system.Spawn(epilogue.Build());
  ASSERT_TRUE(last.ok());
  system.Run();
  EXPECT_EQ(system.kernel().process_view(last.value()).state(), ProcessState::kTerminated);
  EXPECT_EQ(system.kernel().stats().panics, 0u);
}

TEST(StressTest, ObjectTableExhaustionIsAFaultNotACrash) {
  SystemConfig config = StressConfig(1);
  config.machine.object_table_capacity = 64;  // tiny table
  config.start_gc_daemon = false;
  System system(config);
  Assembler a("allocator");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(1, 200)
      .Bind(loop)
      .CreateObject(2, 1, 16)
      .ClearAd(2)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = system.memory().global_heap();
  auto process = system.Spawn(a.Build(), options);
  ASSERT_TRUE(process.ok());
  system.Run();
  EXPECT_EQ(system.kernel().process_view(process.value()).state(),
            ProcessState::kTerminated);
  EXPECT_EQ(system.kernel().process_view(process.value()).fault_code(),
            Fault::kObjectTableFull);
}

TEST(StressTest, ManyScopesOpenAndCloseCleanly) {
  System system(StressConfig(2));
  BasicProcessManager manager(&system.kernel());
  uint32_t live_baseline = system.machine().table().live_count();
  for (int round = 0; round < 20; ++round) {
    auto scope = TaskScope::Open(&system.kernel(), &manager, 64 * 1024);
    ASSERT_TRUE(scope.ok());
    for (int t = 0; t < 3; ++t) {
      Assembler a("t");
      a.Compute(500).Halt();
      ASSERT_TRUE(scope.value().DeclareTask(a.Build()).ok());
    }
    ASSERT_TRUE(scope.value().Activate().ok());
    ASSERT_TRUE(scope.value().AwaitCompletion(system.now() + 10000000));
    ASSERT_TRUE(scope.value().Close().ok());
  }
  // Scope storage came back via bulk destruction; the global-heap residue (each task's
  // instruction segment) is garbage for the collector. After one cycle, no monotone leak.
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  EXPECT_EQ(system.machine().table().live_count(), live_baseline);
}

}  // namespace
}  // namespace imax432

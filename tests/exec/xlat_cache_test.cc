// The AD-translation cache (src/arch/xlat_cache.h) and its kernel integration: the
// direct-mapped structure itself, the addressing-unit epoch-keyed tier (every downstream
// check still enforced), the program-fetch tiers, invalidation on analysis retraction, and
// the pure-observer contract (bit-identical virtual time with the cache on or off).

#include "src/arch/xlat_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/arch/object_descriptor.h"
#include "src/arch/rights.h"
#include "src/exec/kernel.h"
#include "src/isa/assembler.h"
#include "src/memory/basic_memory_manager.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

// --- The structure itself ---------------------------------------------------------------

TEST(XlatCacheTest, ProbeIsDirectMappedModuloEntries) {
  XlatCache cache;
  EXPECT_EQ(&cache.Probe(5), &cache.Probe(5 + XlatCache::kEntries));
  EXPECT_NE(&cache.Probe(5), &cache.Probe(6));
}

TEST(XlatCacheTest, ClearDropsEntriesButKeepsStats) {
  XlatCache cache;
  cache.Probe(3).index = 3;
  cache.stats().hits = 7;
  cache.Clear();
  EXPECT_EQ(cache.Probe(3).index, kInvalidObjectIndex);
  EXPECT_EQ(cache.Probe(3).descriptor, nullptr);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(XlatCacheTest, CertifiedMembershipFollowsTheBoundSet) {
  XlatCache cache;
  EXPECT_FALSE(cache.IsCertified(7));  // no set bound
  std::set<ObjectIndex> certified{7};
  cache.SetCertifiedSet(&certified);
  EXPECT_TRUE(cache.IsCertified(7));
  EXPECT_FALSE(cache.IsCertified(8));
  certified.erase(7);
  EXPECT_FALSE(cache.IsCertified(7));  // live view, not a snapshot
}

TEST(XlatCacheTest, CertifiedHitHookFiresWithTheEntry) {
  XlatCache cache;
  std::vector<ObjectIndex> seen;
  cache.SetCertifiedHitHook(
      [](void* user, const XlatEntry& entry) {
        static_cast<std::vector<ObjectIndex>*>(user)->push_back(entry.index);
      },
      &seen);
  XlatEntry entry;
  entry.index = 42;
  cache.NotifyCertifiedHit(entry);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 42u);
}

// --- Addressing-unit epoch-keyed tier ---------------------------------------------------

class XlatAddressingTest : public ::testing::Test {
 protected:
  XlatAddressingTest() : machine_(SmallConfig()), memory_(&machine_) {
    machine_.addressing().BindXlatCache(&cache_);
  }

  ~XlatAddressingTest() override { machine_.addressing().BindXlatCache(nullptr); }

  AccessDescriptor MakeObject(RightsMask rights = rights::kRead | rights::kWrite |
                                                  rights::kDelete) {
    auto object =
        memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64, 0, rights);
    EXPECT_TRUE(object.ok());
    return object.value();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  XlatCache cache_;
};

TEST_F(XlatAddressingTest, RepeatedAccessHitsAfterTheFirstMiss) {
  AccessDescriptor ad = MakeObject();
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 8, 17).ok());
  uint64_t misses = cache_.stats().misses;
  ASSERT_GT(misses, 0u);
  for (int i = 0; i < 10; ++i) {
    auto read = machine_.addressing().ReadData(ad, 0, 8);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), 17u);
  }
  EXPECT_GT(cache_.stats().hits, 0u);
  EXPECT_EQ(cache_.stats().misses, misses);  // no further authoritative resolves
}

TEST_F(XlatAddressingTest, QuarantineIsStillEnforcedOnCacheHits) {
  AccessDescriptor ad = MakeObject();
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 8, 1).ok());  // entry now cached
  machine_.table().At(ad.index()).quarantined = true;
  auto read = machine_.addressing().ReadData(ad, 0, 8);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault(), Fault::kObjectQuarantined);
}

TEST_F(XlatAddressingTest, RightsAreStillEnforcedOnCacheHits) {
  AccessDescriptor ad = MakeObject();
  ASSERT_TRUE(machine_.addressing().ReadData(ad, 0, 8).ok());  // fill
  AccessDescriptor read_only = ad.Restricted(rights::kRead);
  EXPECT_TRUE(machine_.addressing().ReadData(read_only, 0, 8).ok());
  EXPECT_EQ(machine_.addressing().WriteData(read_only, 0, 8, 1).fault(),
            Fault::kRightsViolation);
}

TEST_F(XlatAddressingTest, FreedObjectMissesAndFaultsThroughTheCache) {
  AccessDescriptor ad = MakeObject();
  ASSERT_TRUE(machine_.addressing().ReadData(ad, 0, 8).ok());  // fill
  ASSERT_TRUE(memory_.DestroyObject(ad).ok());
  auto read = machine_.addressing().ReadData(ad, 0, 8);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.fault(), Fault::kInvalidAccess);
}

TEST_F(XlatAddressingTest, ReusedSlotNeverServesTheOldGeneration) {
  AccessDescriptor old_ad = MakeObject();
  ObjectIndex index = old_ad.index();
  ASSERT_TRUE(machine_.addressing().ReadData(old_ad, 0, 8).ok());  // fill
  ASSERT_TRUE(memory_.DestroyObject(old_ad).ok());
  // Allocate until the slot is reused (the basic manager reuses low indices eagerly).
  AccessDescriptor reused;
  for (int i = 0; i < 64 && reused.index() != index; ++i) {
    reused = MakeObject();
  }
  if (reused.index() == index) {
    ASSERT_TRUE(machine_.addressing().WriteData(reused, 0, 8, 99).ok());
    EXPECT_EQ(machine_.addressing().ReadData(old_ad, 0, 8).fault(), Fault::kInvalidAccess);
    auto fresh = machine_.addressing().ReadData(reused, 0, 8);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh.value(), 99u);
  }
}

// --- Direct-mapped conflicts: aliasing indices share one slot ---------------------------

class XlatConflictTest : public XlatAddressingTest {
 protected:
  // Allocates until an object lands on `first`'s slot (the table hands out consecutive
  // indices, so at most kEntries allocations are needed).
  AccessDescriptor MakeAliasingObject(const AccessDescriptor& first) {
    for (uint32_t i = 0; i < 2 * XlatCache::kEntries; ++i) {
      AccessDescriptor candidate = MakeObject();
      if (candidate.index() != first.index() &&
          (candidate.index() & (XlatCache::kEntries - 1)) ==
              (first.index() & (XlatCache::kEntries - 1))) {
        return candidate;
      }
    }
    ADD_FAILURE() << "no aliasing index allocated";
    return first;
  }
};

TEST_F(XlatConflictTest, AliasingObjectsEvictEachOtherAndStayCorrect) {
  AccessDescriptor a = MakeObject();
  AccessDescriptor b = MakeAliasingObject(a);
  ASSERT_TRUE(machine_.addressing().WriteData(a, 0, 8, 111).ok());
  ASSERT_TRUE(machine_.addressing().WriteData(b, 0, 8, 222).ok());
  // b's fill took the shared slot.
  EXPECT_EQ(cache_.Probe(a.index()).index, b.index());

  uint64_t misses = cache_.stats().misses;
  auto read_a = machine_.addressing().ReadData(a, 0, 8);  // conflict miss: evicts b
  ASSERT_TRUE(read_a.ok());
  EXPECT_EQ(read_a.value(), 111u);
  EXPECT_GT(cache_.stats().misses, misses);
  EXPECT_EQ(cache_.Probe(b.index()).index, a.index());

  auto read_b = machine_.addressing().ReadData(b, 0, 8);  // and back again
  ASSERT_TRUE(read_b.ok());
  EXPECT_EQ(read_b.value(), 222u);
  EXPECT_EQ(cache_.Probe(a.index()).index, b.index());
}

TEST_F(XlatConflictTest, CertifiedEntryEvictedByAnAliasingEpochKeyedEntry) {
  AccessDescriptor a = MakeObject();
  AccessDescriptor b = MakeAliasingObject(a);
  ASSERT_TRUE(machine_.addressing().WriteData(a, 0, 8, 111).ok());
  ASSERT_TRUE(machine_.addressing().WriteData(b, 0, 8, 222).ok());

  std::set<ObjectIndex> certified{a.index()};
  cache_.SetCertifiedSet(&certified);
  cache_.Clear();  // the kernel clears on every certified-set change; mirror that here

  uint64_t certified_hits = cache_.stats().certified_hits;
  ASSERT_TRUE(machine_.addressing().ReadData(a, 0, 8).ok());  // certified fill
  ASSERT_TRUE(machine_.addressing().ReadData(a, 0, 8).ok());  // certified hit
  EXPECT_TRUE(cache_.Probe(a.index()).certified);
  EXPECT_GT(cache_.stats().certified_hits, certified_hits);

  // The uncertified alias steals the slot: the certified entry is gone, not downgraded.
  ASSERT_TRUE(machine_.addressing().ReadData(b, 0, 8).ok());
  EXPECT_EQ(cache_.Probe(a.index()).index, b.index());
  EXPECT_FALSE(cache_.Probe(a.index()).certified);

  // The evicted object refills (compulsory miss) and re-certifies; values stay correct.
  uint64_t misses = cache_.stats().misses;
  auto read_a = machine_.addressing().ReadData(a, 0, 8);
  ASSERT_TRUE(read_a.ok());
  EXPECT_EQ(read_a.value(), 111u);
  EXPECT_GT(cache_.stats().misses, misses);
  EXPECT_TRUE(cache_.Probe(a.index()).certified);
  cache_.SetCertifiedSet(nullptr);
}

TEST_F(XlatConflictTest, EpochKeyedEntryEvictedByAnAliasingCertifiedEntry) {
  AccessDescriptor a = MakeObject();
  AccessDescriptor b = MakeAliasingObject(a);
  ASSERT_TRUE(machine_.addressing().WriteData(a, 0, 8, 111).ok());
  ASSERT_TRUE(machine_.addressing().WriteData(b, 0, 8, 222).ok());

  std::set<ObjectIndex> certified{b.index()};
  cache_.SetCertifiedSet(&certified);
  cache_.Clear();

  ASSERT_TRUE(machine_.addressing().ReadData(a, 0, 8).ok());  // epoch-keyed fill
  EXPECT_FALSE(cache_.Probe(a.index()).certified);

  ASSERT_TRUE(machine_.addressing().ReadData(b, 0, 8).ok());  // certified fill evicts a
  EXPECT_EQ(cache_.Probe(a.index()).index, b.index());
  EXPECT_TRUE(cache_.Probe(b.index()).certified);

  // Ping-pong stays correct in both directions under mixed tiers.
  auto read_a = machine_.addressing().ReadData(a, 0, 8);
  ASSERT_TRUE(read_a.ok());
  EXPECT_EQ(read_a.value(), 111u);
  auto read_b = machine_.addressing().ReadData(b, 0, 8);
  ASSERT_TRUE(read_b.ok());
  EXPECT_EQ(read_b.value(), 222u);
  cache_.SetCertifiedSet(nullptr);
}

// --- Kernel integration ------------------------------------------------------------------

// A self-contained workload: bumps a counter in the shared object `iters` times.
Assembler CounterLoop(const std::string& name, uint32_t iters) {
  Assembler a(name);
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 0)
      .LoadImm(3, iters)
      .Bind(loop)
      .LoadData(2, 1, 0, 8)
      .AddImm(2, 2, 1)
      .StoreData(1, 2, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 3, loop)
      .Halt();
  return a;
}

SystemConfig CacheConfig(bool cache, bool audit) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 1;
  config.verify_on_load = true;  // summaries land at spawn, like the shipped configuration
  config.start_gc_daemon = false;
  config.xlat_cache = cache;
  config.interference_audit = audit;
  return config;
}

struct RunOutcome {
  Cycles now = 0;
  uint64_t instructions = 0;
  uint64_t counter = 0;
};

RunOutcome RunCounterWorkload(System& system, uint32_t iters) {
  auto shared = system.memory().CreateObject(system.memory().global_heap(),
                                             SystemType::kGeneric, 64, 0,
                                             rights::kRead | rights::kWrite);
  EXPECT_TRUE(shared.ok());
  Assembler a = CounterLoop("xlat.counter", iters);
  ProcessOptions options;
  options.initial_arg = shared.value();
  EXPECT_TRUE(system.Spawn(a.Build(), options).ok());
  system.Run();
  RunOutcome outcome;
  outcome.now = system.machine().now();
  outcome.instructions = system.kernel().stats().instructions_executed;
  auto counter = system.machine().addressing().ReadData(shared.value(), 0, 8);
  EXPECT_TRUE(counter.ok());
  outcome.counter = counter.value();
  return outcome;
}

TEST(XlatKernelTest, DisabledByDefaultAndStatsStayZero) {
  System system(CacheConfig(false, false));
  RunCounterWorkload(system, 50);
  EXPECT_FALSE(system.kernel().xlat_cache_enabled());
  XlatCacheStats stats = system.kernel().xlat_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.program_hits + stats.program_misses, 0u);
}

TEST(XlatKernelTest, HotLoopPopulatesBothCacheTiers) {
  System system(CacheConfig(true, false));
  RunOutcome outcome = RunCounterWorkload(system, 200);
  EXPECT_EQ(outcome.counter, 200u);
  XlatCacheStats stats = system.kernel().xlat_stats();
  EXPECT_GT(stats.hits, 0u);
  // The instruction segment is written by no program: the program-fetch tier runs certified.
  EXPECT_GT(stats.certified_program_hits, 0u);
  EXPECT_GT(stats.program_misses, 0u);  // the compulsory fill
}

TEST(XlatKernelTest, VirtualTimeAndResultsAreBitIdenticalOffAndOn) {
  System off(CacheConfig(false, false));
  System on(CacheConfig(true, true));
  RunOutcome off_outcome = RunCounterWorkload(off, 300);
  RunOutcome on_outcome = RunCounterWorkload(on, 300);
  EXPECT_EQ(off_outcome.now, on_outcome.now);
  EXPECT_EQ(off_outcome.instructions, on_outcome.instructions);
  EXPECT_EQ(off_outcome.counter, on_outcome.counter);
}

TEST(XlatKernelTest, SystemConfigWiresCacheAndAuditor) {
  System plain(CacheConfig(false, false));
  EXPECT_FALSE(plain.kernel().xlat_cache_enabled());
  EXPECT_EQ(plain.kernel().interference_auditor(), nullptr);

  System armed(CacheConfig(true, true));
  EXPECT_TRUE(armed.kernel().xlat_cache_enabled());
  ASSERT_NE(armed.kernel().interference_auditor(), nullptr);
}

TEST(XlatKernelTest, AuditorConfirmsEveryCertifiedHitOnACleanRun) {
  System system(CacheConfig(true, true));
  RunCounterWorkload(system, 200);
  const analysis::InterferenceAuditorStats& stats =
      system.kernel().interference_auditor()->stats();
  EXPECT_GT(stats.hits_checked, 0u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(system.kernel().stats().interference_violations, 0u);
}

TEST(XlatKernelTest, NewSummaryInvalidatesEveryTranslationCache) {
  System system(CacheConfig(true, false));
  RunCounterWorkload(system, 100);
  uint64_t invalidations = system.kernel().stats().xlat_invalidations;
  EXPECT_GT(invalidations, 0u);  // the spawn's RecordEffectSummary already invalidated

  // A second program entering the system retracts certificates again.
  auto shared = system.memory().CreateObject(system.memory().global_heap(),
                                             SystemType::kGeneric, 64, 0,
                                             rights::kRead | rights::kWrite);
  ASSERT_TRUE(shared.ok());
  Assembler late = CounterLoop("xlat.late", 10);
  ProcessOptions options;
  options.initial_arg = shared.value();
  ASSERT_TRUE(system.Spawn(late.Build(), options).ok());
  EXPECT_GT(system.kernel().stats().xlat_invalidations, invalidations);
  system.Run();
}

TEST(XlatKernelTest, ForgetProgramAnalysisClearsTheCaches) {
  System system(CacheConfig(true, false));
  RunCounterWorkload(system, 100);
  ASSERT_FALSE(system.kernel().interference_summaries().empty());
  ObjectIndex segment = system.kernel().interference_summaries().begin()->first;
  uint64_t invalidations = system.kernel().stats().xlat_invalidations;
  system.kernel().ForgetProgramAnalysis(segment);
  EXPECT_GT(system.kernel().stats().xlat_invalidations, invalidations);
  EXPECT_EQ(system.kernel().interference_summaries().count(segment), 0u);
}

TEST(XlatKernelTest, InterferenceSummariesRideAlongWithEffectSummaries) {
  System system(CacheConfig(false, false));
  RunCounterWorkload(system, 10);
  EXPECT_EQ(system.kernel().stats().interference_summaries,
            system.kernel().stats().effect_summaries);
  ASSERT_EQ(system.kernel().interference_summaries().size(), 1u);
  const analysis::InterferenceSummary& summary =
      system.kernel().interference_summaries().begin()->second;
  EXPECT_FALSE(summary.opaque);
  EXPECT_EQ(summary.region_count, 1u);  // the counter loop never synchronizes
}

}  // namespace
}  // namespace imax432

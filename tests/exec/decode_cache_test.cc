// The per-processor decode cache (src/arch/decode_cache.h) and its kernel integration:
// the direct-mapped structure, pre-decoded fetch with epoch revalidation, check-elided
// execution of guard-certified instructions, invalidation on analysis retraction, and the
// pure-observer contract (bit-identical virtual time with the cache on or off).

#include "src/arch/decode_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "src/analysis/guards/guards.h"
#include "src/arch/rights.h"
#include "src/exec/kernel.h"
#include "src/isa/assembler.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

// --- The structure itself ---------------------------------------------------------------

TEST(DecodeCacheTest, ProbeIsDirectMappedModuloEntries) {
  DecodeCache cache;
  EXPECT_EQ(&cache.Probe(5), &cache.Probe(5 + DecodeCache::kEntries));
  EXPECT_NE(&cache.Probe(5), &cache.Probe(6));
}

TEST(DecodeCacheTest, ClearDropsEntriesButKeepsStats) {
  DecodeCache cache;
  cache.Probe(3).segment = 3;
  cache.stats().hits = 7;
  cache.Clear();
  EXPECT_EQ(cache.Probe(3).segment, kInvalidObjectIndex);
  EXPECT_FALSE(cache.Probe(3).valid());
  EXPECT_EQ(cache.stats().hits, 7u);
}

// --- Kernel integration ------------------------------------------------------------------

SystemConfig CacheConfig(bool cache, bool audit) {
  SystemConfig config;
  config.machine = SmallConfig();
  config.processors = 1;
  config.verify_on_load = true;  // summaries land at spawn, like the shipped configuration
  config.start_gc_daemon = false;
  config.decode_cache = cache;
  config.guard_audit = audit;
  return config;
}

// Allocation-shaped hot loop (the E2 profile): every iteration creates a fresh object,
// stores into it, reads back, and destroys it. The store and the load are fresh sites, so
// the guard analysis certifies them unconditionally — the decode cache executes them on
// the check-elided fast path.
Assembler AllocLoop(const std::string& name, uint32_t iters) {
  Assembler a(name);
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)  // arg carries the SRO to allocate from
      .LoadImm(0, 0)
      .LoadImm(3, iters)
      .LoadImm(5, 41)
      .Bind(loop)
      .CreateObject(4, 1, 32)
      .StoreData(4, 5, 0, 8)
      .LoadData(6, 4, 0, 8)
      .DestroyObject(4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 3, loop)
      .Halt();
  return a;
}

struct RunOutcome {
  Cycles now = 0;
  uint64_t instructions = 0;
};

RunOutcome RunAllocWorkload(System& system, uint32_t iters) {
  Assembler a = AllocLoop("decode.alloc", iters);
  ProcessOptions options;
  options.initial_arg = system.memory().global_heap();
  EXPECT_TRUE(system.Spawn(a.Build(), options).ok());
  system.Run();
  RunOutcome outcome;
  outcome.now = system.machine().now();
  outcome.instructions = system.kernel().stats().instructions_executed;
  return outcome;
}

TEST(DecodeKernelTest, DisabledByDefaultAndStatsStayZero) {
  System system(CacheConfig(false, false));
  RunAllocWorkload(system, 50);
  EXPECT_FALSE(system.kernel().decode_cache_enabled());
  DecodeCacheStats stats = system.kernel().decode_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(system.kernel().stats().guard_elisions, 0u);
}

TEST(DecodeKernelTest, HotLoopHitsAndExecutesCheckElided) {
  System system(CacheConfig(true, false));
  RunAllocWorkload(system, 200);
  DecodeCacheStats stats = system.kernel().decode_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);  // the compulsory fill
  // The fresh store + load in every iteration ran on the elided fast path.
  EXPECT_GE(system.kernel().stats().guard_elisions, 2u * 200u);
}

TEST(DecodeKernelTest, VirtualTimeAndInstructionsAreBitIdenticalOffAndOn) {
  System off(CacheConfig(false, false));
  System on(CacheConfig(true, true));
  RunOutcome off_outcome = RunAllocWorkload(off, 300);
  RunOutcome on_outcome = RunAllocWorkload(on, 300);
  EXPECT_EQ(off_outcome.now, on_outcome.now);
  EXPECT_EQ(off_outcome.instructions, on_outcome.instructions);
}

TEST(DecodeKernelTest, SystemConfigWiresCacheAndAuditor) {
  System plain(CacheConfig(false, false));
  EXPECT_FALSE(plain.kernel().decode_cache_enabled());
  EXPECT_EQ(plain.kernel().guard_auditor(), nullptr);

  System armed(CacheConfig(true, true));
  EXPECT_TRUE(armed.kernel().decode_cache_enabled());
  ASSERT_NE(armed.kernel().guard_auditor(), nullptr);
}

TEST(DecodeKernelTest, AuditorConfirmsEveryElisionOnACleanRun) {
  System system(CacheConfig(true, true));
  RunAllocWorkload(system, 200);
  const analysis::GuardAuditorStats& stats = system.kernel().guard_auditor()->stats();
  EXPECT_GT(stats.hits_checked, 0u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(system.kernel().stats().guard_violations, 0u);
}

TEST(DecodeKernelTest, GuardSummariesRideAlongWithEffectSummaries) {
  System system(CacheConfig(false, false));
  RunAllocWorkload(system, 10);
  EXPECT_EQ(system.kernel().stats().guard_summaries,
            system.kernel().stats().effect_summaries);
  ASSERT_EQ(system.kernel().guard_summaries().size(), 1u);
  const analysis::GuardSummary& summary =
      system.kernel().guard_summaries().begin()->second;
  EXPECT_FALSE(summary.opaque);
  EXPECT_GT(summary.counters.checks_elidable, 0u);
}

TEST(DecodeKernelTest, AnalyzeGuardsCertifiesTheFreshLoopSites) {
  System system(CacheConfig(false, false));
  RunAllocWorkload(system, 10);
  analysis::GuardAnalysisReport report = system.kernel().AnalyzeGuards();
  EXPECT_EQ(report.programs_analyzed, 1u);
  EXPECT_GT(report.checks_certified, 0u);
  EXPECT_EQ(report.checks_certified, report.certified_fresh);
  ASSERT_FALSE(report.certificates.empty());
}

TEST(DecodeKernelTest, SpawnInvalidatesEveryDecodeCache) {
  System system(CacheConfig(true, false));
  RunAllocWorkload(system, 100);
  uint64_t invalidations = system.kernel().stats().decode_invalidations;
  EXPECT_GT(invalidations, 0u);  // the spawn's RecordEffectSummary already invalidated

  // A second program entering the system retracts certificates again.
  Assembler late = AllocLoop("decode.late", 10);
  ProcessOptions options;
  options.initial_arg = system.memory().global_heap();
  ASSERT_TRUE(system.Spawn(late.Build(), options).ok());
  EXPECT_GT(system.kernel().stats().decode_invalidations, invalidations);
  system.Run();
}

TEST(DecodeKernelTest, ForgetProgramAnalysisDropsGuardSummariesAndClears) {
  System system(CacheConfig(true, false));
  RunAllocWorkload(system, 100);
  ASSERT_FALSE(system.kernel().guard_summaries().empty());
  ObjectIndex segment = system.kernel().guard_summaries().begin()->first;
  uint64_t invalidations = system.kernel().stats().decode_invalidations;
  system.kernel().ForgetProgramAnalysis(segment);
  EXPECT_GT(system.kernel().stats().decode_invalidations, invalidations);
  EXPECT_EQ(system.kernel().guard_summaries().count(segment), 0u);
}

TEST(DecodeKernelTest, DecodeCacheComposesWithTheXlatCache) {
  SystemConfig config = CacheConfig(true, true);
  config.xlat_cache = true;
  config.interference_audit = true;
  System system(config);
  RunOutcome on = RunAllocWorkload(system, 150);

  System off(CacheConfig(false, false));
  RunOutcome baseline = RunAllocWorkload(off, 150);
  EXPECT_EQ(on.now, baseline.now);
  EXPECT_GT(system.kernel().decode_stats().hits, 0u);
  EXPECT_GT(system.kernel().xlat_stats().hits, 0u);
  EXPECT_EQ(system.kernel().stats().guard_violations, 0u);
  EXPECT_EQ(system.kernel().stats().interference_violations, 0u);
}

}  // namespace
}  // namespace imax432

// Interpreter edge cases: the operand checks, conditional operations, indexed addressing
// forms and malformed-program handling that the main kernel tests do not reach.

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class InterpreterEdgeTest : public ::testing::Test {
 protected:
  InterpreterEdgeTest()
      : machine_(MakeConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 512 * 1024;
    config.object_table_capacity = 2048;
    return config;
  }

  // Runs a program to completion; returns its final fault code.
  Fault RunToEnd(ProgramRef program, const AccessDescriptor& arg = {}) {
    ProcessOptions options;
    options.initial_arg = arg;
    auto process = kernel_.CreateProcess(std::move(program), options);
    EXPECT_TRUE(process.ok());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    kernel_.Run();
    last_process_ = process.value();
    return kernel_.process_view(process.value()).fault_code();
  }

  uint64_t ResultReg(uint32_t offset) {
    // Reads back through the carrier written by the program.
    auto value = machine_.addressing().ReadData(carrier_, offset, 8);
    EXPECT_TRUE(value.ok());
    return value.ok() ? value.value() : ~0ull;
  }

  AccessDescriptor MakeResultCarrier(uint32_t slots = 1) {
    auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64,
                                        slots, rights::kRead | rights::kWrite);
    EXPECT_TRUE(carrier.ok());
    carrier_ = carrier.value();
    return carrier_;
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  AccessDescriptor carrier_;
  AccessDescriptor last_process_;
};

TEST_F(InterpreterEdgeTest, RegisterBoundsChecked) {
  // Hand-craft an instruction with an out-of-range register (the assembler cannot emit one).
  auto program = std::make_shared<Program>("bad-reg");
  program->Append({Opcode::kLoadImm, /*a=*/9, 0, 0, 0, 1});  // r9 does not exist
  program->Append({Opcode::kHalt, 0, 0, 0, 0, 0});
  EXPECT_EQ(RunToEnd(program), Fault::kRegisterOutOfRange);
}

TEST_F(InterpreterEdgeTest, InvalidNativeIndexFaults) {
  auto program = std::make_shared<Program>("bad-native");
  program->Append({Opcode::kNative, 0, 0, 0, /*imm=*/5, 0});  // no native registered
  EXPECT_EQ(RunToEnd(program), Fault::kInvalidInstruction);
}

TEST_F(InterpreterEdgeTest, UnknownOsServiceFaults) {
  Assembler a("bad-service");
  a.OsCall(0xdead).Halt();
  EXPECT_EQ(RunToEnd(a.Build()), Fault::kNotFound);
}

TEST_F(InterpreterEdgeTest, IndexedDataAccess) {
  AccessDescriptor carrier = MakeResultCarrier();
  Assembler a("indexed");
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 16)          // index register
      .LoadImm(2, 0xabcd)
      .StoreDataIndexed(1, 2, 0, 8)  // carrier[8 + r0] = r2 -> offset 24
      .LoadDataIndexed(3, 1, 0, 8)   // r3 = carrier[8 + r0]
      .StoreData(1, 3, 0, 8)         // carrier[0] = r3
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kNone);
  EXPECT_EQ(ResultReg(0), 0xabcdu);
  EXPECT_EQ(ResultReg(24), 0xabcdu);
}

TEST_F(InterpreterEdgeTest, IndexedAdAccess) {
  AccessDescriptor carrier = MakeResultCarrier(4);
  auto payload = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                      rights::kRead);
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier, 2, payload.value()).ok());

  Assembler a("ad-indexed");
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 2)
      .LoadAdIndexed(3, 1, 0)        // a3 = carrier.access[r0]
      .LoadImm(0, 3)
      .StoreAdIndexed(1, 3, 0)       // carrier.access[r0] = a3
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kNone);
  auto slot3 = machine_.addressing().ReadAd(carrier, 3);
  ASSERT_TRUE(slot3.ok());
  EXPECT_TRUE(slot3.value().SameObject(payload.value()));
}

TEST_F(InterpreterEdgeTest, AdIsNullAndRestrictInPrograms) {
  AccessDescriptor carrier = MakeResultCarrier();
  Assembler a("null-check");
  a.MoveAd(1, kArgAdReg)
      .ClearAd(2)
      .AdIsNull(0, 2)           // r0 = 1
      .AdIsNull(2, 1)           // r2 = 0 (carrier is not null)
      .StoreData(1, 0, 0, 8)
      .StoreData(1, 2, 8, 8)
      .RestrictRights(1, rights::kRead)  // drop write on our own carrier AD
      .LoadImm(3, 1)
      .StoreData(1, 3, 16, 8)   // now faults
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kRightsViolation);
  EXPECT_EQ(ResultReg(0), 1u);
  EXPECT_EQ(ResultReg(8), 0u);
}

TEST_F(InterpreterEdgeTest, CondReceiveOnEmptyPortReportsZero) {
  AccessDescriptor carrier = MakeResultCarrier(2);
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 2, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier, 1, port.value()).ok());
  Assembler a("cond-recv");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 1)
      .CondReceive(3, 2, 0)   // empty -> r0 = 0
      .StoreData(1, 0, 0, 8)
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kNone);
  EXPECT_EQ(ResultReg(0), 0u);
}

TEST_F(InterpreterEdgeTest, SubMulArithmetic) {
  AccessDescriptor carrier = MakeResultCarrier();
  Assembler a("arith");
  a.MoveAd(1, kArgAdReg)
      .LoadImm(2, 100)
      .LoadImm(3, 42)
      .Sub(4, 2, 3)            // 58
      .Mul(5, 4, 3)            // 2436
      .StoreData(1, 4, 0, 8)
      .StoreData(1, 5, 8, 8)
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kNone);
  EXPECT_EQ(ResultReg(0), 58u);
  EXPECT_EQ(ResultReg(8), 2436u);
}

TEST_F(InterpreterEdgeTest, UnsignedWraparound) {
  AccessDescriptor carrier = MakeResultCarrier();
  Assembler a("wrap");
  a.MoveAd(1, kArgAdReg)
      .LoadImm(2, 0)
      .LoadImm(3, 1)
      .Sub(4, 2, 3)            // 0 - 1 wraps
      .StoreData(1, 4, 0, 8)
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kNone);
  EXPECT_EQ(ResultReg(0), ~0ull);
}

TEST_F(InterpreterEdgeTest, NarrowStoresTruncate) {
  AccessDescriptor carrier = MakeResultCarrier();
  Assembler a("narrow");
  a.MoveAd(1, kArgAdReg)
      .LoadImm(2, 0x1234567890abcdefull)
      .StoreData(1, 2, 0, 2)   // 16-bit store
      .LoadData(3, 1, 0, 8)
      .StoreData(1, 3, 8, 8)
      .Halt();
  EXPECT_EQ(RunToEnd(a.Build(), carrier), Fault::kNone);
  EXPECT_EQ(ResultReg(8), 0xcdefu);
}

TEST_F(InterpreterEdgeTest, CallIntoOutOfRangeEntryFaults) {
  Assembler leaf("leaf");
  leaf.Return();
  auto segment = kernel_.programs().Register(leaf.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel_.CreateDomain({segment.value()});
  ASSERT_TRUE(domain.ok());
  Assembler a("bad-entry");
  a.MoveAd(1, kArgAdReg).Call(1, 7).Halt();  // entry 7 of a 1-entry domain
  EXPECT_EQ(RunToEnd(a.Build(), domain.value()), Fault::kBoundsViolation);
}

TEST_F(InterpreterEdgeTest, CallLocalWithoutDomainFaults) {
  Assembler a("orphan-calllocal");
  a.CallLocal(0).Halt();  // top-level context has no domain
  EXPECT_EQ(RunToEnd(a.Build()), Fault::kNullAccess);
}

TEST_F(InterpreterEdgeTest, SendToNonPortFaults) {
  auto plain =
      memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0, rights::kAll);
  ASSERT_TRUE(plain.ok());
  Assembler a("send-to-object");
  a.MoveAd(1, kArgAdReg).MoveAd(2, 1).Send(1, 2).Halt();
  EXPECT_EQ(RunToEnd(a.Build(), plain.value()), Fault::kTypeMismatch);
}

TEST_F(InterpreterEdgeTest, SendWithoutSendRightsFaults) {
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 2, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  AccessDescriptor receive_only = port.value().Restricted(rights::kRead | rights::kPortReceive);
  Assembler a("no-send-right");
  a.MoveAd(1, kArgAdReg).MoveAd(2, 1).Send(1, 2).Halt();
  EXPECT_EQ(RunToEnd(a.Build(), receive_only), Fault::kRightsViolation);
}

}  // namespace
}  // namespace imax432

// Phase 3 of the lifetime analysis: GC-load demotion in the kernel. Under verify_on_load
// the kernel holds demotion verdicts per instruction segment; provably context-local
// create_object sites allocate from a per-context demote SRO, are GC-exempt, and die in one
// bulk destroy at context exit — guarded by the dynamic lifetime auditor.

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class LifetimeDemotionTest : public ::testing::Test {
 protected:
  LifetimeDemotionTest()
      : machine_(SmallConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
    kernel_.set_verify_on_load(true);
    kernel_.set_lifetime_demote(true);
    kernel_.EnableLifetimeAuditor();
  }

  // Carrier the programs receive as a7: slot 0 = the allocation SRO, slot 1 = a port.
  AccessDescriptor MakeCarrier() {
    auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                        rights::kAll);
    EXPECT_TRUE(carrier.ok());
    auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
    EXPECT_TRUE(port.ok());
    port_ = port.value();
    EXPECT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, memory_.global_heap()).ok());
    EXPECT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, port_).ok());
    return carrier.value();
  }

  AccessDescriptor Spawn(ProgramRef program, const AccessDescriptor& arg) {
    ProcessOptions options;
    options.initial_arg = arg;
    auto process = kernel_.CreateProcess(std::move(program), options);
    EXPECT_TRUE(process.ok()) << FaultName(process.fault());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    return process.value();
  }

  // The one gc_exempt object in the table, or kInvalidObjectIndex.
  ObjectIndex FindDemoted() {
    for (ObjectIndex i = 0; i < machine_.table().capacity(); ++i) {
      const ObjectDescriptor& descriptor = machine_.table().At(i);
      if (descriptor.allocated && descriptor.gc_exempt) return i;
    }
    return kInvalidObjectIndex;
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  AccessDescriptor port_;
};

TEST_F(LifetimeDemotionTest, DemotableAllocationIsExemptAndBulkReclaimed) {
  Assembler a("local-alloc");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)         // SRO
      .LoadAd(3, 1, 1)         // port
      .CreateObject(4, 2, 16)  // provably context-local: demoted
      .Receive(5, 3)           // park so the host can inspect mid-flight
      .Halt();
  AccessDescriptor process = Spawn(a.Build(), MakeCarrier());
  kernel_.Run();  // runs until the receive blocks

  EXPECT_EQ(kernel_.stats().lifetime_summaries, 1u);
  ASSERT_EQ(kernel_.stats().demotions, 1u);
  EXPECT_EQ(kernel_.stats().demote_sros_created, 1u);
  ObjectIndex demoted = FindDemoted();
  ASSERT_NE(demoted, kInvalidObjectIndex);
  const ObjectDescriptor& descriptor = machine_.table().At(demoted);
  EXPECT_EQ(descriptor.color, GcColor::kBlack);
  // It came from the demote SRO, not the program's SRO (the global heap).
  EXPECT_NE(descriptor.origin_sro, memory_.global_heap().index());

  // Unblock; termination reclaims the demote SRO and the object with it.
  auto token = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                    rights::kAll);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(kernel_.PostMessage(port_, token.value()).ok());
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel_.stats().demoted_bulk_reclaimed, 1u);
  EXPECT_EQ(kernel_.stats().lifetime_violations, 0u);
  EXPECT_FALSE(machine_.table().At(demoted).allocated);
}

TEST_F(LifetimeDemotionTest, EscapingAllocationIsNeverDemoted) {
  Assembler a("escapes");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .CreateObject(4, 2, 16)
      .StoreAd(1, 4, 0)  // escapes into the longer-lived carrier
      .Halt();
  Spawn(a.Build(), MakeCarrier());
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().demotions, 0u);
  EXPECT_EQ(kernel_.stats().demote_sros_created, 0u);
  EXPECT_EQ(FindDemoted(), kInvalidObjectIndex);
}

TEST_F(LifetimeDemotionTest, WithoutVerifyOnLoadDemotionIsInert) {
  kernel_.set_verify_on_load(false);
  Assembler a("local-alloc");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 16).Halt();
  Spawn(a.Build(), MakeCarrier());
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().lifetime_summaries, 0u);
  EXPECT_EQ(kernel_.stats().demotions, 0u);
}

TEST_F(LifetimeDemotionTest, ExhaustedDemoteSroFallsBackToThePlainPath) {
  kernel_.set_demote_sro_bytes(64);  // too small for the 4 KiB allocation below
  Assembler a("big-local");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 4096).Halt();
  AccessDescriptor process = Spawn(a.Build(), MakeCarrier());
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel_.stats().demotions, 0u);
  EXPECT_GE(kernel_.stats().demote_fallbacks, 1u);
  EXPECT_EQ(kernel_.stats().lifetime_violations, 0u);
}

TEST_F(LifetimeDemotionTest, LoopedDemotionsShareOneSroAndAllReclaim) {
  Assembler a("loop-alloc");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(loop)
      .CreateObject(4, 2, 16)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  Spawn(a.Build(), MakeCarrier());
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().demotions, 8u);
  EXPECT_EQ(kernel_.stats().demote_sros_created, 1u);
  EXPECT_EQ(kernel_.stats().demoted_bulk_reclaimed, 8u);
  EXPECT_EQ(kernel_.stats().lifetime_violations, 0u);
  EXPECT_EQ(FindDemoted(), kInvalidObjectIndex);
}

TEST_F(LifetimeDemotionTest, ForgetProgramAnalysisDropsLifetimeSummaries) {
  Assembler a("forgettable");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).CreateObject(4, 2, 16).Halt();
  Spawn(a.Build(), MakeCarrier());
  ASSERT_EQ(kernel_.lifetime_summaries().size(), 1u);
  const ObjectIndex segment = kernel_.lifetime_summaries().begin()->first;
  ASSERT_TRUE(kernel_.effect_graph().HasProgram(segment));

  kernel_.ForgetProgramAnalysis(segment);
  EXPECT_FALSE(kernel_.effect_graph().HasProgram(segment));
  EXPECT_TRUE(kernel_.lifetime_summaries().empty());
  // AnalyzeLifetimes recomputes from the program store rather than consulting stale state.
  analysis::LifetimeAnalysisReport report = kernel_.AnalyzeLifetimes();
  EXPECT_EQ(report.programs_analyzed, 1u);
}

TEST_F(LifetimeDemotionTest, AuditorCatchesASeededEscape) {
  machine_.trace().Enable();
  Assembler a("betrayed");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 2, 16)
      .Receive(5, 3)
      .Halt();
  AccessDescriptor process = Spawn(a.Build(), MakeCarrier());
  kernel_.Run();
  ObjectIndex demoted = FindDemoted();
  ASSERT_NE(demoted, kInvalidObjectIndex);

  // Ground-truth betrayal: a host-side (privileged, level-rule-exempt) store plants the
  // demoted object's AD in a global container — exactly what the static verdict says no
  // program can do. The audit at scope exit must catch it.
  auto container = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 1,
                                        rights::kAll);
  ASSERT_TRUE(container.ok());
  auto stolen = machine_.table().MintAd(demoted, rights::kRead);
  ASSERT_TRUE(stolen.ok());
  ASSERT_TRUE(
      machine_.addressing().WriteAdPrivileged(container.value(), 0, stolen.value()).ok());

  auto token = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                    rights::kAll);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(kernel_.PostMessage(port_, token.value()).ok());
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);

  ASSERT_EQ(kernel_.stats().lifetime_violations, 1u);
  const auto& violations = kernel_.lifetime_auditor()->violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].object, demoted);
  EXPECT_EQ(violations[0].holder, container.value().index());
  EXPECT_EQ(violations[0].alloc_pc, 3u);  // the create_object pc

  bool traced = false;
  for (const TraceEvent& event : machine_.trace().Snapshot()) {
    if (event.kind == TraceEventKind::kLifetimeViolation) {
      traced = true;
      EXPECT_EQ(event.a, demoted);
      EXPECT_EQ(event.b, container.value().index());
    }
  }
  EXPECT_TRUE(traced);
}

TEST_F(LifetimeDemotionTest, AuditorIsAPureObserver) {
  // Identical workload, auditor on vs. off: the virtual timeline must be bit-identical
  // (the PR 5 replay contract extends to the lifetime instrumentation).
  auto run = [](bool audit) -> Cycles {
    Machine machine(SmallConfig());
    BasicMemoryManager memory(&machine);
    Kernel kernel(&machine, &memory);
    EXPECT_TRUE(kernel.AddProcessors(1).ok());
    kernel.set_verify_on_load(true);
    kernel.set_lifetime_demote(true);
    if (audit) kernel.EnableLifetimeAuditor();

    auto carrier =
        memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 8, 1, rights::kAll);
    EXPECT_TRUE(carrier.ok());
    EXPECT_TRUE(
        machine.addressing().WriteAd(carrier.value(), 0, memory.global_heap()).ok());
    Assembler a("loop-alloc");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadAd(2, 1, 0)
        .LoadImm(0, 0)
        .LoadImm(1, 16)
        .Bind(loop)
        .CreateObject(4, 2, 16)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    auto process = kernel.CreateProcess(a.Build(), options);
    EXPECT_TRUE(process.ok());
    EXPECT_TRUE(kernel.StartProcess(process.value()).ok());
    kernel.Run();
    EXPECT_EQ(kernel.stats().demotions, 16u);
    return machine.now();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace imax432

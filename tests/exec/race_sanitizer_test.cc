// Dynamic race sanitizer (src/analysis/races/sanitizer.h): unit tests over the vector-clock
// machinery, then kernel-level tests showing the interpreter hooks catch a real racy pair of
// processes, stay silent for a port-synchronized pair, and never perturb virtual time.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/races/sanitizer.h"
#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/obs/trace.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

using analysis::AccessKind;
using analysis::ObjectPart;
using analysis::RaceRecord;
using analysis::RaceSanitizer;

constexpr ObjectIndex kP1 = 100;
constexpr ObjectIndex kP2 = 101;
constexpr ObjectIndex kObj = 50;

// --- Unit tests: the sanitizer driven directly. ---

TEST(RaceSanitizerUnitTest, UnorderedWritesRace) {
  RaceSanitizer san;
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1), nullptr);
  const RaceRecord* race =
      san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->object, kObj);
  EXPECT_EQ(race->part, ObjectPart::kData);
  EXPECT_EQ(race->first_process, kP1);
  EXPECT_EQ(race->first_pc, 10u);
  EXPECT_EQ(race->first_kind, AccessKind::kWrite);
  EXPECT_EQ(race->second_process, kP2);
  EXPECT_EQ(race->second_pc, 20u);
  EXPECT_EQ(race->when, 2u);
  EXPECT_EQ(san.stats().races_detected, 1u);
}

TEST(RaceSanitizerUnitTest, WriteThenUnorderedReadRaces) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  const RaceRecord* race =
      san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kRead, 20, 2);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->second_kind, AccessKind::kRead);
}

TEST(RaceSanitizerUnitTest, ReadThenUnorderedWriteRaces) {
  RaceSanitizer san;
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kRead, 10, 1), nullptr);
  const RaceRecord* race =
      san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->first_kind, AccessKind::kRead);
  EXPECT_EQ(race->second_kind, AccessKind::kWrite);
}

TEST(RaceSanitizerUnitTest, ReadsNeverConflict) {
  RaceSanitizer san;
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kRead, 10, 1), nullptr);
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kRead, 20, 2), nullptr);
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kRead, 11, 3), nullptr);
  EXPECT_EQ(san.stats().races_detected, 0u);
  EXPECT_EQ(san.stats().accesses_checked, 3u);
}

TEST(RaceSanitizerUnitTest, SameProcessAccessesNeverRace) {
  RaceSanitizer san;
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1), nullptr);
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 11, 2), nullptr);
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kRead, 12, 3), nullptr);
  EXPECT_EQ(san.stats().races_detected, 0u);
}

TEST(RaceSanitizerUnitTest, DataAndAccessPartsAreIndependent) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kAccess, AccessKind::kWrite, 20, 2), nullptr);
  EXPECT_EQ(san.stats().races_detected, 0u);
}

TEST(RaceSanitizerUnitTest, SendReceiveOrdersTheAccesses) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  san.OnSend(kP1, /*seq=*/7);
  san.OnReceive(kP2, /*seq=*/7);
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2), nullptr);
  EXPECT_EQ(san.stats().races_detected, 0u);
  EXPECT_EQ(san.stats().messages_stamped, 1u);
  EXPECT_EQ(san.stats().joins, 1u);
}

TEST(RaceSanitizerUnitTest, WriteAfterTheSendIsNotReleased) {
  RaceSanitizer san;
  san.OnSend(kP1, /*seq=*/7);
  // This write postdates the message stamp: the receiver has no ordering claim on it.
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  san.OnReceive(kP2, /*seq=*/7);
  EXPECT_NE(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2), nullptr);
}

TEST(RaceSanitizerUnitTest, HandoffOrdersTheAccesses) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  san.OnHandoff(kP1, kP2);
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2), nullptr);
  EXPECT_EQ(san.stats().joins, 1u);
}

TEST(RaceSanitizerUnitTest, UnknownSequenceMeansExternalMessageAndNoJoin) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  // A PostMessage from outside the simulation arrives with a seq the sanitizer never
  // stamped: it carries no ordering, so the conflicting pair still races.
  san.OnReceive(kP2, /*seq=*/999);
  EXPECT_EQ(san.stats().joins, 0u);
  EXPECT_NE(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2), nullptr);
}

TEST(RaceSanitizerUnitTest, SitePairsAreReportedOnce) {
  RaceSanitizer san;
  // Alternating writes from the same two pcs: each direction of the site pair is one
  // finding, repeats are deduplicated.
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  EXPECT_NE(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 2), nullptr);
  EXPECT_NE(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 3), nullptr);
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 4), nullptr);
  EXPECT_EQ(san.stats().races_detected, 2u);
  EXPECT_EQ(san.stats().accesses_checked, 4u);
  EXPECT_EQ(san.races().size(), 2u);
}

TEST(RaceSanitizerUnitTest, RetirementOrdersTheIndexSuccessor) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  san.OnProcessRetired(kP1);
  // A new process reusing the index is created after the old one terminated, so the old
  // incarnation's accesses are ordered before everything it does: no false positive.
  EXPECT_EQ(san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 30, 5), nullptr);
  EXPECT_EQ(san.stats().races_detected, 0u);
}

TEST(RaceSanitizerUnitTest, DestroyedObjectDropsItsEpochs) {
  RaceSanitizer san;
  san.OnAccess(kP1, kObj, ObjectPart::kData, AccessKind::kWrite, 10, 1);
  san.OnAccess(kP1, kObj, ObjectPart::kAccess, AccessKind::kWrite, 11, 2);
  san.OnObjectDestroyed(kObj);
  // A fresh object reusing the index shares no history with the destroyed one.
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kData, AccessKind::kWrite, 20, 3), nullptr);
  EXPECT_EQ(san.OnAccess(kP2, kObj, ObjectPart::kAccess, AccessKind::kWrite, 21, 4), nullptr);
  EXPECT_EQ(san.stats().races_detected, 0u);
}

// --- Kernel-level tests: the interpreter hooks on a real simulated system. ---

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

// One self-contained machine + kernel, so tests can run the same workload under different
// sanitizer settings and compare timelines.
struct Rig {
  Rig() : machine(SmallConfig()), memory(&machine), kernel(&machine, &memory) {
    EXPECT_TRUE(kernel.AddProcessors(1).ok());
  }

  AccessDescriptor MakeObject(uint32_t access_slots = 0) {
    auto object = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 64,
                                      access_slots, rights::kRead | rights::kWrite);
    EXPECT_TRUE(object.ok());
    return object.value();
  }

  AccessDescriptor MakePort() {
    auto port = kernel.ports().CreatePort(memory.global_heap(), 4, QueueDiscipline::kFifo);
    EXPECT_TRUE(port.ok());
    return port.value();
  }

  // carrier slot 0 = the shared object, slot 1 = a port.
  AccessDescriptor MakeCarrier(const AccessDescriptor& shared, const AccessDescriptor& port) {
    AccessDescriptor carrier = MakeObject(/*access_slots=*/2);
    EXPECT_TRUE(machine.addressing().WriteAd(carrier, 0, shared).ok());
    if (!port.is_null()) {
      EXPECT_TRUE(machine.addressing().WriteAd(carrier, 1, port).ok());
    }
    return carrier;
  }

  AccessDescriptor Spawn(const Assembler& assembler, const AccessDescriptor& carrier) {
    Assembler copy = assembler;
    ProcessOptions options;
    options.initial_arg = carrier;
    auto process = kernel.CreateProcess(copy.Build(), options);
    EXPECT_TRUE(process.ok()) << FaultName(process.fault());
    EXPECT_TRUE(kernel.StartProcess(process.value()).ok());
    return process.value();
  }

  Machine machine;
  BasicMemoryManager memory;
  Kernel kernel;
};

Assembler RacyWriter(const std::string& name, uint64_t value) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).LoadImm(0, value).StoreData(2, 0, 0).Halt();
  return a;
}

// Runs the canonical racy pair and reports the final virtual time and instruction count.
Cycles RunRacyPair(bool sanitize, uint64_t* instructions, uint64_t* races) {
  Rig rig;
  if (sanitize) rig.kernel.EnableRaceSanitizer();
  AccessDescriptor shared = rig.MakeObject();
  AccessDescriptor carrier = rig.MakeCarrier(shared, AccessDescriptor());
  rig.Spawn(RacyWriter("racy.w0", 1), carrier);
  rig.Spawn(RacyWriter("racy.w1", 2), carrier);
  rig.kernel.Run();
  *instructions = rig.kernel.stats().instructions_executed;
  *races = sanitize ? rig.kernel.race_sanitizer()->stats().races_detected : 0;
  return rig.machine.now();
}

TEST(RaceSanitizerKernelTest, RacyPairIsDetectedAtRunTime) {
  Rig rig;
  rig.machine.trace().Enable();
  rig.kernel.EnableRaceSanitizer();
  AccessDescriptor shared = rig.MakeObject();
  AccessDescriptor carrier = rig.MakeCarrier(shared, AccessDescriptor());
  AccessDescriptor w0 = rig.Spawn(RacyWriter("racy.w0", 1), carrier);
  AccessDescriptor w1 = rig.Spawn(RacyWriter("racy.w1", 2), carrier);
  rig.kernel.Run();

  RaceSanitizer* san = rig.kernel.race_sanitizer();
  ASSERT_NE(san, nullptr);
  ASSERT_FALSE(san->races().empty());
  const RaceRecord& race = san->races().front();
  EXPECT_EQ(race.object, shared.index());
  EXPECT_EQ(race.part, ObjectPart::kData);
  const ObjectIndex pair[2] = {w0.index(), w1.index()};
  EXPECT_TRUE(race.first_process == pair[0] || race.first_process == pair[1]);
  EXPECT_TRUE(race.second_process == pair[0] || race.second_process == pair[1]);
  EXPECT_NE(race.first_process, race.second_process);

  // The finding also lands on the timeline as a kRaceDetected trace event.
  bool traced = false;
  for (const TraceEvent& event : rig.machine.trace().Snapshot()) {
    if (event.kind == TraceEventKind::kRaceDetected) {
      EXPECT_EQ(event.a, shared.index());
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

TEST(RaceSanitizerKernelTest, PortSynchronizedPairIsClean) {
  Rig rig;
  rig.kernel.EnableRaceSanitizer();
  AccessDescriptor shared = rig.MakeObject();
  AccessDescriptor port = rig.MakePort();
  AccessDescriptor carrier = rig.MakeCarrier(shared, port);

  Assembler writer("sync.writer");
  writer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadImm(0, 7)
      .StoreData(2, 0, 0)
      .Send(3, 1)
      .Halt();
  Assembler reader("sync.reader");
  reader.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 1)
      .Receive(4, 3)
      .LoadAd(2, 1, 0)
      .LoadData(0, 2, 0)
      .Halt();
  rig.Spawn(writer, carrier);
  rig.Spawn(reader, carrier);
  rig.kernel.Run();

  RaceSanitizer* san = rig.kernel.race_sanitizer();
  ASSERT_NE(san, nullptr);
  EXPECT_TRUE(san->races().empty()) << san->races().size() << " race(s)";
  EXPECT_GT(san->stats().accesses_checked, 0u);
  // The token moved: either queued (stamp + join) or handed off directly (join).
  EXPECT_GT(san->stats().joins, 0u);
}

TEST(RaceSanitizerKernelTest, SanitizerKeepsVirtualTimeBitIdentical) {
  uint64_t instructions_off = 0, instructions_on = 0, races_off = 0, races_on = 0;
  const Cycles off = RunRacyPair(false, &instructions_off, &races_off);
  const Cycles on = RunRacyPair(true, &instructions_on, &races_on);
  EXPECT_EQ(off, on);
  EXPECT_EQ(instructions_off, instructions_on);
  EXPECT_EQ(races_off, 0u);
  EXPECT_GE(races_on, 1u);  // same timeline, but the sanitizer saw the race
}

TEST(RaceSanitizerKernelTest, TerminatedProcessIndexReuseDoesNotFalsePositive) {
  Rig rig;
  rig.kernel.EnableRaceSanitizer();
  AccessDescriptor shared = rig.MakeObject();
  AccessDescriptor carrier = rig.MakeCarrier(shared, AccessDescriptor());

  // First writer runs to completion alone.
  rig.Spawn(RacyWriter("gen.one", 1), carrier);
  rig.kernel.Run();
  EXPECT_TRUE(rig.kernel.race_sanitizer()->races().empty());

  // A second generation touching the same object starts only after the first terminated,
  // so whatever process index it lands on, nothing may be reported.
  rig.Spawn(RacyWriter("gen.two", 2), carrier);
  rig.kernel.Run();
  EXPECT_TRUE(rig.kernel.race_sanitizer()->races().empty());
}

}  // namespace
}  // namespace imax432

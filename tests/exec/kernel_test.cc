#include "src/exec/kernel.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/memory/swapping_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : machine_(SmallConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {}

  AccessDescriptor Spawn(ProgramRef program, ProcessOptions options = {}) {
    auto process = kernel_.CreateProcess(std::move(program), options);
    EXPECT_TRUE(process.ok()) << FaultName(process.fault());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    return process.value();
  }

  ProcessView View(const AccessDescriptor& process) { return kernel_.process_view(process); }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(KernelTest, SimpleProgramRunsToHalt) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("simple");
  a.LoadImm(0, 40).LoadImm(1, 2).Add(2, 0, 1).Halt();
  AccessDescriptor process = Spawn(a.Build());
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_GE(kernel_.stats().instructions_executed, 4u);
  EXPECT_EQ(kernel_.stats().processes_terminated, 1u);
}

TEST_F(KernelTest, FallingOffTheEndTerminates) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("no-halt");
  a.LoadImm(0, 1);
  AccessDescriptor process = Spawn(a.Build());
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
}

TEST_F(KernelTest, LoopComputesAndStoresToObject) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  // Sum 1..10 into r2, create an object and store the sum at offset 0.
  Assembler a("loop");
  auto loop = a.NewLabel();
  a.LoadImm(0, 1)        // i
      .LoadImm(1, 11)    // bound
      .LoadImm(2, 0)     // sum
      .Bind(loop)
      .Add(2, 2, 0)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .CreateObject(0, 1, 64)  // a1 must hold an SRO: pass via initial arg
      .StoreData(0, 2, 0, 8)
      .Halt();
  ProcessOptions options;
  options.initial_arg = memory_.global_heap();
  // The program expects the SRO in a1; copy from a7 first. Rebuild with the move up front.
  Assembler b("loop2");
  auto loop2 = b.NewLabel();
  b.MoveAd(1, kArgAdReg)
      .LoadImm(0, 1)
      .LoadImm(1 + 0, 11)  // r1 bound (note: data regs independent of AD regs)
      .LoadImm(2, 0)
      .Bind(loop2)
      .Add(2, 2, 0)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop2)
      .CreateObject(0, 1, 64)
      .StoreData(0, 2, 0, 8)
      .Halt();
  AccessDescriptor process = Spawn(b.Build(), options);
  kernel_.Run();
  ASSERT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(memory_.stats().objects_created > 0, true);
}

TEST_F(KernelTest, CreateObjectChargesCalibratedCost) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("alloc");
  a.MoveAd(1, kArgAdReg).CreateObject(0, 1, 64).Halt();
  ProcessOptions options;
  options.initial_arg = memory_.global_heap();
  AccessDescriptor process = Spawn(a.Build(), options);
  Cycles before = machine_.now();
  kernel_.Run();
  (void)before;
  // The create-object instruction costs 640 cycles = 80 us at 8 MHz (the paper's number).
  EXPECT_EQ(cycles::CreateObjectCost(64, 0), 640u);
  EXPECT_EQ(cycles::ToMicroseconds(cycles::CreateObjectCost(64, 0)), 80.0);
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
}

TEST_F(KernelTest, MessagePassingBetweenProcesses) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  // Producer: creates an object, writes 777 into it, sends it.
  Assembler producer("producer");
  producer.MoveAd(1, kArgAdReg)       // a1 = port (passed as arg)
      .LoadAd(2, 1, 0)                // a2 = SRO stashed in the port? No: use two args.
      .Halt();
  // Simpler: pass the port as arg and use the global heap via a second mechanism — stash the
  // SRO AD inside a carrier object. Build a carrier with slots: 0=port, 1=sro.
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, port.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, memory_.global_heap()).ok());

  Assembler send_program("sender");
  send_program.MoveAd(1, kArgAdReg)  // a1 = carrier
      .LoadAd(2, 1, 0)               // a2 = port
      .LoadAd(3, 1, 1)               // a3 = sro
      .CreateObject(4, 3, 32)        // a4 = message object
      .LoadImm(0, 777)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .Halt();

  Assembler receive_program("receiver");
  receive_program.MoveAd(1, kArgAdReg)  // a1 = carrier
      .LoadAd(2, 1, 0)                  // a2 = port
      .Receive(4, 2)                    // a4 = message
      .LoadData(0, 4, 0, 8)             // r0 = payload
      .StoreData(1, 0, 0, 8)            // write it into the carrier so the test can see it
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  AccessDescriptor receiver = Spawn(receive_program.Build(), options);
  AccessDescriptor sender = Spawn(send_program.Build(), options);
  kernel_.Run();

  EXPECT_EQ(View(sender).state(), ProcessState::kTerminated);
  EXPECT_EQ(View(receiver).state(), ProcessState::kTerminated);
  auto observed = machine_.addressing().ReadData(carrier.value(), 0, 8);
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(observed.value(), 777u);
}

TEST_F(KernelTest, ReceiveBlocksUntilSendArrives) {
  ASSERT_TRUE(kernel_.AddProcessors(2).ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 2, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());

  Assembler receiver_program("rx");
  receiver_program.MoveAd(1, kArgAdReg).Receive(2, 1).Halt();
  ProcessOptions options;
  options.initial_arg = port.value();
  AccessDescriptor receiver = Spawn(receiver_program.Build(), options);

  // Run: the receiver must block (no sender yet).
  kernel_.Run();
  EXPECT_EQ(View(receiver).state(), ProcessState::kBlocked);
  EXPECT_GE(kernel_.stats().blocks, 1u);

  // Now post a message from outside; the receiver wakes and finishes.
  auto message = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                      rights::kRead);
  ASSERT_TRUE(message.ok());
  ASSERT_TRUE(kernel_.PostMessage(port.value(), message.value()).ok());
  kernel_.Run();
  EXPECT_EQ(View(receiver).state(), ProcessState::kTerminated);
}

TEST_F(KernelTest, SenderBlocksOnFullPortAndResumes) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 1, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, port.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, memory_.global_heap()).ok());

  // Sender sends twice into a capacity-1 port: the second send must block.
  Assembler sender_program("sender2");
  sender_program.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 16)
      .Send(2, 4)
      .CreateObject(5, 3, 16)
      .Send(2, 5)
      .LoadImm(0, 1)
      .StoreData(1, 0, 0, 8)  // mark completion in the carrier
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  AccessDescriptor sender = Spawn(sender_program.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(sender).state(), ProcessState::kBlocked);
  EXPECT_EQ(machine_.addressing().ReadData(carrier.value(), 0, 8).value(), 0u);

  // Drain one message: the blocked sender's message enters the port and the sender finishes.
  Assembler drain_program("drain");
  drain_program.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).Halt();
  AccessDescriptor drainer = Spawn(drain_program.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(drainer).state(), ProcessState::kTerminated);
  EXPECT_EQ(View(sender).state(), ProcessState::kTerminated);
  EXPECT_EQ(machine_.addressing().ReadData(carrier.value(), 0, 8).value(), 1u);
  // The port still holds the deferred second message.
  EXPECT_EQ(kernel_.ports().QueuedCount(port.value()).value(), 1u);
}

TEST_F(KernelTest, CondSendReportsFullWithoutBlocking) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 1, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 2,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, port.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, memory_.global_heap()).ok());

  Assembler a("condsend");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 16)
      .CondSend(2, 4, 0)        // should succeed -> r0 = 1
      .CreateObject(5, 3, 16)
      .CondSend(2, 5, 1)        // port now full -> r1 = 0
      .StoreData(1, 0, 0, 8)
      .StoreData(1, 1, 8, 8)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(machine_.addressing().ReadData(carrier.value(), 0, 8).value(), 1u);
  EXPECT_EQ(machine_.addressing().ReadData(carrier.value(), 8, 8).value(), 0u);
}

TEST_F(KernelTest, DomainCallAndReturn) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  // Callee: r7 = r7 * 2 + 1; return.
  Assembler callee("double-plus-one");
  callee.LoadImm(0, 2).Mul(7, 7, 0).AddImm(7, 7, 1).Return();
  auto segment = kernel_.programs().Register(callee.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel_.CreateDomain({segment.value()});
  ASSERT_TRUE(domain.ok());
  // The caller may call but not read the domain.
  EXPECT_TRUE(domain.value().HasRights(rights::kDomainCall));
  EXPECT_FALSE(domain.value().HasRights(rights::kRead));

  Assembler caller("caller");
  caller.MoveAd(1, kArgAdReg)  // a1 = domain (passed as arg)
      .LoadImm(7, 20)
      .Call(1, 0)
      .Halt();
  ProcessOptions options;
  options.initial_arg = domain.value();
  AccessDescriptor process = Spawn(caller.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel_.stats().domain_calls, 1u);
  // 20 * 2 + 1 = 41 came back in r7... but the context is gone. Verify via consumed cycles:
  // the call must have charged at least kDomainCall = 520 cycles = 65 us.
  EXPECT_GE(View(process).consumed(), cycles::kDomainCall);
}

TEST_F(KernelTest, DomainCallReturnValueObservable) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler callee("add-seven");
  callee.AddImm(7, 7, 7).Return();
  auto segment = kernel_.programs().Register(callee.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel_.CreateDomain({segment.value()});
  ASSERT_TRUE(domain.ok());

  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 1,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, domain.value()).ok());

  Assembler caller("caller");
  caller.MoveAd(1, kArgAdReg)  // a1 = carrier
      .LoadAd(2, 1, 0)         // a2 = domain
      .LoadImm(7, 35)
      .Call(2, 0)
      .StoreData(1, 7, 0, 8)   // result visible to the test
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  Spawn(caller.Build(), options);
  kernel_.Run();
  EXPECT_EQ(machine_.addressing().ReadData(carrier.value(), 0, 8).value(), 42u);
}

TEST_F(KernelTest, CallRightsEnforced) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler callee("noop");
  callee.Return();
  auto segment = kernel_.programs().Register(callee.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel_.CreateDomain({segment.value()});
  ASSERT_TRUE(domain.ok());

  Assembler caller("bad-caller");
  caller.MoveAd(1, kArgAdReg)
      .RestrictRights(1, rights::kNone)  // drop call rights
      .Call(1, 0)
      .Halt();
  ProcessOptions options;
  options.initial_arg = domain.value();
  AccessDescriptor process = Spawn(caller.Build(), options);
  kernel_.Run();
  // No fault port: the process dies with the rights violation recorded.
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(View(process).fault_code(), Fault::kRightsViolation);
}

TEST_F(KernelTest, LevelRuleFaultsEscapingStore) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  // Program: create a local SRO, allocate an object from it, attempt to store its AD into a
  // global container -> kLevelViolation.
  auto container = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                        rights::kRead | rights::kWrite);
  ASSERT_TRUE(container.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(container.value(), 0, memory_.global_heap()).ok());

  Assembler a("escape");
  a.MoveAd(1, kArgAdReg)   // a1 = container
      .LoadAd(2, 1, 0)     // a2 = global heap
      .CreateSro(3, 2, 4096)
      .CreateObject(4, 3, 32)
      .StoreAd(1, 4, 1)    // store local object into global container: must fault
      .Halt();
  ProcessOptions options;
  options.initial_arg = container.value();
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(View(process).fault_code(), Fault::kLevelViolation);
}

TEST_F(KernelTest, FaultDeliveredToFaultPort) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto fault_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(fault_port.ok());

  Assembler a("faulter");
  a.LoadData(0, 1, 0, 8).Halt();  // a1 is null -> kNullAccess
  ProcessOptions options;
  options.fault_port = fault_port.value();
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kFaulted);
  EXPECT_EQ(View(process).fault_code(), Fault::kNullAccess);
  // The faulted process object itself is queued at the fault port as a message.
  auto queued = kernel_.ports().Dequeue(fault_port.value());
  ASSERT_TRUE(queued.ok());
  EXPECT_TRUE(queued.value().SameObject(process));
  EXPECT_EQ(kernel_.stats().faults_delivered, 1u);
}

TEST_F(KernelTest, FaultedProcessCanBeResumed) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto fault_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(fault_port.ok());

  // Faulting instruction at pc 1; a handler fixes a1 then resumes; the retry succeeds.
  auto target = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                     rights::kRead | rights::kWrite);
  ASSERT_TRUE(target.ok());
  Assembler a("recoverable");
  a.LoadImm(0, 5)
      .LoadData(1, 1, 0, 8)  // faults first time (a1 null)
      .Halt();
  ProcessOptions options;
  options.fault_port = fault_port.value();
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  ASSERT_EQ(View(process).state(), ProcessState::kFaulted);

  // Handler (the test, acting as a fault-service process): give the process a valid a1 and
  // resume it at the faulting instruction.
  ContextView ctx(&machine_.addressing(), View(process).context());
  ctx.set_ad_reg(1, target.value());
  ASSERT_TRUE(kernel_.ResumeProcess(process).ok());
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
}

TEST_F(KernelTest, LowLevelProcessFaultPanics) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("core-fault");
  a.LoadData(0, 1, 0, 8).Halt();
  ProcessOptions options;
  options.imax_level = kImaxLevelCore;  // level 1: no faults permitted
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().panics, 1u);
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
}

TEST_F(KernelTest, Level2TimeoutPermittedOtherFaultsPanic) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto fault_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(fault_port.ok());

  // Level-2 process with a non-timeout fault: panic.
  Assembler bad("memory-fault");
  bad.LoadData(0, 1, 0, 8).Halt();
  ProcessOptions options;
  options.imax_level = kImaxLevelMemory;
  options.fault_port = fault_port.value();
  Spawn(bad.Build(), options);
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().panics, 1u);
}

TEST_F(KernelTest, TimeSlicingInterleavesProcesses) {
  // A tiny slice forces alternation between two long-running processes on one processor.
  MachineConfig config = SmallConfig();
  config.time_slice = 2000;
  Machine machine(config);
  BasicMemoryManager memory(&machine);
  Kernel kernel(&machine, &memory);
  ASSERT_TRUE(kernel.AddProcessors(1).ok());

  auto make_spinner = [&](const char* name) {
    Assembler a(name);
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, 50).Bind(loop).Compute(100).AddImm(0, 0, 1).BranchIfLess(
        0, 1, loop);
    a.Halt();
    return a.Build();
  };
  auto p1 = kernel.CreateProcess(make_spinner("spin1"), {});
  auto p2 = kernel.CreateProcess(make_spinner("spin2"), {});
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_TRUE(kernel.StartProcess(p1.value()).ok());
  ASSERT_TRUE(kernel.StartProcess(p2.value()).ok());
  kernel.Run();
  EXPECT_EQ(kernel.process_view(p1.value()).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel.process_view(p2.value()).state(), ProcessState::kTerminated);
  EXPECT_GT(kernel.stats().time_slice_ends, 2u);
}

TEST_F(KernelTest, TwoProcessorsRunInParallel) {
  // The same two spinners on 1 vs 2 processors: the 2-processor makespan must be close to
  // half (pure compute, negligible bus traffic).
  auto make_spinner = [] {
    Assembler a("spin");
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, 100).Bind(loop).Compute(1000).AddImm(0, 0, 1).BranchIfLess(
        0, 1, loop);
    a.Halt();
    return a.Build();
  };

  auto run_with = [&](int processors) -> Cycles {
    Machine machine(SmallConfig());
    BasicMemoryManager memory(&machine);
    Kernel kernel(&machine, &memory);
    EXPECT_TRUE(kernel.AddProcessors(processors).ok());
    for (int i = 0; i < 2; ++i) {
      auto p = kernel.CreateProcess(make_spinner(), {});
      EXPECT_TRUE(p.ok());
      EXPECT_TRUE(kernel.StartProcess(p.value()).ok());
    }
    kernel.Run();
    return machine.now();
  };

  Cycles serial = run_with(1);
  Cycles parallel = run_with(2);
  EXPECT_LT(parallel, serial * 6 / 10);  // comfortably under 60%
}

TEST_F(KernelTest, StopParksRunningProcess) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("long");
  auto loop = a.NewLabel();
  a.LoadImm(0, 0).LoadImm(1, 1000000).Bind(loop).Compute(50).AddImm(0, 0, 1).BranchIfLess(
      0, 1, loop);
  a.Halt();
  AccessDescriptor process = Spawn(a.Build());
  // Let it run a little, then stop it.
  kernel_.RunUntil(machine_.now() + 10000);
  ASSERT_TRUE(kernel_.MarkStopped(process).ok());
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kStopped);
  uint64_t consumed_at_stop = View(process).consumed();

  // Restart: it picks up where it left off.
  ASSERT_TRUE(kernel_.StartProcess(process).ok());
  kernel_.RunUntil(machine_.now() + 10000);
  EXPECT_GT(View(process).consumed(), consumed_at_stop);
}

TEST_F(KernelTest, NestedStopsRequireMatchingStarts) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("spin");
  auto loop = a.NewLabel();
  a.LoadImm(0, 0).LoadImm(1, 100000).Bind(loop).Compute(50).AddImm(0, 0, 1).BranchIfLess(
      0, 1, loop);
  a.Halt();
  AccessDescriptor process = Spawn(a.Build());
  kernel_.RunUntil(machine_.now() + 5000);
  ASSERT_TRUE(kernel_.MarkStopped(process).ok());
  ASSERT_TRUE(kernel_.MarkStopped(process).ok());
  kernel_.Run();
  ASSERT_EQ(View(process).state(), ProcessState::kStopped);
  // One start is not enough (stop count 2 -> 1).
  ASSERT_TRUE(kernel_.StartProcess(process).ok());
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kStopped);
  // The second start releases it.
  ASSERT_TRUE(kernel_.StartProcess(process).ok());
  kernel_.RunUntil(machine_.now() + 5000);
  EXPECT_NE(View(process).state(), ProcessState::kStopped);
}

TEST_F(KernelTest, LocalHeapAutoDestroyedOnReturn) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  // Callee creates a local SRO + objects and returns without cleanup.
  Assembler callee("leaky");
  callee.MoveAd(1, kArgAdReg)  // a1 = global heap
      .CreateSro(2, 1, 4096)
      .CreateObject(3, 2, 64)
      .CreateObject(4, 2, 64)
      .ClearAd(7)  // do not return anything
      .Return();
  auto segment = kernel_.programs().Register(callee.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel_.CreateDomain({segment.value()});
  ASSERT_TRUE(domain.ok());

  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, domain.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, memory_.global_heap()).ok());

  Assembler caller("caller");
  caller.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)       // a2 = domain
      .LoadAd(7, 1, 1)       // a7 = global heap (argument to callee)
      .Call(2, 0)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();

  uint64_t sros_before = memory_.stats().sros_created;
  AccessDescriptor process = Spawn(caller.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  MemoryStats stats = memory_.stats();
  // The callee's local SRO was created and automatically destroyed, reclaiming its objects.
  EXPECT_GT(stats.sros_created, sros_before);
  EXPECT_GE(stats.bulk_reclaimed_objects, 2u);
}

TEST_F(KernelTest, StaleAdAfterSroDestructionFaults) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  // Create an object in a local heap, destroy the heap, then use the stale AD.
  Assembler a("dangling");
  a.MoveAd(1, kArgAdReg)
      .CreateSro(2, 1, 4096)
      .CreateObject(3, 2, 64)
      .DestroySro(2)
      .LoadData(0, 3, 0, 8)  // a3 is now a dangling reference: must fault kInvalidAccess
      .Halt();
  ProcessOptions options;
  options.initial_arg = memory_.global_heap();
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(View(process).fault_code(), Fault::kInvalidAccess);
}

TEST_F(KernelTest, OsCallServicesWork) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  Assembler a("oscall");
  a.MoveAd(1, kArgAdReg)
      .OsCall(os_service::kGetTime)
      .StoreData(1, 7, 0, 8)  // r7 = time
      .LoadImm(7, 17)
      .OsCall(os_service::kSetPriority)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  AccessDescriptor process = Spawn(a.Build(), options);
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_GT(machine_.addressing().ReadData(carrier.value(), 0, 8).value(), 0u);
  EXPECT_EQ(View(process).priority(), 17);
}

TEST_F(KernelTest, NativeStepsExecute) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  int counter = 0;
  Assembler a("native");
  a.Native([&counter](ExecutionContext& env) -> Result<NativeResult> {
    ++counter;
    env.set_reg(0, 99);
    NativeResult r;
    r.compute = 50;
    return r;
  });
  a.Halt();
  AccessDescriptor process = Spawn(a.Build());
  kernel_.Run();
  EXPECT_EQ(View(process).state(), ProcessState::kTerminated);
  EXPECT_EQ(counter, 1);
}

TEST_F(KernelTest, NativeBlockingReceive) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  int received = 0;
  Assembler a("daemon");
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Native([&, port_ad = port.value()](ExecutionContext&) -> Result<NativeResult> {
    NativeResult r;
    r.action = NativeResult::Action::kBlockReceive;
    r.port = port_ad;
    r.dest_adreg = 3;
    r.compute = 20;
    return r;
  });
  a.Native([&](ExecutionContext& env) -> Result<NativeResult> {
    if (!env.ad_reg(3).is_null()) {
      ++received;
    }
    return NativeResult{};
  });
  a.Branch(loop);
  AccessDescriptor daemon = Spawn(a.Build());
  kernel_.Run();
  EXPECT_EQ(View(daemon).state(), ProcessState::kBlocked);

  auto message = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                      rights::kRead);
  ASSERT_TRUE(message.ok());
  ASSERT_TRUE(kernel_.PostMessage(port.value(), message.value()).ok());
  kernel_.Run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(View(daemon).state(), ProcessState::kBlocked);  // looped back to waiting
}

TEST_F(KernelTest, PriorityDisciplineOrdersDispatch) {
  // Three ready processes with different priorities on one processor: the higher-priority
  // process must finish first (the default dispatching port is priority-disciplined).
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32, 0,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());

  auto make_marker = [&](uint32_t slot_offset) {
    Assembler a("marker");
    a.MoveAd(1, kArgAdReg)
        .OsCall(os_service::kGetTime)
        .StoreData(1, 7, slot_offset, 8)
        .Halt();
    return a.Build();
  };

  ProcessOptions low;
  low.priority = 1;
  low.initial_arg = carrier.value();
  ProcessOptions high;
  high.priority = 200;
  high.initial_arg = carrier.value();

  auto p_low = kernel_.CreateProcess(make_marker(0), low);
  auto p_high = kernel_.CreateProcess(make_marker(8), high);
  ASSERT_TRUE(p_low.ok() && p_high.ok());
  // Start low first so FIFO order would favor it; priority must win instead.
  ASSERT_TRUE(kernel_.StartProcess(p_low.value()).ok());
  ASSERT_TRUE(kernel_.StartProcess(p_high.value()).ok());
  kernel_.Run();
  uint64_t t_low = machine_.addressing().ReadData(carrier.value(), 0, 8).value();
  uint64_t t_high = machine_.addressing().ReadData(carrier.value(), 8, 8).value();
  EXPECT_LT(t_high, t_low);
}

TEST_F(KernelTest, SwapFaultsServicedTransparently) {
  // Same machine but with the swapping manager and tight memory: a program touching many
  // large objects keeps running, with swap faults serviced invisibly.
  MachineConfig config;
  config.memory_bytes = 96 * 1024;
  config.object_table_capacity = 1024;
  Machine machine(config);
  SwappingMemoryManager memory(&machine);
  Kernel kernel(&machine, &memory);
  ASSERT_TRUE(kernel.AddProcessors(1).ok());

  // Make 8 x 16 KB objects (128 KB > 96 KB of memory), then read each one.
  auto holder = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 8, 8,
                                    rights::kRead | rights::kWrite);
  ASSERT_TRUE(holder.ok());
  Assembler a("toucher");
  a.MoveAd(1, kArgAdReg);  // a1 = holder
  a.LoadAd(2, 1, 7);       // slot 7 holds the SRO — set below
  for (int i = 0; i < 7; ++i) {
    a.CreateObject(3, 2, 16 * 1024);
    a.StoreAd(1, 3, static_cast<uint32_t>(i));
    a.LoadImm(0, static_cast<uint64_t>(i + 1));
    a.StoreData(3, 0, 0, 8);
  }
  // Read them all back.
  for (int i = 0; i < 7; ++i) {
    a.LoadAd(3, 1, static_cast<uint32_t>(i));
    a.LoadData(0, 3, 0, 8);
  }
  a.Halt();
  ASSERT_TRUE(machine.addressing().WriteAd(holder.value(), 7, memory.global_heap()).ok());

  ProcessOptions options;
  options.initial_arg = holder.value();
  auto process = kernel.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(kernel.StartProcess(process.value()).ok());
  kernel.Run();
  EXPECT_EQ(kernel.process_view(process.value()).state(), ProcessState::kTerminated);
  EXPECT_GT(kernel.stats().swap_faults, 0u);
  EXPECT_GT(memory.stats().swap_ins, 0u);
}

TEST_F(KernelTest, ProcessEventHandlerObservesLifecycle) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  std::vector<ProcessEvent> events;
  kernel_.SetProcessEventHandler(
      [&](const AccessDescriptor&, ProcessEvent event) { events.push_back(event); });
  Assembler a("simple");
  a.Compute(10).Halt();
  Spawn(a.Build());
  kernel_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], ProcessEvent::kTerminated);
}

TEST_F(KernelTest, ConsumedCyclesAccounted) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  Assembler a("work");
  a.Compute(8000).Halt();  // 1 ms of work at 8 MHz
  AccessDescriptor process = Spawn(a.Build());
  kernel_.Run();
  // Consumed covers the compute plus instruction overheads.
  EXPECT_GE(View(process).consumed(), 8000u);
  EXPECT_LT(View(process).consumed(), 9000u);
}

}  // namespace
}  // namespace imax432

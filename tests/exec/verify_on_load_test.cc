// Verify-on-load: the kernel option gating the static capability verifier (src/analysis).

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/io/devices.h"
#include "src/memory/basic_memory_manager.h"
#include "src/os/fault_service.h"
#include "src/os/schedulers.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class VerifyOnLoadTest : public ::testing::Test {
 protected:
  VerifyOnLoadTest() : machine_(SmallConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    kernel_.set_verify_on_load(true);
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(VerifyOnLoadTest, RejectsProvablyFaultingProgram) {
  Assembler a("bad");
  a.LoadData(0, 1, 0, 8).Halt();  // a1 never initialized
  auto process = kernel_.CreateProcess(a.Build(), {});
  ASSERT_FALSE(process.ok());
  EXPECT_EQ(process.fault(), Fault::kVerificationFailed);
  EXPECT_EQ(kernel_.stats().programs_verified, 1u);
  EXPECT_EQ(kernel_.stats().programs_rejected, 1u);
  EXPECT_EQ(kernel_.stats().processes_created, 0u);
}

TEST_F(VerifyOnLoadTest, AcceptsAndRunsCleanProgram) {
  Assembler a("good");
  a.MoveAd(1, kArgAdReg)       // a1 = global heap
      .CreateObject(2, 1, 64)
      .StoreData(2, 0, 0, 8)
      .Halt();
  ProcessOptions options;
  options.initial_arg = memory_.global_heap();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok()) << FaultName(process.fault());
  EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel_.stats().programs_verified, 1u);
  EXPECT_EQ(kernel_.stats().programs_rejected, 0u);
}

TEST_F(VerifyOnLoadTest, SeededArgumentFactsMakeRightsProvable) {
  // The loader knows the concrete AD placed in a7; rights stripped from it at spawn time
  // make the rights violation provable at load time.
  Assembler a("overreach");
  a.MoveAd(1, kArgAdReg).StoreData(1, 0, 0, 8).Halt();
  ProcessOptions options;
  options.initial_arg = memory_.global_heap().Restricted(rights::kRead);
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_FALSE(process.ok());
  EXPECT_EQ(process.fault(), Fault::kVerificationFailed);
}

TEST_F(VerifyOnLoadTest, DomainEntriesVerifiedOnCreateDomain) {
  // A well-behaved entry: does its work and clears the return register.
  Assembler good("good_entry");
  good.ClearAd(kArgAdReg).Return();
  auto good_segment = kernel_.programs().Register(good.Build());
  ASSERT_TRUE(good_segment.ok());
  auto domain = kernel_.CreateDomain({good_segment.value()});
  EXPECT_TRUE(domain.ok()) << FaultName(domain.fault());

  // An entry that uses an AD register no caller could have initialized.
  Assembler bad("bad_entry");
  bad.Send(3, 3).Return();
  auto bad_segment = kernel_.programs().Register(bad.Build());
  ASSERT_TRUE(bad_segment.ok());
  auto bad_domain = kernel_.CreateDomain({bad_segment.value()});
  ASSERT_FALSE(bad_domain.ok());
  EXPECT_EQ(bad_domain.fault(), Fault::kVerificationFailed);
  EXPECT_EQ(kernel_.stats().programs_rejected, 1u);
}

TEST_F(VerifyOnLoadTest, OffByDefaultLeavesFaultsToRuntime) {
  Machine machine(SmallConfig());
  BasicMemoryManager memory(&machine);
  Kernel kernel(&machine, &memory);
  EXPECT_FALSE(kernel.verify_on_load());
  Assembler a("bad");
  a.LoadData(0, 1, 0, 8).Halt();
  auto process = kernel.CreateProcess(a.Build(), {});
  EXPECT_TRUE(process.ok());  // accepted; the AddressingUnit faults it at run time
  EXPECT_EQ(kernel.stats().programs_verified, 0u);
}

// The whole OS — GC daemon, fault service, schedulers, device server, user programs — must
// boot and run under verify-on-load: the verifier accepts every program the system loads.
TEST(VerifyOnLoadSystemTest, FullSystemBootsAndRunsVerified) {
  SystemConfig config;
  config.processors = 2;
  config.verify_on_load = true;
  System system(config);
  EXPECT_TRUE(system.kernel().verify_on_load());

  FaultService fault_service(&system.kernel(), FaultPolicy{});
  auto fault_port = fault_service.Spawn();
  ASSERT_TRUE(fault_port.ok()) << FaultName(fault_port.fault());

  SchedulerStats scheduler_stats;
  auto scheduler = SpawnPassThroughScheduler(&system.kernel(), &system.process_manager(),
                                             &scheduler_stats);
  ASSERT_TRUE(scheduler.ok()) << FaultName(scheduler.fault());

  auto console = DeviceServer::Spawn(&system.kernel(), std::make_unique<ConsoleDevice>());
  ASSERT_TRUE(console.ok()) << FaultName(console.fault());

  // A user pair exchanging a message, as in the quickstart example.
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 4,
                                                 QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(
      system.machine().addressing().WriteAd(carrier.value(), 0, port.value()).ok());
  ASSERT_TRUE(system.machine()
                  .addressing()
                  .WriteAd(carrier.value(), 1, system.memory().global_heap())
                  .ok());

  Assembler producer("producer");
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 32)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .Halt();
  Assembler consumer("consumer");
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .Receive(4, 2)
      .LoadData(3, 4, 0, 8)
      .StoreData(1, 3, 8, 8)
      .Halt();

  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto consumer_process = system.Spawn(consumer.Build(), options);
  auto producer_process = system.Spawn(producer.Build(), options);
  ASSERT_TRUE(consumer_process.ok()) << FaultName(consumer_process.fault());
  ASSERT_TRUE(producer_process.ok()) << FaultName(producer_process.fault());
  system.Run();

  EXPECT_EQ(system.kernel().stats().programs_rejected, 0u);
  EXPECT_GE(system.kernel().stats().programs_verified, 5u);  // daemons + services + pair
  EXPECT_EQ(system.kernel()
                .process_view(producer_process.value())
                .state(),
            ProcessState::kTerminated);
  EXPECT_EQ(system.kernel()
                .process_view(consumer_process.value())
                .state(),
            ProcessState::kTerminated);

  // One GC cycle under verify-on-load, for good measure.
  (void)system.RequestCollection();
  system.Run();
  EXPECT_GT(system.gc().stats().objects_reclaimed, 0u);
}

}  // namespace
}  // namespace imax432

// Dispatching-port discipline tests: processors can be attached to ports with any of the
// service disciplines, giving FIFO, priority or earliest-deadline hardware scheduling with
// no software scheduler at all.

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class DispatchDisciplineTest : public ::testing::Test {
 protected:
  DispatchDisciplineTest()
      : machine_(MakeConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 1024 * 1024;
    config.object_table_capacity = 4096;
    return config;
  }

  // Spawns a marker process on `port` that records its start time at carrier[offset].
  void SpawnMarker(const AccessDescriptor& port, const AccessDescriptor& carrier,
                   uint32_t offset, uint8_t priority, uint32_t deadline) {
    Assembler a("marker");
    a.MoveAd(1, kArgAdReg)
        .OsCall(os_service::kGetTime)
        .StoreData(1, 7, offset, 8)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier;
    options.priority = priority;
    options.deadline = deadline;
    options.dispatch_port = port;
    auto process = kernel_.CreateProcess(a.Build(), options);
    ASSERT_TRUE(process.ok());
    ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(DispatchDisciplineTest, DeadlineDispatchRunsEarliestDeadlineFirst) {
  auto port =
      kernel_.ports().CreatePort(memory_.global_heap(), 64, QueueDiscipline::kDeadline);
  ASSERT_TRUE(port.ok());
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32, 0,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());

  // Queue three processes before any processor exists: arrival order late, mid, soon.
  SpawnMarker(port.value(), carrier.value(), 0, 128, /*deadline=*/9000);   // late
  SpawnMarker(port.value(), carrier.value(), 8, 128, /*deadline=*/4000);   // mid
  SpawnMarker(port.value(), carrier.value(), 16, 128, /*deadline=*/100);   // soon
  ASSERT_TRUE(kernel_.AddProcessors(1, port.value()).ok());
  kernel_.Run();

  uint64_t late = machine_.addressing().ReadData(carrier.value(), 0, 8).value();
  uint64_t mid = machine_.addressing().ReadData(carrier.value(), 8, 8).value();
  uint64_t soon = machine_.addressing().ReadData(carrier.value(), 16, 8).value();
  EXPECT_LT(soon, mid);
  EXPECT_LT(mid, late);
}

TEST_F(DispatchDisciplineTest, FifoDispatchRunsInArrivalOrder) {
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 64, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32, 0,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  // High priority arrives last: FIFO ignores it.
  SpawnMarker(port.value(), carrier.value(), 0, /*priority=*/1, 0);
  SpawnMarker(port.value(), carrier.value(), 8, /*priority=*/250, 0);
  ASSERT_TRUE(kernel_.AddProcessors(1, port.value()).ok());
  kernel_.Run();
  uint64_t first = machine_.addressing().ReadData(carrier.value(), 0, 8).value();
  uint64_t second = machine_.addressing().ReadData(carrier.value(), 8, 8).value();
  EXPECT_LT(first, second);
}

TEST_F(DispatchDisciplineTest, PartitionedDispatchPorts) {
  // Two dispatch ports, one processor each: work queued on port A never runs on B's
  // processor — partitioned scheduling by configuration alone.
  auto port_a = kernel_.ports().CreatePort(memory_.global_heap(), 16, QueueDiscipline::kFifo);
  auto port_b = kernel_.ports().CreatePort(memory_.global_heap(), 16, QueueDiscipline::kFifo);
  ASSERT_TRUE(port_a.ok() && port_b.ok());
  ASSERT_TRUE(kernel_.AddProcessors(1, port_a.value()).ok());  // processor 0
  ASSERT_TRUE(kernel_.AddProcessors(1, port_b.value()).ok());  // processor 1

  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  SpawnMarker(port_a.value(), carrier.value(), 0, 128, 0);
  SpawnMarker(port_b.value(), carrier.value(), 8, 128, 0);
  kernel_.Run();

  // Both ran; each processor dispatched at least its own.
  EXPECT_GT(machine_.addressing().ReadData(carrier.value(), 0, 8).value(), 0u);
  EXPECT_GT(machine_.addressing().ReadData(carrier.value(), 8, 8).value(), 0u);
  ObjectView p0(&machine_.addressing(), kernel_.processor_object(0));
  ObjectView p1(&machine_.addressing(), kernel_.processor_object(1));
  EXPECT_GE(p0.Field(ProcessorLayout::kOffDispatches, 8), 1u);
  EXPECT_GE(p1.Field(ProcessorLayout::kOffDispatches, 8), 1u);
}

}  // namespace
}  // namespace imax432

// Processor retirement and stall: the recovery half of the injector's processor faults.
// A retired GDP's in-flight process is rescued and re-queued at its dispatching port; a
// parked GDP is pulled out of the idle-receiver queue so MakeReady never hands work to a
// dead processor; stalls delay execution without losing anything.

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class RetirementTest : public ::testing::Test {
 protected:
  RetirementTest() : machine_(MakeConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(2).ok());
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 512 * 1024;
    config.object_table_capacity = 2048;
    return config;
  }

  // A worker burning `slices` x 2000 compute cycles: long enough that a mid-run retirement
  // always catches some process in flight.
  AccessDescriptor SpawnWorker(uint64_t slices) {
    Assembler a("worker");
    auto loop = a.NewLabel();
    a.LoadImm(0, 0)
        .LoadImm(1, slices)
        .Bind(loop)
        .Compute(2000)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .Halt();
    auto process = kernel_.CreateProcess(a.Build(), ProcessOptions{});
    EXPECT_TRUE(process.ok());
    fleet_.push_back(process.value());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    return process.value();
  }

  void RootFleet() {
    kernel_.AddRootProvider([this](std::vector<AccessDescriptor>* roots) {
      for (const AccessDescriptor& ad : fleet_) {
        roots->push_back(ad);
      }
    });
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  std::vector<AccessDescriptor> fleet_;
};

TEST_F(RetirementTest, InFlightProcessIsRequeuedAndFinishes) {
  RootFleet();
  for (int i = 0; i < 3; ++i) {
    SpawnWorker(100);  // ~200k cycles each
  }
  machine_.events().ScheduleAt(50'000,
                               [this] { ASSERT_TRUE(kernel_.RetireProcessor(0).ok()); });
  kernel_.Run();

  EXPECT_TRUE(kernel_.processor_retired(0));
  EXPECT_EQ(kernel_.active_processor_count(), 1);
  EXPECT_EQ(kernel_.stats().processors_retired, 1u);
  // The process the dead GDP was running came back and every worker still completed.
  EXPECT_GE(kernel_.stats().retirement_requeues, 1u);
  for (const AccessDescriptor& process : fleet_) {
    EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);
  }
  EXPECT_EQ(kernel_.stats().panics, 0u);
}

TEST_F(RetirementTest, ParkedProcessorIsRemovedFromTheReceiverQueue) {
  kernel_.Run();  // both GDPs park at the dispatching port as idle receivers
  ASSERT_TRUE(kernel_.RetireProcessor(0).ok());
  EXPECT_EQ(kernel_.stats().retirement_requeues, 0u);  // nothing was in flight

  // Work submitted after the retirement must land on the survivor, not the corpse.
  RootFleet();
  AccessDescriptor worker = SpawnWorker(10);
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(worker).state(), ProcessState::kTerminated);
}

TEST_F(RetirementTest, DoubleRetireIsWrongState) {
  ASSERT_TRUE(kernel_.RetireProcessor(1).ok());
  EXPECT_EQ(kernel_.RetireProcessor(1).fault(), Fault::kWrongState);
  EXPECT_EQ(kernel_.RetireProcessor(99).fault(), Fault::kNotFound);
  EXPECT_EQ(kernel_.stats().processors_retired, 1u);
}

TEST_F(RetirementTest, StallOnRetiredProcessorIsWrongState) {
  ASSERT_TRUE(kernel_.RetireProcessor(0).ok());
  EXPECT_EQ(kernel_.StallProcessor(0, 1000).fault(), Fault::kWrongState);
  EXPECT_EQ(kernel_.StallProcessor(99, 1000).fault(), Fault::kNotFound);
}

TEST_F(RetirementTest, StallDelaysExecutionWithoutLosingWork) {
  kernel_.Run();  // park
  RootFleet();
  AccessDescriptor worker = SpawnWorker(2);  // finishes in well under 30k cycles unstalled
  constexpr Cycles kStall = 30'000;
  ASSERT_TRUE(kernel_.StallProcessor(0, kStall).ok());
  ASSERT_TRUE(kernel_.StallProcessor(1, kStall).ok());
  kernel_.Run();
  // With every GDP frozen, completion cannot beat the stall deadline — but it does complete.
  EXPECT_GE(machine_.now(), kStall);
  EXPECT_EQ(kernel_.process_view(worker).state(), ProcessState::kTerminated);
  EXPECT_EQ(kernel_.stats().processors_stalled, 2u);
}

}  // namespace
}  // namespace imax432

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class TimedReceiveTest : public ::testing::Test {
 protected:
  TimedReceiveTest() : machine_(MakeConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 512 * 1024;
    config.object_table_capacity = 2048;
    return config;
  }

  // A process that does a timed receive (port in a7, timeout in r7), then halts.
  AccessDescriptor SpawnTimedReceiver(const AccessDescriptor& port, Cycles timeout,
                                      uint8_t imax_level = kImaxLevelUser,
                                      const AccessDescriptor& fault_port = {}) {
    Assembler a("timed-receiver");
    a.MoveAd(kArgAdReg, kArgAdReg)  // a7 already holds the port (initial_arg)
        .LoadImm(kArgReg, timeout)
        .OsCall(os_service::kTimedReceive)
        .Halt();
    ProcessOptions options;
    options.initial_arg = port;
    options.imax_level = imax_level;
    options.fault_port = fault_port;
    auto process = kernel_.CreateProcess(a.Build(), options);
    EXPECT_TRUE(process.ok());
    EXPECT_TRUE(kernel_.StartProcess(process.value()).ok());
    return process.value();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(TimedReceiveTest, ExpiryFaultsWithTimeout) {
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  AccessDescriptor process = SpawnTimedReceiver(port.value(), /*timeout=*/10000);
  kernel_.Run();
  ProcessView view = kernel_.process_view(process);
  EXPECT_EQ(view.state(), ProcessState::kTerminated);  // no fault port: terminated
  EXPECT_EQ(view.fault_code(), Fault::kTimeout);
  // The process is no longer queued at the port.
  EXPECT_FALSE(kernel_.ports().HasBlockedReceiver(port.value()));
}

TEST_F(TimedReceiveTest, MessageBeforeExpiryDeliversNormally) {
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  // Pre-load the port: the timed receive succeeds immediately, no block, no timer bite.
  ASSERT_TRUE(kernel_.PostMessage(port.value(), memory_.global_heap()).ok());
  AccessDescriptor process = SpawnTimedReceiver(port.value(), /*timeout=*/10000);
  kernel_.Run();
  ProcessView view = kernel_.process_view(process);
  EXPECT_EQ(view.state(), ProcessState::kTerminated);
  EXPECT_EQ(view.fault_code(), Fault::kNone);
}

TEST_F(TimedReceiveTest, LateMessageRaceIsBenign) {
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  AccessDescriptor process = SpawnTimedReceiver(port.value(), /*timeout=*/200000);
  // Let it block, deliver the message well before expiry, then drain past the timer.
  kernel_.RunUntil(machine_.now() + 50000);
  ASSERT_TRUE(kernel_.PostMessage(port.value(), memory_.global_heap()).ok());
  kernel_.Run();
  ProcessView view = kernel_.process_view(process);
  EXPECT_EQ(view.state(), ProcessState::kTerminated);
  EXPECT_EQ(view.fault_code(), Fault::kNone);  // the stale timer was a no-op
}

TEST_F(TimedReceiveTest, TimeoutFaultDeliveredToFaultPort) {
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  auto fault_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok() && fault_port.ok());
  AccessDescriptor process =
      SpawnTimedReceiver(port.value(), 10000, kImaxLevelUser, fault_port.value());
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kFaulted);
  auto delivered = kernel_.ports().Dequeue(fault_port.value());
  ASSERT_TRUE(delivered.ok());
  EXPECT_TRUE(delivered.value().SameObject(process));
}

TEST_F(TimedReceiveTest, Level2ProcessMayTimeoutFault) {
  // §7.3: "Processes at level 2 are actually permitted a limited set of timeout faults."
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  auto fault_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok() && fault_port.ok());
  AccessDescriptor process =
      SpawnTimedReceiver(port.value(), 10000, kImaxLevelMemory, fault_port.value());
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().panics, 0u);  // permitted: no design-rule violation
  EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kFaulted);
  EXPECT_EQ(kernel_.process_view(process).fault_code(), Fault::kTimeout);
}

TEST_F(TimedReceiveTest, Level1ProcessTimeoutPanics) {
  // "...while those at level 1 are not permitted even these."
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  AccessDescriptor process = SpawnTimedReceiver(port.value(), 10000, kImaxLevelCore);
  kernel_.Run();
  EXPECT_EQ(kernel_.stats().panics, 1u);
  EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);
}

TEST_F(TimedReceiveTest, ReblockingDoesNotTripStaleTimer) {
  // Process does a LONG timed receive satisfied quickly, then an untimed receive on another
  // port. When the first timer fires, the process is blocked again — but in a new episode,
  // so the stale timer must not fault it.
  auto port_a = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  auto port_b = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port_a.ok() && port_b.ok());

  auto carrier = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, port_a.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, port_b.value()).ok());

  Assembler a("reblocker");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(kArgAdReg, 1, 0)          // a7 = port A
      .LoadImm(kArgReg, 400000)         // long timeout
      .OsCall(os_service::kTimedReceive)
      .LoadAd(2, 1, 1)                  // a2 = port B
      .Receive(3, 2)                    // block indefinitely on B
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());

  kernel_.RunUntil(machine_.now() + 20000);  // blocked on A
  ASSERT_TRUE(kernel_.PostMessage(port_a.value(), memory_.global_heap()).ok());
  kernel_.Run();  // now blocked on B; port A's timer fires during this drain
  ProcessView view = kernel_.process_view(process.value());
  EXPECT_EQ(view.state(), ProcessState::kBlocked);  // still healthy, waiting on B
  EXPECT_EQ(view.fault_code(), Fault::kNone);
}

}  // namespace
}  // namespace imax432

// Kernel::AnalyzeSystem and the incremental IPC effect summaries the kernel keeps as
// programs register (src/analysis/effects.h + deadlock.h wired through exec/kernel.cc).

#include <gtest/gtest.h>

#include "src/analysis/deadlock.h"
#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class AnalyzeSystemTest : public ::testing::Test {
 protected:
  AnalyzeSystemTest() : machine_(SmallConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  AccessDescriptor MakePort(const char* name) {
    auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
    EXPECT_TRUE(port.ok());
    kernel_.symbols().Name(port.value().index(), name);
    return port.value();
  }

  AccessDescriptor SpawnReceiver(const AccessDescriptor& port) {
    Assembler a("receiver");
    a.MoveAd(1, kArgAdReg).Receive(2, 1).Halt();
    ProcessOptions options;
    options.initial_arg = port;
    auto process = kernel_.CreateProcess(a.Build(), options);
    EXPECT_TRUE(process.ok()) << FaultName(process.fault());
    return process.ok() ? process.value() : AccessDescriptor();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(AnalyzeSystemTest, VerifyOnLoadRecordsSummariesIncrementally) {
  kernel_.set_verify_on_load(true);
  EXPECT_EQ(kernel_.stats().effect_summaries, 0u);
  Assembler a("trivial");
  a.Halt();
  ASSERT_TRUE(kernel_.CreateProcess(a.Build(), {}).ok());
  EXPECT_EQ(kernel_.stats().effect_summaries, 1u);
  EXPECT_EQ(kernel_.effect_graph().program_count(), 1u);
  // AnalyzeSystem finds the summary already on file and does not recompute it.
  (void)kernel_.AnalyzeSystem();
  EXPECT_EQ(kernel_.stats().effect_summaries, 1u);
}

TEST_F(AnalyzeSystemTest, AnalyzeSystemLazilySummarizesUnverifiedPrograms) {
  Assembler a("trivial");
  a.Halt();
  ASSERT_TRUE(kernel_.CreateProcess(a.Build(), {}).ok());
  EXPECT_EQ(kernel_.effect_graph().program_count(), 0u);  // verify-on-load is off
  analysis::SystemAnalysisReport report = kernel_.AnalyzeSystem();
  EXPECT_EQ(kernel_.stats().effect_summaries, 1u);
  EXPECT_GE(report.programs_analyzed, 1u);
}

TEST_F(AnalyzeSystemTest, LoneReceiverIsReportedStarved) {
  AccessDescriptor port = MakePort("inbox");
  SpawnReceiver(port);
  analysis::SystemAnalysisReport report = kernel_.AnalyzeSystem();
  ASSERT_EQ(report.diagnostics.size(), 1u) << analysis::FormatReport(report);
  EXPECT_EQ(report.diagnostics[0].rule, analysis::SystemRule::kStarvedPort);
  // The symbol table name reaches the diagnostic text.
  EXPECT_NE(report.diagnostics[0].message.find("'inbox'"), std::string::npos)
      << report.diagnostics[0].message;
}

TEST_F(AnalyzeSystemTest, PostMessageMarksThePortExternallyFed) {
  AccessDescriptor port = MakePort("inbox");
  SpawnReceiver(port);
  ASSERT_FALSE(kernel_.AnalyzeSystem().ok());
  // Outside traffic (a device, a test harness) exists: the starvation claim must retract.
  auto message = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                      rights::kRead | rights::kWrite);
  ASSERT_TRUE(message.ok());
  ASSERT_TRUE(kernel_.PostMessage(port, message.value()).ok());
  EXPECT_TRUE(kernel_.AnalyzeSystem().ok());
}

TEST_F(AnalyzeSystemTest, FaultPortIsAKernelSideSender) {
  AccessDescriptor port = MakePort("faults");
  // A supervisor blocks receiving faulted processes. Nothing in the program set ever sends
  // to the port — the kernel does, so no starvation diagnostic may appear.
  SpawnReceiver(port);
  Assembler a("worker");
  a.Halt();
  ProcessOptions options;
  options.fault_port = port;
  ASSERT_TRUE(kernel_.CreateProcess(a.Build(), options).ok());
  EXPECT_TRUE(kernel_.AnalyzeSystem().ok());
}

TEST_F(AnalyzeSystemTest, SchedulerPortIsAKernelSideSender) {
  AccessDescriptor port = MakePort("events");
  SpawnReceiver(port);
  Assembler a("worker");
  a.Halt();
  ProcessOptions options;
  options.scheduler_port = port;
  ASSERT_TRUE(kernel_.CreateProcess(a.Build(), options).ok());
  EXPECT_TRUE(kernel_.AnalyzeSystem().ok());
}

}  // namespace
}  // namespace imax432

#include "src/io/device.h"

#include <gtest/gtest.h>

#include "src/io/devices.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig IoConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 4096;
  return config;
}

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : machine_(IoConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  AccessDescriptor MakeBuffer(uint32_t bytes) {
    auto buffer = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, bytes, 0,
                                       rights::kRead | rights::kWrite);
    EXPECT_TRUE(buffer.ok());
    return buffer.value();
  }

  std::string ReadBufferText(const AccessDescriptor& buffer, uint32_t length) {
    std::string text(length, '\0');
    EXPECT_TRUE(machine_.addressing().ReadDataBlock(buffer, 0, text.data(), length).ok());
    return text;
  }

  void WriteBufferText(const AccessDescriptor& buffer, const std::string& text) {
    EXPECT_TRUE(machine_.addressing()
                    .WriteDataBlock(buffer, 0, text.data(),
                                    static_cast<uint32_t>(text.size()))
                    .ok());
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(DeviceTest, ConsoleWriteAppearsOnDevice) {
  auto console_model = std::make_unique<ConsoleDevice>();
  ConsoleDevice* console = console_model.get();
  auto server = DeviceServer::Spawn(&kernel_, std::move(console_model));
  ASSERT_TRUE(server.ok());
  kernel_.Run();  // server parks at its request port

  IoClient client(&kernel_);
  AccessDescriptor buffer = MakeBuffer(64);
  WriteBufferText(buffer, "hello, 432\n");
  auto outcome =
      client.Transfer(server.value()->request_port(), io_op::kWrite, 0, buffer, 11);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, io_status::kOk);
  EXPECT_EQ(outcome.value().actual, 11u);
  EXPECT_EQ(console->output(), "hello, 432\n");
}

TEST_F(DeviceTest, ConsoleReadReplaysInput) {
  auto console_model = std::make_unique<ConsoleDevice>();
  console_model->PreloadInput("y\n");
  auto server = DeviceServer::Spawn(&kernel_, std::move(console_model));
  ASSERT_TRUE(server.ok());
  kernel_.Run();

  IoClient client(&kernel_);
  AccessDescriptor buffer = MakeBuffer(16);
  auto outcome =
      client.Transfer(server.value()->request_port(), io_op::kRead, 0, buffer, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().actual, 2u);
  EXPECT_EQ(ReadBufferText(buffer, 2), "y\n");
}

TEST_F(DeviceTest, DeviceIndependentInterfaceIsUniform) {
  // The same client code drives three different device implementations (§6.3: "The user
  // interacts with each device identically but the code is specific to the device").
  TapeDevice::VolumeLibrary library;
  std::vector<std::unique_ptr<DeviceServer>> servers;
  {
    auto console = DeviceServer::Spawn(&kernel_, std::make_unique<ConsoleDevice>());
    auto tape = DeviceServer::Spawn(&kernel_, std::make_unique<TapeDevice>(&library));
    auto disk = DeviceServer::Spawn(&kernel_, std::make_unique<DiskDevice>());
    ASSERT_TRUE(console.ok() && tape.ok() && disk.ok());
    servers.push_back(std::move(console.value()));
    servers.push_back(std::move(tape.value()));
    servers.push_back(std::move(disk.value()));
  }
  kernel_.Run();
  IoClient client(&kernel_);
  // Mount the tape first (device-dependent op through the same port).
  ASSERT_TRUE(client.Control(servers[1]->request_port(), io_op::kMount, 7).ok());

  AccessDescriptor buffer = MakeBuffer(32);
  WriteBufferText(buffer, "uniform");
  for (auto& server : servers) {
    auto outcome = client.Transfer(server->request_port(), io_op::kWrite, 0, buffer, 7);
    ASSERT_TRUE(outcome.ok()) << server->model().kind();
    EXPECT_EQ(outcome.value().status, io_status::kOk) << server->model().kind();
    // Status is also uniform.
    auto status = client.Control(server->request_port(), io_op::kStatus, 0);
    ASSERT_TRUE(status.ok()) << server->model().kind();
  }
}

TEST_F(DeviceTest, TapeRequiresMount) {
  TapeDevice::VolumeLibrary library;
  auto server = DeviceServer::Spawn(&kernel_, std::make_unique<TapeDevice>(&library));
  ASSERT_TRUE(server.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  AccessDescriptor buffer = MakeBuffer(16);
  auto outcome = client.Transfer(server.value()->request_port(), io_op::kRead, 0, buffer, 8);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, io_status::kNotMounted);
}

TEST_F(DeviceTest, TapeDataPersistsAcrossMounts) {
  TapeDevice::VolumeLibrary library;
  auto server = DeviceServer::Spawn(&kernel_, std::make_unique<TapeDevice>(&library));
  ASSERT_TRUE(server.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  AccessDescriptor port = server.value()->request_port();

  ASSERT_TRUE(client.Control(port, io_op::kMount, 42).ok());
  AccessDescriptor buffer = MakeBuffer(32);
  WriteBufferText(buffer, "archived-data");
  ASSERT_EQ(client.Transfer(port, io_op::kWrite, 0, buffer, 13).value().status,
            io_status::kOk);
  ASSERT_TRUE(client.Control(port, io_op::kUnmount, 0).ok());

  // Re-mount the same volume: data is back (it lives in the volume, not the drive).
  ASSERT_TRUE(client.Control(port, io_op::kMount, 42).ok());
  AccessDescriptor read_buffer = MakeBuffer(32);
  auto outcome = client.Transfer(port, io_op::kRead, 0, read_buffer, 13);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().actual, 13u);
  EXPECT_EQ(ReadBufferText(read_buffer, 13), "archived-data");
}

TEST_F(DeviceTest, TapeRewindAndSequentialAccess) {
  TapeDevice::VolumeLibrary library;
  auto tape_model = std::make_unique<TapeDevice>(&library);
  TapeDevice* tape = tape_model.get();
  auto server = DeviceServer::Spawn(&kernel_, std::move(tape_model));
  ASSERT_TRUE(server.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  AccessDescriptor port = server.value()->request_port();

  ASSERT_TRUE(client.Control(port, io_op::kMount, 1).ok());
  AccessDescriptor buffer = MakeBuffer(16);
  WriteBufferText(buffer, "abcdefgh");
  ASSERT_EQ(client.Transfer(port, io_op::kWrite, 0, buffer, 8).value().status, io_status::kOk);
  EXPECT_EQ(tape->position(), 8u);
  ASSERT_TRUE(client.Control(port, io_op::kRewind, 0).ok());
  EXPECT_EQ(tape->position(), 0u);

  auto outcome = client.Transfer(port, io_op::kRead, 0, buffer, 4);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(ReadBufferText(buffer, 4), "abcd");
  EXPECT_EQ(tape->position(), 4u);
}

TEST_F(DeviceTest, DiskSeekIsClassDependentShared) {
  // kSeek works on both block devices (disk and tape) — a class-dependent interface —
  // but not on the console.
  TapeDevice::VolumeLibrary library;
  auto disk = DeviceServer::Spawn(&kernel_, std::make_unique<DiskDevice>());
  auto tape = DeviceServer::Spawn(&kernel_, std::make_unique<TapeDevice>(&library));
  auto console = DeviceServer::Spawn(&kernel_, std::make_unique<ConsoleDevice>());
  ASSERT_TRUE(disk.ok() && tape.ok() && console.ok());
  kernel_.Run();
  IoClient client(&kernel_);

  EXPECT_EQ(client.Control(disk.value()->request_port(), io_op::kSeek, 4096).value().status,
            io_status::kOk);
  ASSERT_TRUE(client.Control(tape.value()->request_port(), io_op::kMount, 1).ok());
  EXPECT_EQ(client.Control(tape.value()->request_port(), io_op::kSeek, 16).value().status,
            io_status::kOk);
  EXPECT_EQ(
      client.Control(console.value()->request_port(), io_op::kSeek, 0).value().status,
      io_status::kBadOperation);
}

TEST_F(DeviceTest, DiskRoundTripAndBounds) {
  auto server = DeviceServer::Spawn(&kernel_, std::make_unique<DiskDevice>(64 * 1024));
  ASSERT_TRUE(server.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  AccessDescriptor port = server.value()->request_port();

  AccessDescriptor buffer = MakeBuffer(256);
  WriteBufferText(buffer, "sector-data");
  ASSERT_EQ(client.Transfer(port, io_op::kWrite, 8192, buffer, 11).value().status,
            io_status::kOk);
  AccessDescriptor read_buffer = MakeBuffer(256);
  auto outcome = client.Transfer(port, io_op::kRead, 8192, read_buffer, 11);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(ReadBufferText(read_buffer, 11), "sector-data");

  // Past the end of the medium.
  EXPECT_EQ(client.Transfer(port, io_op::kWrite, 64 * 1024, buffer, 1).value().status,
            io_status::kEndOfMedium);
}

TEST_F(DeviceTest, DeviceLatencyIsCharged) {
  // A console write of N characters advances virtual time by about N * kCyclesPerChar.
  auto server = DeviceServer::Spawn(&kernel_, std::make_unique<ConsoleDevice>());
  ASSERT_TRUE(server.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  AccessDescriptor buffer = MakeBuffer(128);
  WriteBufferText(buffer, std::string(100, 'x'));

  Cycles before = machine_.now();
  ASSERT_TRUE(client.Transfer(server.value()->request_port(), io_op::kWrite, 0, buffer, 100)
                  .ok());
  Cycles elapsed = machine_.now() - before;
  EXPECT_GE(elapsed, 100 * ConsoleDevice::kCyclesPerChar);
}

TEST_F(DeviceTest, BadOperationReported) {
  auto server = DeviceServer::Spawn(&kernel_, std::make_unique<DiskDevice>());
  ASSERT_TRUE(server.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  auto outcome = client.Control(server.value()->request_port(), io_op::kBell, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status, io_status::kBadOperation);
  EXPECT_EQ(server.value()->stats().errors, 1u);
}

TEST_F(DeviceTest, TwoInstancesOfOneImplementationAreIndependent) {
  // "multiple instances of a module [may] be dynamically created": two consoles do not
  // share state.
  auto model_a = std::make_unique<ConsoleDevice>();
  auto model_b = std::make_unique<ConsoleDevice>();
  ConsoleDevice* console_a = model_a.get();
  ConsoleDevice* console_b = model_b.get();
  auto server_a = DeviceServer::Spawn(&kernel_, std::move(model_a));
  auto server_b = DeviceServer::Spawn(&kernel_, std::move(model_b));
  ASSERT_TRUE(server_a.ok() && server_b.ok());
  kernel_.Run();
  IoClient client(&kernel_);
  AccessDescriptor buffer = MakeBuffer(16);
  WriteBufferText(buffer, "A");
  ASSERT_TRUE(
      client.Transfer(server_a.value()->request_port(), io_op::kWrite, 0, buffer, 1).ok());
  EXPECT_EQ(console_a->output(), "A");
  EXPECT_EQ(console_b->output(), "");
}

}  // namespace
}  // namespace imax432

#include "src/sim/fault_injector.h"

#include <gtest/gtest.h>

#include "src/exec/kernel.h"
#include "src/memory/basic_memory_manager.h"
#include "src/memory/swapping_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

TEST(GenerateScheduleTest, PureFunctionOfSeedCountHorizon) {
  auto a = FaultInjector::GenerateSchedule(432, 64, 1'000'000);
  auto b = FaultInjector::GenerateSchedule(432, 64, 1'000'000);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].arg, b[i].arg);
  }
}

TEST(GenerateScheduleTest, DifferentSeedsDiverge) {
  auto a = FaultInjector::GenerateSchedule(1, 32, 1'000'000);
  auto b = FaultInjector::GenerateSchedule(2, 32, 1'000'000);
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].at != b[i].at || a[i].target != b[i].target) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateScheduleTest, SortedAndWithinBounds) {
  auto schedule = FaultInjector::GenerateSchedule(7, 128, 500'000);
  ASSERT_EQ(schedule.size(), 128u);
  Cycles previous = 0;
  for (const InjectionEvent& event : schedule) {
    EXPECT_GE(event.at, previous);
    EXPECT_LT(event.at, 500'000u);
    EXPECT_LT(static_cast<unsigned>(event.kind),
              static_cast<unsigned>(InjectionKind::kKindCount));
    if (event.kind == InjectionKind::kDeviceTransient) {
      // Transient bursts must fit the swap layer's retry budget so they always recover.
      EXPECT_GE(event.arg, 1u);
      EXPECT_LE(event.arg, SwappingMemoryManager::kMaxDeviceRetries);
    }
    previous = event.at;
  }
}

TEST(InjectionKindNameTest, EveryKindHasAName) {
  for (unsigned k = 0; k < static_cast<unsigned>(InjectionKind::kKindCount); ++k) {
    EXPECT_STRNE(InjectionKindName(static_cast<InjectionKind>(k)), "unknown");
  }
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest()
      : machine_(MakeConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        injector_(&kernel_, /*swap=*/nullptr) {
    EXPECT_TRUE(kernel_.AddProcessors(2).ok());
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 256 * 1024;
    config.object_table_capacity = 1024;
    return config;
  }

  // Position of `wanted` in the injector's candidate ordering (allocated, generic, not
  // quarantined, index order), so a test can aim an event at a specific object.
  uint32_t CandidatePosition(ObjectIndex wanted, bool needs_data) {
    uint32_t position = 0;
    for (ObjectIndex i = 0; i < machine_.table().capacity(); ++i) {
      const ObjectDescriptor& d = machine_.table().At(i);
      if (!d.allocated || d.type != SystemType::kGeneric || d.quarantined) continue;
      if (needs_data && (d.data_length == 0 || d.swapped_out)) continue;
      if (i == wanted) return position;
      ++position;
    }
    ADD_FAILURE() << "object " << wanted << " is not an injection candidate";
    return 0;
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  FaultInjector injector_;
};

TEST_F(FaultInjectorTest, RetirementKeepsTheLastProcessorAlive) {
  InjectionEvent retire;
  retire.kind = InjectionKind::kProcessorRetire;
  retire.target = 5;  // 5 % 2 live candidates = processor 1
  EXPECT_TRUE(injector_.Apply(retire));
  EXPECT_EQ(kernel_.stats().processors_retired, 1u);
  EXPECT_EQ(kernel_.active_processor_count(), 1);

  // One GDP left: the injector refuses to kill it — a dead system recovers nothing.
  EXPECT_FALSE(injector_.Apply(retire));
  EXPECT_EQ(kernel_.active_processor_count(), 1);
  EXPECT_EQ(injector_.stats().fired, 1u);
  EXPECT_EQ(injector_.stats().skipped, 1u);
}

TEST_F(FaultInjectorTest, StallMayTargetTheLastProcessor) {
  InjectionEvent retire;
  retire.kind = InjectionKind::kProcessorRetire;
  ASSERT_TRUE(injector_.Apply(retire));

  InjectionEvent stall;
  stall.kind = InjectionKind::kProcessorStall;
  stall.arg = 10'000;
  EXPECT_TRUE(injector_.Apply(stall));  // stalls end, so the survivor is fair game
  EXPECT_EQ(kernel_.stats().processors_stalled, 1u);
}

TEST_F(FaultInjectorTest, DeviceInjectionsSkippedWithoutSwapManager) {
  InjectionEvent transient;
  transient.kind = InjectionKind::kDeviceTransient;
  transient.arg = 2;
  EXPECT_FALSE(injector_.Apply(transient));
  InjectionEvent permanent;
  permanent.kind = InjectionKind::kDevicePermanent;
  permanent.arg = 1000;
  EXPECT_FALSE(injector_.Apply(permanent));
  EXPECT_EQ(injector_.stats().skipped, 2u);
  EXPECT_EQ(injector_.stats().fired, 0u);
}

TEST_F(FaultInjectorTest, BitFlipIsSilentCorruption) {
  auto ad = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64, 0,
                                 rights::kRead | rights::kWrite);
  ASSERT_TRUE(ad.ok());
  const uint64_t value = 0x1122334455667788ull;
  ASSERT_TRUE(machine_.addressing().WriteData(ad.value(), 0, 8, value).ok());
  const uint32_t epoch_before = machine_.table().At(ad.value().index()).data_epoch;

  InjectionEvent flip;
  flip.kind = InjectionKind::kBitFlip;
  flip.target = CandidatePosition(ad.value().index(), /*needs_data=*/true);
  flip.arg = 16;  // offset (16/8) % 64 = byte 2, bit 0
  ASSERT_TRUE(injector_.Apply(flip));

  auto read = machine_.addressing().ReadData(ad.value(), 0, 8);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), value ^ (1ull << 16));
  // The epoch did not advance: the write went behind the addressing unit's back, which is
  // exactly the signature the patrol's shadow CRC is built to catch.
  EXPECT_EQ(machine_.table().At(ad.value().index()).data_epoch, epoch_before);
}

TEST_F(FaultInjectorTest, ChecksumCorruptionBreaksTheSeal) {
  auto ad = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32, 0,
                                 rights::kRead);
  ASSERT_TRUE(ad.ok());
  const ObjectDescriptor& descriptor = machine_.table().At(ad.value().index());
  ASSERT_EQ(ObjectTable::DescriptorChecksum(descriptor), descriptor.checksum);

  InjectionEvent corrupt;
  corrupt.kind = InjectionKind::kChecksumCorrupt;
  corrupt.target = CandidatePosition(ad.value().index(), /*needs_data=*/false);
  corrupt.arg = 0;  // forced odd: even args must still flip at least one bit
  ASSERT_TRUE(injector_.Apply(corrupt));
  EXPECT_NE(ObjectTable::DescriptorChecksum(descriptor), descriptor.checksum);
}

TEST_F(FaultInjectorTest, BusWindowDoublesTransferCostAndCounts) {
  InjectionEvent drop;
  drop.kind = InjectionKind::kBusDrop;
  drop.arg = 20'000;
  ASSERT_TRUE(injector_.Apply(drop));
  // A transfer inside the window pays for the lost copy and the retransmission.
  Cycles inside = machine_.bus().Acquire(machine_.now(), 1000);
  Cycles clean_start = machine_.now() + 30'000;
  Cycles outside = machine_.bus().Acquire(clean_start, 1000) - clean_start;
  EXPECT_GE(inside, 2000u);
  EXPECT_LT(outside, 2000u);
  EXPECT_EQ(machine_.bus().dropped_transfers(), 1u);
  EXPECT_EQ(machine_.bus().duplicated_transfers(), 0u);
}

TEST_F(FaultInjectorTest, ArmFiresEventsAtTheirTimestamps) {
  auto schedule = FaultInjector::GenerateSchedule(11, 6, 50'000);
  injector_.Arm(schedule);
  machine_.events().RunUntilIdle();
  EXPECT_EQ(injector_.stats().fired + injector_.stats().skipped, schedule.size());
}

}  // namespace
}  // namespace imax432

#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace imax432 {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30, [&] { order.push_back(3); });
  queue.ScheduleAt(10, [&] { order.push_back(1); });
  queue.ScheduleAt(20, [&] { order.push_back(2); });
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueueTest, EqualTimesRunInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  queue.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CallbacksMayScheduleMore) {
  EventQueue queue;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      queue.ScheduleAfter(10, tick);
    }
  };
  queue.ScheduleAt(0, tick);
  queue.RunUntilIdle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int ran = 0;
  queue.ScheduleAt(10, [&] { ++ran; });
  queue.ScheduleAt(20, [&] { ++ran; });
  queue.ScheduleAt(30, [&] { ++ran; });
  EXPECT_EQ(queue.RunUntil(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.RunUntilIdle(), 1u);
  EXPECT_EQ(ran, 3);
}

TEST(EventQueueTest, RunBoundedLimitsWork) {
  EventQueue queue;
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    queue.ScheduleAfter(1, forever);
  };
  queue.ScheduleAt(0, forever);
  EXPECT_EQ(queue.RunBounded(100), 100u);
  EXPECT_EQ(count, 100);
}

TEST(EventQueueTest, ClockNeverGoesBackward) {
  EventQueue queue;
  Cycles last = 0;
  bool monotone = true;
  for (int i = 0; i < 50; ++i) {
    queue.ScheduleAt(static_cast<Cycles>((i * 7) % 23 + 1), [&, i] {
      if (queue.now() < last) {
        monotone = false;
      }
      last = queue.now();
      (void)i;
    });
  }
  queue.RunUntilIdle();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace imax432

#include "src/sim/bus.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(BusTest, UncontendedTransferCompletesImmediately) {
  Bus bus(1);
  EXPECT_EQ(bus.Acquire(100, 10), 110u);
  EXPECT_EQ(bus.busy_cycles(), 10u);
  EXPECT_EQ(bus.wait_cycles(), 0u);
}

TEST(BusTest, ZeroCyclesIsFree) {
  Bus bus(1);
  EXPECT_EQ(bus.Acquire(50, 0), 50u);
  EXPECT_EQ(bus.transactions(), 0u);
}

TEST(BusTest, ContendedTransfersSerialize) {
  Bus bus(1);
  // Two processors both want the bus at t=0 for 10 cycles each.
  EXPECT_EQ(bus.Acquire(0, 10), 10u);
  EXPECT_EQ(bus.Acquire(0, 10), 20u);  // waits for the first
  EXPECT_EQ(bus.wait_cycles(), 10u);
}

TEST(BusTest, MultipleChannelsServeInParallel) {
  Bus bus(2);
  EXPECT_EQ(bus.Acquire(0, 10), 10u);
  EXPECT_EQ(bus.Acquire(0, 10), 10u);  // second channel
  EXPECT_EQ(bus.Acquire(0, 10), 20u);  // now must wait
  EXPECT_EQ(bus.wait_cycles(), 10u);
}

TEST(BusTest, LateArrivalDoesNotWait) {
  Bus bus(1);
  bus.Acquire(0, 10);
  EXPECT_EQ(bus.Acquire(50, 5), 55u);
  EXPECT_EQ(bus.wait_cycles(), 0u);
}

TEST(BusTest, UtilizationReflectsLoad) {
  Bus bus(1);
  bus.Acquire(0, 50);
  EXPECT_DOUBLE_EQ(bus.Utilization(100), 0.5);
  Bus dual(2);
  dual.Acquire(0, 50);
  EXPECT_DOUBLE_EQ(dual.Utilization(100), 0.25);
}

TEST(BusTest, SaturationBoundsThroughput) {
  // With a 1-channel bus and transfers of 10 cycles back to back, at most one transfer per
  // 10 cycles completes regardless of how many requesters pile in — the E3 mechanism.
  Bus bus(1);
  Cycles last = 0;
  for (int i = 0; i < 100; ++i) {
    last = bus.Acquire(0, 10);
  }
  EXPECT_EQ(last, 1000u);
  EXPECT_EQ(bus.busy_cycles(), 1000u);
}

}  // namespace
}  // namespace imax432

// Phase-1 race machinery: per-program object access summaries (effects.h) — what gets
// recorded, and the must-receive-before / must-send-after facts the race detector's
// happens-before proofs stand on.

#include <gtest/gtest.h>

#include <map>

#include "src/analysis/effects.h"
#include "src/arch/rights.h"
#include "src/isa/assembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Fixture world: object 1 = carrier; slots 0/1/2 = ports 10/11/12, slots 3/4 = plain
// shared objects 30/31.
constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kPortA = 10;
constexpr ObjectIndex kPortB = 11;
constexpr ObjectIndex kShared = 30;
constexpr ObjectIndex kOther = 31;

AccessDescriptor Ad(ObjectIndex index) { return AccessDescriptor(index, 0, rights::kAll); }

EffectOptions WorldOptions() {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    static const std::map<std::pair<ObjectIndex, uint32_t>, ObjectIndex> kSlots = {
        {{kCarrier, 0}, kPortA},
        {{kCarrier, 1}, kPortB},
        {{kCarrier, 3}, kShared},
        {{kCarrier, 4}, kOther},
    };
    auto it = kSlots.find({index, slot});
    return it == kSlots.end() ? AccessDescriptor() : Ad(it->second);
  };
  return options;
}

const ObjectAccess* FindAccess(const EffectSummary& summary, AccessKind kind,
                               ObjectPart part, ObjectIndex object) {
  for (const ObjectAccess& access : summary.accesses) {
    if (access.kind == kind && access.part == part && access.object == object) {
      return &access;
    }
  }
  return nullptr;
}

TEST(AccessSummaryTest, LoadDataRecordsDataRead) {
  Assembler a("reader");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).LoadData(0, 2, 0, 8).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Reads(kShared));
  EXPECT_FALSE(summary.Writes(kShared));
  EXPECT_FALSE(summary.has_unresolved_access);
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kRead, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->pc, 2u);
}

TEST(AccessSummaryTest, StoreDataRecordsDataWrite) {
  Assembler a("writer");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).StoreData(2, 0, 0, 8).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Writes(kShared));
  EXPECT_FALSE(summary.Reads(kShared));
}

TEST(AccessSummaryTest, IndexedVariantsRecordAccessesToo) {
  Assembler a("indexed");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadImm(0, 4)
      .LoadDataIndexed(3, 2, 0)
      .StoreDataIndexed(2, 3, 0)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Reads(kShared));
  EXPECT_TRUE(summary.Writes(kShared));
}

TEST(AccessSummaryTest, LoadAdRecordsAccessPartRead) {
  Assembler a("ad_reader");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Reads(kCarrier, ObjectPart::kAccess));
  EXPECT_FALSE(summary.Reads(kCarrier, ObjectPart::kData));
}

TEST(AccessSummaryTest, StoreAdRecordsAccessPartWrite) {
  Assembler a("ad_writer");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).StoreAd(2, 1, 0).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Writes(kShared, ObjectPart::kAccess));
  EXPECT_FALSE(summary.Writes(kShared, ObjectPart::kData));
}

TEST(AccessSummaryTest, DestroyWritesBothParts) {
  Assembler a("destroyer");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).DestroyObject(2).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Writes(kShared, ObjectPart::kData));
  EXPECT_TRUE(summary.Writes(kShared, ObjectPart::kAccess));
}

TEST(AccessSummaryTest, CreateObjectRecordsNoAccess) {
  // Allocation mutates only manager metadata (kernel-serialized); writes into the fresh
  // object touch nothing any pre-existing summary could name.
  Assembler a("allocator");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 32).StoreData(2, 0, 0, 8).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.accesses.empty());
  EXPECT_FALSE(summary.has_unresolved_access);
}

TEST(AccessSummaryTest, UnresolvedContainerSetsFlagWithoutEntries) {
  // A store through a received message could hit any object: flagged, never enumerated.
  Assembler a("blind_writer");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).StoreData(3, 0, 0, 8).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.has_unresolved_access);
  EXPECT_EQ(FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared), nullptr);
}

TEST(AccessSummaryTest, RecvsBeforeRecordsBlockingReceive) {
  Assembler a("consumer");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)         // port A
      .LoadAd(3, 1, 3)         // shared object
      .Receive(4, 2)
      .LoadData(0, 3, 0, 8)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kRead, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->recvs_before, std::vector<ObjectIndex>{kPortA});
}

TEST(AccessSummaryTest, AccessBeforeReceiveHasNoRecvsBefore) {
  Assembler a("eager");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .LoadData(0, 3, 0, 8)    // before the receive
      .Receive(4, 2)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kRead, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->recvs_before.empty());
}

TEST(AccessSummaryTest, CondReceiveCarriesNoMustReceive) {
  // A guarded receive may complete without a message; it proves no ordering.
  Assembler a("poller");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .CondReceive(4, 2, 0)
      .LoadData(0, 3, 0, 8)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kRead, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->recvs_before.empty());
}

TEST(AccessSummaryTest, AmbiguousReceivePortCarriesNoMustReceive) {
  // The receive's port register holds two candidates at the join; which message completed
  // it is unknown, so the fact is dropped.
  Assembler a("either");
  auto other = a.NewLabel();
  auto join = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 3)
      .BranchIfZero(0, other)
      .LoadAd(2, 1, 0)
      .Branch(join)
      .Bind(other)
      .LoadAd(2, 1, 1)
      .Bind(join)
      .Receive(4, 2)
      .LoadData(0, 3, 0, 8)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kRead, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->recvs_before.empty());
}

TEST(AccessSummaryTest, SendsAfterStraightLine) {
  Assembler a("producer");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .StoreData(3, 0, 0, 8)
      .Send(2, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->sends_after, std::vector<ObjectIndex>{kPortA});
}

TEST(AccessSummaryTest, SendsAfterIntersectsAcrossPaths) {
  // One path sends, the other halts without sending: nothing is guaranteed.
  Assembler a("maybe_sender");
  auto skip = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .StoreData(3, 0, 0, 8)
      .BranchIfZero(0, skip)
      .Send(2, 1)
      .Bind(skip)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->sends_after.empty());
}

TEST(AccessSummaryTest, SendsAfterHoldsWhenEveryPathSends) {
  Assembler a("always_sender");
  auto other = a.NewLabel();
  auto done = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .StoreData(3, 0, 0, 8)
      .BranchIfZero(0, other)
      .Send(2, 1)
      .Branch(done)
      .Bind(other)
      .Send(2, 1)
      .Bind(done)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->sends_after, std::vector<ObjectIndex>{kPortA});
}

TEST(AccessSummaryTest, CondSendNeverEntersSendsAfter) {
  // A guarded send may take its fallback; it releases nothing.
  Assembler a("cond_producer");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .StoreData(3, 0, 0, 8)
      .CondSend(2, 1, 0)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->sends_after.empty());
}

TEST(AccessSummaryTest, AmbiguousSendSiteExcludedFromSendsAfter) {
  // The send's port register holds two candidates: the site has no unique target, so it
  // cannot serve as a happens-before anchor.
  Assembler a("either_sender");
  auto other = a.NewLabel();
  auto join = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 3)
      .StoreData(3, 0, 0, 8)
      .BranchIfZero(0, other)
      .LoadAd(2, 1, 0)
      .Branch(join)
      .Bind(other)
      .LoadAd(2, 1, 1)
      .Bind(join)
      .Send(2, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_TRUE(access->sends_after.empty());
}

TEST(AccessSummaryTest, NativeProgramSkipsSendsAfter) {
  // Opaque C++ can jump anywhere; the backward must-send pass refuses to reason about it.
  Assembler a("half_native");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 3)
      .StoreData(3, 0, 0, 8)
      .Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Send(2, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.has_native);
  for (const ObjectAccess& access : summary.accesses) {
    EXPECT_TRUE(access.sends_after.empty());
  }
}

TEST(AccessSummaryTest, AccessesCoverEveryCandidateOfTheSet) {
  // A two-candidate container records one access row per candidate object.
  Assembler a("either_writer");
  auto other = a.NewLabel();
  auto join = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .BranchIfZero(0, other)
      .LoadAd(2, 1, 3)
      .Branch(join)
      .Bind(other)
      .LoadAd(2, 1, 4)
      .Bind(join)
      .StoreData(2, 0, 0, 8)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.Writes(kShared));
  EXPECT_TRUE(summary.Writes(kOther));
  EXPECT_FALSE(summary.has_unresolved_access);
}

TEST(AccessSummaryTest, DisassemblyIsAnchoredToTheSite) {
  Assembler a("annotated");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).StoreData(2, 0, 0, 8).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const ObjectAccess* access =
      FindAccess(summary, AccessKind::kWrite, ObjectPart::kData, kShared);
  ASSERT_NE(access, nullptr);
  EXPECT_NE(access->disasm.find("0002"), std::string::npos);
  EXPECT_NE(access->disasm.find("store_data"), std::string::npos);
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

#include "src/analysis/verifier.h"

#include <gtest/gtest.h>

#include "src/isa/assembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Seeds a7 with the shape Spawn-from-the-global-heap gives a process: a level-0 SRO-like
// object carrying generous rights (tests that need a port seed their own).
VerifyOptions GlobalSroArg() {
  VerifyOptions options;
  options.initial_arg = AdAbstract::Object(
      SystemType::kStorageResource,
      rights::kRead | rights::kWrite | rights::kSroAllocate | rights::kSroDestroy,
      LevelRange::Exact(0));
  return options;
}

VerifyOptions PortArg(RightsMask port_rights = rights::kAll) {
  VerifyOptions options;
  options.initial_arg =
      AdAbstract::Object(SystemType::kPort, port_rights, LevelRange::Exact(0));
  return options;
}

bool HasError(const VerifyResult& result, Rule rule, uint32_t pc) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule && d.pc == pc && d.severity == Severity::kError) {
      return true;
    }
  }
  return false;
}

std::string Render(const Program& program, const VerifyResult& result) {
  return FormatDiagnostics(program, result);
}

TEST(VerifierTest, CleanProgramHasNoDiagnostics) {
  Assembler a("clean");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 64, 2)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(loop)
      .StoreData(2, 0, 0, 8)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, GlobalSroArg());
  EXPECT_TRUE(result.ok()) << Render(*program, result);
  EXPECT_TRUE(result.diagnostics.empty()) << Render(*program, result);
}

TEST(VerifierTest, NullAdUseReportsInstructionIndex) {
  Assembler a("null_use");
  a.LoadImm(0, 1)         // 0
      .LoadData(1, 3, 0, 8)  // 1: a3 never initialized
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasError(result, Rule::kNullAdUse, 1)) << Render(*program, result);
}

TEST(VerifierTest, RightsStripSurvivesMoveAdChain) {
  Assembler a("strip_chain");
  a.MoveAd(1, kArgAdReg)             // 0
      .RestrictRights(1, rights::kRead)  // 1: a1 loses send rights
      .MoveAd(2, 1)                  // 2
      .MoveAd(3, 2)                  // 3: the stripped bound rides along the chain
      .Send(3, 3)                    // 4: provably lacks port-send
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, PortArg());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasError(result, Rule::kMissingRights, 4)) << Render(*program, result);
}

TEST(VerifierTest, JoinOfDivergentBranchesIsMaybeNull) {
  // One arm defines a3, the other nulls it: after the join a3 is maybe-null, which must NOT
  // be reported (the verifier only rejects what faults on every path).
  Assembler a("divergent");
  auto else_arm = a.NewLabel();
  auto done = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadImm(0, 1)
      .BranchIfZero(0, else_arm)
      .CreateObject(3, 1, 64)
      .Branch(done)
      .Bind(else_arm)
      .ClearAd(3)
      .Bind(done)
      .StoreData(3, 0, 0, 8)
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, GlobalSroArg());
  EXPECT_TRUE(result.ok()) << Render(*program, result);
}

TEST(VerifierTest, JoinWhereBothArmsNullIsStillNull) {
  Assembler a("both_null");
  auto else_arm = a.NewLabel();
  auto done = a.NewLabel();
  a.LoadImm(0, 1)
      .BranchIfZero(0, else_arm)  // 1
      .ClearAd(3)                 // 2
      .Branch(done)               // 3
      .Bind(else_arm)
      .ClearAd(3)                 // 4
      .Bind(done)
      .LoadData(0, 3, 0, 8)       // 5: null on every path
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasError(result, Rule::kNullAdUse, 5)) << Render(*program, result);
}

TEST(VerifierTest, JoinOfRightsIsUnion) {
  // One arm strips write rights; the store after the join may still succeed via the other
  // arm, so it must not be flagged.
  Assembler a("rights_union");
  auto else_arm = a.NewLabel();
  auto done = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 64)
      .LoadImm(0, 1)
      .BranchIfZero(0, else_arm)
      .RestrictRights(2, rights::kRead)
      .Branch(done)
      .Bind(else_arm)
      .Compute(1)
      .Bind(done)
      .StoreData(2, 0, 0, 8)
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, GlobalSroArg());
  EXPECT_TRUE(result.ok()) << Render(*program, result);
}

TEST(VerifierTest, LoopFixpointTerminatesAndKeepsFacts) {
  // The back edge joins the loop body's state into the head on every iteration; rights
  // stripped inside the loop must stabilize (fixpoint) and still be flagged after it.
  Assembler a("loop_strip");
  auto head = a.NewLabel();
  a.MoveAd(1, kArgAdReg)              // 0
      .LoadImm(0, 4)                  // 1
      .Bind(head)
      .RestrictRights(1, rights::kRead)  // 2
      .AddImm(0, 0, 0xffffffffu)      // 3: r0 -= 1
      .BranchIfNotZero(0, head)       // 4
      .Send(1, 1)                     // 5: stripped on every path through the loop
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, PortArg());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasError(result, Rule::kMissingRights, 5)) << Render(*program, result);
}

TEST(VerifierTest, LevelRuleRejectsEscapingLocalSro) {
  Assembler a("level_escape");
  a.MoveAd(1, kArgAdReg)         // 0: a1 = level-0 SRO
      .CreateObject(2, 1, 16, 2)  // 1: a2 = level-0 object
      .CreateSro(3, 1, 4096)      // 2: a3 = local SRO, level = entry + 1 >= 2
      .StoreAd(2, 3, 0)           // 3: provable level violation
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, GlobalSroArg());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasError(result, Rule::kLevelRule, 3)) << Render(*program, result);
}

TEST(VerifierTest, LevelRuleUnknownLevelsNotFlagged) {
  // Mirror of examples/ada_tasks.cpp part 3: the container's level is statically unknown
  // (arg with no seeded level), so the store must be left to the runtime check.
  Assembler a("maybe_escape");
  a.MoveAd(1, kArgAdReg)
      .CreateSro(3, 1, 4096)
      .StoreAd(1, 3, 0)
      .Halt();
  VerifyOptions options;
  options.initial_arg = AdAbstract::Object(
      SystemType::kStorageResource, rights::kAll, LevelRange::Unknown());
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, options);
  EXPECT_TRUE(result.ok()) << Render(*program, result);
}

TEST(VerifierTest, DomainEntryReturningLocalAdRejected) {
  // A domain entry that returns an activation-local object in a7: the checked store into
  // the caller's context provably violates the lifetime rule.
  Assembler a("leaky_entry");
  a.MoveAd(1, kArgAdReg)      // 0 (arg unknown; harmless)
      .LoadAd(2, kDomainAdReg, 0)  // 1: read own domain state
      .CreateSro(7, 2, 1024)  // 2: oops — a7 = local SRO... (needs an SRO; reuse domain? no)
      .Return();              // 3
  // The CreateSro above derefs a2 (unknown) — fine. What matters is a7's entry-relative
  // level at the return.
  ProgramRef program = a.Build();
  VerifyOptions options;
  options.entry = VerifyOptions::EntryKind::kDomainEntry;
  VerifyResult result = Verifier::Verify(*program, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasError(result, Rule::kLevelRule, 3)) << Render(*program, result);
}

TEST(VerifierTest, UnreachableCodeIsAWarningNotAnError) {
  Assembler a("dead_tail");
  a.Halt().LoadImm(0, 1).Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program);
  EXPECT_TRUE(result.ok()) << Render(*program, result);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(result.diagnostics[0].rule, Rule::kUnreachable);
  EXPECT_EQ(result.diagnostics[0].severity, Severity::kWarning);
}

TEST(VerifierTest, NativeProgramsHavocInsteadOfRejecting) {
  // Daemon-style program: a native step may initialize a1 and jump anywhere, so the load
  // below must not be reported even though no static path defines a1.
  Assembler a("daemon_like");
  auto loop = a.NewLabel();
  a.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Bind(loop)
      .LoadData(0, 1, 0, 8)
      .Branch(loop);
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program);
  EXPECT_TRUE(result.ok()) << Render(*program, result);
}

TEST(VerifierTest, CallHavocsTheReturnRegisterOnly) {
  Assembler a("caller");
  VerifyOptions options;
  options.seeded_ad_regs[1] = AdAbstract::Object(SystemType::kDomain,
                                                 rights::kDomainCall, LevelRange::Exact(0));
  a.Call(1, 0)            // 0: fine — a1 carries call rights
      .LoadData(0, 7, 0, 8)  // 1: a7 = callee's return value (unknown, maybe-null): fine
      .LoadData(0, 2, 0, 8)  // 2: a2 still definitely null across the call
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, options);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(HasError(result, Rule::kNullAdUse, 1)) << Render(*program, result);
  EXPECT_TRUE(HasError(result, Rule::kNullAdUse, 2)) << Render(*program, result);
}

TEST(VerifierTest, CallWithoutCallRightsRejected) {
  Assembler a("bad_caller");
  VerifyOptions options;
  options.seeded_ad_regs[1] =
      AdAbstract::Object(SystemType::kDomain, rights::kNone, LevelRange::Exact(0));
  a.Call(1, 0).Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, options);
  EXPECT_TRUE(HasError(result, Rule::kMissingRights, 0)) << Render(*program, result);
}

TEST(VerifierTest, TypeConfusionOnSendToNonPort) {
  Assembler a("send_to_sro");
  a.MoveAd(1, kArgAdReg).Send(1, 1).Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, GlobalSroArg());
  EXPECT_TRUE(HasError(result, Rule::kTypeConfusion, 1)) << Render(*program, result);
}

// The guarded variants must obey the same rights discipline as their blocking forms: a
// successful conditional transfer moves the message exactly like Send/Receive would.
TEST(VerifierTest, CondSendWithoutSendRightsRejected) {
  Assembler a("cond_send_stripped");
  a.MoveAd(1, kArgAdReg).RestrictRights(1, rights::kRead).CondSend(1, 1, 0).Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, PortArg());
  EXPECT_TRUE(HasError(result, Rule::kMissingRights, 2)) << Render(*program, result);
}

TEST(VerifierTest, CondReceiveWithoutReceiveRightsRejected) {
  Assembler a("cond_receive_stripped");
  a.MoveAd(1, kArgAdReg)
      .RestrictRights(1, rights::kPortSend)
      .CondReceive(2, 1, 0)
      .Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, PortArg());
  EXPECT_TRUE(HasError(result, Rule::kMissingRights, 2)) << Render(*program, result);
}

TEST(VerifierTest, CondVariantsWithFullPortRightsAreClean) {
  Assembler a("cond_ok");
  a.MoveAd(1, kArgAdReg).CondSend(1, 1, 0).CondReceive(2, 1, 1).Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program, PortArg());
  EXPECT_TRUE(result.ok()) << Render(*program, result);
}

// The acceptance corpus: distinct seeded-bad programs, each rejected with a diagnostic
// naming the offending instruction index and rule.
struct BadCase {
  const char* name;
  ProgramRef program;
  VerifyOptions options;
  Rule rule;
  uint32_t pc;
};

std::vector<BadCase> BadCorpus() {
  std::vector<BadCase> cases;

  {  // 1: load through a never-initialized AD register
    Assembler a("c1_null_load");
    a.LoadImm(0, 1).LoadData(0, 2, 0, 8).Halt();
    cases.push_back({"c1_null_load", a.Build(), {}, Rule::kNullAdUse, 1});
  }
  {  // 2: store-AD into a never-initialized container
    Assembler a("c2_null_store_ad");
    a.MoveAd(1, kArgAdReg).StoreAd(4, 1, 0).Halt();
    cases.push_back({"c2_null_store_ad", a.Build(), GlobalSroArg(), Rule::kNullAdUse, 1});
  }
  {  // 3: send after stripping port-send rights
    Assembler a("c3_stripped_send");
    a.MoveAd(1, kArgAdReg).RestrictRights(1, rights::kRead).Send(1, 1).Halt();
    cases.push_back({"c3_stripped_send", a.Build(), PortArg(), Rule::kMissingRights, 2});
  }
  {  // 4: allocation from an SRO held without allocate rights
    Assembler a("c4_no_allocate");
    a.MoveAd(1, kArgAdReg)
        .RestrictRights(1, rights::kRead)
        .CreateObject(2, 1, 64)
        .Halt();
    cases.push_back({"c4_no_allocate", a.Build(), GlobalSroArg(), Rule::kMissingRights, 2});
  }
  {  // 5: domain call without call rights (stripped en route)
    Assembler a("c5_no_call");
    VerifyOptions options;
    options.seeded_ad_regs[1] = AdAbstract::Object(
        SystemType::kDomain, rights::kDomainCall, LevelRange::Exact(0));
    a.RestrictRights(1, rights::kNone).Call(1, 0).Halt();
    cases.push_back({"c5_no_call", a.Build(), options, Rule::kMissingRights, 1});
  }
  {  // 6: provable lifetime-rule violation (local SRO into a global object)
    Assembler a("c6_level_escape");
    a.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 16, 2)
        .CreateSro(3, 1, 4096)
        .StoreAd(2, 3, 0)
        .Halt();
    cases.push_back({"c6_level_escape", a.Build(), GlobalSroArg(), Rule::kLevelRule, 3});
  }
  {  // 7: branch target beyond the end of the program
    auto program = std::make_shared<Program>("c7_wild_branch");
    Instruction branch;
    branch.op = Opcode::kBranch;
    branch.imm = 1000;
    program->Append(branch);
    cases.push_back({"c7_wild_branch", ProgramRef(program), {}, Rule::kBranchRange, 0});
  }
  {  // 8: statically out-of-bounds data store on an object of known size
    Assembler a("c8_oob_data");
    a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).StoreData(2, 0, 64, 8).Halt();
    cases.push_back({"c8_oob_data", a.Build(), GlobalSroArg(), Rule::kDataBounds, 2});
  }
  {  // 9: access-slot index beyond the object's access part
    Assembler a("c9_oob_slot");
    a.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 16, 2)
        .LoadAd(3, 2, 7)
        .Halt();
    cases.push_back({"c9_oob_slot", a.Build(), GlobalSroArg(), Rule::kSlotBounds, 2});
  }
  {  // 10: data access width not in {1, 2, 4, 8}
    Assembler a("c10_bad_width");
    a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 64).LoadData(0, 2, 0, 3).Halt();
    cases.push_back({"c10_bad_width", a.Build(), GlobalSroArg(), Rule::kBadWidth, 2});
  }
  {  // 11: destroy through an AD without delete rights
    Assembler a("c11_no_delete");
    a.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 64)
        .RestrictRights(2, rights::kRead | rights::kWrite)
        .DestroyObject(2)
        .Halt();
    cases.push_back({"c11_no_delete", a.Build(), GlobalSroArg(), Rule::kMissingRights, 3});
  }
  {  // 12: write through an AD restricted to read-only
    Assembler a("c12_readonly_write");
    a.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 64)
        .RestrictRights(2, rights::kRead)
        .StoreData(2, 0, 0, 8)
        .Halt();
    cases.push_back(
        {"c12_readonly_write", a.Build(), GlobalSroArg(), Rule::kMissingRights, 3});
  }

  return cases;
}

TEST(VerifierTest, SeededBadCorpusAllRejected) {
  std::vector<BadCase> corpus = BadCorpus();
  ASSERT_GE(corpus.size(), 8u);
  for (const BadCase& c : corpus) {
    VerifyResult result = Verifier::Verify(*c.program, c.options);
    EXPECT_FALSE(result.ok()) << c.name << " was not rejected";
    EXPECT_TRUE(HasError(result, c.rule, c.pc))
        << c.name << " expected " << RuleName(c.rule) << " at pc " << c.pc << "\n"
        << Render(*c.program, result);
  }
}

TEST(VerifierTest, DiagnosticsFormatNamesRuleAndIndex) {
  Assembler a("fmt");
  a.LoadData(0, 2, 0, 8).Halt();
  ProgramRef program = a.Build();
  VerifyResult result = Verifier::Verify(*program);
  std::string text = FormatDiagnostics(*program, result);
  EXPECT_NE(text.find("0000"), std::string::npos) << text;
  EXPECT_NE(text.find("null-ad-use"), std::string::npos) << text;
  EXPECT_NE(text.find("load_data"), std::string::npos) << text;  // disassembly attached
}

TEST(LevelRangeTest, JoinAndProvability) {
  LevelRange zero = LevelRange::Exact(0);
  LevelRange local = LevelRange::EntryPlus(1);
  EXPECT_TRUE(ProvablyViolatesLevelRule(zero, local));
  EXPECT_FALSE(ProvablyViolatesLevelRule(local, zero));
  EXPECT_FALSE(ProvablyViolatesLevelRule(LevelRange::Unknown(), local));
  // entry+0 container cannot hold entry+1 values, whatever the entry level is.
  EXPECT_TRUE(ProvablyViolatesLevelRule(LevelRange::EntryPlus(0), LevelRange::EntryPlus(1)));
  EXPECT_FALSE(ProvablyViolatesLevelRule(LevelRange::EntryPlus(1), LevelRange::EntryPlus(1)));

  LevelRange joined = LevelRange::Join(zero, local);
  EXPECT_EQ(joined.lo, 0u);
  EXPECT_EQ(joined.hi, LevelRange::kUnbounded);
  EXPECT_FALSE(joined.entry_relative);
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

#include "src/analysis/cfg.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/isa/assembler.h"

namespace imax432 {
namespace analysis {
namespace {

TEST(ControlFlowGraphTest, StraightLineIsOneBlock) {
  Assembler a("straight");
  a.LoadImm(0, 1).AddImm(0, 0, 1).Halt();
  ControlFlowGraph cfg = ControlFlowGraph::Build(*a.Build());

  ASSERT_EQ(cfg.size(), 1u);
  EXPECT_EQ(cfg.block(0).begin, 0u);
  EXPECT_EQ(cfg.block(0).end, 3u);
  EXPECT_TRUE(cfg.block(0).successors.empty());
  EXPECT_TRUE(cfg.block(0).reachable);
  EXPECT_FALSE(cfg.has_native());
}

TEST(ControlFlowGraphTest, ConditionalBranchSplitsBlocks) {
  Assembler a("diamond");
  auto else_arm = a.NewLabel();
  auto done = a.NewLabel();
  a.LoadImm(0, 1)               // 0
      .BranchIfZero(0, else_arm)  // 1: ends block 0
      .LoadImm(1, 10)           // 2: then-arm, block 1
      .Branch(done)             // 3
      .Bind(else_arm)
      .LoadImm(1, 20)           // 4: else-arm, block 2
      .Bind(done)
      .Halt();                  // 5: join, block 3
  ControlFlowGraph cfg = ControlFlowGraph::Build(*a.Build());

  ASSERT_EQ(cfg.size(), 4u);
  // Block 0 = [0,2) branches to the else-arm or falls through to the then-arm.
  EXPECT_EQ(cfg.block(0).successors.size(), 2u);
  // Then-arm jumps to the join; else-arm falls through to it.
  EXPECT_EQ(cfg.block(1).successors, std::vector<uint32_t>{3u});
  EXPECT_EQ(cfg.block(2).successors, std::vector<uint32_t>{3u});
  EXPECT_TRUE(cfg.block(3).successors.empty());
  for (uint32_t id = 0; id < cfg.size(); ++id) {
    EXPECT_TRUE(cfg.block(id).reachable) << id;
  }
}

TEST(ControlFlowGraphTest, LoopBackEdge) {
  Assembler a("loop");
  auto head = a.NewLabel();
  a.LoadImm(0, 0)                // 0: block 0
      .Bind(head)
      .AddImm(0, 0, 1)           // 1: block 1 (loop head, branch target)
      .BranchIfLess(0, 1, head)  // 2
      .Halt();                   // 3: block 2
  ControlFlowGraph cfg = ControlFlowGraph::Build(*a.Build());

  ASSERT_EQ(cfg.size(), 3u);
  EXPECT_EQ(cfg.block_of(1), 1u);
  EXPECT_EQ(cfg.block_of(2), 1u);
  // The loop body branches back to itself and exits forward.
  EXPECT_EQ(cfg.block(1).successors.size(), 2u);
  EXPECT_NE(std::find(cfg.block(1).successors.begin(), cfg.block(1).successors.end(), 1u),
            cfg.block(1).successors.end());
}

TEST(ControlFlowGraphTest, CodeAfterHaltIsUnreachable) {
  Assembler a("dead");
  a.Halt().LoadImm(0, 1).Halt();
  ControlFlowGraph cfg = ControlFlowGraph::Build(*a.Build());

  ASSERT_EQ(cfg.size(), 2u);
  EXPECT_TRUE(cfg.block(0).reachable);
  EXPECT_FALSE(cfg.block(1).reachable);
}

TEST(ControlFlowGraphTest, BranchPastEndHasNoEdge) {
  auto program = std::make_shared<Program>("off_end");
  Instruction branch;
  branch.op = Opcode::kBranch;
  branch.imm = 5;  // == size after the two appends: implicit return
  program->Append(branch);
  program->Append(Instruction{});  // kHalt
  ControlFlowGraph cfg = ControlFlowGraph::Build(*program);

  ASSERT_EQ(cfg.size(), 2u);
  EXPECT_TRUE(cfg.block(0).successors.empty());
}

TEST(ControlFlowGraphTest, NativeMarksEverythingReachable) {
  Assembler a("daemon");
  a.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Halt()
      .LoadImm(0, 1)  // statically dead, but a native jump could land here
      .Halt();
  ControlFlowGraph cfg = ControlFlowGraph::Build(*a.Build());

  EXPECT_TRUE(cfg.has_native());
  for (uint32_t id = 0; id < cfg.size(); ++id) {
    EXPECT_TRUE(cfg.block(id).reachable) << id;
  }
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

// Static data-race detection (src/analysis/races/races.h): the three-tier verdicts —
// proven ordered, suppressed-by-ambiguity, reported — and every disqualifier on the
// happens-before proof.

#include "src/analysis/races/races.h"

#include <gtest/gtest.h>

#include <map>

#include "src/analysis/effects.h"
#include "src/arch/rights.h"
#include "src/isa/assembler.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Fixture world: object 1 = carrier; slots 0/1/2 = ports 10/11/12, slots 3/4 = plain
// shared objects 30/31, slot 5 = domain 20 whose entry 0 is segment 21.
constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kPortA = 10;
constexpr ObjectIndex kPortB = 11;
constexpr ObjectIndex kPortC = 12;
constexpr ObjectIndex kShared = 30;
constexpr ObjectIndex kOther = 31;
constexpr ObjectIndex kDomain = 20;
constexpr ObjectIndex kSegment = 21;

AccessDescriptor Ad(ObjectIndex index) { return AccessDescriptor(index, 0, rights::kAll); }

EffectOptions WorldOptions(const SymbolTable* symbols = nullptr) {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.symbols = symbols;
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    static const std::map<std::pair<ObjectIndex, uint32_t>, ObjectIndex> kSlots = {
        {{kCarrier, 0}, kPortA},
        {{kCarrier, 1}, kPortB},
        {{kCarrier, 2}, kPortC},
        {{kCarrier, 3}, kShared},
        {{kCarrier, 4}, kOther},
        {{kCarrier, 5}, kDomain},
        {{kDomain, 0}, kSegment},
    };
    auto it = kSlots.find({index, slot});
    return it == kSlots.end() ? AccessDescriptor() : Ad(it->second);
  };
  return options;
}

// A graph under construction: programs are summarized against the fixture world and keyed
// by synthetic segment indices starting at 100 (the domain callee uses kSegment).
struct World {
  SystemEffectGraph graph;
  ObjectIndex next_segment = 100;

  ObjectIndex Add(Assembler& a, ProgramKind kind = ProgramKind::kProcess,
                  ObjectIndex segment = kInvalidObjectIndex) {
    if (segment == kInvalidObjectIndex) segment = next_segment++;
    graph.AddProgram(segment, EffectAnalyzer::Analyze(*a.Build(), WorldOptions()), kind);
    return segment;
  }

  RaceAnalysisReport Analyze() { return AnalyzeRaces(graph); }
};

Assembler Writer(const char* name, uint32_t slot = 3) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, slot).StoreData(2, 0, 0, 8).Halt();
  return a;
}

Assembler Reader(const char* name, uint32_t slot = 3) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, slot).LoadData(0, 2, 0, 8).Halt();
  return a;
}

// Writes the shared object, then blocking-sends the token to port `port_slot`.
Assembler SyncWriter(const char* name, uint32_t port_slot = 0) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, port_slot)
      .StoreData(2, 0, 0, 8)
      .Send(3, 1)
      .Halt();
  return a;
}

// Blocking-receives the token from port `port_slot`, then reads the shared object.
Assembler SyncReader(const char* name, uint32_t port_slot = 0) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, port_slot)
      .Receive(4, 3)
      .LoadData(0, 2, 0, 8)
      .Halt();
  return a;
}

TEST(RacesTest, UnorderedWritesAreReported) {
  World world;
  Assembler w0 = Writer("w0"), w1 = Writer("w1");
  world.Add(w0);
  world.Add(w1);
  RaceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].object, kShared);
  EXPECT_EQ(report.diagnostics[0].part, ObjectPart::kData);
  ASSERT_EQ(report.diagnostics[0].pairs.size(), 1u);
  EXPECT_EQ(report.pairs_checked, 1u);
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_EQ(report.pairs_suppressed, 0u);
  EXPECT_FALSE(report.ok());
}

TEST(RacesTest, UnorderedWriteReadIsReported) {
  World world;
  Assembler w = Writer("writer"), r = Reader("reader");
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const RacePair& pair = report.diagnostics[0].pairs[0];
  EXPECT_EQ(pair.first_program, "reader");  // alphabetical
  EXPECT_EQ(pair.second_program, "writer");
}

TEST(RacesTest, ReadReadNeverConflicts) {
  World world;
  Assembler r0 = Reader("r0"), r1 = Reader("r1");
  world.Add(r0);
  world.Add(r1);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_checked, 0u);
  EXPECT_EQ(report.objects_shared, 2u);  // kShared and the carrier's access part
}

TEST(RacesTest, SameProcessAccessesNeverConflict) {
  World world;
  Assembler a("solo");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .StoreData(2, 0, 0, 8)
      .LoadData(0, 2, 0, 8)
      .Halt();
  world.Add(a);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_checked, 0u);
  EXPECT_EQ(report.objects_shared, 0u);
}

TEST(RacesTest, DataAndAccessPartsAreDisjoint) {
  World world;
  Assembler data_writer = Writer("data_writer");
  Assembler ad_writer("ad_writer");
  ad_writer.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).StoreAd(2, 1, 0).Halt();
  world.Add(data_writer);
  world.Add(ad_writer);
  RaceAnalysisReport report = world.Analyze();
  // data write vs access write on the same object: disjoint storage, no pair.
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_checked, 0u);
}

TEST(RacesTest, DestroyConflictsWithRead) {
  World world;
  Assembler destroyer("destroyer");
  destroyer.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).DestroyObject(2).Halt();
  Assembler r = Reader("reader");
  world.Add(destroyer);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].object, kShared);
}

TEST(RacesTest, SendReceiveOrdersThePair) {
  World world;
  Assembler w = SyncWriter("sync_writer"), r = SyncReader("sync_reader");
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok()) << FormatRaceReport(report);
  EXPECT_EQ(report.pairs_ordered, 1u);
  EXPECT_EQ(report.pairs_suppressed, 0u);
}

TEST(RacesTest, RelayChainExtendsTheOrdering) {
  World world;
  Assembler w = SyncWriter("relay_writer", 0);  // write, send A
  Assembler hop("relay_hop");                   // receive A, send B
  hop.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 0)
      .LoadAd(4, 1, 1)
      .Receive(5, 3)
      .Send(4, 1)
      .Halt();
  Assembler r = SyncReader("relay_reader", 1);  // receive B, read
  world.Add(w);
  world.Add(hop);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok()) << FormatRaceReport(report);
  EXPECT_EQ(report.pairs_ordered, 1u);
}

TEST(RacesTest, CondSendSuppressesWithoutOrdering) {
  World world;
  Assembler w("cond_writer");
  w.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .StoreData(2, 0, 0, 8)
      .CondSend(3, 1, 0)
      .Halt();
  Assembler r = SyncReader("cond_reader");
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok()) << FormatRaceReport(report);
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_EQ(report.pairs_suppressed, 1u);
}

TEST(RacesTest, WriteAfterTheSendIsNotOrdered) {
  // The send precedes the write, so nothing released the write; the pair stays ambiguous
  // (the two still communicate, so it is suppressed rather than reported).
  World world;
  Assembler w("late_writer");
  w.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .Send(3, 1)
      .StoreData(2, 0, 0, 8)
      .Halt();
  Assembler r = SyncReader("late_reader");
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_EQ(report.pairs_suppressed, 1u);
}

TEST(RacesTest, ExternalSenderBreaksQualification) {
  World world;
  Assembler w = SyncWriter("ext_writer"), r = SyncReader("ext_reader");
  world.Add(w);
  world.Add(r);
  world.graph.MarkExternalSender(kPortA);
  RaceAnalysisReport report = world.Analyze();
  // The reader's receive might have matched the external message instead: no proof, but
  // still may-communication, so suppressed.
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_EQ(report.pairs_suppressed, 1u);
}

TEST(RacesTest, SecondSenderBreaksQualification) {
  World world;
  Assembler w = SyncWriter("two_writer"), r = SyncReader("two_reader");
  Assembler other("other_sender");
  other.MoveAd(1, kArgAdReg).LoadAd(3, 1, 0).Send(3, 1).Halt();
  world.Add(w);
  world.Add(r);
  world.Add(other);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_GE(report.pairs_suppressed, 1u);
}

TEST(RacesTest, SecondSendSiteBreaksQualification) {
  // Two send sites in one program: a completed receive may have matched the *other* send,
  // which nothing orders after the write.
  World world;
  Assembler w("double_writer");
  w.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .Send(3, 1)
      .StoreData(2, 0, 0, 8)
      .Send(3, 1)
      .Halt();
  Assembler r = SyncReader("double_reader");
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_EQ(report.pairs_suppressed, 1u);
}

TEST(RacesTest, LoopingSenderBreaksQualification) {
  // A sender that may not terminate can send again and again; "the" message is no longer
  // unique, so the matched-receive argument collapses.
  World world;
  Assembler w("loop_writer");
  auto loop = w.NewLabel();
  w.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .Bind(loop)
      .StoreData(2, 0, 0, 8)
      .Send(3, 1)
      .BranchIfZero(0, loop)
      .Halt();
  Assembler r = SyncReader("loop_reader");
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_GE(report.pairs_suppressed, 1u);
}

TEST(RacesTest, CalleeSendDoesNotQualify) {
  // The write and the send both live in a domain callee, which may execute once per call
  // site; only the root program's single site proves a unique message.
  World world;
  Assembler callee("callee");  // sends the token on the caller's behalf
  callee.MoveAd(1, kArgAdReg).LoadAd(3, 1, 0).Send(3, 1).Return();
  Assembler w("call_writer");
  w.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(5, 1, 5)
      .StoreData(2, 0, 0, 8)
      .Call(5, 0)
      .Halt();
  Assembler r = SyncReader("call_reader");
  world.Add(callee, ProgramKind::kDomainEntry, kSegment);
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  // The pair still communicates (suppressed), but no happens-before proof exists for the
  // writer's store.
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.pairs_ordered, 0u);
  EXPECT_GE(report.pairs_suppressed, 1u);
}

TEST(RacesTest, DisjointPortsStillReportWhenSystemIsClosed) {
  // Writer sends into a port nobody reads; reader receives from a port nobody feeds. In a
  // closed system no execution connects them: still a race.
  World world;
  Assembler w = SyncWriter("deaf_writer", 0);
  Assembler r = SyncReader("mute_reader", 1);
  world.Add(w);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].object, kShared);
}

TEST(RacesTest, OpaqueProgramBridgesDisjointPorts) {
  // The same topology with opaque code in the system: the unknown actor may relay the
  // token, so the pair is suppressed instead of reported.
  World world;
  Assembler w = SyncWriter("deaf_writer", 0);
  Assembler r = SyncReader("mute_reader", 1);
  Assembler ghost("ghost");
  ghost.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; }).Halt();
  world.Add(w);
  world.Add(r);
  world.Add(ghost);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.pairs_suppressed, 1u);
  EXPECT_EQ(report.opaque_programs, 1u);
}

TEST(RacesTest, OpaqueThirdPartyCannotMaskAutonomousRace) {
  // Two port-free programs cannot be ordered by anyone, however much unknown code runs
  // beside them: the race stays reported.
  World world;
  Assembler w0 = Writer("w0"), w1 = Writer("w1");
  Assembler ghost("ghost");
  ghost.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; }).Halt();
  world.Add(w0);
  world.Add(w1);
  world.Add(ghost);
  RaceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].object, kShared);
}

TEST(RacesTest, UnresolvedAccessesAreCountedNotReported) {
  World world;
  Assembler blind("blind");
  blind.MoveAd(1, kArgAdReg).LoadAd(3, 1, 0).Receive(4, 3).StoreData(4, 0, 0, 8).Halt();
  Assembler r = Reader("reader");
  world.Add(blind);
  world.Add(r);
  RaceAnalysisReport report = world.Analyze();
  EXPECT_EQ(report.unresolved_access_programs, 1u);
  // The blind store could alias kShared, but unresolved sites never become diagnostics.
  EXPECT_TRUE(report.ok());
}

TEST(RacesTest, ReportMessageNamesProgramsAndObject) {
  SymbolTable symbols;
  symbols.Name(kShared, "account");
  World world;
  Assembler w0 = Writer("alpha"), w1 = Writer("beta");
  world.graph.set_symbols(&symbols);
  // Re-summarize with symbols so disassembly picks up names.
  world.graph.AddProgram(100, EffectAnalyzer::Analyze(*w0.Build(), WorldOptions(&symbols)));
  world.graph.AddProgram(101, EffectAnalyzer::Analyze(*w1.Build(), WorldOptions(&symbols)));
  RaceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const RaceDiagnostic& diagnostic = report.diagnostics[0];
  EXPECT_EQ(diagnostic.programs, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_NE(diagnostic.message.find("'account'"), std::string::npos);
  EXPECT_NE(diagnostic.message.find("store_data"), std::string::npos);
  EXPECT_NE(diagnostic.message.find("data part"), std::string::npos);
  std::string formatted = FormatRaceReport(report);
  EXPECT_NE(formatted.find("error  data-race"), std::string::npos);
}

TEST(RacesTest, EmptyGraphIsClean) {
  SystemEffectGraph graph;
  RaceAnalysisReport report = AnalyzeRaces(graph);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.programs_analyzed, 0u);
  EXPECT_EQ(report.pairs_checked, 0u);
  EXPECT_EQ(FormatRaceReport(report), "");
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

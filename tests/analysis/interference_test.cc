// Static interference & immutability analysis (src/analysis/interference/interference.h):
// Phase 1 inter-sync region tagging + publication facts, and Phase 2 pairwise verdicts
// with the zero-false-positive suppression tiers and the cacheability certificates.

#include "src/analysis/interference/interference.h"

#include <gtest/gtest.h>

#include <map>

#include "src/analysis/effects.h"
#include "src/arch/rights.h"
#include "src/isa/assembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Fixture world (races_test.cc idiom): object 1 = carrier; slots 0/1/2 = ports 10/11/12,
// slots 3/4 = plain shared objects 30/31, slot 5 = domain 20 whose entry 0 is segment 21.
constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kPortA = 10;
constexpr ObjectIndex kPortB = 11;
constexpr ObjectIndex kShared = 30;
constexpr ObjectIndex kOther = 31;
constexpr ObjectIndex kDomain = 20;
constexpr ObjectIndex kSegment = 21;

AccessDescriptor Ad(ObjectIndex index) { return AccessDescriptor(index, 0, rights::kAll); }

EffectOptions WorldOptions() {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    static const std::map<std::pair<ObjectIndex, uint32_t>, ObjectIndex> kSlots = {
        {{kCarrier, 0}, kPortA}, {{kCarrier, 1}, kPortB},  {{kCarrier, 3}, kShared},
        {{kCarrier, 4}, kOther}, {{kCarrier, 5}, kDomain}, {{kDomain, 0}, kSegment},
    };
    auto it = kSlots.find({index, slot});
    return it == kSlots.end() ? AccessDescriptor() : Ad(it->second);
  };
  return options;
}

InterferenceSummary Summarize(Assembler& a) {
  return InterferenceAnalyzer::Analyze(*a.Build(), WorldOptions());
}

const FootprintEntry* FindEntry(const InterferenceSummary& summary, ObjectIndex object,
                                AccessKind kind) {
  for (const FootprintEntry& entry : summary.footprint) {
    if (entry.object == object && entry.kind == kind && entry.part == ObjectPart::kData) {
      return &entry;
    }
  }
  return nullptr;
}

// Phase 2 world: programs keyed by synthetic segment indices starting at 100.
struct World {
  SystemEffectGraph graph;
  std::map<ObjectIndex, InterferenceSummary> summaries;
  ObjectIndex next_segment = 100;

  ObjectIndex Add(Assembler& a, ProgramKind kind = ProgramKind::kProcess,
                  ObjectIndex segment = kInvalidObjectIndex) {
    if (segment == kInvalidObjectIndex) segment = next_segment++;
    ProgramRef program = a.Build();
    graph.AddProgram(segment, EffectAnalyzer::Analyze(*program, WorldOptions()), kind);
    summaries[segment] = InterferenceAnalyzer::Analyze(*program, WorldOptions());
    return segment;
  }

  InterferenceAnalysisReport Analyze() { return AnalyzeInterference(graph, summaries); }
};

Assembler Writer(const char* name, uint32_t slot = 3) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, slot).StoreData(2, 0, 0, 8).Halt();
  return a;
}

Assembler Reader(const char* name, uint32_t slot = 3) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, slot).LoadData(0, 2, 0, 8).Halt();
  return a;
}

// Writes the shared object, then blocking-sends the token to port slot 0.
Assembler SyncWriter(const char* name) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .StoreData(2, 0, 0, 8)
      .Send(3, 1)
      .Halt();
  return a;
}

// Blocking-receives the token from port slot 0, then reads the shared object.
Assembler SyncReader(const char* name) {
  Assembler a(name);
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .Receive(4, 3)
      .LoadData(0, 2, 0, 8)
      .Halt();
  return a;
}

// --- Phase 1: regions, publication, flags -----------------------------------------------

TEST(InterferenceSummaryTest, StraightLineProgramHasOneRegion) {
  Assembler a = Writer("straight");
  InterferenceSummary summary = Summarize(a);
  EXPECT_EQ(summary.region_count, 1u);
  EXPECT_EQ(summary.sync_count, 0u);
  EXPECT_FALSE(summary.opaque);
  EXPECT_FALSE(summary.unresolved);
  const FootprintEntry* write = FindEntry(summary, kShared, AccessKind::kWrite);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->region, 0u);
  EXPECT_FALSE(write->published);
  EXPECT_FALSE(summary.footprint.empty());
}

TEST(InterferenceSummaryTest, AccessAfterSendLandsInTheNextRegion) {
  Assembler a("send-then-read");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .StoreData(2, 0, 0, 8)  // region 0
      .Send(3, 1)
      .LoadData(0, 2, 0, 8)  // region 1
      .Halt();
  InterferenceSummary summary = Summarize(a);
  EXPECT_EQ(summary.region_count, 2u);
  EXPECT_EQ(summary.sync_count, 1u);
  const FootprintEntry* write = FindEntry(summary, kShared, AccessKind::kWrite);
  const FootprintEntry* read = FindEntry(summary, kShared, AccessKind::kRead);
  ASSERT_NE(write, nullptr);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(write->region, 0u);
  EXPECT_EQ(read->region, 1u);
}

TEST(InterferenceSummaryTest, ReceiveIsASynchronizationPoint) {
  Assembler a = SyncReader("receiver");
  InterferenceSummary summary = Summarize(a);
  const FootprintEntry* read = FindEntry(summary, kShared, AccessKind::kRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->region, 1u);
  EXPECT_EQ(summary.region_count, 2u);
}

TEST(InterferenceSummaryTest, DomainCallIsASynchronizationPoint) {
  Assembler a("caller");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(5, 1, 5)
      .Call(5, 0)
      .LoadData(0, 2, 0, 8)
      .Halt();
  InterferenceSummary summary = Summarize(a);
  const FootprintEntry* read = FindEntry(summary, kShared, AccessKind::kRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->region, 1u);
}

TEST(InterferenceSummaryTest, BranchJoinTakesTheMinimumRegion) {
  // One arm sends, the other does not; the post-join read cannot be proven to run after
  // the sync, so its sound region is the path minimum: 0.
  Assembler a("branchy");
  auto skip = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .BranchIfZero(0, skip)
      .Send(3, 1)
      .Bind(skip)
      .LoadData(0, 2, 0, 8)
      .Halt();
  InterferenceSummary summary = Summarize(a);
  const FootprintEntry* read = FindEntry(summary, kShared, AccessKind::kRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->region, 0u);
}

TEST(InterferenceSummaryTest, LoopDoesNotInflateRegions) {
  // The loop body has no sync instruction: every iteration stays in region 0 and the
  // min-fixpoint terminates without counting trips.
  Assembler a("loop");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadImm(0, 4)
      .Bind(loop)
      .LoadData(5, 2, 0, 8)
      .AddImm(0, 0, static_cast<uint32_t>(-1))
      .BranchIfNotZero(0, loop)
      .Halt();
  InterferenceSummary summary = Summarize(a);
  EXPECT_EQ(summary.region_count, 1u);
  const FootprintEntry* read = FindEntry(summary, kShared, AccessKind::kRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->region, 0u);
}

TEST(InterferenceSummaryTest, WriteWithSendOnEveryExitPathIsPublished) {
  Assembler a = SyncWriter("publisher");
  InterferenceSummary summary = Summarize(a);
  const FootprintEntry* write = FindEntry(summary, kShared, AccessKind::kWrite);
  ASSERT_NE(write, nullptr);
  EXPECT_TRUE(write->published);
  EXPECT_TRUE(summary.WritesPublished(kShared, ObjectPart::kData));
}

TEST(InterferenceSummaryTest, WriteWithASendFreePathIsNotPublished) {
  Assembler a("maybe-publish");
  auto skip = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(3, 1, 0)
      .StoreData(2, 0, 0, 8)
      .BranchIfZero(0, skip)
      .Send(3, 1)
      .Bind(skip)
      .Halt();
  InterferenceSummary summary = Summarize(a);
  const FootprintEntry* write = FindEntry(summary, kShared, AccessKind::kWrite);
  ASSERT_NE(write, nullptr);
  EXPECT_FALSE(write->published);
  EXPECT_FALSE(summary.WritesPublished(kShared, ObjectPart::kData));
}

TEST(InterferenceSummaryTest, NativeStepMakesTheSummaryOpaque) {
  Assembler a("opaque");
  a.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; }).Halt();
  InterferenceSummary summary = Summarize(a);
  EXPECT_TRUE(summary.opaque);
  EXPECT_EQ(summary.region_count, 1u);
}

TEST(InterferenceSummaryTest, UnresolvedAccessChainSetsTheUnresolvedFlag) {
  // A store through a received message could hit any object: the summary is unresolved.
  Assembler a("unresolved");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).StoreData(3, 0, 0, 8).Halt();
  InterferenceSummary summary = Summarize(a);
  EXPECT_TRUE(summary.unresolved);
}

TEST(InterferenceSummaryTest, ReadsAndWritesHelpersMatchTheFootprint) {
  Assembler a = SyncWriter("helpers");
  InterferenceSummary summary = Summarize(a);
  EXPECT_TRUE(summary.Writes(kShared, ObjectPart::kData));
  EXPECT_FALSE(summary.Reads(kShared, ObjectPart::kData));
  EXPECT_FALSE(summary.Writes(kOther, ObjectPart::kData));
  EXPECT_FALSE(summary.Writes(kShared, ObjectPart::kAccess));
}

// --- Phase 2: pairwise verdicts ---------------------------------------------------------

TEST(InterferenceComposeTest, DisjointFootprintsAreIndependent) {
  World world;
  Assembler w = Writer("w", 3), r = Reader("r", 4);
  world.Add(w);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, PairVerdict::kIndependent);
  EXPECT_EQ(report.pairs_independent, 1u);
  // Both sides read the arg carrier's access slots: read-only sharing, still independent.
  EXPECT_EQ(report.pairs_read_sharing, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(InterferenceComposeTest, ReadOnlySharingStaysIndependentAndIsCounted) {
  World world;
  Assembler r0 = Reader("r0"), r1 = Reader("r1");
  world.Add(r0);
  world.Add(r1);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, PairVerdict::kIndependent);
  EXPECT_EQ(report.pairs_read_sharing, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(InterferenceComposeTest, ConflictingWritesWithNoMessagePathInterfere) {
  World world;
  Assembler w0 = Writer("w0"), w1 = Writer("w1");
  world.Add(w0);
  world.Add(w1);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  const InterferenceVerdict& verdict = report.verdicts[0];
  EXPECT_EQ(verdict.verdict, PairVerdict::kInterfering);
  ASSERT_EQ(verdict.shared.size(), 1u);
  EXPECT_EQ(verdict.shared[0], kShared);
  EXPECT_NE(verdict.message.find("w0"), std::string::npos) << verdict.message;
  EXPECT_NE(verdict.message.find("w1"), std::string::npos) << verdict.message;
  EXPECT_NE(verdict.message.find("[region 0/1]"), std::string::npos) << verdict.message;
  EXPECT_FALSE(report.ok());
}

TEST(InterferenceComposeTest, WriteReadConflictAlsoInterferes) {
  World world;
  Assembler w = Writer("w"), r = Reader("r");
  world.Add(w);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, PairVerdict::kInterfering);
  EXPECT_EQ(report.pairs_interfering, 1u);
}

TEST(InterferenceComposeTest, CommunicatingPairIsSuppressedNotReported) {
  World world;
  Assembler w = SyncWriter("w"), r = SyncReader("r");
  world.Add(w);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, PairVerdict::kSuppressed);
  EXPECT_EQ(report.pairs_suppressed, 1u);
  EXPECT_EQ(report.suppressed_by_communication, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(InterferenceComposeTest, RelayedCommunicationAlsoSuppresses) {
  // w sends port A; relay receives A and sends B; r receives B then reads. The w/r conflict
  // is ordered through the relay: the transitive closure must find it.
  World world;
  Assembler w = SyncWriter("w");
  Assembler relay("relay");
  relay.MoveAd(1, kArgAdReg)
      .LoadAd(3, 1, 0)
      .LoadAd(4, 1, 1)
      .Receive(5, 3)
      .Send(4, 5)
      .Halt();
  Assembler r("r");
  r.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 3)
      .LoadAd(4, 1, 1)
      .Receive(5, 4)
      .LoadData(0, 2, 0, 8)
      .Halt();
  world.Add(w);
  world.Add(relay);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  EXPECT_EQ(report.pairs_interfering, 0u);
  EXPECT_GE(report.suppressed_by_communication, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(InterferenceComposeTest, OpaqueSideSuppressesTheWholePair) {
  World world;
  Assembler w = Writer("w");
  Assembler opaque("opaque");
  opaque.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; }).Halt();
  world.Add(w);
  world.Add(opaque);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, PairVerdict::kSuppressed);
  EXPECT_EQ(report.suppressed_by_opacity, 1u);
  EXPECT_EQ(report.opaque_programs, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(InterferenceComposeTest, UnresolvedSideSuppressesTheWholePair) {
  World world;
  Assembler w = Writer("w");
  Assembler lost("lost");
  lost.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).StoreData(3, 0, 0, 8).Halt();
  world.Add(w);
  world.Add(lost);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, PairVerdict::kSuppressed);
  EXPECT_EQ(report.suppressed_by_unresolved, 1u);
  EXPECT_EQ(report.unresolved_programs, 1u);
}

TEST(InterferenceComposeTest, VerdictNamesAreSorted) {
  World world;
  Assembler z = Writer("zz"), a = Writer("aa");
  world.Add(z);
  world.Add(a);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].first_program, "aa");
  EXPECT_EQ(report.verdicts[0].second_program, "zz");
}

TEST(InterferenceComposeTest, DomainCalleeFootprintFoldsIntoTheCaller) {
  // The caller itself never touches kShared; its domain callee writes it. Composed against
  // a plain writer the pair must still conflict.
  World world;
  Assembler callee("callee");
  callee.MoveAd(1, kArgAdReg).LoadAd(2, 1, 3).StoreData(2, 0, 0, 8).Return();
  world.Add(callee, ProgramKind::kDomainEntry, kSegment);
  Assembler caller("caller");
  caller.MoveAd(1, kArgAdReg).LoadAd(5, 1, 5).Call(5, 0).Halt();
  world.Add(caller);
  Assembler w = Writer("w");
  world.Add(w);
  InterferenceAnalysisReport report = world.Analyze();
  EXPECT_EQ(report.pairs_interfering, 1u);
  bool found = false;
  for (const InterferenceVerdict& verdict : report.verdicts) {
    if (verdict.verdict == PairVerdict::kInterfering) {
      found = true;
      EXPECT_EQ(verdict.first_program, "caller");
      EXPECT_EQ(verdict.second_program, "w");
    }
  }
  EXPECT_TRUE(found);
}

// --- Phase 2: cacheability certificates -------------------------------------------------

TEST(InterferenceCertificateTest, ReadOnlyObjectIsCertifiedImmutable) {
  World world;
  Assembler r0 = Reader("r0"), r1 = Reader("r1");
  world.Add(r0);
  world.Add(r1);
  InterferenceAnalysisReport report = world.Analyze();
  // Two read-only parts in the footprint: {carrier, access} and {shared, data}.
  ASSERT_EQ(report.certificates.size(), 2u);
  const CacheCertificate* cert = nullptr;
  for (const CacheCertificate& c : report.certificates) {
    if (c.object == kShared && c.part == ObjectPart::kData) cert = &c;
  }
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->grade, CacheGrade::kImmutable);
  EXPECT_FALSE(cert->caveat);
  EXPECT_EQ(cert->readers, 2u);
  EXPECT_EQ(cert->writers, 0u);
  EXPECT_EQ(report.certified_immutable, 2u);
  EXPECT_EQ(report.objects_seen, 2u);
}

TEST(InterferenceCertificateTest, OpaqueCodeAnywhereCaveatsEveryImmutableCertificate) {
  World world;
  Assembler r = Reader("r");
  Assembler opaque("opaque");
  opaque.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; }).Halt();
  world.Add(r);
  world.Add(opaque);
  InterferenceAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.certificates.size(), 2u);  // {carrier, access} + {shared, data}
  for (const CacheCertificate& cert : report.certificates) {
    EXPECT_EQ(cert.grade, CacheGrade::kImmutable);
    EXPECT_TRUE(cert.caveat);
  }
  EXPECT_EQ(report.certified_immutable, 0u);
  EXPECT_EQ(report.certified_with_caveat, 2u);
}

TEST(InterferenceCertificateTest, PublishedWritesWithGatedReadsEarnPublishedOnly) {
  World world;
  Assembler w = SyncWriter("w"), r = SyncReader("r");
  world.Add(w);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  const CacheCertificate* shared_cert = nullptr;
  for (const CacheCertificate& cert : report.certificates) {
    if (cert.object == kShared && cert.part == ObjectPart::kData) shared_cert = &cert;
  }
  ASSERT_NE(shared_cert, nullptr);
  EXPECT_EQ(shared_cert->grade, CacheGrade::kPublishedOnly);
  EXPECT_EQ(report.certified_published, 1u);
}

TEST(InterferenceCertificateTest, UnpublishedWriteGradesMutable) {
  World world;
  Assembler w = Writer("w"), r = Reader("r");
  world.Add(w);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  const CacheCertificate* cert = nullptr;
  for (const CacheCertificate& c : report.certificates) {
    if (c.object == kShared && c.part == ObjectPart::kData) cert = &c;
  }
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->grade, CacheGrade::kMutable);
  EXPECT_EQ(report.uncertified, 1u);
}

TEST(InterferenceCertificateTest, UngatedForeignReadDemotesPublishedToMutable) {
  // The writer publishes, but the reader never receives first: the read is not ordered
  // after publication, so the published-only claim must not be made.
  World world;
  Assembler w = SyncWriter("w"), r = Reader("r");
  world.Add(w);
  world.Add(r);
  InterferenceAnalysisReport report = world.Analyze();
  const CacheCertificate* shared_cert = nullptr;
  for (const CacheCertificate& cert : report.certificates) {
    if (cert.object == kShared && cert.part == ObjectPart::kData) shared_cert = &cert;
  }
  ASSERT_NE(shared_cert, nullptr);
  EXPECT_EQ(shared_cert->grade, CacheGrade::kMutable);
}

TEST(InterferenceCertificateTest, FormatReportRendersDiagnosticsAndRollup) {
  World world;
  Assembler w0 = Writer("w0"), w1 = Writer("w1");
  world.Add(w0);
  world.Add(w1);
  InterferenceAnalysisReport report = world.Analyze();
  std::string text = FormatInterferenceReport(report);
  EXPECT_NE(text.find("error  interference"), std::string::npos) << text;
  EXPECT_NE(text.find("1 interfering"), std::string::npos) << text;
  EXPECT_NE(text.find("1 mutable"), std::string::npos) << text;
}

TEST(InterferenceCertificateTest, EmptySystemFormatsToNothing) {
  World world;
  InterferenceAnalysisReport report = world.Analyze();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(FormatInterferenceReport(report), "");
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

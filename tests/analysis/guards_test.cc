// Guard-dominance analysis (src/analysis/guards/guards.h): Phase 1 block-local forward
// dominance dataflow (fact establishment, kills, fresh objects, suppression accounting) and
// Phase 2 certificate composition with the zero-false-positive screens.

#include "src/analysis/guards/guards.h"

#include <gtest/gtest.h>

#include <map>

#include "src/analysis/effects.h"
#include "src/arch/rights.h"
#include "src/isa/assembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Same fixture world as interference_test.cc: object 1 = carrier; slot 3 = shared object 30.
constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kShared = 30;

AccessDescriptor Ad(ObjectIndex index) { return AccessDescriptor(index, 0, rights::kAll); }

EffectOptions WorldOptions() {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    if (index == kCarrier && slot == 3) return Ad(kShared);
    return AccessDescriptor();
  };
  return options;
}

GuardSummary Summarize(Assembler& a) {
  return GuardAnalyzer::Analyze(*a.Build(), WorldOptions());
}

const GuardSite* SiteAt(const GuardSummary& summary, uint32_t pc) {
  for (const GuardSite& site : summary.sites) {
    if (site.pc == pc) return &site;
  }
  return nullptr;
}

// --- Phase 1: dominance dataflow -------------------------------------------------------

TEST(GuardPhase1, FirstCheckUnprovenSecondIdenticalElidable) {
  Assembler a("repeat-load");
  // pc 0: load through the arg register — no prior fact, nothing elidable.
  // pc 1: identical load — rights + bounds dominated by pc 0.
  a.LoadData(1, kArgAdReg, 0, 8).LoadData(2, kArgAdReg, 0, 8).Halt();
  GuardSummary summary = Summarize(a);
  ASSERT_EQ(summary.sites.size(), 2u);

  const GuardSite* first = SiteAt(summary, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->checks, guard_check::kRights | guard_check::kDataBounds);
  EXPECT_EQ(first->elidable, 0u);
  EXPECT_EQ(first->suppression, GuardSuppression::kUnproven);

  const GuardSite* second = SiteAt(summary, 1);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->elidable, guard_check::kRights | guard_check::kDataBounds);
  EXPECT_EQ(second->dominator_pc, 0u);
  EXPECT_EQ(second->suppression, GuardSuppression::kNone);

  EXPECT_EQ(summary.counters.checks_seen, 4u);
  EXPECT_EQ(summary.counters.checks_elidable, 2u);
  EXPECT_EQ(summary.counters.suppressed_unproven, 2u);
}

TEST(GuardPhase1, BoundsWatermarkCoversSmallerOffsets) {
  Assembler a("watermark");
  // pc 0 proves bytes [0, 16) readable; pc 1 reads [8, 16) — covered. pc 2 reads [16, 24):
  // rights dominated but bounds beyond the watermark.
  a.LoadData(1, kArgAdReg, 8, 8).LoadData(2, kArgAdReg, 0, 8).LoadData(3, kArgAdReg, 16, 8)
      .Halt();
  GuardSummary summary = Summarize(a);

  const GuardSite* covered = SiteAt(summary, 1);
  ASSERT_NE(covered, nullptr);
  EXPECT_EQ(covered->elidable, guard_check::kRights | guard_check::kDataBounds);

  const GuardSite* beyond = SiteAt(summary, 2);
  ASSERT_NE(beyond, nullptr);
  EXPECT_EQ(beyond->elidable, guard_check::kRights);
  EXPECT_EQ(beyond->suppression, GuardSuppression::kUnproven);
}

TEST(GuardPhase1, CreateObjectEstablishesExactFacts) {
  Assembler a("fresh");
  // create_object grants R|W|D with 32 data bytes and 2 slots: the store at pc 1 and the
  // slot read at pc 2 are fully elidable and fresh; the out-of-bounds store at pc 3 is not.
  a.CreateObject(1, kArgAdReg, 32, 2)
      .StoreData(1, 0, 24, 8)
      .LoadAd(2, 1, 1)
      .StoreData(1, 0, 32, 8)
      .Halt();
  GuardSummary summary = Summarize(a);

  const GuardSite* store = SiteAt(summary, 1);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->elidable, guard_check::kRights | guard_check::kDataBounds);
  EXPECT_TRUE(store->fresh);
  EXPECT_EQ(store->dominator_pc, 0u);

  const GuardSite* slot = SiteAt(summary, 2);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->elidable, guard_check::kRights | guard_check::kSlotBounds);
  EXPECT_TRUE(slot->fresh);

  const GuardSite* oob = SiteAt(summary, 3);
  ASSERT_NE(oob, nullptr);
  // Exact length 32 is known: offset 32 + width 8 exceeds it, so bounds stay dynamic.
  EXPECT_EQ(oob->elidable, guard_check::kRights);
}

TEST(GuardPhase1, SyncInstructionKillsAllFacts) {
  Assembler a("sync-kill");
  // The receive at pc 2 is a sync point: the facts proven at pc 0/1 die with it.
  a.CreateObject(1, kArgAdReg, 16, 0)
      .StoreData(1, 0, 0, 8)
      .Receive(3, kArgAdReg)
      .StoreData(1, 0, 0, 8)
      .Halt();
  GuardSummary summary = Summarize(a);

  const GuardSite* before = SiteAt(summary, 1);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->elidable, guard_check::kRights | guard_check::kDataBounds);

  const GuardSite* after = SiteAt(summary, 3);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->elidable, 0u);
  EXPECT_EQ(after->suppression, GuardSuppression::kUnproven);
}

TEST(GuardPhase1, BlockBoundaryResetsFacts) {
  Assembler a("block-reset");
  Assembler::Label target = a.NewLabel();
  // The branch ends the block: the load after the label re-proves from scratch even though
  // the only path into it flows through pc 0.
  a.LoadData(1, kArgAdReg, 0, 8).Branch(target).Bind(target).LoadData(2, kArgAdReg, 0, 8)
      .Halt();
  GuardSummary summary = Summarize(a);
  const GuardSite* after = SiteAt(summary, 2);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->elidable, 0u);
}

TEST(GuardPhase1, RegisterOverwriteKillsFacts) {
  Assembler a("reg-kill");
  // load_ad overwrites a1 at pc 1: the facts proven by pc 0 do not survive into pc 2.
  a.MoveAd(1, kArgAdReg)
      .LoadData(2, 1, 0, 8)
      .LoadAd(1, kArgAdReg, 3)
      .LoadData(3, 1, 0, 8)
      .Halt();
  GuardSummary summary = Summarize(a);
  const GuardSite* after = SiteAt(summary, 3);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->elidable, 0u);
}

TEST(GuardPhase1, MoveAdCopiesFactsAndRestrictRightsMasks) {
  Assembler a("move-restrict");
  a.CreateObject(1, kArgAdReg, 16, 0)
      .MoveAd(2, 1)
      .StoreData(2, 0, 0, 8)   // facts copied: fully elidable
      .RestrictRights(2, rights::kRead)
      .StoreData(2, 0, 0, 8)   // write right restricted away: rights no longer proven
      .Halt();
  GuardSummary summary = Summarize(a);

  const GuardSite* copied = SiteAt(summary, 2);
  ASSERT_NE(copied, nullptr);
  EXPECT_EQ(copied->elidable, guard_check::kRights | guard_check::kDataBounds);

  const GuardSite* restricted = SiteAt(summary, 4);
  ASSERT_NE(restricted, nullptr);
  EXPECT_EQ(restricted->elidable & guard_check::kRights, 0u);
  // Bounds facts survive the rights restriction (length is a property of the object).
  EXPECT_EQ(restricted->elidable & guard_check::kDataBounds, guard_check::kDataBounds);
}

TEST(GuardPhase1, IndexedOffsetsNeverElideBounds) {
  Assembler a("indexed");
  a.LoadImm(1, 0)
      .LoadData(2, kArgAdReg, 0, 8)
      .LoadDataIndexed(3, kArgAdReg, 1)
      .Halt();
  GuardSummary summary = Summarize(a);
  const GuardSite* indexed = SiteAt(summary, 2);
  ASSERT_NE(indexed, nullptr);
  // Rights dominated by the plain load; the run-time offset keeps bounds dynamic.
  EXPECT_EQ(indexed->elidable, guard_check::kRights);
  EXPECT_EQ(indexed->suppression, GuardSuppression::kDynamic);
  EXPECT_EQ(summary.counters.suppressed_dynamic, 1u);
}

TEST(GuardPhase1, StoreAdLevelNeverElides) {
  Assembler a("level");
  a.CreateObject(1, kArgAdReg, 0, 2)
      .StoreAd(1, kArgAdReg, 0)
      .StoreAd(1, kArgAdReg, 1)
      .Halt();
  GuardSummary summary = Summarize(a);
  const GuardSite* second = SiteAt(summary, 2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->checks,
            guard_check::kRights | guard_check::kSlotBounds | guard_check::kLevel);
  EXPECT_EQ(second->elidable, guard_check::kRights | guard_check::kSlotBounds);
  EXPECT_EQ(second->suppression, GuardSuppression::kLevel);
  EXPECT_EQ(summary.counters.suppressed_level, 2u);
}

TEST(GuardPhase1, OpaqueProgramSuppressesEverything) {
  Assembler a("opaque");
  a.CreateObject(1, kArgAdReg, 16, 0)
      .StoreData(1, 0, 0, 8)
      .Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Halt();
  GuardSummary summary = Summarize(a);
  EXPECT_TRUE(summary.opaque);
  const GuardSite* store = SiteAt(summary, 1);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->elidable, 0u);
  EXPECT_EQ(store->suppression, GuardSuppression::kOpaque);
  EXPECT_EQ(summary.counters.checks_elidable, 0u);
  EXPECT_EQ(summary.counters.suppressed_opaque, summary.counters.checks_seen);
}

TEST(GuardPhase1, InvalidWidthKeepsBoundsDynamic) {
  Assembler a("bad-width");
  a.LoadData(1, kArgAdReg, 0, 8).LoadData(2, kArgAdReg, 0, 3).Halt();
  GuardSummary summary = Summarize(a);
  const GuardSite* bad = SiteAt(summary, 1);
  ASSERT_NE(bad, nullptr);
  // Width 3 faults kInvalidArgument before the rights check in the full path; eliding
  // anything would reorder faults.
  EXPECT_EQ(bad->elidable & guard_check::kDataBounds, 0u);
}

// --- Phase 2: certificate composition --------------------------------------------------

struct World {
  SystemEffectGraph graph;
  std::map<ObjectIndex, GuardSummary> guards;
  std::map<ObjectIndex, InterferenceSummary> interference;
  ObjectIndex next_segment = 100;

  ObjectIndex Add(Assembler& a) {
    ObjectIndex segment = next_segment++;
    ProgramRef program = a.Build();
    graph.AddProgram(segment, EffectAnalyzer::Analyze(*program, WorldOptions()),
                     ProgramKind::kProcess);
    guards[segment] = GuardAnalyzer::Analyze(*program, WorldOptions());
    interference[segment] = InterferenceAnalyzer::Analyze(*program, WorldOptions());
    return segment;
  }

  GuardAnalysisReport Analyze() { return AnalyzeGuards(graph, guards, interference); }
};

uint32_t CertifiedChecksFor(const GuardAnalysisReport& report, ObjectIndex segment) {
  uint32_t count = 0;
  for (const ElisionCertificate& cert : report.certificates) {
    if (cert.segment == segment) count += static_cast<uint32_t>(cert.checks.size());
  }
  return count;
}

TEST(GuardPhase2, FreshSitesCertifyUnconditionally) {
  World world;
  Assembler a("alloc-loop");
  a.CreateObject(1, kArgAdReg, 32, 0).StoreData(1, 0, 0, 8).LoadData(2, 1, 0, 8).Halt();
  ObjectIndex segment = world.Add(a);

  GuardAnalysisReport report = world.Analyze();
  EXPECT_GT(report.checks_certified, 0u);
  EXPECT_EQ(report.checks_certified, report.certified_fresh);
  EXPECT_EQ(CertifiedChecksFor(report, segment), 2u);  // the store and the load
}

TEST(GuardPhase2, ResolvedSiteCertifiesWhenNoWriterExists) {
  World world;
  Assembler a("read-only");
  // Two identical reads of the shared object: the second is elidable, and since no
  // summarized program writes object 30, it certifies.
  a.LoadAd(1, kArgAdReg, 3).LoadData(2, 1, 0, 8).LoadData(3, 1, 0, 8).Halt();
  ObjectIndex segment = world.Add(a);

  GuardAnalysisReport report = world.Analyze();
  EXPECT_EQ(CertifiedChecksFor(report, segment), 1u);
  EXPECT_EQ(report.certified_fresh, 0u);
}

TEST(GuardPhase2, ForeignWriterSuppressesResolvedSites) {
  World world;
  Assembler reader("reader");
  reader.LoadAd(1, kArgAdReg, 3).LoadData(2, 1, 0, 8).LoadData(3, 1, 0, 8).Halt();
  ObjectIndex reader_segment = world.Add(reader);

  Assembler writer("writer");
  writer.LoadAd(1, kArgAdReg, 3).StoreData(1, 0, 0, 8).Halt();
  world.Add(writer);

  GuardAnalysisReport report = world.Analyze();
  EXPECT_EQ(CertifiedChecksFor(report, reader_segment), 0u);
  EXPECT_GT(report.suppressed_interference, 0u);
}

TEST(GuardPhase2, SystemOpacitySuppressesNonFreshButNotFresh) {
  World world;
  Assembler mixed("mixed");
  mixed.CreateObject(1, kArgAdReg, 16, 0)
      .StoreData(1, 0, 0, 8)                            // fresh: survives opacity
      .LoadAd(2, kArgAdReg, 3)
      .LoadData(3, 2, 0, 8)
      .LoadData(4, 2, 0, 8)                             // resolved: suppressed by opacity
      .Halt();
  ObjectIndex segment = world.Add(mixed);

  Assembler opaque("opaque");
  opaque.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; }).Halt();
  world.Add(opaque);

  GuardAnalysisReport report = world.Analyze();
  EXPECT_EQ(CertifiedChecksFor(report, segment), 1u);
  EXPECT_EQ(report.checks_certified, report.certified_fresh);
  EXPECT_GT(report.suppressed_system_opaque, 0u);
}

TEST(GuardPhase2, CertificateCarriesBlockRangeAndDominator) {
  World world;
  Assembler a("range");
  a.CreateObject(1, kArgAdReg, 32, 0).StoreData(1, 0, 0, 8).StoreData(1, 0, 8, 8).Halt();
  ObjectIndex segment = world.Add(a);

  GuardAnalysisReport report = world.Analyze();
  ASSERT_EQ(report.certificates.size(), 1u);
  const ElisionCertificate& cert = report.certificates[0];
  EXPECT_EQ(cert.segment, segment);
  EXPECT_LE(cert.begin, 1u);
  EXPECT_GE(cert.end, 3u);
  ASSERT_EQ(cert.checks.size(), 2u);
  EXPECT_EQ(cert.checks[0].dominator_pc, 0u);
  EXPECT_TRUE(cert.checks[0].fresh);
  EXPECT_EQ(cert.checks[0].mask, guard_check::kRights | guard_check::kDataBounds);
}

TEST(GuardReport, FormatsCountersAndCertificates) {
  World world;
  Assembler a("fmt");
  a.CreateObject(1, kArgAdReg, 16, 0).StoreData(1, 0, 0, 8).Halt();
  world.Add(a);
  GuardAnalysisReport report = world.Analyze();
  std::string text = FormatGuardReport(report, world.guards);
  EXPECT_NE(text.find("guard-dominance analysis"), std::string::npos);
  EXPECT_NE(text.find("certificate"), std::string::npos);
  EXPECT_NE(text.find("fresh"), std::string::npos);
}

TEST(GuardNames, MaskAndSuppressionNames) {
  EXPECT_EQ(GuardCheckMaskName(0), "none");
  EXPECT_EQ(GuardCheckMaskName(guard_check::kRights | guard_check::kDataBounds),
            "rights|data-bounds");
  EXPECT_EQ(GuardCheckMaskName(guard_check::kSlotBounds | guard_check::kLevel),
            "slot-bounds|level");
  EXPECT_STREQ(GuardSuppressionName(GuardSuppression::kDynamic), "dynamic");
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

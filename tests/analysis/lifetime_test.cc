// Phase 1 (per-program allocation-site summaries) and phase 2 (whole-system composition)
// of the lifetime analysis, over the same synthetic world effects_test.cc uses: a slot
// reader answers loads, no machine required.

#include "src/analysis/lifetime/lifetime.h"

#include <gtest/gtest.h>

#include <map>

#include "src/arch/rights.h"
#include "src/isa/assembler.h"

namespace imax432 {
namespace analysis {
namespace {

constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kOther = 2;
constexpr ObjectIndex kPortA = 10;

AccessDescriptor Ad(ObjectIndex index) { return AccessDescriptor(index, 0, rights::kAll); }

EffectOptions WorldOptions() {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    static const std::map<std::pair<ObjectIndex, uint32_t>, ObjectIndex> kSlots = {
        {{kCarrier, 0}, kPortA},
        {{kCarrier, 3}, kOther},
    };
    auto it = kSlots.find({index, slot});
    return it == kSlots.end() ? AccessDescriptor() : Ad(it->second);
  };
  return options;
}

LifetimeSummary Analyze(Assembler& a) {
  return LifetimeAnalyzer::Analyze(*a.Build(), WorldOptions());
}

// --- Phase 1: site detection and escape facts ---

TEST(LifetimeTest, SitesAreDetectedInProgramOrderWithShape) {
  Assembler a("two-sites");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 32, 2)
      .CreateObject(3, 1, 64, 0)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 2u);
  EXPECT_EQ(summary.sites[0].pc, 1u);
  EXPECT_EQ(summary.sites[0].data_bytes, 32u);
  EXPECT_EQ(summary.sites[0].access_slots, 2u);
  EXPECT_EQ(summary.sites[1].pc, 2u);
  EXPECT_EQ(summary.sites[1].data_bytes, 64u);
  EXPECT_NE(summary.sites[0].disasm.find("create_object"), std::string::npos);
}

TEST(LifetimeTest, ContextLocalSiteIsDemotable) {
  Assembler a("local");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .MoveAd(3, 2)  // moves do not escape
      .ClearAd(3)
      .ClearAd(2)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  const AllocationSite& site = summary.sites[0];
  EXPECT_TRUE(site.heap_stores.empty());
  EXPECT_FALSE(site.sent || site.passed_to_call || site.returned || site.destroyed ||
               site.unresolved);
  EXPECT_EQ(DemotableSites(summary), std::vector<uint32_t>{1u});
}

TEST(LifetimeTest, StoreIntoPreexistingObjectRecordsHeapStore) {
  Assembler a("escapes-store");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).StoreAd(1, 2, 4).Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  ASSERT_EQ(summary.sites[0].heap_stores.size(), 1u);
  const HeapStore& store = summary.sites[0].heap_stores[0];
  EXPECT_EQ(store.container, kCarrier);
  EXPECT_EQ(store.slot, 4u);
  EXPECT_EQ(store.pc, 2u);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, IndexedStoreRecordsUnknownSlot) {
  Assembler a("escapes-indexed");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .LoadImm(0, 3)
      .StoreAdIndexed(1, 2, 0)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites[0].heap_stores.size(), 1u);
  EXPECT_EQ(summary.sites[0].heap_stores[0].slot, kUnknownSlot);
}

TEST(LifetimeTest, SendAndCondSendMarkSent) {
  Assembler a("escapes-send");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)         // a2 = port A
      .CreateObject(3, 1, 16)
      .Send(2, 3)
      .CreateObject(4, 1, 16)
      .CondSend(2, 4, 0)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 2u);
  EXPECT_TRUE(summary.sites[0].sent);
  EXPECT_TRUE(summary.sites[1].sent);
  EXPECT_FALSE(summary.sent_unknown);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, CallArgumentMarksPassedToCall) {
  Assembler a("escapes-call");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(kArgAdReg, 1, 16)
      .CallLocal(5)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  EXPECT_TRUE(summary.sites[0].passed_to_call);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, ReturnValueMarksReturned) {
  Assembler a("escapes-return");
  a.MoveAd(1, kArgAdReg).CreateObject(kArgAdReg, 1, 16).Return();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  EXPECT_TRUE(summary.sites[0].returned);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, DestroyMarksDestroyedNotDemotable) {
  // An explicitly destroyed site must never be demoted: destroy_object on a demote-SRO
  // object would double-reclaim at context exit.
  Assembler a("destroys");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).DestroyObject(2).Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  EXPECT_TRUE(summary.sites[0].destroyed);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, StoreThroughUnresolvedContainerIsUnresolvedTier) {
  Assembler a("unresolved-container");
  a.MoveAd(1, kArgAdReg)
      .Receive(2, 1)           // a2 unknown: could be any object
      .CreateObject(3, 1, 16)
      .StoreAd(2, 3, 0)        // stored somewhere we cannot name
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  EXPECT_TRUE(summary.sites[0].unresolved);
  EXPECT_TRUE(summary.sites[0].heap_stores.empty());
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, SendOfUnknownPayloadSetsSentUnknown) {
  Assembler a("sends-unknown");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(3, 2).Send(2, 3).Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_TRUE(summary.sent_unknown);
}

TEST(LifetimeTest, SiblingStoreInheritsDemotabilityFromTarget) {
  // site0 is stored into site1 only. If site1 is context-local both are demotable ...
  Assembler a("siblings-local");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 0, 4)  // site0: the container sibling
      .CreateObject(3, 1, 16)    // site1: stored into site0
      .StoreAd(2, 3, 0)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 2u);
  EXPECT_EQ(summary.sites[1].stored_into_sites, std::vector<uint16_t>{0});
  EXPECT_EQ(DemotableSites(summary), (std::vector<uint32_t>{1u, 2u}));

  // ... but if the sibling container escapes, the stored site's lifetime is no longer
  // bounded by the context and demotability must not propagate.
  Assembler b("siblings-escape");
  b.MoveAd(1, kArgAdReg)
      .LoadAd(4, 1, 0)
      .CreateObject(2, 1, 0, 4)
      .CreateObject(3, 1, 16)
      .StoreAd(2, 3, 0)
      .Send(4, 2)
      .Halt();
  LifetimeSummary escaped = LifetimeAnalyzer::Analyze(*b.Build(), WorldOptions());
  EXPECT_TRUE(DemotableSites(escaped).empty());
}

TEST(LifetimeTest, NativeStepMakesProgramOpaqueAndNothingDemotable) {
  Assembler a("opaque");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_TRUE(summary.opaque);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

TEST(LifetimeTest, KnownOsServicesStayPreciseUnknownOnesAreOpaque) {
  Assembler a("yields");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).OsCall(1 /* yield */).Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_FALSE(summary.opaque);
  EXPECT_EQ(DemotableSites(summary).size(), 1u);

  Assembler b("package-call");
  b.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).OsCall(77).Halt();
  LifetimeSummary opaque = LifetimeAnalyzer::Analyze(*b.Build(), WorldOptions());
  EXPECT_TRUE(opaque.opaque);
  EXPECT_TRUE(DemotableSites(opaque).empty());
}

TEST(LifetimeTest, LoadBackThroughDirtiedContainerStaysSound) {
  // Storing the site dirties the carrier; the load gets top, so the send cannot claim a
  // resolved payload — but the heap store already made the site non-demotable, and the
  // unknown payload voids whole-system claims. No fact is lost, only precision.
  Assembler a("round-trip");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(4, 1, 0)
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 5)
      .LoadAd(3, 1, 5)
      .Send(4, 3)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.sites.size(), 1u);
  EXPECT_FALSE(summary.sites[0].heap_stores.empty());
  EXPECT_TRUE(summary.sent_unknown);
  EXPECT_TRUE(DemotableSites(summary).empty());
}

// --- Phase 1: retention anomalies ---

TEST(LifetimeTest, OverwritingSoleReferenceIsAnAnomaly) {
  Assembler a("killer");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 4)   // the only AD lands in carrier[4]
      .ClearAd(2)         // no register holds it any more
      .StoreAd(1, 3, 4)   // null overwrites it: the object is unreachable garbage
      .Halt();
  LifetimeSummary summary = Analyze(a);
  ASSERT_EQ(summary.anomalies.size(), 1u);
  const RetentionAnomaly& anomaly = summary.anomalies[0];
  EXPECT_EQ(anomaly.site, 0u);
  EXPECT_EQ(anomaly.store_pc, 2u);
  EXPECT_EQ(anomaly.overwrite_pc, 4u);
  EXPECT_EQ(anomaly.container, kCarrier);
  EXPECT_EQ(anomaly.slot, 4u);
}

TEST(LifetimeTest, NoAnomalyWhileARegisterStillHoldsTheSite) {
  Assembler a("kept");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 4)
      .StoreAd(1, 3, 4)   // a2 still names the object: nothing is lost
      .Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_TRUE(summary.anomalies.empty());
}

TEST(LifetimeTest, NoAnomalyWhenTheSameSiteIsRestored) {
  Assembler a("restore");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 4)
      .StoreAd(1, 2, 4)   // overwrite with itself
      .Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_TRUE(summary.anomalies.empty());
}

TEST(LifetimeTest, NoAnomalyWhenTheSiteLivesInASecondCell) {
  Assembler a("two-cells");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 4)
      .StoreAd(1, 2, 5)   // second home: not a sole-cell site
      .ClearAd(2)
      .StoreAd(1, 3, 4)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_TRUE(summary.anomalies.empty());
}

TEST(LifetimeTest, UnresolvedStoreValueVoidsAnomalyClaims) {
  // A top value stored anywhere could be the site's AD surviving somewhere we cannot see.
  Assembler a("muddy");
  a.MoveAd(1, kArgAdReg)
      .Receive(5, 1)      // a5 = top
      .StoreAd(1, 5, 7)   // stored_top
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 4)
      .ClearAd(2)
      .StoreAd(1, 3, 4)
      .Halt();
  LifetimeSummary summary = Analyze(a);
  EXPECT_TRUE(summary.stored_top);
  EXPECT_TRUE(summary.anomalies.empty());
}

// --- Phase 2: whole-system composition ---

struct World {
  SystemEffectGraph graph;
  std::map<ObjectIndex, LifetimeSummary> lifetimes;

  void Add(ObjectIndex segment, Assembler& a) {
    ProgramRef program = a.Build();
    graph.AddProgram(segment, EffectAnalyzer::Analyze(*program, WorldOptions()));
    lifetimes.emplace(segment, LifetimeAnalyzer::Analyze(*program, WorldOptions()));
  }
};

TEST(LifetimeSystemTest, StoreNobodyReadsBackIsALeakSuspect) {
  Assembler a("stasher");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).StoreAd(1, 2, 4).Halt();
  World world;
  world.Add(100, a);
  LifetimeAnalysisReport report = AnalyzeLifetimes(world.graph, world.lifetimes);
  ASSERT_EQ(report.leaks.size(), 1u);
  EXPECT_EQ(report.leaks[0].container, kCarrier);
  EXPECT_EQ(report.leaks[0].alloc_pc, 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(FormatLifetimeReport(report).find("leak suspect"), std::string::npos);
}

TEST(LifetimeSystemTest, AReadBackAnywhereRetractsTheLeak) {
  Assembler a("stasher");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).StoreAd(1, 2, 4).Halt();
  Assembler b("reader");
  b.MoveAd(1, kArgAdReg).LoadAd(2, 1, 4).Halt();
  World world;
  world.Add(100, a);
  world.Add(101, b);
  LifetimeAnalysisReport report = AnalyzeLifetimes(world.graph, world.lifetimes);
  EXPECT_TRUE(report.leaks.empty());
  EXPECT_TRUE(report.ok());
}

TEST(LifetimeSystemTest, AnyOpaqueProgramSuppressesEveryClaim) {
  Assembler a("stasher");
  a.MoveAd(1, kArgAdReg).CreateObject(2, 1, 16).StoreAd(1, 2, 4).Halt();
  Assembler daemon("daemon");
  daemon.Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .Halt();
  World world;
  world.Add(100, a);
  world.Add(101, daemon);
  LifetimeAnalysisReport report = AnalyzeLifetimes(world.graph, world.lifetimes);
  EXPECT_TRUE(report.leaks.empty());
  EXPECT_EQ(report.leaks_suppressed, 1u);
  EXPECT_GE(report.opaque_programs, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(LifetimeSystemTest, AnomalySurvivesOnlyWhenNobodyReadsTheContainer) {
  Assembler a("killer");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)
      .StoreAd(1, 2, 4)
      .ClearAd(2)
      .StoreAd(1, 3, 4)
      .Halt();
  {
    World world;
    world.Add(100, a);
    LifetimeAnalysisReport report = AnalyzeLifetimes(world.graph, world.lifetimes);
    ASSERT_EQ(report.anomalies.size(), 1u);
    EXPECT_EQ(report.anomalies[0].anomaly.overwrite_pc, 4u);
    EXPECT_NE(FormatLifetimeReport(report).find("retention anomaly"), std::string::npos);
  }
  {
    // A concurrent reader of the carrier could copy the AD out before the overwrite.
    Assembler b("reader");
    b.MoveAd(1, kArgAdReg).LoadAd(2, 1, 4).Halt();
    Assembler a2("killer");
    a2.MoveAd(1, kArgAdReg)
        .CreateObject(2, 1, 16)
        .StoreAd(1, 2, 4)
        .ClearAd(2)
        .StoreAd(1, 3, 4)
        .Halt();
    World world;
    world.Add(100, a2);
    world.Add(101, b);
    LifetimeAnalysisReport report = AnalyzeLifetimes(world.graph, world.lifetimes);
    EXPECT_TRUE(report.anomalies.empty());
    EXPECT_EQ(report.anomalies_suppressed, 1u);
  }
}

TEST(LifetimeSystemTest, ReportTalliesSitesAndDemotables) {
  Assembler a("mixed");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 16)  // demotable
      .CreateObject(3, 1, 16)
      .StoreAd(1, 3, 4)        // escapes
      .Halt();
  World world;
  world.Add(100, a);
  LifetimeAnalysisReport report = AnalyzeLifetimes(world.graph, world.lifetimes);
  EXPECT_EQ(report.programs_analyzed, 1u);
  EXPECT_EQ(report.sites_analyzed, 2u);
  EXPECT_EQ(report.sites_demotable, 1u);
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

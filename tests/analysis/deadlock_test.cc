#include "src/analysis/deadlock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Summaries are hand-built: these tests exercise the system graph, not the per-program
// analyzer (tests/analysis/effects_test.cc covers that).
constexpr ObjectIndex kQ1 = 100;
constexpr ObjectIndex kQ2 = 101;
constexpr ObjectIndex kQ3 = 102;

PortUse Sends(ObjectIndex port, bool blocking = true) {
  PortUse use;
  use.op = PortOp::kSend;
  use.port = port;
  use.blocking = blocking;
  use.disasm = "0000  send           port=a1, msg=a2";
  return use;
}

PortUse Receives(ObjectIndex port, bool blocking = true,
                 std::vector<ObjectIndex> sends_before = {}) {
  PortUse use;
  use.op = PortOp::kReceive;
  use.port = port;
  use.blocking = blocking;
  use.sends_before = std::move(sends_before);
  use.disasm = "0001  receive        a3, port=a1";
  return use;
}

EffectSummary Summary(std::string name, std::vector<PortUse> uses) {
  EffectSummary summary;
  summary.program_name = std::move(name);
  summary.uses = std::move(uses);
  return summary;
}

int CountRule(const SystemAnalysisReport& report, SystemRule rule) {
  int count = 0;
  for (const SystemDiagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.rule == rule) ++count;
  }
  return count;
}

TEST(DeadlockTest, TwoProgramReceiveCycleDetected) {
  SystemEffectGraph graph;
  // a blocks on q1 then would feed q2; b blocks on q2 then would feed q1.
  graph.AddProgram(1, Summary("a", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  ASSERT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 1) << FormatReport(report);
  const SystemDiagnostic& diagnostic = report.diagnostics[0];
  EXPECT_EQ(diagnostic.programs.size(), 2u);
  EXPECT_EQ(diagnostic.ports.size(), 2u);
}

TEST(DeadlockTest, ThreeProgramRingDetectedWithAllMembersNamed) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("p0", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(2, Summary("p1", {Receives(kQ2), Sends(kQ3)}));
  graph.AddProgram(3, Summary("p2", {Receives(kQ3), Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  ASSERT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 1) << FormatReport(report);
  const SystemDiagnostic& diagnostic = report.diagnostics[0];
  ASSERT_EQ(diagnostic.programs.size(), 3u);
  for (const char* name : {"p0", "p1", "p2"}) {
    EXPECT_NE(std::find(diagnostic.programs.begin(), diagnostic.programs.end(), name),
              diagnostic.programs.end());
    EXPECT_NE(diagnostic.message.find(name), std::string::npos) << diagnostic.message;
  }
  // Disassembly anchor present in the rendered diagnostic.
  EXPECT_NE(diagnostic.message.find("receive"), std::string::npos) << diagnostic.message;
}

TEST(DeadlockTest, SelfWaitDetected) {
  SystemEffectGraph graph;
  // Only this program ever feeds q1, but it blocks on q1 before any send.
  graph.AddProgram(1, Summary("loner", {Receives(kQ1), Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 1) << FormatReport(report);
}

TEST(DeadlockTest, CleanPipelineIsClean) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("head", {Sends(kQ1)}));
  graph.AddProgram(2, Summary("mid", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(3, Summary("tail", {Receives(kQ2)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
  EXPECT_EQ(report.programs_analyzed, 3u);
  EXPECT_EQ(report.ports_seen, 2u);
}

TEST(DeadlockTest, ExternalSenderBreaksTheCycle) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("a", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  graph.MarkExternalSender(kQ1);  // a device/test harness can always unblock `a`
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 0) << FormatReport(report);
}

TEST(DeadlockTest, GuardedReceivesCreateNoWaitEdges) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("a", {Receives(kQ1, /*blocking=*/false), Sends(kQ2)}));
  graph.AddProgram(2, Summary("b", {Receives(kQ2, /*blocking=*/false), Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
}

TEST(DeadlockTest, PrimedRequestReplyIsNotADeadlock) {
  SystemEffectGraph graph;
  // Classic RPC: the client's request is provably in flight before it blocks for the
  // reply, so the server can always make progress.
  graph.AddProgram(1, Summary("client", {Sends(kQ1), Receives(kQ2, true, {kQ1})}));
  graph.AddProgram(2, Summary("server", {Receives(kQ1), Sends(kQ2)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 0) << FormatReport(report);
}

TEST(DeadlockTest, OutsideSenderIntoCyclePortSuppresses) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("a", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  // A third, non-blocked program can also feed q1; the "cycle" is escapable.
  graph.AddProgram(3, Summary("helper", {Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 0) << FormatReport(report);
}

TEST(DeadlockTest, OrphanPortDetectedAndExternalReceiverSuppresses) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("writer", {Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  ASSERT_EQ(CountRule(report, SystemRule::kOrphanPort), 1) << FormatReport(report);
  EXPECT_EQ(report.diagnostics[0].ports[0], kQ1);
  EXPECT_NE(report.diagnostics[0].message.find("writer"), std::string::npos);

  graph.MarkExternalReceiver(kQ1);
  EXPECT_EQ(CountRule(graph.Analyze(), SystemRule::kOrphanPort), 0);
}

TEST(DeadlockTest, StarvedPortDetectedAndExternalSenderSuppresses) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("reader", {Receives(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  ASSERT_EQ(CountRule(report, SystemRule::kStarvedPort), 1) << FormatReport(report);
  EXPECT_EQ(report.diagnostics[0].ports[0], kQ1);

  graph.MarkExternalSender(kQ1);
  EXPECT_EQ(CountRule(graph.Analyze(), SystemRule::kStarvedPort), 0);
}

TEST(DeadlockTest, GuardedOnlyReceiverIsNotStarved) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("poller", {Receives(kQ1, /*blocking=*/false)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
}

TEST(DeadlockTest, UnresolvedSendsSuppressStarvationAndCycles) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("a", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  EffectSummary murky = Summary("murky", {});
  murky.has_unresolved_send = true;  // could be feeding any port, including q1/q2
  graph.AddProgram(3, std::move(murky));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
  EXPECT_EQ(report.unresolved_send_programs, 1u);
}

TEST(DeadlockTest, OpaqueProgramSuppressesEverything) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("reader", {Receives(kQ1)}));
  graph.AddProgram(2, Summary("writer", {Sends(kQ2)}));
  EffectSummary daemon = Summary("native-daemon", {});
  daemon.has_native = true;  // C++ body: may touch any port
  graph.AddProgram(3, std::move(daemon));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
  EXPECT_EQ(report.opaque_programs, 1u);
}

TEST(DeadlockTest, RemovingACycleMemberRetiresTheCycle) {
  SystemEffectGraph graph;
  graph.AddProgram(1, Summary("a", {Receives(kQ1), Sends(kQ2)}));
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  ASSERT_EQ(CountRule(graph.Analyze(), SystemRule::kDeadlockCycle), 1);

  // GC reclaims b's segment: the cycle disappears; a's port is now merely starved.
  graph.RemoveProgram(2);
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 0) << FormatReport(report);
  EXPECT_EQ(CountRule(report, SystemRule::kStarvedPort), 1) << FormatReport(report);

  // Re-registering restores it (incremental re-analysis on program registration).
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  EXPECT_EQ(CountRule(graph.Analyze(), SystemRule::kDeadlockCycle), 1);
}

TEST(DeadlockTest, DomainCalleeEffectsComposeIntoCaller) {
  SystemEffectGraph graph;
  // `a` blocks on q1 and sends q2 only through a domain call; `b` completes the ring.
  EffectSummary caller = Summary("a", {Receives(kQ1)});
  DomainCall call;
  call.callee_segment = 50;
  caller.calls.push_back(call);
  graph.AddProgram(1, std::move(caller));
  graph.AddProgram(50, Summary("a-helper", {Sends(kQ2)}), ProgramKind::kDomainEntry);
  graph.AddProgram(2, Summary("b", {Receives(kQ2), Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_EQ(CountRule(report, SystemRule::kDeadlockCycle), 1) << FormatReport(report);
}

TEST(DeadlockTest, UnresolvedDomainCallMakesCallerOpaque) {
  SystemEffectGraph graph;
  EffectSummary caller = Summary("a", {Receives(kQ1)});
  caller.calls.push_back(DomainCall{});  // callee unknown
  graph.AddProgram(1, std::move(caller));
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);  // no starvation claim
  EXPECT_EQ(report.opaque_programs, 1u);
}

TEST(DeadlockTest, UncalledDomainEntryIsNotAnActor) {
  SystemEffectGraph graph;
  // The entry receive-blocks on q1, but no process ever calls it: nothing to report.
  graph.AddProgram(50, Summary("entry", {Receives(kQ1)}), ProgramKind::kDomainEntry);
  SystemAnalysisReport report = graph.Analyze();
  EXPECT_TRUE(report.ok()) << FormatReport(report);
}

TEST(DeadlockTest, SymbolTableNamesPortsInDiagnostics) {
  SymbolTable symbols;
  symbols.Name(kQ1, "requests");
  SystemEffectGraph graph;
  graph.set_symbols(&symbols);
  graph.AddProgram(1, Summary("writer", {Sends(kQ1)}));
  SystemAnalysisReport report = graph.Analyze();
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_NE(report.diagnostics[0].message.find("'requests'"), std::string::npos)
      << report.diagnostics[0].message;
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

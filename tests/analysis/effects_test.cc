#include "src/analysis/effects.h"

#include <gtest/gtest.h>

#include <map>

#include "src/arch/object_table.h"
#include "src/arch/rights.h"
#include "src/isa/assembler.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Fixture world: a tiny synthetic object graph the slot reader answers from, without any
// machine. Object 1 = carrier, objects 10/11/12 = ports, object 20 = domain, 21 = segment.
constexpr ObjectIndex kCarrier = 1;
constexpr ObjectIndex kPortA = 10;
constexpr ObjectIndex kPortB = 11;
constexpr ObjectIndex kPortC = 12;
constexpr ObjectIndex kDomain = 20;
constexpr ObjectIndex kSegment = 21;

AccessDescriptor Ad(ObjectIndex index) { return AccessDescriptor(index, 0, rights::kAll); }

EffectOptions WorldOptions(const SymbolTable* symbols = nullptr) {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.symbols = symbols;
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    static const std::map<std::pair<ObjectIndex, uint32_t>, ObjectIndex> kSlots = {
        {{kCarrier, 0}, kPortA},
        {{kCarrier, 1}, kPortB},
        {{kCarrier, 2}, kPortC},
        {{kDomain, 0}, kSegment},
    };
    auto it = kSlots.find({index, slot});
    return it == kSlots.end() ? AccessDescriptor() : Ad(it->second);
  };
  return options;
}

const PortUse* FindUse(const EffectSummary& summary, PortOp op, ObjectIndex port) {
  for (const PortUse& use : summary.uses) {
    if (use.op == op && use.port == port) return &use;
  }
  return nullptr;
}

TEST(EffectsTest, SendResolvesThroughMoveAndLoadChain) {
  Assembler a("producer");
  a.MoveAd(1, kArgAdReg)  // a1 = carrier
      .LoadAd(2, 1, 0)    // a2 = port A
      .MoveAd(3, 2)       // chase one more move
      .Send(3, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.SendsTo(kPortA));
  EXPECT_FALSE(summary.has_unresolved_send);
  const PortUse* use = FindUse(summary, PortOp::kSend, kPortA);
  ASSERT_NE(use, nullptr);
  EXPECT_TRUE(use->blocking);
  EXPECT_EQ(use->pc, 3u);
}

TEST(EffectsTest, ReceiveResolvesAndIsBlocking) {
  Assembler a("consumer");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 1).Receive(4, 2).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.ReceivesFrom(kPortB));
  const PortUse* use = FindUse(summary, PortOp::kReceive, kPortB);
  ASSERT_NE(use, nullptr);
  EXPECT_TRUE(use->blocking);
}

TEST(EffectsTest, CondVariantsAreGuarded) {
  Assembler a("poller");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .CondSend(2, 1, 0)
      .CondReceive(3, 2, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const PortUse* send = FindUse(summary, PortOp::kSend, kPortA);
  const PortUse* recv = FindUse(summary, PortOp::kReceive, kPortA);
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_FALSE(send->blocking);
  EXPECT_FALSE(recv->blocking);
}

TEST(EffectsTest, UnseededArgumentLeavesUsesUnresolved) {
  Assembler a("orphaned");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Send(2, 1).Receive(3, 2).Halt();
  EffectOptions options = WorldOptions();
  options.initial_arg = AccessDescriptor();  // a7 unknown
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), options);
  EXPECT_TRUE(summary.has_unresolved_send);
  EXPECT_TRUE(summary.has_unresolved_receive);
  EXPECT_NE(FindUse(summary, PortOp::kSend, kUnresolvedPort), nullptr);
  EXPECT_FALSE(summary.SendsTo(kPortA));
}

TEST(EffectsTest, ClearedRegisterRecordsNoUse) {
  Assembler a("cleared");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .ClearAd(2)   // the send below faults at run time; statically it reaches no port
      .Send(2, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.uses.empty());
  EXPECT_FALSE(summary.has_unresolved_send);
}

TEST(EffectsTest, FreshObjectIsNeverAPreexistingPort) {
  Assembler a("fresh");
  a.MoveAd(1, kArgAdReg)
      .CreateObject(2, 1, 32)  // a2 = brand-new object
      .Send(2, 1)              // cannot name any existing port
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.uses.empty());
}

TEST(EffectsTest, NativeStepHavocsResolutionAndFlagsSummary) {
  Assembler a("daemonish");
  a.MoveAd(1, kArgAdReg)
      .Native([](ExecutionContext&) -> Result<NativeResult> { return NativeResult{}; })
      .LoadAd(2, 1, 0)
      .Send(2, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.has_native);
  EXPECT_TRUE(summary.may_not_terminate);
  EXPECT_TRUE(summary.has_unresolved_send);
  EXPECT_FALSE(summary.SendsTo(kPortA));
}

TEST(EffectsTest, LoopSetsMayNotTerminate) {
  Assembler looping("looping");
  auto loop = looping.NewLabel();
  looping.MoveAd(1, kArgAdReg).Bind(loop).Compute(10).Branch(loop);
  EXPECT_TRUE(EffectAnalyzer::Analyze(*looping.Build(), WorldOptions()).may_not_terminate);

  Assembler straight("straight");
  straight.MoveAd(1, kArgAdReg).Compute(10).Halt();
  EXPECT_FALSE(EffectAnalyzer::Analyze(*straight.Build(), WorldOptions()).may_not_terminate);
}

TEST(EffectsTest, MustSendsBeforeAReceiveAreRecorded) {
  Assembler a("request_reply");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)  // request port A
      .LoadAd(3, 1, 1)  // reply port B
      .Send(2, 1)       // request goes out on every path
      .Receive(4, 3)    // then block for the reply
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const PortUse* recv = FindUse(summary, PortOp::kReceive, kPortB);
  ASSERT_NE(recv, nullptr);
  ASSERT_EQ(recv->sends_before.size(), 1u);
  EXPECT_EQ(recv->sends_before[0], kPortA);
}

TEST(EffectsTest, MustSendsIntersectAcrossPaths) {
  Assembler a("branchy");
  auto other = a.NewLabel();
  auto join = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)           // port A
      .LoadAd(3, 1, 1)           // port B
      .BranchIfZero(0, other)
      .Send(2, 1)                // path 1 sends to A only
      .Branch(join)
      .Bind(other)
      .Send(3, 1)                // path 2 sends to B only
      .Bind(join)
      .Receive(4, 2)             // no send is guaranteed here
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const PortUse* recv = FindUse(summary, PortOp::kReceive, kPortA);
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(recv->sends_before.empty());
}

TEST(EffectsTest, JoinUnionsPortCandidates) {
  Assembler a("either");
  auto other = a.NewLabel();
  auto join = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .BranchIfZero(0, other)
      .LoadAd(2, 1, 0)  // port A
      .Branch(join)
      .Bind(other)
      .LoadAd(2, 1, 1)  // port B
      .Bind(join)
      .Send(2, 1)       // may hit either port: both must be recorded
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.SendsTo(kPortA));
  EXPECT_TRUE(summary.SendsTo(kPortB));
  EXPECT_FALSE(summary.has_unresolved_send);
}

TEST(EffectsTest, StoreAdInvalidatesSnapshotResolution) {
  Assembler a("self_mutating");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)   // resolves against the boot snapshot
      .StoreAd(1, 2, 1)  // carrier slot 1 overwritten at run time
      .LoadAd(3, 1, 1)   // must NOT resolve to the stale port B
      .Send(3, 1)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_FALSE(summary.SendsTo(kPortB));
  EXPECT_TRUE(summary.has_unresolved_send);
}

TEST(EffectsTest, DomainCallEntryResolvesToSegment) {
  Assembler a("caller");
  a.MoveAd(1, kArgAdReg)
      .Call(1, 0)  // treat the argument as a domain; entry 0
      .Halt();
  EffectOptions options = WorldOptions();
  options.initial_arg = Ad(kDomain);
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), options);
  ASSERT_EQ(summary.calls.size(), 1u);
  EXPECT_EQ(summary.calls[0].callee_segment, kSegment);
  EXPECT_EQ(summary.calls[0].entry, 0u);
}

TEST(EffectsTest, TimedReceiveIsAGuardedReceiveThroughA7) {
  Assembler a("timed");
  a.LoadAd(7, 7, 0)  // a7 = carrier slot 0 = port A (carrier arrives in a7)
      .LoadImm(7, 1000)
      .OsCall(/*kTimedReceive=*/5)
      .Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  const PortUse* use = FindUse(summary, PortOp::kReceive, kPortA);
  ASSERT_NE(use, nullptr);
  EXPECT_FALSE(use->blocking);  // the timeout fault bounds the wait
  EXPECT_FALSE(summary.has_native);
}

TEST(EffectsTest, UnknownOsServiceIsOpaque) {
  Assembler a("pkg_call");
  a.MoveAd(1, kArgAdReg).OsCall(/*some package service=*/16).LoadAd(2, 1, 0).Send(2, 1).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions());
  EXPECT_TRUE(summary.has_native);
  EXPECT_TRUE(summary.has_unresolved_send);
}

TEST(EffectsTest, DisassemblyIsAnchoredAndNamesThePort) {
  SymbolTable symbols;
  symbols.Name(kPortA, "ring.0");
  Assembler a("named");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Receive(4, 2).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), WorldOptions(&symbols));
  const PortUse* use = FindUse(summary, PortOp::kReceive, kPortA);
  ASSERT_NE(use, nullptr);
  EXPECT_NE(use->disasm.find("0002"), std::string::npos) << use->disasm;
  EXPECT_NE(use->disasm.find("receive"), std::string::npos) << use->disasm;
  EXPECT_NE(use->disasm.find("'ring.0'"), std::string::npos) << use->disasm;
}

TEST(EffectsTest, OptionsForTableChaseRealAccessParts) {
  ObjectTable table(16);
  auto port = table.Allocate(SystemType::kPort, 0, 0, 0, 0, kInvalidObjectIndex, 0);
  auto carrier = table.Allocate(SystemType::kGeneric, 0, 0, 16, 2, kInvalidObjectIndex, 0);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(carrier.ok());
  auto port_ad = table.MintAd(port.value(), rights::kAll);
  auto carrier_ad = table.MintAd(carrier.value(), rights::kAll);
  ASSERT_TRUE(port_ad.ok());
  ASSERT_TRUE(carrier_ad.ok());
  table.At(carrier.value()).access[0] = port_ad.value();

  Assembler a("table_backed");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0).Send(2, 1).Halt();
  EffectSummary summary = EffectAnalyzer::Analyze(
      *a.Build(), EffectOptionsForTable(table, carrier_ad.value()));
  EXPECT_TRUE(summary.SendsTo(port.value()));
}

// --- Bounded AD-set resolution: conditional move chains and domain-call arguments. ---

// A carrier whose first 16 slots all hold distinct ports, for exercising the candidate-set
// bound (the analyzer keeps at most 8 candidates per register before saturating).
EffectOptions WideWorldOptions() {
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    if (index == kCarrier && slot < 16) return Ad(static_cast<ObjectIndex>(100 + slot));
    return AccessDescriptor();
  };
  return options;
}

// Loads slot 0, then threads the register through `diamonds` conditional overwrites, each
// of which may replace it with the next slot's port. At the final merge the register holds
// the union of every path's candidate.
Assembler DiamondChain(uint32_t diamonds) {
  Assembler a("diamonds");
  a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0);
  for (uint32_t i = 1; i <= diamonds; ++i) {
    Assembler::Label skip = a.NewLabel();
    a.BranchIfZero(0, skip).LoadAd(2, 1, i).Bind(skip);
  }
  a.Send(2, 1).Halt();
  return a;
}

TEST(EffectsTest, ConditionalMoveChainUnionsBothCandidates) {
  EffectSummary summary = EffectAnalyzer::Analyze(*DiamondChain(1).Build(), WideWorldOptions());
  EXPECT_TRUE(summary.SendsTo(100));
  EXPECT_TRUE(summary.SendsTo(101));
  EXPECT_FALSE(summary.has_unresolved_send);
}

TEST(EffectsTest, CandidateSetStaysResolvedUpToTheBound) {
  // Seven diamonds leave eight candidates: exactly the cap, still fully resolved.
  EffectSummary summary = EffectAnalyzer::Analyze(*DiamondChain(7).Build(), WideWorldOptions());
  for (ObjectIndex port = 100; port < 108; ++port) {
    EXPECT_TRUE(summary.SendsTo(port)) << "port " << port;
  }
  EXPECT_FALSE(summary.has_unresolved_send);
}

TEST(EffectsTest, CandidateSetBeyondTheBoundSaturatesToUnresolved) {
  // Nine diamonds would need ten candidates: the set saturates and the send degrades to
  // "some port" rather than silently dropping candidates.
  EffectSummary summary = EffectAnalyzer::Analyze(*DiamondChain(9).Build(), WideWorldOptions());
  EXPECT_TRUE(summary.has_unresolved_send);
  for (ObjectIndex port = 100; port < 110; ++port) {
    EXPECT_FALSE(summary.SendsTo(port)) << "port " << port;
  }
}

TEST(EffectsTest, DomainCallHavocsOnlyTheArgumentRegister) {
  // The caller passes a port in a7 (the argument register the callee may overwrite) and
  // keeps another in a2. After the call only a7's resolution is lost.
  Assembler a("caller");
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)        // a2 = port A: survives the call
      .LoadAd(5, 1, 3)        // a5 = the domain
      .LoadAd(kArgAdReg, 1, 1)  // a7 = port B: the call argument, havocked on return
      .Call(5, 0)
      .Send(2, 1)
      .Send(kArgAdReg, 1)
      .Halt();
  EffectOptions options;
  options.initial_arg = Ad(kCarrier);
  options.slot_reader = [](ObjectIndex index, uint32_t slot) -> AccessDescriptor {
    static const std::map<std::pair<ObjectIndex, uint32_t>, ObjectIndex> kSlots = {
        {{kCarrier, 0}, kPortA},
        {{kCarrier, 1}, kPortB},
        {{kCarrier, 3}, kDomain},
        {{kDomain, 0}, kSegment},
    };
    auto it = kSlots.find({index, slot});
    return it == kSlots.end() ? AccessDescriptor() : Ad(it->second);
  };
  EffectSummary summary = EffectAnalyzer::Analyze(*a.Build(), options);
  EXPECT_TRUE(summary.SendsTo(kPortA));
  EXPECT_FALSE(summary.SendsTo(kPortB)) << "a7 must be havocked by the call";
  EXPECT_TRUE(summary.has_unresolved_send);
  // The callee itself is recorded for composition: the call site resolves to the segment.
  ASSERT_EQ(summary.calls.size(), 1u);
  EXPECT_EQ(summary.calls[0].callee_segment, kSegment);
}

}  // namespace
}  // namespace analysis
}  // namespace imax432

#include "src/memory/swapping_memory_manager.h"

#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace imax432 {
namespace {

class SwappingMemoryManagerTest : public ::testing::Test {
 protected:
  SwappingMemoryManagerTest() : machine_(MakeConfig()), manager_(&machine_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 32 * 1024;  // small so eviction triggers quickly
    config.object_table_capacity = 512;
    return config;
  }

  AccessDescriptor MustCreate(uint32_t bytes) {
    auto ad = manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, bytes, 0,
                                    rights::kRead | rights::kWrite | rights::kDelete);
    EXPECT_TRUE(ad.ok()) << FaultName(ad.fault());
    return ad.ok() ? ad.value() : AccessDescriptor();
  }

  Machine machine_;
  SwappingMemoryManager manager_;
};

TEST_F(SwappingMemoryManagerTest, MeetsCommonSpecificationWithoutPressure) {
  // Below memory pressure, behaviour is indistinguishable from the non-swapping manager —
  // "most applications will not be affected by this selection."
  AccessDescriptor ad = MustCreate(1024);
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 8, 0x1234).ok());
  EXPECT_EQ(machine_.addressing().ReadData(ad, 0, 8).value(), 0x1234u);
  EXPECT_EQ(manager_.stats().swap_outs, 0u);
  ASSERT_TRUE(manager_.DestroyObject(ad).ok());
}

TEST_F(SwappingMemoryManagerTest, AllocationBeyondPhysicalMemoryEvicts) {
  // ~32 KB of physical memory; allocate 16 x 8 KB = 128 KB. Must succeed by evicting.
  std::vector<AccessDescriptor> held;
  for (int i = 0; i < 16; ++i) {
    AccessDescriptor ad = MustCreate(8 * 1024);
    ASSERT_FALSE(ad.is_null());
    // Stamp each object with its ordinal.
    ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 4, static_cast<uint64_t>(i)).ok());
    held.push_back(ad);
  }
  EXPECT_GT(manager_.stats().swap_outs, 0u);
}

TEST_F(SwappingMemoryManagerTest, SwappedDataSurvivesRoundTrip) {
  std::vector<AccessDescriptor> held;
  for (int i = 0; i < 16; ++i) {
    AccessDescriptor ad = MustCreate(8 * 1024);
    ASSERT_FALSE(ad.is_null());
    ASSERT_TRUE(machine_.addressing().WriteData(ad, 100, 4, static_cast<uint64_t>(i * 7)).ok());
    held.push_back(ad);
  }
  // Touch every object; swapped ones fault, EnsureResident brings them back, contents intact.
  for (int i = 0; i < 16; ++i) {
    auto read = machine_.addressing().ReadData(held[static_cast<size_t>(i)], 100, 4);
    if (!read.ok()) {
      ASSERT_EQ(read.fault(), Fault::kSegmentSwapped);
      auto cost = manager_.EnsureResident(held[static_cast<size_t>(i)].index());
      ASSERT_TRUE(cost.ok());
      EXPECT_GT(cost.value(), 0u);  // a real transfer was charged
      read = machine_.addressing().ReadData(held[static_cast<size_t>(i)], 100, 4);
    }
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), static_cast<uint64_t>(i * 7));
  }
  EXPECT_GT(manager_.stats().swap_ins, 0u);
}

TEST_F(SwappingMemoryManagerTest, EnsureResidentIsIdempotent) {
  AccessDescriptor ad = MustCreate(64);
  auto first = manager_.EnsureResident(ad.index());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 0u);  // already resident: no cost
}

TEST_F(SwappingMemoryManagerTest, SystemObjectsAreNotEvicted) {
  // Create a port-typed object, then apply pressure; the port must remain resident.
  auto port = manager_.CreateObject(manager_.global_heap(), SystemType::kPort, 64, 4,
                                    rights::kRead | rights::kWrite);
  ASSERT_TRUE(port.ok());
  for (int i = 0; i < 16; ++i) {
    (void)MustCreate(8 * 1024);
  }
  EXPECT_FALSE(machine_.table().At(port.value().index()).swapped_out);
  EXPECT_TRUE(machine_.addressing().ReadData(port.value(), 0, 4).ok());
}

TEST_F(SwappingMemoryManagerTest, DestroyingSwappedObjectReleasesBackingSlot) {
  std::vector<AccessDescriptor> held;
  for (int i = 0; i < 16; ++i) {
    held.push_back(MustCreate(8 * 1024));
  }
  // Find a swapped-out one and destroy it.
  bool destroyed_swapped = false;
  for (const AccessDescriptor& ad : held) {
    if (machine_.table().At(ad.index()).swapped_out) {
      uint32_t slot = machine_.table().At(ad.index()).backing_slot;
      ASSERT_TRUE(manager_.DestroyObject(ad).ok());
      // The slot is free again: fetching it reports not-found.
      EXPECT_EQ(const_cast<BackingStore&>(manager_.backing_store()).FetchIn(slot).fault(),
                Fault::kNotFound);
      destroyed_swapped = true;
      break;
    }
  }
  EXPECT_TRUE(destroyed_swapped);
}

TEST_F(SwappingMemoryManagerTest, TrueExhaustionStillFaults) {
  // Unswappable objects (ports) fill memory; with nothing evictable, allocation must fail.
  std::vector<AccessDescriptor> ports;
  for (;;) {
    auto port = manager_.CreateObject(manager_.global_heap(), SystemType::kPort, 4 * 1024, 0,
                                      rights::kRead);
    if (!port.ok()) {
      EXPECT_EQ(port.fault(), Fault::kStorageExhausted);
      break;
    }
    ports.push_back(port.value());
  }
  ASSERT_FALSE(ports.empty());
}

TEST(BackingStoreTest, StoreFetchRoundTrip) {
  BackingStore store(4);
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  auto slot = store.StoreOut(data);
  ASSERT_TRUE(slot.ok());
  auto back = store.FetchIn(slot.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
  // Fetch frees the slot.
  EXPECT_EQ(store.FetchIn(slot.value()).fault(), Fault::kNotFound);
}

TEST(BackingStoreTest, CapacityExhaustion) {
  BackingStore store(2);
  ASSERT_TRUE(store.StoreOut({1}).ok());
  ASSERT_TRUE(store.StoreOut({2}).ok());
  EXPECT_EQ(store.StoreOut({3}).fault(), Fault::kStorageExhausted);
}

TEST(BackingStoreTest, DiscardFreesWithoutReading) {
  BackingStore store(2);
  auto slot = store.StoreOut({9, 9});
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(store.Discard(slot.value()).ok());
  EXPECT_TRUE(store.StoreOut({1}).ok());
  EXPECT_TRUE(store.StoreOut({2}).ok());
}

TEST(BackingStoreTest, TransferCostScalesWithSize) {
  EXPECT_GT(BackingStore::TransferCost(64 * 1024), BackingStore::TransferCost(1024));
  EXPECT_GE(BackingStore::TransferCost(0), BackingStore::kAccessLatencyCycles);
}

}  // namespace
}  // namespace imax432

#include "src/memory/basic_memory_manager.h"

#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace imax432 {
namespace {

class BasicMemoryManagerTest : public ::testing::Test {
 protected:
  BasicMemoryManagerTest() : machine_(MakeConfig()), manager_(&machine_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 64 * 1024;
    config.object_table_capacity = 1024;
    return config;
  }

  Machine machine_;
  BasicMemoryManager manager_;
};

TEST_F(BasicMemoryManagerTest, BootCreatesGlobalHeap) {
  AccessDescriptor heap = manager_.global_heap();
  ASSERT_FALSE(heap.is_null());
  auto descriptor = machine_.table().Resolve(heap);
  ASSERT_TRUE(descriptor.ok());
  EXPECT_EQ(descriptor.value()->type, SystemType::kStorageResource);
  EXPECT_EQ(descriptor.value()->level, kGlobalLevel);
  EXPECT_TRUE(heap.HasRights(rights::kSroAllocate));
}

TEST_F(BasicMemoryManagerTest, CreateObjectZeroesAndTracks) {
  auto ad = manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 128, 4,
                                  rights::kRead | rights::kWrite);
  ASSERT_TRUE(ad.ok());
  auto descriptor = machine_.table().Resolve(ad.value());
  ASSERT_TRUE(descriptor.ok());
  EXPECT_EQ(descriptor.value()->data_length, 128u);
  EXPECT_EQ(descriptor.value()->access_count(), 4u);
  EXPECT_EQ(descriptor.value()->level, kGlobalLevel);
  // create-object delivers zeroed segments.
  for (uint32_t off = 0; off < 128; off += 8) {
    EXPECT_EQ(machine_.addressing().ReadData(ad.value(), off, 8).value(), 0u);
  }
  EXPECT_EQ(manager_.stats().objects_created, 1u);
}

TEST_F(BasicMemoryManagerTest, CreateRequiresAllocateRights) {
  AccessDescriptor weak = manager_.global_heap().Restricted(rights::kRead);
  EXPECT_EQ(manager_.CreateObject(weak, SystemType::kGeneric, 16, 0, rights::kRead).fault(),
            Fault::kRightsViolation);
}

TEST_F(BasicMemoryManagerTest, CreateFromNonSroFaults) {
  auto plain = manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 16, 0,
                                     rights::kAll);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(
      manager_.CreateObject(plain.value(), SystemType::kGeneric, 16, 0, rights::kRead).fault(),
      Fault::kTypeMismatch);
}

TEST_F(BasicMemoryManagerTest, OversizedCreateFaults) {
  EXPECT_EQ(manager_
                .CreateObject(manager_.global_heap(), SystemType::kGeneric,
                              kMaxDataPartBytes + 1, 0, rights::kRead)
                .fault(),
            Fault::kSegmentTooLarge);
}

TEST_F(BasicMemoryManagerTest, DestroyReturnsStorage) {
  MemoryStats before = manager_.stats();
  auto ad =
      manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 256, 0, rights::kAll);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(manager_.stats().resident_bytes, before.resident_bytes + 256);
  ASSERT_TRUE(manager_.DestroyObject(ad.value()).ok());
  EXPECT_EQ(manager_.stats().resident_bytes, before.resident_bytes);
  // The AD is now stale.
  EXPECT_EQ(machine_.table().Resolve(ad.value()).fault(), Fault::kInvalidAccess);
}

TEST_F(BasicMemoryManagerTest, DestroyRequiresDeleteRight) {
  auto ad =
      manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 16, 0, rights::kRead);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(manager_.DestroyObject(ad.value()).fault(), Fault::kRightsViolation);
}

TEST_F(BasicMemoryManagerTest, ExhaustionFaultsCleanly) {
  // Ask for more than physical memory in one object: capped by the 64K architectural limit,
  // so allocate repeatedly until space runs out.
  std::vector<AccessDescriptor> held;
  for (;;) {
    auto ad = manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 16 * 1024, 0,
                                    rights::kAll);
    if (!ad.ok()) {
      EXPECT_EQ(ad.fault(), Fault::kStorageExhausted);
      break;
    }
    held.push_back(ad.value());
  }
  ASSERT_FALSE(held.empty());
  // Non-swapping manager never produces kSegmentSwapped.
  EXPECT_EQ(manager_.EnsureResident(held[0].index()).value(), 0u);
  // Freeing one object makes the space allocatable again.
  ASSERT_TRUE(manager_.DestroyObject(held[0]).ok());
  EXPECT_TRUE(manager_
                  .CreateObject(manager_.global_heap(), SystemType::kGeneric, 16 * 1024, 0,
                                rights::kAll)
                  .ok());
}

TEST_F(BasicMemoryManagerTest, LocalSroAllocatesAtItsLevel) {
  auto local = manager_.CreateLocalSro(manager_.global_heap(), 4096, /*level=*/3);
  ASSERT_TRUE(local.ok());
  auto ad = manager_.CreateObject(local.value(), SystemType::kGeneric, 64, 2, rights::kAll);
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(machine_.table().Resolve(ad.value()).value()->level, 3u);
}

TEST_F(BasicMemoryManagerTest, LocalSroShallowerThanParentRejected) {
  auto local = manager_.CreateLocalSro(manager_.global_heap(), 4096, /*level=*/2);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(manager_.CreateLocalSro(local.value(), 1024, /*level=*/1).fault(),
            Fault::kInvalidArgument);
}

TEST_F(BasicMemoryManagerTest, DestroySroBulkReclaims) {
  auto local = manager_.CreateLocalSro(manager_.global_heap(), 8192, /*level=*/1);
  ASSERT_TRUE(local.ok());
  std::vector<AccessDescriptor> objects;
  for (int i = 0; i < 10; ++i) {
    auto ad = manager_.CreateObject(local.value(), SystemType::kGeneric, 64, 0, rights::kAll);
    ASSERT_TRUE(ad.ok());
    objects.push_back(ad.value());
  }
  uint32_t live_before = machine_.table().live_count();
  auto reclaimed = manager_.DestroySro(local.value());
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), 10u);
  // 10 objects + the SRO itself are gone.
  EXPECT_EQ(machine_.table().live_count(), live_before - 11);
  for (const AccessDescriptor& ad : objects) {
    EXPECT_EQ(machine_.table().Resolve(ad).fault(), Fault::kInvalidAccess);
  }
  EXPECT_EQ(manager_.stats().bulk_reclaimed_objects, 10u);
}

TEST_F(BasicMemoryManagerTest, DestroySroReclaimsNestedSros) {
  auto outer = manager_.CreateLocalSro(manager_.global_heap(), 16384, /*level=*/1);
  ASSERT_TRUE(outer.ok());
  auto inner = manager_.CreateLocalSro(outer.value(), 4096, /*level=*/2);
  ASSERT_TRUE(inner.ok());
  auto deep_object =
      manager_.CreateObject(inner.value(), SystemType::kGeneric, 64, 0, rights::kAll);
  ASSERT_TRUE(deep_object.ok());

  auto reclaimed = manager_.DestroySro(outer.value());
  ASSERT_TRUE(reclaimed.ok());
  // inner SRO + its object both reclaimed.
  EXPECT_EQ(machine_.table().Resolve(deep_object.value()).fault(), Fault::kInvalidAccess);
  EXPECT_EQ(machine_.table().Resolve(inner.value()).fault(), Fault::kInvalidAccess);
  // All storage returned: a fresh SRO of the same size fits again.
  EXPECT_TRUE(manager_.CreateLocalSro(manager_.global_heap(), 16384, 1).ok());
}

TEST_F(BasicMemoryManagerTest, GlobalHeapCannotBeDestroyed) {
  EXPECT_EQ(manager_.DestroySro(manager_.global_heap()).fault(), Fault::kInvalidArgument);
}

TEST_F(BasicMemoryManagerTest, DestroySroRequiresDestroyRight) {
  auto local = manager_.CreateLocalSro(manager_.global_heap(), 1024, 1);
  ASSERT_TRUE(local.ok());
  AccessDescriptor weak = local.value().Restricted(rights::kRead | rights::kSroAllocate);
  EXPECT_EQ(manager_.DestroySro(weak).fault(), Fault::kRightsViolation);
}

TEST_F(BasicMemoryManagerTest, ExplicitlyDestroyedObjectSkippedInBulkReclaim) {
  auto local = manager_.CreateLocalSro(manager_.global_heap(), 4096, 1);
  ASSERT_TRUE(local.ok());
  auto a = manager_.CreateObject(local.value(), SystemType::kGeneric, 64, 0, rights::kAll);
  auto b = manager_.CreateObject(local.value(), SystemType::kGeneric, 64, 0, rights::kAll);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(manager_.DestroyObject(a.value()).ok());
  auto reclaimed = manager_.DestroySro(local.value());
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), 1u);  // only b remained
}

TEST_F(BasicMemoryManagerTest, SroCountersMirroredIntoDataPart) {
  auto local = manager_.CreateLocalSro(manager_.global_heap(), 4096, 1);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(
      manager_.CreateObject(local.value(), SystemType::kGeneric, 100, 0, rights::kAll).ok());
  // Programs on the machine can read the SRO's architectural counters.
  auto total =
      machine_.addressing().ReadData(local.value(), SroLayout::kOffTotalBytes, 4);
  auto allocated =
      machine_.addressing().ReadData(local.value(), SroLayout::kOffAllocatedBytes, 4);
  auto level = machine_.addressing().ReadData(local.value(), SroLayout::kOffLevel, 2);
  ASSERT_TRUE(total.ok() && allocated.ok() && level.ok());
  EXPECT_EQ(total.value(), 4096u);
  EXPECT_EQ(allocated.value(), 100u);
  EXPECT_EQ(level.value(), 1u);
}

TEST_F(BasicMemoryManagerTest, ReclaimGarbageFreesByIndex) {
  auto ad =
      manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 64, 0, rights::kRead);
  ASSERT_TRUE(ad.ok());
  // The collector needs no rights.
  ASSERT_TRUE(manager_.ReclaimGarbage(ad.value().index()).ok());
  EXPECT_EQ(machine_.table().Resolve(ad.value()).fault(), Fault::kInvalidAccess);
  EXPECT_EQ(manager_.ReclaimGarbage(ad.value().index()).fault(), Fault::kNotAllocated);
}

}  // namespace
}  // namespace imax432

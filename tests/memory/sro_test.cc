#include "src/memory/sro.h"

#include <gtest/gtest.h>

#include "src/base/xorshift.h"

namespace imax432 {
namespace {

TEST(SroTest, FirstFitAllocates) {
  Sro sro(0, 0, 1000, 100, kInvalidObjectIndex);
  auto a = sro.AllocateRange(40);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), 1000u);
  auto b = sro.AllocateRange(40);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 1040u);
  EXPECT_EQ(sro.allocated_bytes(), 80u);
  EXPECT_EQ(sro.free_bytes(), 20u);
}

TEST(SroTest, ExhaustionFaults) {
  Sro sro(0, 0, 0, 64, kInvalidObjectIndex);
  ASSERT_TRUE(sro.AllocateRange(64).ok());
  EXPECT_EQ(sro.AllocateRange(1).fault(), Fault::kStorageExhausted);
}

TEST(SroTest, ZeroByteRequestRoundsToOne) {
  // "a segment of from 1 byte to 128K bytes in length" — a segment is at least a byte.
  Sro sro(0, 0, 0, 4, kInvalidObjectIndex);
  ASSERT_TRUE(sro.AllocateRange(0).ok());
  EXPECT_EQ(sro.allocated_bytes(), 1u);
}

TEST(SroTest, FreeCoalescesWithNeighbors) {
  Sro sro(0, 0, 0, 300, kInvalidObjectIndex);
  auto a = sro.AllocateRange(100);
  auto b = sro.AllocateRange(100);
  auto c = sro.AllocateRange(100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(sro.largest_free_extent(), 0u);

  // Free a and c: two disjoint extents.
  sro.FreeRange(a.value(), 100);
  sro.FreeRange(c.value(), 100);
  EXPECT_EQ(sro.extent_count(), 2u);
  EXPECT_EQ(sro.largest_free_extent(), 100u);

  // Free b: all three must merge into one extent.
  sro.FreeRange(b.value(), 100);
  EXPECT_EQ(sro.extent_count(), 1u);
  EXPECT_EQ(sro.largest_free_extent(), 300u);
  EXPECT_EQ(sro.allocated_bytes(), 0u);
}

TEST(SroTest, FragmentationCanBlockLargeRequests) {
  Sro sro(0, 0, 0, 300, kInvalidObjectIndex);
  auto a = sro.AllocateRange(100);
  auto b = sro.AllocateRange(100);
  auto c = sro.AllocateRange(100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  sro.FreeRange(a.value(), 100);
  sro.FreeRange(c.value(), 100);
  // 200 bytes free, but no extent of 150.
  EXPECT_EQ(sro.free_bytes(), 200u);
  EXPECT_EQ(sro.AllocateRange(150).fault(), Fault::kStorageExhausted);
}

TEST(SroTest, ObjectBookkeeping) {
  Sro sro(0, 2, 0, 100, kInvalidObjectIndex);
  sro.RecordObject(10);
  sro.RecordObject(11);
  sro.RecordObject(12);
  EXPECT_EQ(sro.objects().size(), 3u);
  sro.ForgetObject(11);
  EXPECT_EQ(sro.objects().size(), 2u);
  // Forgetting an unknown index is a no-op.
  sro.ForgetObject(99);
  EXPECT_EQ(sro.objects().size(), 2u);
  auto taken = sro.TakeObjects();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(sro.objects().empty());
}

// Property test: random allocate/free sequences preserve the accounting invariant
// allocated + sum(free extents) == region size, and coalescing keeps extents disjoint+sorted.
TEST(SroTest, PropertyRandomAllocFreeConservesBytes) {
  Xorshift rng(2024);
  Sro sro(0, 0, 10000, 8192, kInvalidObjectIndex);
  std::vector<std::pair<PhysAddr, uint32_t>> live;

  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextChance(3, 5)) {
      uint32_t bytes = static_cast<uint32_t>(rng.NextInRange(1, 256));
      auto base = sro.AllocateRange(bytes);
      if (base.ok()) {
        live.emplace_back(base.value(), bytes);
      }
    } else {
      size_t pick = rng.NextBelow(live.size());
      sro.FreeRange(live[pick].first, live[pick].second);
      live[pick] = live.back();
      live.pop_back();
    }
    uint64_t live_bytes = 0;
    for (const auto& [base, len] : live) {
      live_bytes += len;
    }
    ASSERT_EQ(sro.allocated_bytes(), live_bytes);
    ASSERT_EQ(sro.free_bytes(), 8192 - live_bytes);
  }

  // Release everything: one extent must remain.
  for (const auto& [base, len] : live) {
    sro.FreeRange(base, len);
  }
  EXPECT_EQ(sro.extent_count(), 1u);
  EXPECT_EQ(sro.largest_free_extent(), 8192u);
}

}  // namespace
}  // namespace imax432

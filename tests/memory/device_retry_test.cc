// Backing-store failure injection and the swap layer's retry-with-backoff recovery:
// transient failures are absorbed within the retry budget, permanent ones surface
// kDeviceError after it, and the backoff cycles are charged to the process that eventually
// takes the transfer.

#include <gtest/gtest.h>

#include "src/memory/swapping_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class DeviceRetryTest : public ::testing::Test {
 protected:
  DeviceRetryTest() : machine_(MakeConfig()), manager_(&machine_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 32 * 1024;  // small so eviction triggers quickly
    config.object_table_capacity = 512;
    return config;
  }

  AccessDescriptor MustCreate(uint32_t bytes) {
    auto ad = manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, bytes, 0,
                                    rights::kRead | rights::kWrite | rights::kDelete);
    EXPECT_TRUE(ad.ok()) << FaultName(ad.fault());
    return ad.ok() ? ad.value() : AccessDescriptor();
  }

  Machine machine_;
  SwappingMemoryManager manager_;
};

TEST_F(DeviceRetryTest, TransientFailuresAreAbsorbedByRetries) {
  manager_.mutable_backing_store().InjectTransientFailures(2);
  // 6 x 8 KB through 32 KB of memory: eviction must run, and its first store-outs hit the
  // injected failures. Allocation still succeeds — the retries absorb the fault.
  for (int i = 0; i < 6; ++i) {
    ASSERT_FALSE(MustCreate(8 * 1024).is_null());
  }
  EXPECT_GT(manager_.stats().swap_outs, 0u);
  EXPECT_GE(manager_.stats().device_retries, 2u);
  EXPECT_EQ(manager_.stats().device_errors, 0u);
  EXPECT_EQ(manager_.backing_store().failed_transfers(), 2u);
}

TEST_F(DeviceRetryTest, PermanentFailureExhaustsBudgetAndSurfacesDeviceError) {
  // Fill memory with swappable objects, then kill the device: the next allocation needs an
  // eviction, every transfer attempt fails, and after the retry budget the caller sees
  // kDeviceError — distinct from plain kStorageExhausted.
  std::vector<AccessDescriptor> held;
  for (int i = 0; i < 3; ++i) {
    held.push_back(MustCreate(8 * 1024));
  }
  manager_.mutable_backing_store().SetPermanentFailure(true);
  auto blocked = manager_.CreateObject(manager_.global_heap(), SystemType::kGeneric, 16 * 1024,
                                       0, rights::kRead);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.fault(), Fault::kDeviceError);
  EXPECT_GE(manager_.stats().device_retries, SwappingMemoryManager::kMaxDeviceRetries);
  EXPECT_GE(manager_.stats().device_errors, 1u);

  // The injector's heal event flips the device back; the same allocation now succeeds.
  manager_.mutable_backing_store().SetPermanentFailure(false);
  EXPECT_TRUE(manager_
                  .CreateObject(manager_.global_heap(), SystemType::kGeneric, 16 * 1024, 0,
                                rights::kRead)
                  .ok());
}

TEST_F(DeviceRetryTest, RetryBackoffIsChargedToTheFaultingTransfer) {
  std::vector<AccessDescriptor> held;
  for (int i = 0; i < 16; ++i) {
    held.push_back(MustCreate(8 * 1024));
  }
  ASSERT_GT(manager_.stats().swap_outs, 0u);
  ObjectIndex swapped = 0;
  bool found_swapped = false;
  // Free enough resident space that EnsureResident will not need to evict (an eviction's
  // store-out would consume the injected failure instead of the fetch under test).
  int destroyed = 0;
  for (const AccessDescriptor& ad : held) {
    const ObjectDescriptor& descriptor = machine_.table().At(ad.index());
    if (descriptor.swapped_out) {
      if (!found_swapped) {
        swapped = ad.index();
        found_swapped = true;
      }
    } else if (destroyed < 2) {
      ASSERT_TRUE(manager_.DestroyObject(ad).ok());
      ++destroyed;
    }
  }
  ASSERT_TRUE(found_swapped);
  ASSERT_EQ(destroyed, 2);

  const uint32_t length = machine_.table().At(swapped).data_length;
  manager_.mutable_backing_store().InjectTransientFailures(1);
  auto cost = manager_.EnsureResident(swapped);
  ASSERT_TRUE(cost.ok());
  // One failed attempt: the first backoff step (kAccessLatencyCycles << 0) rides on top of
  // the ordinary transfer cost.
  EXPECT_GE(cost.value(),
            BackingStore::TransferCost(length) + BackingStore::kAccessLatencyCycles);
  EXPECT_GE(manager_.stats().device_retries, 1u);
  EXPECT_EQ(manager_.stats().device_errors, 0u);
  EXPECT_FALSE(machine_.table().At(swapped).swapped_out);
}

TEST_F(DeviceRetryTest, PeakUsedTracksTheHighWaterMark) {
  std::vector<AccessDescriptor> held;
  for (int i = 0; i < 16; ++i) {
    held.push_back(MustCreate(8 * 1024));
  }
  uint32_t peak = manager_.backing_store().peak_used();
  uint32_t used = manager_.backing_store().used();
  ASSERT_GT(peak, 0u);
  EXPECT_GE(peak, used);
  // Bring one object back. Re-residence may itself evict (a store-out lands before the
  // fetch frees its slot), so the mark may climb — but it never falls below used.
  for (const AccessDescriptor& ad : held) {
    if (machine_.table().At(ad.index()).swapped_out) {
      ASSERT_TRUE(manager_.EnsureResident(ad.index()).ok());
      break;
    }
  }
  EXPECT_GE(manager_.backing_store().peak_used(), peak);
  EXPECT_GE(manager_.backing_store().peak_used(), manager_.backing_store().used());
  EXPECT_EQ(manager_.stats().backing_peak_used, manager_.backing_store().peak_used());
}

TEST(BackingStoreFaultTest, TransientFailuresDecrementPerTransfer) {
  BackingStore store(8);
  store.InjectTransientFailures(2);
  EXPECT_EQ(store.StoreOut({1}).fault(), Fault::kDeviceError);
  EXPECT_EQ(store.StoreOut({1}).fault(), Fault::kDeviceError);
  EXPECT_TRUE(store.StoreOut({1}).ok());  // injected count exhausted: device healthy again
  EXPECT_EQ(store.failed_transfers(), 2u);
}

TEST(BackingStoreFaultTest, PermanentFailureBlocksTransfersButNotDiscard) {
  BackingStore store(8);
  auto slot = store.StoreOut({7, 7});
  ASSERT_TRUE(slot.ok());
  store.SetPermanentFailure(true);
  EXPECT_EQ(store.StoreOut({1}).fault(), Fault::kDeviceError);
  EXPECT_EQ(store.FetchIn(slot.value()).fault(), Fault::kDeviceError);
  // Discard is bookkeeping, not a media transfer: reclamation cannot fail.
  EXPECT_TRUE(store.Discard(slot.value()).ok());
  store.SetPermanentFailure(false);
  EXPECT_TRUE(store.StoreOut({2}).ok());
}

TEST(BackingStoreFaultTest, FreeListHandsOutAscendingThenReusesFreedSlots) {
  BackingStore store(4);
  EXPECT_EQ(store.StoreOut({0}).value(), 0u);
  EXPECT_EQ(store.StoreOut({1}).value(), 1u);
  EXPECT_EQ(store.StoreOut({2}).value(), 2u);
  ASSERT_TRUE(store.FetchIn(1).ok());
  // The freed slot is recycled before untouched capacity (LIFO free list).
  EXPECT_EQ(store.StoreOut({3}).value(), 1u);
  EXPECT_EQ(store.peak_used(), 3u);
}

}  // namespace
}  // namespace imax432

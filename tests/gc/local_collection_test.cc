#include <gtest/gtest.h>

#include "src/gc/collector.h"
#include "src/memory/basic_memory_manager.h"
#include "src/os/type_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class LocalCollectionTest : public ::testing::Test {
 protected:
  LocalCollectionTest()
      : machine_(MakeConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        gc_(&kernel_),
        types_(&kernel_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 1024 * 1024;
    config.object_table_capacity = 4096;
    return config;
  }

  bool Alive(const AccessDescriptor& ad) { return machine_.table().Resolve(ad).ok(); }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  GarbageCollector gc_;
  TypeManagerFacility types_;
};

TEST_F(LocalCollectionTest, CollectsGarbageInsideTheHeapOnly) {
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 64 * 1024, 1);
  ASSERT_TRUE(local.ok());
  // Population: one externally-referenced object, one garbage object.
  auto kept = memory_.CreateObject(local.value(), SystemType::kGeneric, 64, 2, rights::kAll);
  auto dead = memory_.CreateObject(local.value(), SystemType::kGeneric, 64, 2, rights::kAll);
  ASSERT_TRUE(kept.ok() && dead.ok());
  // Global garbage that a *local* collection must NOT touch.
  auto global_garbage =
      memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64, 0, rights::kAll);
  ASSERT_TRUE(global_garbage.ok());

  kernel_.AddRootProvider([ad = kept.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });

  auto stats = gc_.CollectLocalNow(local.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(Alive(kept.value()));
  EXPECT_FALSE(Alive(dead.value()));
  EXPECT_TRUE(Alive(global_garbage.value()));  // out of scope for the local pass
  EXPECT_EQ(stats.value().objects_reclaimed, 1u);
}

TEST_F(LocalCollectionTest, ExternalReferencesFromDeeperObjectsAreSeen) {
  // A deeper-level container referencing into the population keeps the member alive. (The
  // level rule permits deeper -> shallower references; the local pass must scan them.)
  auto heap1 = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 1);
  auto heap2 = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 2);
  ASSERT_TRUE(heap1.ok() && heap2.ok());
  auto member = memory_.CreateObject(heap1.value(), SystemType::kGeneric, 32, 0, rights::kAll);
  auto deep_container =
      memory_.CreateObject(heap2.value(), SystemType::kGeneric, 32, 2, rights::kAll);
  ASSERT_TRUE(member.ok() && deep_container.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(deep_container.value(), 0, member.value()).ok());
  kernel_.AddRootProvider([ad = deep_container.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });

  auto stats = gc_.CollectLocalNow(heap1.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(Alive(member.value()));
}

TEST_F(LocalCollectionTest, InternalCyclesCollected) {
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 1);
  ASSERT_TRUE(local.ok());
  auto x = memory_.CreateObject(local.value(), SystemType::kGeneric, 16, 2, rights::kAll);
  auto y = memory_.CreateObject(local.value(), SystemType::kGeneric, 16, 2, rights::kAll);
  ASSERT_TRUE(x.ok() && y.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(x.value(), 0, y.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(y.value(), 0, x.value()).ok());

  auto stats = gc_.CollectLocalNow(local.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(Alive(x.value()));
  EXPECT_FALSE(Alive(y.value()));
  EXPECT_EQ(stats.value().objects_reclaimed, 2u);
}

TEST_F(LocalCollectionTest, InternalChainFromExternalRootSurvives) {
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 1);
  ASSERT_TRUE(local.ok());
  auto a = memory_.CreateObject(local.value(), SystemType::kGeneric, 16, 2, rights::kAll);
  auto b = memory_.CreateObject(local.value(), SystemType::kGeneric, 16, 2, rights::kAll);
  auto c = memory_.CreateObject(local.value(), SystemType::kGeneric, 16, 2, rights::kAll);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(a.value(), 0, b.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(b.value(), 0, c.value()).ok());
  kernel_.AddRootProvider([ad = a.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });
  auto stats = gc_.CollectLocalNow(local.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(Alive(a.value()));
  EXPECT_TRUE(Alive(b.value()));
  EXPECT_TRUE(Alive(c.value()));
  EXPECT_EQ(stats.value().objects_reclaimed, 0u);
}

TEST_F(LocalCollectionTest, DestructionFiltersApplyLocally) {
  // The filter port must live at (at least) the level of the objects it recovers: a dying
  // level-1 object cannot be enqueued at a level-0 port — the same level rule that governs
  // every port message. So the manager puts the filter port in the local heap.
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 1);
  ASSERT_TRUE(local.ok());
  auto filter_port = kernel_.ports().CreatePort(local.value(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(filter_port.ok());
  auto tdo = types_.CreateTypeDefinition(21, filter_port.value());
  ASSERT_TRUE(tdo.ok());
  kernel_.AddRootProvider([tdo = tdo.value(), port = filter_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(port);
  });
  auto typed = types_.CreateTypedObject(tdo.value(), local.value(), 32, 0, rights::kRead);
  ASSERT_TRUE(typed.ok());

  auto stats = gc_.CollectLocalNow(local.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().objects_finalized, 1u);
  EXPECT_TRUE(Alive(typed.value()));  // diverted to the filter, not freed
  EXPECT_TRUE(kernel_.ports().Dequeue(filter_port.value()).ok());
}

TEST_F(LocalCollectionTest, GlobalFilterPortCannotRecoverLocalObjects) {
  // The inverse of the above, as a documented property: with the filter port at level 0,
  // delivery of a dying level-1 object fails the level rule; the object survives the cycle
  // (filter_send_failures) rather than being freed behind the manager's back.
  auto filter_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(filter_port.ok());
  auto tdo = types_.CreateTypeDefinition(22, filter_port.value());
  ASSERT_TRUE(tdo.ok());
  kernel_.AddRootProvider([tdo = tdo.value(), port = filter_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(port);
  });
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 1);
  ASSERT_TRUE(local.ok());
  auto typed = types_.CreateTypedObject(tdo.value(), local.value(), 32, 0, rights::kRead);
  ASSERT_TRUE(typed.ok());

  auto stats = gc_.CollectLocalNow(local.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().objects_finalized, 0u);
  EXPECT_EQ(stats.value().filter_send_failures, 1u);
  EXPECT_TRUE(Alive(typed.value()));
}

TEST_F(LocalCollectionTest, RejectedDuringGlobalCycle) {
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 16 * 1024, 1);
  ASSERT_TRUE(local.ok());
  gc_.BeginCycle();
  gc_.Step(8);  // mid-cycle
  EXPECT_EQ(gc_.CollectLocalNow(local.value()).fault(), Fault::kWrongState);
  while (gc_.Step(1u << 20)) {
  }
}

TEST_F(LocalCollectionTest, RejectsNonSro) {
  auto plain =
      memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0, rights::kAll);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(gc_.CollectLocalNow(plain.value()).fault(), Fault::kTypeMismatch);
}

TEST_F(LocalCollectionTest, LocalPassScansFewerSlotsThanGlobal) {
  // The worthwhileness data: a big live global population, a small dirty local heap. The
  // local pass scans external slots once but never *traces* the global graph.
  std::vector<AccessDescriptor> keep;
  for (int i = 0; i < 300; ++i) {
    auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32, 4,
                                       rights::kAll);
    ASSERT_TRUE(object.ok());
    if (!keep.empty()) {
      ASSERT_TRUE(machine_.addressing().WriteAd(object.value(), 0, keep.back()).ok());
    }
    keep.push_back(object.value());
  }
  kernel_.AddRootProvider([&keep](std::vector<AccessDescriptor>* roots) {
    roots->push_back(keep.back());
  });
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 32 * 1024, 1);
  ASSERT_TRUE(local.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        memory_.CreateObject(local.value(), SystemType::kGeneric, 32, 0, rights::kAll).ok());
  }

  auto local_stats = gc_.CollectLocalNow(local.value());
  ASSERT_TRUE(local_stats.ok());
  EXPECT_EQ(local_stats.value().objects_reclaimed, 20u);
  // No global object was traced (scanned == population members marked, all zero here since
  // nothing references the members).
  EXPECT_EQ(local_stats.value().objects_scanned, 0u);
  // The global chain is untouched.
  for (const AccessDescriptor& ad : keep) {
    EXPECT_TRUE(machine_.table().Resolve(ad).ok());
  }
}

}  // namespace
}  // namespace imax432

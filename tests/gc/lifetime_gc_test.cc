// GC-exemption semantics for demoted objects: the collector never whitens, marks, or
// sweeps a gc_exempt descriptor; its outgoing slots are pseudo-roots; the mutator gray bit
// composes with permanently-black objects; local collection excludes them from the
// population; reclamation happens only through the demote SRO's bulk destroy.

#include <gtest/gtest.h>

#include "src/gc/collector.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig GcConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class LifetimeGcTest : public ::testing::Test {
 protected:
  LifetimeGcTest()
      : machine_(GcConfig()), memory_(&machine_), kernel_(&machine_, &memory_), gc_(&kernel_) {}

  AccessDescriptor NewObject(uint32_t access_slots = 2) {
    auto ad = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32,
                                   access_slots, rights::kAll);
    EXPECT_TRUE(ad.ok());
    return ad.value();
  }

  // Host-side stand-in for the kernel's demotion path: the object is allocated from `sro`
  // and flipped to exempt + black, exactly as Kernel::Execute does at a demoted site.
  AccessDescriptor NewDemoted(const AccessDescriptor& sro, uint32_t access_slots = 2) {
    auto ad = memory_.CreateObject(sro, SystemType::kGeneric, 32, access_slots, rights::kAll);
    EXPECT_TRUE(ad.ok());
    ObjectDescriptor& descriptor = machine_.table().At(ad.value().index());
    descriptor.gc_exempt = true;
    descriptor.color = GcColor::kBlack;
    return ad.value();
  }

  AccessDescriptor NewSro() {
    auto sro = memory_.CreateLocalSro(memory_.global_heap(), 16 * 1024, 1);
    EXPECT_TRUE(sro.ok());
    return sro.value();
  }

  bool Alive(const AccessDescriptor& ad) { return machine_.table().Resolve(ad).ok(); }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  GarbageCollector gc_;
};

TEST_F(LifetimeGcTest, ExemptObjectSurvivesACycleWithNoReferences) {
  AccessDescriptor sro = NewSro();
  AccessDescriptor demoted = NewDemoted(sro);
  AccessDescriptor garbage = NewObject();
  GcStats stats = gc_.CollectNow();
  EXPECT_TRUE(Alive(demoted));
  EXPECT_FALSE(Alive(garbage));  // the cycle did real work
  EXPECT_GE(stats.exempt_objects_skipped, 1u);
  // Permanently black: the whiten phase held the color.
  EXPECT_EQ(machine_.table().At(demoted.index()).color, GcColor::kBlack);
  EXPECT_TRUE(machine_.table().At(demoted.index()).gc_exempt);
}

TEST_F(LifetimeGcTest, ExemptObjectsSlotsArePseudoRoots) {
  // referent is reachable only through the demoted object; it must survive every cycle the
  // demote SRO survives.
  AccessDescriptor sro = NewSro();
  AccessDescriptor demoted = NewDemoted(sro);
  AccessDescriptor referent = NewObject();
  ASSERT_TRUE(machine_.addressing().WriteAdPrivileged(demoted, 0, referent).ok());
  gc_.CollectNow();
  EXPECT_TRUE(Alive(demoted));
  EXPECT_TRUE(Alive(referent));
}

TEST_F(LifetimeGcTest, GrayBitComposesWithExemptObjectsMidMark) {
  AccessDescriptor sro = NewSro();
  AccessDescriptor demoted = NewDemoted(sro);
  AccessDescriptor holder = NewObject();
  kernel_.AddRootProvider(
      [holder](std::vector<AccessDescriptor>* roots) { roots->push_back(holder); });

  gc_.BeginCycle();
  // Whiten consumes exactly one unit per table entry, so this stops right at mark entry.
  ASSERT_TRUE(gc_.Step(machine_.table().capacity()));

  // Mutator moves mid-mark, both directions across the exempt boundary. Storing the
  // demoted object's AD shades it — a no-op on permanently-black descriptors. Storing a
  // fresh white object into the demoted object shades the referent gray (the hardware gray
  // bit fires on every AD store, demoted target or not). Both stores use the privileged
  // path: the level storing rule forbids a level-0 holder from keeping a level-1 AD, which
  // is exactly why only kernel code (and the auditor behind it) crosses this boundary.
  ASSERT_TRUE(machine_.addressing().WriteAdPrivileged(holder, 0, demoted).ok());
  AccessDescriptor late = NewObject();
  ASSERT_TRUE(machine_.addressing().WriteAdPrivileged(demoted, 1, late).ok());
  EXPECT_EQ(machine_.table().At(demoted.index()).color, GcColor::kBlack);

  while (gc_.Step(1u << 16)) {
  }
  EXPECT_TRUE(Alive(demoted));
  EXPECT_TRUE(Alive(holder));
  EXPECT_TRUE(Alive(late));
}

TEST_F(LifetimeGcTest, ExemptCounterTalliesEachCycle) {
  AccessDescriptor sro = NewSro();
  NewDemoted(sro);
  NewDemoted(sro);
  gc_.CollectNow();
  EXPECT_EQ(gc_.stats().exempt_objects_skipped, 2u);
  gc_.CollectNow();
  EXPECT_EQ(gc_.stats().exempt_objects_skipped, 4u);
}

TEST_F(LifetimeGcTest, LocalCollectionExcludesExemptObjects) {
  AccessDescriptor sro = NewSro();
  AccessDescriptor demoted = NewDemoted(sro);
  auto plain = memory_.CreateObject(sro, SystemType::kGeneric, 32, 0, rights::kAll);
  ASSERT_TRUE(plain.ok());
  auto stats = gc_.CollectLocalNow(sro);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(Alive(plain.value()));  // unreferenced population member: collected
  EXPECT_TRUE(Alive(demoted));         // exempt: outside the population entirely
  EXPECT_EQ(stats.value().objects_reclaimed, 1u);
}

TEST_F(LifetimeGcTest, BulkDestroyIsTheOnlyReclamationPath) {
  AccessDescriptor sro = NewSro();
  AccessDescriptor demoted = NewDemoted(sro);
  gc_.CollectNow();
  ASSERT_TRUE(Alive(demoted));
  auto reclaimed = memory_.DestroySro(sro);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GE(reclaimed.value(), 1u);
  EXPECT_FALSE(Alive(demoted));
}

TEST_F(LifetimeGcTest, ReusedTableSlotDoesNotInheritExemptionOrFinalization) {
  // Regression: ObjectTable::Allocate must reset gc_exempt (and finalized) or a reused
  // slot would be invisible to the collector (or skip its destruction filter) forever.
  ObjectTable table(4);
  auto first = table.Allocate(SystemType::kGeneric, 1, 0, 0, 0, kInvalidObjectIndex, 0);
  ASSERT_TRUE(first.ok());
  table.At(first.value()).gc_exempt = true;
  table.At(first.value()).finalized = true;
  ASSERT_TRUE(table.Free(first.value()).ok());
  auto second = table.Allocate(SystemType::kGeneric, 1, 0, 0, 0, kInvalidObjectIndex, 0);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value(), first.value());  // the slot really is reused
  EXPECT_FALSE(table.At(second.value()).gc_exempt);
  EXPECT_FALSE(table.At(second.value()).finalized);
}

}  // namespace
}  // namespace imax432

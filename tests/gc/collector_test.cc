#include "src/gc/collector.h"

#include <gtest/gtest.h>

#include "src/base/xorshift.h"
#include "src/memory/basic_memory_manager.h"
#include "src/os/type_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig GcConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 8192;
  return config;
}

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest()
      : machine_(GcConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        gc_(&kernel_),
        types_(&kernel_) {}

  AccessDescriptor NewObject(uint32_t access_slots = 2) {
    auto ad = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32,
                                   access_slots, rights::kAll);
    EXPECT_TRUE(ad.ok());
    return ad.value();
  }

  bool Alive(const AccessDescriptor& ad) { return machine_.table().Resolve(ad).ok(); }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  GarbageCollector gc_;
  TypeManagerFacility types_;
};

TEST_F(CollectorTest, UnreferencedObjectIsCollected) {
  AccessDescriptor garbage = NewObject();
  ASSERT_TRUE(Alive(garbage));
  GcStats stats = gc_.CollectNow();
  EXPECT_FALSE(Alive(garbage));
  EXPECT_GE(stats.objects_reclaimed, 1u);
}

TEST_F(CollectorTest, RootReachableObjectSurvives) {
  // Store the object into the default dispatch port's... no: use a root provider.
  AccessDescriptor kept = NewObject();
  kernel_.AddRootProvider(
      [kept](std::vector<AccessDescriptor>* roots) { roots->push_back(kept); });
  gc_.CollectNow();
  EXPECT_TRUE(Alive(kept));
}

TEST_F(CollectorTest, TransitiveReachabilitySurvives) {
  // root -> a -> b -> c chain; all must survive, an unlinked d must not.
  AccessDescriptor a = NewObject();
  AccessDescriptor b = NewObject();
  AccessDescriptor c = NewObject();
  AccessDescriptor d = NewObject();
  ASSERT_TRUE(machine_.addressing().WriteAd(a, 0, b).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(b, 0, c).ok());
  kernel_.AddRootProvider([a](std::vector<AccessDescriptor>* roots) { roots->push_back(a); });
  gc_.CollectNow();
  EXPECT_TRUE(Alive(a));
  EXPECT_TRUE(Alive(b));
  EXPECT_TRUE(Alive(c));
  EXPECT_FALSE(Alive(d));
}

TEST_F(CollectorTest, CyclesAreCollected) {
  // Reference-count-defeating cycle: x <-> y, unreachable from any root.
  AccessDescriptor x = NewObject();
  AccessDescriptor y = NewObject();
  ASSERT_TRUE(machine_.addressing().WriteAd(x, 0, y).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(y, 0, x).ok());
  gc_.CollectNow();
  EXPECT_FALSE(Alive(x));
  EXPECT_FALSE(Alive(y));
}

TEST_F(CollectorTest, RepeatedCyclesStable) {
  AccessDescriptor kept = NewObject();
  kernel_.AddRootProvider(
      [kept](std::vector<AccessDescriptor>* roots) { roots->push_back(kept); });
  gc_.CollectNow();
  uint32_t live_after_first = machine_.table().live_count();
  gc_.CollectNow();
  gc_.CollectNow();
  EXPECT_EQ(machine_.table().live_count(), live_after_first);
  EXPECT_TRUE(Alive(kept));
}

TEST_F(CollectorTest, OriginSroSurvivesWhileItsObjectsLive) {
  // An object allocated from a local SRO is reachable; the SRO itself has no direct
  // references, but must survive (reclaiming it would destroy the live object).
  auto sro = memory_.CreateLocalSro(memory_.global_heap(), 16 * 1024, 1);
  ASSERT_TRUE(sro.ok());
  auto object = memory_.CreateObject(sro.value(), SystemType::kGeneric, 64, 0, rights::kAll);
  ASSERT_TRUE(object.ok());
  AccessDescriptor holder = NewObject();
  // holder(level 0) cannot reference a level-1 object; use a level-1 holder via root.
  kernel_.AddRootProvider([ad = object.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });
  GcStats stats = gc_.CollectNow();
  EXPECT_TRUE(Alive(object.value()));
  EXPECT_TRUE(Alive(sro.value()));
  EXPECT_GE(stats.sros_kept_live, 1u);
  (void)holder;
}

TEST_F(CollectorTest, GarbageSroCascades) {
  // An unreachable local SRO with unreachable objects: everything reclaimed in one sweep.
  auto sro = memory_.CreateLocalSro(memory_.global_heap(), 16 * 1024, 1);
  ASSERT_TRUE(sro.ok());
  std::vector<AccessDescriptor> objects;
  for (int i = 0; i < 5; ++i) {
    auto object = memory_.CreateObject(sro.value(), SystemType::kGeneric, 64, 0, rights::kAll);
    ASSERT_TRUE(object.ok());
    objects.push_back(object.value());
  }
  gc_.CollectNow();
  EXPECT_FALSE(Alive(sro.value()));
  for (const AccessDescriptor& object : objects) {
    EXPECT_FALSE(Alive(object));
  }
}

TEST_F(CollectorTest, MutatorStoreDuringMarkPreservesObject) {
  // The on-the-fly property: an object moved into an already-scanned container mid-mark is
  // shaded by the hardware gray bit and survives.
  AccessDescriptor container = NewObject();
  kernel_.AddRootProvider(
      [container](std::vector<AccessDescriptor>* roots) { roots->push_back(container); });

  gc_.BeginCycle();
  // Run the whiten phase and the root-shading plus a bit of marking.
  gc_.Step(machine_.table().capacity() + 2);
  // Mutator now creates an object and stores it into the (likely already-black) container.
  AccessDescriptor late = NewObject();
  ASSERT_TRUE(machine_.addressing().WriteAd(container, 0, late).ok());
  while (gc_.Step(64)) {
  }
  EXPECT_TRUE(Alive(container));
  EXPECT_TRUE(Alive(late));
}

TEST_F(CollectorTest, DestructionFilterReceivesDyingTypedObject) {
  auto filter_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 8, QueueDiscipline::kFifo);
  ASSERT_TRUE(filter_port.ok());
  auto tdo = types_.CreateTypeDefinition(/*type_id=*/0x7a9e, filter_port.value());
  ASSERT_TRUE(tdo.ok());
  kernel_.AddRootProvider([tdo = tdo.value(), filter_port = filter_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(filter_port);
  });

  auto object = types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 64, 0,
                                         rights::kRead);
  ASSERT_TRUE(object.ok());
  // Drop all references (the test-held AD is not a root) and collect.
  GcStats stats = gc_.CollectNow();

  // The object was NOT freed: it was sent to the filter port instead.
  EXPECT_TRUE(Alive(object.value()));
  EXPECT_EQ(stats.objects_finalized, 1u);
  auto delivered = kernel_.ports().Dequeue(filter_port.value());
  ASSERT_TRUE(delivered.ok());
  EXPECT_TRUE(delivered.value().SameObject(object.value()));
  // The manufactured AD carries full rights so the type manager can disassemble it.
  EXPECT_TRUE(delivered.value().HasRights(rights::kAll));
  EXPECT_EQ(types_.FinalizedCount(tdo.value()).value(), 1u);
}

TEST_F(CollectorTest, FinalizedObjectCollectedSilentlyNextCycle) {
  auto filter_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 8, QueueDiscipline::kFifo);
  ASSERT_TRUE(filter_port.ok());
  auto tdo = types_.CreateTypeDefinition(1, filter_port.value());
  ASSERT_TRUE(tdo.ok());
  kernel_.AddRootProvider([tdo = tdo.value(), filter_port = filter_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(filter_port);
  });
  auto object =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 64, 0, rights::kRead);
  ASSERT_TRUE(object.ok());

  // Cycle 1: delivered to the filter.
  gc_.CollectNow();
  ASSERT_TRUE(Alive(object.value()));
  // The type manager drains the port (sees the dying drive) and drops the AD.
  ASSERT_TRUE(kernel_.ports().Dequeue(filter_port.value()).ok());
  // Cycle 2: the already-finalized object is reclaimed for real.
  GcStats second = gc_.CollectNow();
  EXPECT_FALSE(Alive(object.value()));
  EXPECT_EQ(second.objects_finalized, 0u);
}

TEST_F(CollectorTest, TypeManagerCanResurrectFromFilter) {
  // The tape-library story: the manager keeps the recovered drive, so it stays alive.
  auto filter_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 8, QueueDiscipline::kFifo);
  ASSERT_TRUE(filter_port.ok());
  auto tdo = types_.CreateTypeDefinition(2, filter_port.value());
  ASSERT_TRUE(tdo.ok());
  std::vector<AccessDescriptor> recovered;
  kernel_.AddRootProvider([&, tdo = tdo.value(), filter_port = filter_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(filter_port);
    for (const AccessDescriptor& ad : recovered) {
      roots->push_back(ad);
    }
  });
  auto object =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 64, 0, rights::kRead);
  ASSERT_TRUE(object.ok());

  gc_.CollectNow();
  auto delivered = kernel_.ports().Dequeue(filter_port.value());
  ASSERT_TRUE(delivered.ok());
  recovered.push_back(delivered.value());  // the manager pools the drive again

  gc_.CollectNow();
  gc_.CollectNow();
  EXPECT_TRUE(Alive(object.value()));
}

TEST_F(CollectorTest, SystemTypeFilterRecoversLostProcesses) {
  // "The first release of iMAX uses this facility only to recover lost process objects."
  auto lost_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 8, QueueDiscipline::kFifo);
  ASSERT_TRUE(lost_port.ok());
  gc_.SetSystemTypeFilter(SystemType::kProcess, lost_port.value());
  kernel_.AddRootProvider([lost_port = lost_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(lost_port);
  });

  // A process created but never started and never referenced: a lost process.
  Assembler a("lost");
  a.Halt();
  auto process = kernel_.CreateProcess(a.Build(), {});
  ASSERT_TRUE(process.ok());

  gc_.CollectNow();
  EXPECT_TRUE(Alive(process.value()));
  auto delivered = kernel_.ports().Dequeue(lost_port.value());
  ASSERT_TRUE(delivered.ok());
  EXPECT_TRUE(delivered.value().SameObject(process.value()));
}

TEST_F(CollectorTest, FullFilterPortDefersFinalization) {
  // Capacity-1 filter port already holding a message: the dying object survives the cycle
  // un-finalized and is offered again next time.
  auto filter_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 1, QueueDiscipline::kFifo);
  ASSERT_TRUE(filter_port.ok());
  auto tdo = types_.CreateTypeDefinition(3, filter_port.value());
  ASSERT_TRUE(tdo.ok());
  kernel_.AddRootProvider([tdo = tdo.value(), filter_port = filter_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(tdo);
    roots->push_back(filter_port);
  });
  auto blocker =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 0, rights::kRead);
  auto victim =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 0, rights::kRead);
  ASSERT_TRUE(blocker.ok() && victim.ok());

  GcStats first = gc_.CollectNow();
  // One of the two fit in the port; the other was deferred.
  EXPECT_EQ(first.objects_finalized, 1u);
  EXPECT_EQ(first.filter_send_failures, 1u);
  EXPECT_TRUE(Alive(blocker.value()));
  EXPECT_TRUE(Alive(victim.value()));

  // Drain and re-collect: the deferred object gets its turn.
  ASSERT_TRUE(kernel_.ports().Dequeue(filter_port.value()).ok());
  GcStats second = gc_.CollectNow();
  EXPECT_EQ(second.objects_finalized, 1u);
}

TEST_F(CollectorTest, IncrementalStepsEventuallyComplete) {
  for (int i = 0; i < 50; ++i) {
    (void)NewObject();
  }
  gc_.BeginCycle();
  ASSERT_TRUE(gc_.cycle_in_progress());
  uint64_t steps = 0;
  while (gc_.Step(64)) {
    ++steps;
    ASSERT_LT(steps, 100000u) << "collector failed to converge";
  }
  EXPECT_FALSE(gc_.cycle_in_progress());
  EXPECT_GE(gc_.stats().objects_reclaimed, 50u);
}

TEST_F(CollectorTest, DaemonCollectsInVirtualTime) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto request_port = gc_.SpawnDaemon(/*units_per_step=*/128);
  ASSERT_TRUE(request_port.ok());
  kernel_.Run();  // daemon starts and blocks on its request port

  std::vector<AccessDescriptor> garbage;
  for (int i = 0; i < 20; ++i) {
    garbage.push_back(NewObject());
  }
  uint32_t live_before = machine_.table().live_count();
  ASSERT_TRUE(kernel_.PostMessage(request_port.value(), memory_.global_heap()).ok());
  kernel_.Run();
  EXPECT_LT(machine_.table().live_count(), live_before);
  for (const AccessDescriptor& ad : garbage) {
    EXPECT_FALSE(Alive(ad));
  }
  EXPECT_EQ(gc_.stats().cycles_completed, 1u);
  // The daemon consumed virtual time: collection has a cost in this system.
  EXPECT_GT(machine_.now(), 0u);
}

TEST_F(CollectorTest, DaemonRepliesWhenRequestIsPort) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto request_port = gc_.SpawnDaemon(128);
  ASSERT_TRUE(request_port.ok());
  auto reply_port =
      kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(reply_port.ok());
  kernel_.AddRootProvider([reply = reply_port.value()](
                              std::vector<AccessDescriptor>* roots) {
    roots->push_back(reply);
  });
  kernel_.Run();
  ASSERT_TRUE(kernel_.PostMessage(request_port.value(), reply_port.value()).ok());
  kernel_.Run();
  EXPECT_TRUE(kernel_.ports().Dequeue(reply_port.value()).ok());
}

// Property: after any sequence of random linking/unlinking plus collection, exactly the
// root-reachable objects survive.
TEST_F(CollectorTest, PropertyReachabilityIsExact) {
  constexpr int kObjects = 60;
  std::vector<AccessDescriptor> objects;
  for (int i = 0; i < kObjects; ++i) {
    objects.push_back(NewObject(4));
  }
  // Random edges (level 0 everywhere: no level faults).
  Xorshift rng(42);
  std::vector<std::vector<int>> edges(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    for (uint32_t slot = 0; slot < 4; ++slot) {
      if (rng.NextChance(1, 3)) {
        int target = static_cast<int>(rng.NextBelow(kObjects));
        ASSERT_TRUE(machine_.addressing()
                        .WriteAd(objects[static_cast<size_t>(i)], slot,
                                 objects[static_cast<size_t>(target)])
                        .ok());
        edges[static_cast<size_t>(i)].push_back(target);
      }
    }
  }
  // Pick a few roots.
  std::vector<int> root_ids = {0, 7, 23};
  kernel_.AddRootProvider([&objects, root_ids](std::vector<AccessDescriptor>* roots) {
    for (int id : root_ids) {
      roots->push_back(objects[static_cast<size_t>(id)]);
    }
  });
  // Host-side reachability.
  std::vector<bool> expected(kObjects, false);
  std::vector<int> work = root_ids;
  while (!work.empty()) {
    int node = work.back();
    work.pop_back();
    if (expected[static_cast<size_t>(node)]) {
      continue;
    }
    expected[static_cast<size_t>(node)] = true;
    for (int next : edges[static_cast<size_t>(node)]) {
      work.push_back(next);
    }
  }

  gc_.CollectNow();
  for (int i = 0; i < kObjects; ++i) {
    EXPECT_EQ(Alive(objects[static_cast<size_t>(i)]), expected[static_cast<size_t>(i)])
        << "object " << i;
  }
}

}  // namespace
}  // namespace imax432

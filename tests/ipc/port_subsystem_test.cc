#include "src/ipc/port_subsystem.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class PortSubsystemTest : public ::testing::Test {
 protected:
  PortSubsystemTest()
      : machine_(MakeConfig()), memory_(&machine_), subsystem_(&machine_, &memory_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 256 * 1024;
    config.object_table_capacity = 1024;
    return config;
  }

  AccessDescriptor MakePort(uint16_t capacity,
                            QueueDiscipline discipline = QueueDiscipline::kFifo) {
    auto port = subsystem_.CreatePort(memory_.global_heap(), capacity, discipline);
    EXPECT_TRUE(port.ok());
    return port.value();
  }

  AccessDescriptor MakeMessage() {
    auto message = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                        rights::kRead);
    EXPECT_TRUE(message.ok());
    return message.value();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  PortSubsystem subsystem_;
};

TEST_F(PortSubsystemTest, CreateInitializesArchitecturalFields) {
  AccessDescriptor port = MakePort(6, QueueDiscipline::kPriority);
  ObjectView view(&machine_.addressing(), port);
  EXPECT_EQ(view.Field(PortLayout::kOffCapacity, 2), 6u);
  EXPECT_EQ(view.Field(PortLayout::kOffCount, 2), 0u);
  EXPECT_EQ(view.Field(PortLayout::kOffDiscipline, 1),
            static_cast<uint64_t>(QueueDiscipline::kPriority));
  EXPECT_EQ(machine_.table().Resolve(port).value()->access_count(), 6u);
}

TEST_F(PortSubsystemTest, ZeroOrHugeCapacityRejected) {
  EXPECT_EQ(subsystem_.CreatePort(memory_.global_heap(), 0, QueueDiscipline::kFifo).fault(),
            Fault::kInvalidArgument);
  EXPECT_EQ(subsystem_
                .CreatePort(memory_.global_heap(), PortSubsystem::kMaxMessageCount + 1,
                            QueueDiscipline::kFifo)
                .fault(),
            Fault::kInvalidArgument);
}

TEST_F(PortSubsystemTest, FifoOrdersByArrival) {
  AccessDescriptor port = MakePort(4);
  AccessDescriptor m1 = MakeMessage();
  AccessDescriptor m2 = MakeMessage();
  AccessDescriptor m3 = MakeMessage();
  ASSERT_TRUE(subsystem_.Enqueue(port, m1, 1, 0).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, m2, 200, 0).ok());  // priority ignored under FIFO
  ASSERT_TRUE(subsystem_.Enqueue(port, m3, 100, 0).ok());
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(m1));
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(m2));
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(m3));
}

TEST_F(PortSubsystemTest, PriorityOrdersDescendingWithFifoTies) {
  AccessDescriptor port = MakePort(4, QueueDiscipline::kPriority);
  AccessDescriptor low = MakeMessage();
  AccessDescriptor high = MakeMessage();
  AccessDescriptor mid_first = MakeMessage();
  AccessDescriptor mid_second = MakeMessage();
  ASSERT_TRUE(subsystem_.Enqueue(port, low, 10, 0).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, mid_first, 50, 0).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, high, 200, 0).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, mid_second, 50, 0).ok());
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(high));
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(mid_first));  // FIFO among equals
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(mid_second));
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(low));
}

TEST_F(PortSubsystemTest, DeadlineOrdersAscending) {
  AccessDescriptor port = MakePort(3, QueueDiscipline::kDeadline);
  AccessDescriptor late = MakeMessage();
  AccessDescriptor soon = MakeMessage();
  AccessDescriptor middle = MakeMessage();
  ASSERT_TRUE(subsystem_.Enqueue(port, late, 0, 9000).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, soon, 0, 10).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, middle, 0, 500).ok());
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(soon));
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(middle));
  EXPECT_TRUE(subsystem_.Dequeue(port).value().SameObject(late));
}

TEST_F(PortSubsystemTest, FullAndEmptyFaults) {
  AccessDescriptor port = MakePort(1);
  EXPECT_EQ(subsystem_.Dequeue(port).fault(), Fault::kQueueEmpty);
  ASSERT_TRUE(subsystem_.Enqueue(port, MakeMessage(), 0, 0).ok());
  EXPECT_EQ(subsystem_.Enqueue(port, MakeMessage(), 0, 0).fault(), Fault::kQueueFull);
}

TEST_F(PortSubsystemTest, MessagesLiveInTheAccessPart) {
  // The queue is the port object's access part: enqueued messages are visible there (GC
  // reachability) and slots clear on dequeue (no artificial retention).
  AccessDescriptor port = MakePort(2);
  AccessDescriptor message = MakeMessage();
  ASSERT_TRUE(subsystem_.Enqueue(port, message, 0, 0).ok());
  const ObjectDescriptor* descriptor = machine_.table().Resolve(port).value();
  bool found = false;
  for (const AccessDescriptor& slot : descriptor->access) {
    found |= slot.SameObject(message);
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE(subsystem_.Dequeue(port).ok());
  for (const AccessDescriptor& slot : descriptor->access) {
    EXPECT_FALSE(slot.SameObject(message));
  }
}

TEST_F(PortSubsystemTest, LevelRuleAppliesToMessages) {
  // A local-lifetime message cannot enter a global port: the message would outlive its
  // referent ("objects passed through these ports are of a type whose scope is no less
  // global than the scope of the port").
  auto local = memory_.CreateLocalSro(memory_.global_heap(), 8192, 2);
  ASSERT_TRUE(local.ok());
  auto local_message =
      memory_.CreateObject(local.value(), SystemType::kGeneric, 16, 0, rights::kRead);
  ASSERT_TRUE(local_message.ok());
  AccessDescriptor global_port = MakePort(2);
  EXPECT_EQ(subsystem_.Enqueue(global_port, local_message.value(), 0, 0).fault(),
            Fault::kLevelViolation);

  // A local port at the same depth accepts it.
  auto local_port = subsystem_.CreatePort(local.value(), 2, QueueDiscipline::kFifo);
  ASSERT_TRUE(local_port.ok());
  EXPECT_TRUE(subsystem_.Enqueue(local_port.value(), local_message.value(), 0, 0).ok());
}

TEST_F(PortSubsystemTest, BlockedQueuesAreFifoAndReportedAsRoots) {
  AccessDescriptor port = MakePort(1);
  auto process_a = memory_.CreateObject(memory_.global_heap(), SystemType::kProcess,
                                        ProcessLayout::kDataBytes, ProcessLayout::kAccessSlots,
                                        rights::kAll);
  auto process_b = memory_.CreateObject(memory_.global_heap(), SystemType::kProcess,
                                        ProcessLayout::kDataBytes, ProcessLayout::kAccessSlots,
                                        rights::kAll);
  ASSERT_TRUE(process_a.ok() && process_b.ok());
  AccessDescriptor message = MakeMessage();

  ASSERT_TRUE(subsystem_.PushBlockedSender(port, {process_a.value(), message}).ok());
  ASSERT_TRUE(subsystem_.PushBlockedReceiver(port, {process_b.value(), 3}).ok());

  std::vector<AccessDescriptor> roots;
  subsystem_.AppendShadowRoots(&roots);
  bool saw_a = false;
  bool saw_b = false;
  bool saw_message = false;
  for (const AccessDescriptor& root : roots) {
    saw_a |= root.SameObject(process_a.value());
    saw_b |= root.SameObject(process_b.value());
    saw_message |= root.SameObject(message);
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_TRUE(saw_message);

  auto sender = subsystem_.PopBlockedSender(port);
  ASSERT_TRUE(sender.ok());
  EXPECT_TRUE(sender.value().process.SameObject(process_a.value()));
  auto receiver = subsystem_.PopBlockedReceiver(port);
  ASSERT_TRUE(receiver.ok());
  EXPECT_EQ(receiver.value().dest_adreg, 3);
  EXPECT_EQ(subsystem_.PopBlockedSender(port).fault(), Fault::kQueueEmpty);
}

TEST_F(PortSubsystemTest, RemoveBlockedReceiverTargetsTheRightProcess) {
  AccessDescriptor port = MakePort(1);
  auto p1 = memory_.CreateObject(memory_.global_heap(), SystemType::kProcess,
                                 ProcessLayout::kDataBytes, ProcessLayout::kAccessSlots,
                                 rights::kAll);
  auto p2 = memory_.CreateObject(memory_.global_heap(), SystemType::kProcess,
                                 ProcessLayout::kDataBytes, ProcessLayout::kAccessSlots,
                                 rights::kAll);
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_TRUE(subsystem_.PushBlockedReceiver(port, {p1.value(), 0}).ok());
  ASSERT_TRUE(subsystem_.PushBlockedReceiver(port, {p2.value(), 1}).ok());
  ASSERT_TRUE(subsystem_.RemoveBlockedReceiver(port, p1.value()).ok());
  EXPECT_EQ(subsystem_.RemoveBlockedReceiver(port, p1.value()).fault(), Fault::kNotFound);
  auto remaining = subsystem_.PopBlockedReceiver(port);
  ASSERT_TRUE(remaining.ok());
  EXPECT_TRUE(remaining.value().process.SameObject(p2.value()));
}

TEST_F(PortSubsystemTest, StatsCountersMirrorIntoThePortObject) {
  AccessDescriptor port = MakePort(2);
  ASSERT_TRUE(subsystem_.Enqueue(port, MakeMessage(), 0, 0).ok());
  ASSERT_TRUE(subsystem_.Enqueue(port, MakeMessage(), 0, 0).ok());
  ASSERT_TRUE(subsystem_.Dequeue(port).ok());
  ObjectView view(&machine_.addressing(), port);
  EXPECT_EQ(view.Field(PortLayout::kOffSendsTotal, 8), 2u);
  EXPECT_EQ(view.Field(PortLayout::kOffReceivesTotal, 8), 1u);
  EXPECT_EQ(view.Field(PortLayout::kOffCount, 2), 1u);
}

TEST_F(PortSubsystemTest, NonPortObjectRejected) {
  AccessDescriptor message = MakeMessage();
  EXPECT_EQ(subsystem_.Enqueue(message, MakeMessage(), 0, 0).fault(), Fault::kTypeMismatch);
  EXPECT_EQ(subsystem_.Dequeue(message).fault(), Fault::kTypeMismatch);
}

TEST_F(PortSubsystemTest, WaitingProcessorQueue) {
  AccessDescriptor port = MakePort(2);
  EXPECT_EQ(subsystem_.PopWaitingProcessor(port).fault(), Fault::kQueueEmpty);
  subsystem_.PushWaitingProcessor(port, 2);
  subsystem_.PushWaitingProcessor(port, 0);
  EXPECT_EQ(subsystem_.PopWaitingProcessor(port).value(), 2);
  EXPECT_EQ(subsystem_.PopWaitingProcessor(port).value(), 0);
}

}  // namespace
}  // namespace imax432

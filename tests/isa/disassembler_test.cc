#include "src/isa/disassembler.h"

#include <gtest/gtest.h>

#include "src/isa/assembler.h"

namespace imax432 {
namespace {

TEST(DisassemblerTest, EveryOpcodeHasAName) {
  // Walk every opcode through a representative instruction: no "?" mnemonics.
  for (int op = 0; op <= static_cast<int>(Opcode::kOsCall); ++op) {
    Instruction instruction;
    instruction.op = static_cast<Opcode>(op);
    EXPECT_STRNE(OpcodeName(instruction.op), "?") << "opcode " << op;
    EXPECT_FALSE(DisassembleInstruction(instruction).empty()) << "opcode " << op;
  }
}

TEST(DisassemblerTest, RendersOperands) {
  Assembler a("p");
  a.LoadImm(3, 42);
  a.Send(2, 4);
  a.CreateObject(1, 2, 128, 4);
  a.BranchIfLess(0, 1, a.NewLabel());  // unbound label is fine: we won't Build()
  ProgramRef program;
  {
    Assembler b("sample");
    auto loop = b.NewLabel();
    b.Bind(loop).LoadImm(3, 42).Send(2, 4).CreateObject(1, 2, 128, 4).BranchIfLess(0, 1, loop)
        .Halt();
    program = b.Build();
  }
  std::string listing = Disassemble(*program);
  EXPECT_NE(listing.find("load_imm"), std::string::npos);
  EXPECT_NE(listing.find("r3, 42"), std::string::npos);
  EXPECT_NE(listing.find("port=a2, msg=a4"), std::string::npos);
  EXPECT_NE(listing.find("128 bytes, 4 slots"), std::string::npos);
  EXPECT_NE(listing.find("r0 < r1, -> 0"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
  EXPECT_NE(listing.find("\"sample\", 5 instructions"), std::string::npos);
}

TEST(DisassemblerTest, PcPrefixesSequential) {
  Assembler a("seq");
  a.Compute(1).Compute(2).Compute(3).Halt();
  std::string listing = Disassemble(*a.Build());
  EXPECT_NE(listing.find("0000  "), std::string::npos);
  EXPECT_NE(listing.find("0001  "), std::string::npos);
  EXPECT_NE(listing.find("0003  halt"), std::string::npos);
}

}  // namespace
}  // namespace imax432

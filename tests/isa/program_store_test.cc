// ProgramStore::Fetch invalidation semantics — the baseline contract the translation
// cache's epoch-keyed program tier must reproduce exactly: object-table mutation (free,
// generation reuse), data_epoch bumps, and the Register/Forget version counter.

#include "src/isa/program_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/arch/rights.h"
#include "src/isa/assembler.h"
#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.memory_bytes = 1024 * 1024;
  config.object_table_capacity = 4096;
  return config;
}

class ProgramStoreTest : public ::testing::Test {
 protected:
  ProgramStoreTest() : machine_(SmallConfig()), memory_(&machine_), store_(&machine_, &memory_) {}

  ProgramRef MakeProgram(const char* name) {
    Assembler a(name);
    a.LoadImm(0, 1).Halt();
    return a.Build();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  ProgramStore store_;
};

TEST_F(ProgramStoreTest, FetchReturnsTheRegisteredProgram) {
  auto ad = store_.Register(MakeProgram("fetch.basic"));
  ASSERT_TRUE(ad.ok());
  auto fetched = store_.Fetch(ad.value());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value()->name(), "fetch.basic");
}

TEST_F(ProgramStoreTest, FetchRejectsANonSegmentObject) {
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64, 0,
                                     rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(store_.Fetch(object.value()).fault(), Fault::kTypeMismatch);
}

TEST_F(ProgramStoreTest, FetchFaultsAfterTheSegmentObjectIsFreed) {
  auto ad = store_.Register(MakeProgram("fetch.freed"));
  ASSERT_TRUE(ad.ok());
  // The GC path: free the table entry, then drop the side-table content.
  ASSERT_TRUE(machine_.table().Free(ad.value().index()).ok());
  store_.Forget(ad.value().index());
  EXPECT_EQ(store_.Fetch(ad.value()).fault(), Fault::kInvalidAccess);
  EXPECT_EQ(store_.Find(ad.value().index()), nullptr);
}

TEST_F(ProgramStoreTest, ForgetWithoutFreeLeavesResolutionButDropsContent) {
  auto ad = store_.Register(MakeProgram("fetch.forgotten"));
  ASSERT_TRUE(ad.ok());
  store_.Forget(ad.value().index());
  EXPECT_EQ(store_.Fetch(ad.value()).fault(), Fault::kNotFound);
}

TEST_F(ProgramStoreTest, StaleGenerationAdNeverResolvesAfterSlotReuse) {
  auto old_ad = store_.Register(MakeProgram("fetch.old"));
  ASSERT_TRUE(old_ad.ok());
  ObjectIndex index = old_ad.value().index();
  ASSERT_TRUE(machine_.table().Free(index).ok());
  store_.Forget(index);

  // Re-register until the table hands the same slot out again under a new generation.
  AccessDescriptor reused;
  for (int i = 0; i < 128 && reused.index() != index; ++i) {
    auto ad = store_.Register(MakeProgram("fetch.new"));
    ASSERT_TRUE(ad.ok());
    reused = ad.value();
  }
  if (reused.index() == index) {
    EXPECT_NE(reused.generation(), old_ad.value().generation());
    EXPECT_EQ(store_.Fetch(old_ad.value()).fault(), Fault::kInvalidAccess);
    auto fresh = store_.Fetch(reused);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh.value()->name(), "fetch.new");
  }
}

TEST_F(ProgramStoreTest, DataEpochBumpsDoNotAffectFetch) {
  auto ad = store_.Register(MakeProgram("fetch.epoch"));
  ASSERT_TRUE(ad.ok());
  machine_.table().At(ad.value().index()).data_epoch += 3;
  auto fetched = store_.Fetch(ad.value());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value()->name(), "fetch.epoch");
}

TEST_F(ProgramStoreTest, VersionBumpsOnRegisterAndSuccessfulForgetOnly) {
  uint64_t v0 = store_.version();
  auto ad = store_.Register(MakeProgram("fetch.version"));
  ASSERT_TRUE(ad.ok());
  EXPECT_GT(store_.version(), v0);

  uint64_t v1 = store_.version();
  store_.Forget(9999);  // never registered: no content mutation, no bump
  EXPECT_EQ(store_.version(), v1);

  store_.Forget(ad.value().index());
  EXPECT_GT(store_.version(), v1);
}

// --- Replace: in-place hot-patching (the decode-cache staleness baseline) ----------------

TEST_F(ProgramStoreTest, ReplaceSwapsContentAndBumpsBothStalenessKeys) {
  auto ad = store_.Register(MakeProgram("patch.old"));
  ASSERT_TRUE(ad.ok());
  uint64_t version = store_.version();
  uint32_t epoch = machine_.table().At(ad.value().index()).data_epoch;

  ASSERT_TRUE(store_.Replace(ad.value(), MakeProgram("patch.new")).ok());

  // A Fetch after the in-place mutation sees the new code...
  auto fetched = store_.Fetch(ad.value());
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value()->name(), "patch.new");
  // ...and BOTH cache invalidation keys moved: the store version (xlat program payloads
  // and decode entries key on it) and the descriptor's data_epoch (the per-object content
  // witness). Missing either would let a cached translation serve the old code.
  EXPECT_GT(store_.version(), version);
  EXPECT_GT(machine_.table().At(ad.value().index()).data_epoch, epoch);
}

TEST_F(ProgramStoreTest, ReplaceRejectsANonSegmentObject) {
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 64, 0,
                                     rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(store_.Replace(object.value(), MakeProgram("patch.reject")).fault(),
            Fault::kTypeMismatch);
}

TEST_F(ProgramStoreTest, ReplaceFaultsOnAForgottenSegmentWithoutBumpingKeys) {
  auto ad = store_.Register(MakeProgram("patch.forgotten"));
  ASSERT_TRUE(ad.ok());
  store_.Forget(ad.value().index());
  uint64_t version = store_.version();
  uint32_t epoch = machine_.table().At(ad.value().index()).data_epoch;
  EXPECT_EQ(store_.Replace(ad.value(), MakeProgram("patch.late")).fault(),
            Fault::kNotFound);
  EXPECT_EQ(store_.version(), version);
  EXPECT_EQ(machine_.table().At(ad.value().index()).data_epoch, epoch);
}

TEST_F(ProgramStoreTest, ReplaceFiresTheHookButRegisterAndForgetDoNot) {
  std::vector<ObjectIndex> retracted;
  store_.SetReplaceHook([&retracted](ObjectIndex index) { retracted.push_back(index); });

  auto ad = store_.Register(MakeProgram("patch.hooked"));
  ASSERT_TRUE(ad.ok());
  EXPECT_TRUE(retracted.empty());

  ASSERT_TRUE(store_.Replace(ad.value(), MakeProgram("patch.hooked2")).ok());
  ASSERT_EQ(retracted.size(), 1u);
  EXPECT_EQ(retracted[0], ad.value().index());

  store_.Forget(ad.value().index());
  EXPECT_EQ(retracted.size(), 1u);
}

TEST_F(ProgramStoreTest, FindReturnsTheRawProgramWithoutResolution) {
  auto ad = store_.Register(MakeProgram("fetch.find"));
  ASSERT_TRUE(ad.ok());
  const Program* program = store_.Find(ad.value().index());
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->name(), "fetch.find");
  // Find consults only the side table: a freed object is invisible to it (callers pair it
  // with a Resolve, as Kernel::FetchProgramCached does).
  ASSERT_TRUE(machine_.table().Free(ad.value().index()).ok());
  EXPECT_NE(store_.Find(ad.value().index()), nullptr);
}

}  // namespace
}  // namespace imax432

#include "src/isa/assembler.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(AssemblerTest, EmitsInstructionsInOrder) {
  Assembler a("p");
  a.LoadImm(0, 42).AddImm(1, 0, 8).Halt();
  ProgramRef program = a.Build();
  ASSERT_EQ(program->size(), 3u);
  EXPECT_EQ(program->at(0).op, Opcode::kLoadImm);
  EXPECT_EQ(program->at(0).a, 0);
  EXPECT_EQ(program->at(0).imm64, 42u);
  EXPECT_EQ(program->at(1).op, Opcode::kAddImm);
  EXPECT_EQ(program->at(2).op, Opcode::kHalt);
}

TEST(AssemblerTest, ForwardLabelPatched) {
  Assembler a("p");
  auto skip = a.NewLabel();
  a.LoadImm(0, 1).Branch(skip).LoadImm(0, 2).Bind(skip).Halt();
  ProgramRef program = a.Build();
  // The branch at index 1 must target the Halt at index 3.
  EXPECT_EQ(program->at(1).op, Opcode::kBranch);
  EXPECT_EQ(program->at(1).imm, 3u);
}

TEST(AssemblerTest, BackwardLabelPatched) {
  Assembler a("p");
  auto loop = a.NewLabel();
  a.LoadImm(0, 0).Bind(loop).AddImm(0, 0, 1).BranchIfZero(1, loop).Halt();
  ProgramRef program = a.Build();
  EXPECT_EQ(program->at(2).op, Opcode::kBranchIfZero);
  EXPECT_EQ(program->at(2).imm, 1u);
}

TEST(AssemblerTest, MultipleReferencesToOneLabel) {
  Assembler a("p");
  auto target = a.NewLabel();
  a.Branch(target).Branch(target).Bind(target).Halt();
  ProgramRef program = a.Build();
  EXPECT_EQ(program->at(0).imm, 2u);
  EXPECT_EQ(program->at(1).imm, 2u);
}

TEST(AssemblerTest, NativeStepsIndexed) {
  Assembler a("p");
  int first = 0;
  int second = 0;
  a.Native([&first](ExecutionContext&) -> Result<NativeResult> {
    ++first;
    return NativeResult{};
  });
  a.Native([&second](ExecutionContext&) -> Result<NativeResult> {
    ++second;
    return NativeResult{};
  });
  ProgramRef program = a.Build();
  EXPECT_EQ(program->at(0).op, Opcode::kNative);
  EXPECT_EQ(program->at(0).imm, 0u);
  EXPECT_EQ(program->at(1).imm, 1u);
  EXPECT_NE(program->native(0), nullptr);
  EXPECT_NE(program->native(1), nullptr);
  EXPECT_EQ(program->native(2), nullptr);
}

TEST(AssemblerTest, HereTracksPosition) {
  Assembler a("p");
  EXPECT_EQ(a.here(), 0u);
  a.Compute(1);
  EXPECT_EQ(a.here(), 1u);
  a.Compute(1).Compute(1);
  EXPECT_EQ(a.here(), 3u);
}

TEST(AssemblerTest, EveryEmitterEncodesItsOperands) {
  Assembler a("coverage");
  auto label = a.NewLabel();
  a.Bind(label);
  a.Compute(7)
      .LoadImm(1, 0x123456789abcull)
      .Move(2, 1)
      .Add(3, 1, 2)
      .Sub(4, 3, 1)
      .Mul(5, 4, 2)
      .LoadData(0, 1, 24, 4)
      .StoreData(1, 0, 32, 2)
      .LoadDataIndexed(2, 1, 3, 8)
      .StoreDataIndexed(1, 2, 3, 16)
      .MoveAd(1, 2)
      .ClearAd(3)
      .LoadAd(4, 1, 5)
      .StoreAd(1, 4, 6)
      .LoadAdIndexed(2, 1, 0, 2)
      .StoreAdIndexed(1, 2, 0, 3)
      .RestrictRights(1, rights::kRead)
      .AdIsNull(6, 1)
      .CreateObject(2, 1, 128, 4)
      .DestroyObject(2)
      .CreateSro(3, 1, 4096)
      .DestroySro(3)
      .Send(1, 2)
      .Receive(2, 1)
      .CondSend(1, 2, 0)
      .CondReceive(2, 1, 0)
      .Call(1, 2)
      .CallLocal(1)
      .Return()
      .Branch(label)
      .BranchIfZero(0, label)
      .BranchIfNotZero(0, label)
      .BranchIfLess(0, 1, label)
      .OsCall(99)
      .Halt();
  ProgramRef program = a.Build();
  EXPECT_EQ(program->size(), 35u);
  // Spot checks.
  EXPECT_EQ(program->at(0).imm, 7u);                         // Compute cycles
  EXPECT_EQ(program->at(6).c, 4);                            // LoadData width
  EXPECT_EQ(program->at(18).imm, 128u);                      // CreateObject bytes
  EXPECT_EQ(program->at(18).c, 4);                           // CreateObject slots
  EXPECT_EQ(program->at(33).imm, 99u);                       // OsCall service
  EXPECT_EQ(program->at(16).imm, static_cast<uint32_t>(rights::kRead));
}

TEST(ProgramTest, PatchRewritesImmediate) {
  Program program("p");
  uint32_t index = program.Append({Opcode::kBranch, 0, 0, 0, 0, 0});
  program.Patch(index, 17);
  EXPECT_EQ(program.at(index).imm, 17u);
}

}  // namespace
}  // namespace imax432

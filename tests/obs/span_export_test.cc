// Perfetto span/flow export round-trip: run a span-traced workload, export the Chrome
// trace JSON, parse it back line-by-line (the exporter emits one event per line for
// exactly this purpose), re-derive the span tree from the parsed events alone, and check
// it against the tracer's own records.

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/perfetto.h"
#include "src/obs/span.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

// Pulls `"key":<number>` out of a single JSON event line.
bool ExtractU64(const std::string& line, const std::string& key, uint64_t* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  *out = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

struct ParsedSpan {
  uint64_t parent = 0;
  uint64_t root = 0;
  uint64_t process = 0;
};

void RunSpanWorkload(System& system, int messages) {
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 2,
                                                 QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 32)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(messages))
      .Bind(send_loop)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(messages))
      .Bind(recv_loop)
      .Receive(4, 2)
      .Compute(128)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(consumer.Build(), options).ok());
  ASSERT_TRUE(system.Spawn(producer.Build(), options).ok());
  system.Run();
}

TEST(SpanExportTest, RoundTripRederivesTheSpanTree) {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.span_trace = true;
  System system(config);
  RunSpanWorkload(system, 8);
  SpanTracer& tracer = system.machine().spans();
  tracer.FlushOpen();
  ASSERT_GT(tracer.spans().size(), 0u);

  std::string json = ExportSpanChromeTrace(tracer, &system.kernel().symbols());
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\n]}\n"), std::string::npos);

  // Parse: one event per line. Slices carry the span fields; "s"/"f" carry flow ids.
  std::map<uint64_t, ParsedSpan> parsed;
  std::multiset<uint64_t> flow_starts;
  std::multiset<uint64_t> flow_finishes;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":\"X\"") != std::string::npos) {
      uint64_t id = 0;
      ParsedSpan span;
      ASSERT_TRUE(ExtractU64(line, "span", &id)) << line;
      ASSERT_TRUE(ExtractU64(line, "parent", &span.parent)) << line;
      ASSERT_TRUE(ExtractU64(line, "root", &span.root)) << line;
      ASSERT_TRUE(ExtractU64(line, "process", &span.process)) << line;
      EXPECT_TRUE(parsed.emplace(id, span).second) << "duplicate span " << id;
    } else if (line.find("\"ph\":\"s\"") != std::string::npos) {
      uint64_t id = 0;
      ASSERT_TRUE(ExtractU64(line, "id", &id)) << line;
      flow_starts.insert(id);
    } else if (line.find("\"ph\":\"f\"") != std::string::npos) {
      uint64_t id = 0;
      ASSERT_TRUE(ExtractU64(line, "id", &id)) << line;
      EXPECT_NE(line.find("\"bp\":\"e\""), std::string::npos) << line;
      flow_finishes.insert(id);
    }
  }

  // Every tracer span came back with identical linkage.
  ASSERT_EQ(parsed.size(), tracer.spans().size());
  for (const SpanRecord& span : tracer.spans()) {
    ASSERT_TRUE(parsed.count(span.id)) << "span " << span.id << " missing";
    const ParsedSpan& p = parsed.at(span.id);
    EXPECT_EQ(p.parent, span.parent) << "span " << span.id;
    EXPECT_EQ(p.root, span.root) << "span " << span.id;
    EXPECT_EQ(p.process, span.process) << "span " << span.id;
  }

  // Re-derive each span's root from the parsed parent links alone: walking parents from
  // any span must terminate at a parent-less span whose exported root matches.
  for (const auto& [id, span] : parsed) {
    uint64_t cursor = id;
    int hops = 0;
    while (parsed.at(cursor).parent != 0) {
      uint64_t parent = parsed.at(cursor).parent;
      ASSERT_TRUE(parsed.count(parent)) << "dangling parent of span " << cursor;
      ASSERT_LT(parent, cursor) << "parent links must point backwards";
      ASSERT_EQ(parsed.at(parent).root, span.root) << "root mismatch on chain of " << id;
      cursor = parent;
      ASSERT_LT(++hops, 1000) << "parent cycle";
    }
  }

  // One flow pair per child span, keyed by the child's span id.
  std::multiset<uint64_t> children;
  for (const auto& [id, span] : parsed) {
    if (span.parent != 0) {
      children.insert(id);
    }
  }
  EXPECT_EQ(flow_starts, children);
  EXPECT_EQ(flow_finishes, children);
  EXPECT_GT(children.size(), 0u);
}

TEST(SpanExportTest, EmptyTracerProducesValidSkeleton) {
  SpanTracer tracer;
  tracer.Enable();
  std::string json = ExportSpanChromeTrace(tracer, nullptr);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\n]}\n"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace imax432

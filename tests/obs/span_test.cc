// SpanTracer unit tests (the hook API driven directly, standing in for the kernel) plus
// system-level contracts: linked request trees, determinism, and the pure-observer
// guarantee with tracing armed.

#include "src/obs/span.h"

#include <gtest/gtest.h>

#include "src/os/system.h"

namespace imax432 {
namespace {

constexpr size_t kInterp = static_cast<size_t>(CycleBucket::kInterpreter);

TEST(SpanTracerTest, DisabledHooksAreNoOps) {
  SpanTracer tracer;
  tracer.OnSpawn(1, 2);
  tracer.OnSend(1, 1, 10);
  tracer.OnReceive(2, 1, 20);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 30);
  tracer.FlushOpen();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.spans_created(), 0u);
}

TEST(SpanTracerTest, LazyRootOpensOnFirstCharge) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(7, CycleBucket::kInterpreter, 10, 100);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 1u);
  const SpanRecord& span = tracer.spans()[0];
  EXPECT_EQ(span.id, 1u);
  EXPECT_EQ(span.parent, 0u);
  EXPECT_EQ(span.root, 1u);
  EXPECT_EQ(span.process, 7u);
  EXPECT_EQ(span.cycles[kInterp], 10u);
  EXPECT_TRUE(span.closed);
  EXPECT_EQ(tracer.roots_created(), 1u);
}

TEST(SpanTracerTest, SendReceiveLinksChildToSender) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 184, 100);
  tracer.OnSend(1, /*transfer_seq=*/42, 284);
  tracer.OnReceive(2, /*transfer_seq=*/42, 500);
  tracer.ChargeCurrent(2, CycleBucket::kInterpreter, 6, 506);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& sender = tracer.spans()[0];
  const SpanRecord& receiver = tracer.spans()[1];
  EXPECT_EQ(receiver.parent, sender.id);
  EXPECT_EQ(receiver.root, sender.root);
  EXPECT_EQ(receiver.process, 2u);
  EXPECT_EQ(tracer.roots_created(), 1u);
}

TEST(SpanTracerTest, HandoffLinksWithoutQueue) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 10);
  tracer.OnHandoff(/*sender=*/1, /*receiver=*/2, 50);
  tracer.ChargeCurrent(2, CycleBucket::kInterpreter, 6, 56);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].parent, tracer.spans()[0].id);
  EXPECT_EQ(tracer.spans()[1].root, tracer.spans()[0].root);
}

TEST(SpanTracerTest, UnstampedReceiveOpensFreshRoot) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.OnReceive(3, /*transfer_seq=*/999, 100);  // no stamp for this seq
  tracer.ChargeCurrent(3, CycleBucket::kInterpreter, 6, 106);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].parent, 0u);
  EXPECT_EQ(tracer.roots_created(), 1u);
}

TEST(SpanTracerTest, ExternalSendStartsFreshRoot) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.OnExternalSend(/*transfer_seq=*/7);
  tracer.OnReceive(2, /*transfer_seq=*/7, 100);
  tracer.ChargeCurrent(2, CycleBucket::kInterpreter, 6, 106);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].parent, 0u);  // root span of its own fresh request
  EXPECT_EQ(tracer.spans()[0].process, 2u);
}

TEST(SpanTracerTest, DomainCallNestsAndReturnCloses) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 10);
  tracer.OnDomainCall(1, 100);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 64, 164);
  tracer.OnDomainReturn(1, 200);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 206);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 2u);
  const SpanRecord& outer = tracer.spans()[0];
  const SpanRecord& nested = tracer.spans()[1];
  EXPECT_EQ(nested.parent, outer.id);
  EXPECT_EQ(nested.root, outer.root);
  EXPECT_EQ(nested.cycles[kInterp], 64u);
  // The post-return charge lands back in the outer span, not a new one.
  EXPECT_EQ(outer.cycles[kInterp], 12u);
}

TEST(SpanTracerTest, SpawnInheritsParentContextOnce) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 10);
  tracer.OnSpawn(/*parent_process=*/1, /*child_process=*/9);
  tracer.ChargeCurrent(9, CycleBucket::kInterpreter, 6, 100);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].parent, tracer.spans()[0].id);
  EXPECT_EQ(tracer.spans()[1].root, tracer.spans()[0].root);
  EXPECT_EQ(tracer.roots_created(), 1u);
}

TEST(SpanTracerTest, BlockReceiveEndsTheEpisode) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 10);
  tracer.OnBlockReceive(1, 50);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 100);
  tracer.FlushOpen();
  // The wait for the next request is not part of the first episode: two separate roots.
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_TRUE(tracer.spans()[0].closed);
  EXPECT_EQ(tracer.spans()[0].end, 50u);
  EXPECT_NE(tracer.spans()[0].root, tracer.spans()[1].root);
}

TEST(SpanTracerTest, FaultClosesWholeStack) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 10);
  tracer.OnDomainCall(1, 100);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 106);
  tracer.OnFault(1, 200);
  tracer.FlushOpen();
  ASSERT_EQ(tracer.spans().size(), 2u);
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_TRUE(span.closed);
    EXPECT_EQ(span.end, 200u);
  }
}

TEST(SpanTracerTest, CapacityOverflowCountsDropped) {
  SpanTracer tracer;
  tracer.Enable(/*capacity=*/2);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 10);
  tracer.OnBlockReceive(1, 20);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 30);
  tracer.OnBlockReceive(1, 40);
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 6, 50);  // third span: over capacity
  tracer.FlushOpen();
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_GT(tracer.dropped(), 0u);
}

// --- System-level contracts --------------------------------------------------------------

SystemConfig SpanConfig(bool spans) {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.span_trace = spans;
  return config;
}

void SpawnPipeline(System& system, int messages) {
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 2,
                                                 QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 32)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(messages))
      .Bind(send_loop)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, static_cast<uint64_t>(messages))
      .Bind(recv_loop)
      .Receive(4, 2)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(consumer.Build(), options).ok());
  ASSERT_TRUE(system.Spawn(producer.Build(), options).ok());
}

TEST(SpanSystemTest, PipelineProducesLinkedRequestTrees) {
  System system(SpanConfig(true));
  SpawnPipeline(system, 8);
  system.Run();
  SpanTracer& tracer = system.machine().spans();
  tracer.FlushOpen();
  ASSERT_GT(tracer.spans().size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  size_t linked = 0;
  for (const SpanRecord& span : tracer.spans()) {
    EXPECT_TRUE(span.closed);
    EXPECT_NE(span.root, 0u);
    EXPECT_LT(span.parent, span.id);  // parents open before children
    EXPECT_GE(span.end, span.start);
    if (span.parent != 0) {
      ++linked;
      const SpanRecord& parent = tracer.spans()[span.parent - 1];
      EXPECT_EQ(parent.root, span.root) << "span " << span.id;
    }
  }
  EXPECT_GT(linked, 0u);  // receives link consumer episodes under producer sends
  // One root per causal episode, not per message: the producer's whole send loop is a
  // single request, and consumer episodes that dequeue its messages join that tree.
  EXPECT_GT(tracer.roots_created(), 0u);
  EXPECT_LT(tracer.roots_created(), tracer.spans().size());
}

TEST(SpanSystemTest, IdenticalRunsYieldIdenticalTrees) {
  std::vector<SpanRecord> trees[2];
  for (int run = 0; run < 2; ++run) {
    System system(SpanConfig(true));
    SpawnPipeline(system, 8);
    system.Run();
    system.machine().spans().FlushOpen();
    trees[run] = system.machine().spans().spans();
  }
  ASSERT_EQ(trees[0].size(), trees[1].size());
  for (size_t i = 0; i < trees[0].size(); ++i) {
    EXPECT_EQ(trees[0][i].id, trees[1][i].id);
    EXPECT_EQ(trees[0][i].parent, trees[1][i].parent);
    EXPECT_EQ(trees[0][i].root, trees[1][i].root);
    EXPECT_EQ(trees[0][i].process, trees[1][i].process);
    EXPECT_EQ(trees[0][i].start, trees[1][i].start);
    EXPECT_EQ(trees[0][i].end, trees[1][i].end);
    EXPECT_EQ(trees[0][i].cycles, trees[1][i].cycles);
  }
}

TEST(SpanSystemTest, TracingDoesNotPerturbVirtualTime) {
  Cycles now[2];
  for (int traced = 0; traced < 2; ++traced) {
    System system(SpanConfig(traced == 1));
    SpawnPipeline(system, 8);
    system.Run();
    now[traced] = system.now();
  }
  EXPECT_EQ(now[0], now[1]);
}

}  // namespace
}  // namespace imax432

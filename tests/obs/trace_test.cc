#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include "src/os/system.h"

namespace imax432 {
namespace {

TEST(TraceRecorderTest, DisabledModeAllocatesNothing) {
  TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.capacity(), 0u);
  // Emit must be a harmless no-op while disabled.
  trace.Emit(TraceEventKind::kDispatch, 100, 0, 1);
  trace.Annotate(100, "ignored");
  EXPECT_EQ(trace.capacity(), 0u);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_emitted(), 0u);
  EXPECT_TRUE(trace.Snapshot().empty());
  EXPECT_TRUE(trace.annotations().empty());
}

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder trace;
  trace.Enable(16);
  EXPECT_TRUE(trace.enabled());
  EXPECT_EQ(trace.capacity(), 16u);
  for (uint32_t i = 0; i < 5; ++i) {
    trace.Emit(TraceEventKind::kSend, i * 10, 0, 7, i);
  }
  auto events = trace.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].ts, i * 10);
    EXPECT_EQ(events[i].a, i);
    EXPECT_EQ(events[i].process, 7u);
    EXPECT_EQ(events[i].kind, TraceEventKind::kSend);
  }
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorderTest, WraparoundKeepsNewestEvents) {
  TraceRecorder trace;
  trace.Enable(8);
  for (uint32_t i = 0; i < 20; ++i) {
    trace.Emit(TraceEventKind::kReceive, i, 0, 0, i);
  }
  EXPECT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.total_emitted(), 20u);
  EXPECT_EQ(trace.dropped(), 12u);
  auto events = trace.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring holds exactly the last 8 emissions, oldest first.
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].a, 12 + i);
  }
}

TEST(TraceRecorderTest, ReenableSameCapacityKeepsEvents) {
  TraceRecorder trace;
  trace.Enable(8);
  trace.Emit(TraceEventKind::kSend, 1, 0, 0);
  trace.Enable(8);  // idempotent
  EXPECT_EQ(trace.size(), 1u);
  trace.Enable(32);  // different capacity reallocates and clears
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_emitted(), 0u);
  EXPECT_EQ(trace.capacity(), 32u);
}

TEST(TraceRecorderTest, DisableStopsRecordingWithoutLosingHistory) {
  TraceRecorder trace;
  trace.Enable(8);
  trace.Emit(TraceEventKind::kSend, 1, 0, 0);
  trace.Disable();
  trace.Emit(TraceEventKind::kSend, 2, 0, 0);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.Snapshot().size(), 1u);
}

TEST(TraceRecorderTest, ClearResetsCountersAndAnnotations) {
  TraceRecorder trace;
  trace.Enable(4);
  trace.Emit(TraceEventKind::kSend, 1, 0, 0);
  trace.Annotate(1, "line");
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_emitted(), 0u);
  EXPECT_TRUE(trace.annotations().empty());
  EXPECT_TRUE(trace.enabled());  // Clear does not disable
}

TEST(TraceRecorderTest, AnnotationsAreBounded) {
  TraceRecorder trace;
  trace.Enable(4);
  for (size_t i = 0; i < TraceRecorder::kMaxAnnotations + 10; ++i) {
    trace.Annotate(i, "m" + std::to_string(i));
  }
  EXPECT_EQ(trace.annotations().size(), TraceRecorder::kMaxAnnotations);
  // Oldest were dropped: the first surviving annotation is number 10.
  EXPECT_EQ(trace.annotations().front().first, 10u);
}

TEST(TraceRecorderTest, ZeroCapacityIsClampedToOne) {
  TraceRecorder trace;
  trace.Enable(0);
  EXPECT_EQ(trace.capacity(), 1u);
  trace.Emit(TraceEventKind::kSend, 1, 0, 0);
  trace.Emit(TraceEventKind::kSend, 2, 0, 0);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.Snapshot()[0].ts, 2u);
}

// End-to-end: a multi-GDP system run with tracing enabled produces a coherent timeline.
TEST(TraceSystemTest, MultiProcessorRunProducesCoherentTimeline) {
  SystemConfig config;
  config.processors = 4;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.trace = true;
  System system(config);

  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 4,
                                                 QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());

  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(send_loop)
      .CreateObject(4, 3, 32)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(recv_loop)
      .Receive(4, 2)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(consumer.Build(), options).ok());
  ASSERT_TRUE(system.Spawn(producer.Build(), options).ok());
  system.Run();

  const TraceRecorder& trace = system.machine().trace();
  auto events = trace.Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(trace.dropped(), 0u);

  Cycles last_ts = 0;
  uint64_t dispatches = 0;
  uint64_t sends = 0;
  uint64_t receives = 0;
  uint64_t terminates = 0;
  for (const TraceEvent& event : events) {
    // Virtual time never runs backwards.
    EXPECT_GE(event.ts, last_ts);
    last_ts = event.ts;
    // Processor ids are either the sentinel or a real GDP.
    if (event.cpu != kTraceNoProcessor) {
      EXPECT_LT(event.cpu, 4);
    }
    // Message events carry the port index in payload a; count only our port's traffic
    // (the dispatching and daemon ports also send and receive).
    switch (event.kind) {
      case TraceEventKind::kDispatch: ++dispatches; break;
      case TraceEventKind::kSend:
        if (event.a == port.value().index()) ++sends;
        break;
      case TraceEventKind::kReceive:
        if (event.a == port.value().index()) ++receives;
        break;
      case TraceEventKind::kTerminate: ++terminates; break;
      default: break;
    }
  }
  EXPECT_EQ(dispatches, system.kernel().stats().dispatches);
  EXPECT_EQ(sends, 8u);
  EXPECT_EQ(receives, 8u);
  EXPECT_EQ(terminates, 2u);

  // The always-on histograms agree with the trace.
  EXPECT_EQ(system.machine().latency().dispatch_latency.count(),
            system.kernel().stats().dispatches);
}

// Tracing must be a pure observer: the same workload reaches the same virtual time with
// tracing on and off.
TEST(TraceSystemTest, TracingDoesNotPerturbVirtualTime) {
  auto run = [](bool trace) {
    SystemConfig config;
    config.processors = 2;
    config.machine.memory_bytes = 2 * 1024 * 1024;
    config.trace = trace;
    System system(config);
    Assembler a("work");
    a.Compute(5000).Halt();
    EXPECT_TRUE(system.Spawn(a.Build()).ok());
    system.Run();
    return system.now();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace imax432

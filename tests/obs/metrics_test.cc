#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include "src/os/schedulers.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

SystemConfig TraceConfig() {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.trace = true;
  return config;
}

void RunSmallWorkload(System& system) {
  Assembler a("worker");
  a.Compute(2000).Halt();
  ASSERT_TRUE(system.Spawn(a.Build()).ok());
  system.Run();
}

TEST(MetricsRegistryTest, SystemRegistryCollectsEveryGroup) {
  System system(TraceConfig());
  RunSmallWorkload(system);

  MetricsRegistry registry(&system);
  MetricsSnapshot snapshot = registry.Collect();
  EXPECT_EQ(snapshot.now, system.now());

  std::vector<std::string> groups;
  for (const auto& [group, counters] : snapshot.groups) {
    groups.push_back(group);
    EXPECT_FALSE(counters.empty()) << group;
  }
  EXPECT_EQ(groups, (std::vector<std::string>{"kernel", "ports", "gc", "memory", "patrol",
                                              "process_manager", "filing", "machine",
                                              "profiler"}));
}

TEST(MetricsRegistryTest, CountersMatchSourceStats) {
  System system(TraceConfig());
  RunSmallWorkload(system);

  MetricsRegistry registry(&system);
  MetricsSnapshot snapshot = registry.Collect();

  auto find = [&](const std::string& group, const std::string& name) -> uint64_t {
    for (const auto& [g, counters] : snapshot.groups) {
      if (g != group) continue;
      for (const auto& [n, value] : counters) {
        if (n == name) return value;
      }
    }
    ADD_FAILURE() << group << "." << name << " not found";
    return 0;
  };

  EXPECT_EQ(find("kernel", "dispatches"), system.kernel().stats().dispatches);
  EXPECT_EQ(find("kernel", "instructions_executed"),
            system.kernel().stats().instructions_executed);
  EXPECT_EQ(find("memory", "objects_created"), system.memory().stats().objects_created);
  EXPECT_EQ(find("machine", "trace_events_recorded"),
            system.machine().trace().total_emitted());
  EXPECT_GT(find("machine", "bus_transactions"), 0u);
}

TEST(MetricsRegistryTest, DispatchHistogramCountsEveryDispatch) {
  System system(TraceConfig());
  RunSmallWorkload(system);

  MetricsRegistry registry(&system);
  MetricsSnapshot snapshot = registry.Collect();

  const HistogramSnapshot* dispatch = nullptr;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "dispatch_latency") dispatch = &h;
  }
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->count, system.kernel().stats().dispatches);
  EXPECT_GT(dispatch->count, 0u);
  EXPECT_GE(dispatch->p95, dispatch->p50);
  EXPECT_GE(dispatch->max, dispatch->min);
  // Trailing-zero trimming never drops a populated bucket.
  uint64_t in_buckets = 0;
  for (uint64_t b : dispatch->buckets) in_buckets += b;
  EXPECT_EQ(in_buckets, dispatch->count);
}

TEST(MetricsRegistryTest, CustomProvidersAndClock) {
  MetricsRegistry registry;
  registry.SetClock([] { return Cycles{1234}; });
  registry.Add("custom", [] { return CounterMap{{"answer", 42}}; });
  SchedulerStats scheduler;
  scheduler.admitted = 7;
  registry.Add("scheduler", [&scheduler] { return CountersFor(scheduler); });
  Histogram histogram;
  histogram.Record(100);
  registry.AddHistogram("waits", &histogram);

  MetricsSnapshot snapshot = registry.Collect();
  EXPECT_EQ(snapshot.now, 1234u);
  ASSERT_EQ(snapshot.groups.size(), 2u);
  EXPECT_EQ(snapshot.groups[0].first, "custom");
  EXPECT_EQ(snapshot.groups[0].second[0].second, 42u);
  EXPECT_EQ(snapshot.groups[1].second[0].second, 7u);  // admitted
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormed) {
  System system(TraceConfig());
  RunSmallWorkload(system);

  MetricsRegistry registry(&system);
  std::string json = registry.Collect().ToJson();

  // Structural spot checks (no JSON parser in tree): balanced braces/brackets, expected
  // top-level keys, at least one counter and histogram rendered.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"now_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":{"), std::string::npos);
  EXPECT_NE(json.find("\"dispatches\":"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"dispatch_latency\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace imax432

// CycleProfiler unit tests plus the system-level attribution contracts: gap-free per-GDP
// accounting, daemon rebinning, deterministic sampling, and the pure-observer guarantee.

#include "src/obs/profiler.h"

#include <gtest/gtest.h>

#include "src/os/system.h"

namespace imax432 {
namespace {

TEST(CycleProfilerTest, DisabledChargesNothing) {
  CycleProfiler profiler;
  profiler.OnProcessorAdded(0, 0);
  profiler.ChargeCpu(0, CycleBucket::kInterpreter, 100);
  profiler.ChargeProcess(7, CycleBucket::kInterpreter, 100);
  profiler.SampleSite(1, 2, 6);
  EXPECT_EQ(profiler.CpuTotal(0), 0u);
  EXPECT_TRUE(profiler.process_buckets().empty());
  EXPECT_TRUE(profiler.hot_sites().empty());
}

TEST(CycleProfilerTest, GapFreeIdentityWithExplicitCharges) {
  CycleProfiler profiler;
  profiler.OnProcessorAdded(0, 100);
  profiler.Enable();
  profiler.ChargeCpu(0, CycleBucket::kDispatch, 400);
  profiler.ChargeCpu(0, CycleBucket::kInterpreter, 300);
  profiler.OpenIdle(0);
  profiler.CloseIdle(0, 1000);  // 200 unaccounted cycles bin as idle
  profiler.FlushOpenIntervals(1100);
  EXPECT_EQ(profiler.CpuTotal(0), 1000u);  // 1100 - epoch_start 100, exactly
  const auto& buckets = profiler.cpus()[0].buckets;
  EXPECT_EQ(buckets[static_cast<size_t>(CycleBucket::kDispatch)], 400u);
  EXPECT_EQ(buckets[static_cast<size_t>(CycleBucket::kInterpreter)], 300u);
  EXPECT_EQ(buckets[static_cast<size_t>(CycleBucket::kIdle)], 300u);  // 200 + 100 tail
}

TEST(CycleProfilerTest, CloseIdleWithoutOpenIsANoOp) {
  CycleProfiler profiler;
  profiler.OnProcessorAdded(0, 0);
  profiler.Enable();
  profiler.ChargeCpu(0, CycleBucket::kInterpreter, 50);
  profiler.CloseIdle(0, 500);  // never opened: the gap stays open for the flush
  EXPECT_EQ(profiler.CpuTotal(0), 50u);
  profiler.FlushOpenIntervals(500);
  EXPECT_EQ(profiler.CpuTotal(0), 500u);
}

TEST(CycleProfilerTest, RetiredCpuBinsTailAsHalted) {
  CycleProfiler profiler;
  profiler.OnProcessorAdded(0, 0);
  profiler.Enable();
  profiler.ChargeCpu(0, CycleBucket::kInterpreter, 100);
  profiler.OnRetired(0, 100);
  profiler.FlushOpenIntervals(1000);
  EXPECT_EQ(profiler.cpus()[0].buckets[static_cast<size_t>(CycleBucket::kHalted)], 900u);
  EXPECT_EQ(profiler.CpuTotal(0), 1000u);
}

TEST(CycleProfilerTest, TagsRebinOnlyInterpreterCycles) {
  CycleProfiler profiler;
  profiler.TagProcess(5, CycleBucket::kGc);  // recorded while still disabled
  profiler.Enable();
  EXPECT_EQ(profiler.ResolveTag(5, CycleBucket::kInterpreter), CycleBucket::kGc);
  EXPECT_EQ(profiler.ResolveTag(5, CycleBucket::kBusWait), CycleBucket::kBusWait);
  EXPECT_EQ(profiler.ResolveTag(6, CycleBucket::kInterpreter), CycleBucket::kInterpreter);
}

TEST(CycleProfilerTest, SamplingTakesEveryNthCharge) {
  CycleProfiler profiler;
  profiler.Enable(/*sample_period=*/4);
  for (uint32_t pc = 0; pc < 16; ++pc) {
    profiler.SampleSite(/*segment=*/9, pc, 6);
  }
  EXPECT_EQ(profiler.samples_taken(), 4u);
  // Deterministic counter: exactly pcs 3, 7, 11, 15 (the 4th, 8th, ... calls).
  for (uint32_t pc : {3u, 7u, 11u, 15u}) {
    uint64_t key = (uint64_t{9} << 32) | pc;
    ASSERT_TRUE(profiler.hot_sites().count(key)) << "pc " << pc;
    EXPECT_EQ(profiler.hot_sites().at(key).samples, 1u);
    EXPECT_EQ(profiler.hot_sites().at(key).cycles, 6u);
  }
}

// --- System-level contracts --------------------------------------------------------------

SystemConfig ProfiledConfig(bool profile, bool gc = false) {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.profile = profile;
  config.start_gc_daemon = gc;
  return config;
}

// Producer/consumer over a tiny port: blocks, idles, and bus traffic all appear.
void SpawnPipeline(System& system) {
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 2,
                                                 QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());

  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 32)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(send_loop)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(recv_loop)
      .Receive(4, 2)
      .Compute(1024)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(consumer.Build(), options).ok());
  ASSERT_TRUE(system.Spawn(producer.Build(), options).ok());
}

TEST(ProfilerSystemTest, AttributionIsGapFreeOnRealWorkload) {
  System system(ProfiledConfig(/*profile=*/true));
  SpawnPipeline(system);
  system.Run();
  CycleProfiler& profiler = system.machine().profiler();
  profiler.FlushOpenIntervals(system.now());
  ASSERT_EQ(profiler.cpus().size(), 2u);
  for (uint16_t cpu = 0; cpu < 2; ++cpu) {
    Cycles online = system.now() - profiler.cpus()[cpu].epoch_start;
    EXPECT_EQ(profiler.CpuTotal(cpu), online) << "GDP " << cpu;
  }
  CycleBucketArray totals = profiler.Totals();
  EXPECT_GT(totals[static_cast<size_t>(CycleBucket::kInterpreter)], 0u);
  EXPECT_GT(totals[static_cast<size_t>(CycleBucket::kBusTransfer)], 0u);
  EXPECT_GT(totals[static_cast<size_t>(CycleBucket::kDispatch)], 0u);
}

TEST(ProfilerSystemTest, ProfilingDoesNotPerturbVirtualTime) {
  Cycles now[2];
  for (int profiled = 0; profiled < 2; ++profiled) {
    System system(ProfiledConfig(profiled == 1));
    SpawnPipeline(system);
    system.Run();
    now[profiled] = system.now();
  }
  EXPECT_EQ(now[0], now[1]);
}

TEST(ProfilerSystemTest, BlockedSenderPortWaitLandsInProcessBuckets) {
  System system(ProfiledConfig(/*profile=*/true));
  SpawnPipeline(system);  // capacity-2 port + slow consumer: the producer must block
  system.Run();
  uint64_t port_wait = 0;
  for (const auto& [process, buckets] : system.machine().profiler().process_buckets()) {
    port_wait += buckets[static_cast<size_t>(CycleBucket::kPortWait)];
  }
  EXPECT_GT(port_wait, 0u);
}

TEST(ProfilerSystemTest, GcDaemonCyclesRebinUnderGc) {
  System system(ProfiledConfig(/*profile=*/true, /*gc=*/true));
  system.Run();  // daemon starts and parks
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0,
                                              system.memory().global_heap());
  Assembler churn("churn");
  auto loop = churn.NewLabel();
  churn.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 64)
      .Bind(loop)
      .CreateObject(4, 2, 32)
      .StoreAd(1, 4, 1)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(churn.Build(), options).ok());
  system.Run();
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  CycleBucketArray totals = system.machine().profiler().Totals();
  EXPECT_GT(totals[static_cast<size_t>(CycleBucket::kGc)], 0u);
}

TEST(ProfilerSystemTest, HotSiteSamplingIsDeterministicAcrossRuns) {
  auto run = [](CycleProfiler::HotSite* first, uint64_t* first_key, uint64_t* taken,
                size_t* sites) {
    SystemConfig config = ProfiledConfig(/*profile=*/true);
    config.profile_sample_period = 16;
    System system(config);
    SpawnPipeline(system);
    system.Run();
    const CycleProfiler& profiler = system.machine().profiler();
    *taken = profiler.samples_taken();
    *sites = profiler.hot_sites().size();
    ASSERT_FALSE(profiler.hot_sites().empty());
    *first_key = profiler.hot_sites().begin()->first;
    *first = profiler.hot_sites().begin()->second;
  };
  CycleProfiler::HotSite site_a, site_b;
  uint64_t key_a = 0, key_b = 0, taken_a = 0, taken_b = 0;
  size_t sites_a = 0, sites_b = 0;
  run(&site_a, &key_a, &taken_a, &sites_a);
  run(&site_b, &key_b, &taken_b, &sites_b);
  EXPECT_GT(taken_a, 0u);
  EXPECT_EQ(taken_a, taken_b);
  EXPECT_EQ(sites_a, sites_b);
  EXPECT_EQ(key_a, key_b);
  EXPECT_EQ(site_a.samples, site_b.samples);
  EXPECT_EQ(site_a.cycles, site_b.cycles);
}

}  // namespace
}  // namespace imax432

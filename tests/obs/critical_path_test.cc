// Critical-path extraction over span trees: latency aggregation per root request, the
// parent-link chain walk, dominant-bucket selection, and the end-to-end system contract
// that the analysis names a plausible dominant bucket on a real pipeline.

#include "src/obs/critical_path.h"

#include <gtest/gtest.h>

#include "src/os/system.h"

namespace imax432 {
namespace {

TEST(CriticalPathTest, EmptyTracerYieldsEmptyReport) {
  SpanTracer tracer;
  tracer.Enable();
  CriticalPathReport report = AnalyzeCriticalPath(tracer);
  EXPECT_EQ(report.roots, 0u);
  EXPECT_EQ(report.spans, 0u);
  EXPECT_EQ(report.longest_depth, 0u);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(CriticalPathTest, SingleSpanRequest) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 100, 300);  // span start 200ish
  tracer.FlushOpen();
  CriticalPathReport report = AnalyzeCriticalPath(tracer);
  EXPECT_EQ(report.roots, 1u);
  EXPECT_EQ(report.spans, 1u);
  EXPECT_EQ(report.longest_depth, 1u);
  const SpanRecord& span = tracer.spans()[0];
  EXPECT_EQ(report.longest_latency, span.end - span.start);
  EXPECT_EQ(report.dominant, CycleBucket::kInterpreter);
}

TEST(CriticalPathTest, ChainWalkFollowsParentLinks) {
  SpanTracer tracer;
  tracer.Enable();
  // proc 1 --(send)--> proc 2 --(send)--> proc 3: a depth-3 causal chain.
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 100, 200);
  tracer.OnSend(1, /*seq=*/1, 300);
  tracer.OnReceive(2, /*seq=*/1, 400);
  tracer.ChargeCurrent(2, CycleBucket::kBusTransfer, 500, 900);
  tracer.OnSend(2, /*seq=*/2, 1000);
  tracer.OnReceive(3, /*seq=*/2, 1100);
  tracer.ChargeCurrent(3, CycleBucket::kPortWait, 50, 1200);
  tracer.FlushOpen();
  CriticalPathReport report = AnalyzeCriticalPath(tracer);
  EXPECT_EQ(report.roots, 1u);
  EXPECT_EQ(report.spans, 3u);
  EXPECT_EQ(report.longest_depth, 3u);
  EXPECT_EQ(report.chain_cycles[static_cast<size_t>(CycleBucket::kInterpreter)], 100u);
  EXPECT_EQ(report.chain_cycles[static_cast<size_t>(CycleBucket::kBusTransfer)], 500u);
  EXPECT_EQ(report.chain_cycles[static_cast<size_t>(CycleBucket::kPortWait)], 50u);
  EXPECT_EQ(report.dominant, CycleBucket::kBusTransfer);
  // End-to-end: first span's start to last span's end.
  EXPECT_EQ(report.longest_latency, 1200u - tracer.spans()[0].start);
}

TEST(CriticalPathTest, LongestRootWinsAndLatenciesFeedHistogram) {
  SpanTracer tracer;
  tracer.Enable();
  // Request A: one short episode on proc 1.
  tracer.ChargeCurrent(1, CycleBucket::kInterpreter, 10, 110);
  tracer.OnBlockReceive(1, 110);
  // Request B: a long episode on proc 2.
  tracer.ChargeCurrent(2, CycleBucket::kInterpreter, 5000, 9000);
  tracer.FlushOpen();
  CriticalPathReport report = AnalyzeCriticalPath(tracer);
  EXPECT_EQ(report.roots, 2u);
  EXPECT_EQ(report.longest_root, tracer.spans()[1].root);
  EXPECT_EQ(tracer.latency().count(), 2u);
  EXPECT_EQ(report.max_latency, report.longest_latency);
  EXPECT_LE(report.p50, report.p99);
  EXPECT_LE(report.p99, report.p999);
}

TEST(CriticalPathTest, ToStringNamesTheDominantBucket) {
  SpanTracer tracer;
  tracer.Enable();
  tracer.ChargeCurrent(1, CycleBucket::kBusWait, 400, 500);
  tracer.FlushOpen();
  CriticalPathReport report = AnalyzeCriticalPath(tracer);
  std::string text = report.ToString();
  EXPECT_NE(text.find("dominant bucket: bus_wait"), std::string::npos) << text;
  EXPECT_NE(text.find("critical path: 1 roots"), std::string::npos) << text;
}

// --- System-level contract ---------------------------------------------------------------

TEST(CriticalPathSystemTest, PipelineReportIsCoherent) {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.span_trace = true;
  System system(config);
  auto port = system.kernel().ports().CreatePort(system.memory().global_heap(), 2,
                                                 QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .CreateObject(4, 3, 32)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(send_loop)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 8)
      .Bind(recv_loop)
      .Receive(4, 2)
      .Compute(256)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(consumer.Build(), options).ok());
  ASSERT_TRUE(system.Spawn(producer.Build(), options).ok());
  system.Run();

  SpanTracer& tracer = system.machine().spans();
  tracer.FlushOpen();
  CriticalPathReport report = AnalyzeCriticalPath(tracer);
  EXPECT_GT(report.roots, 0u);
  EXPECT_GT(report.spans, 0u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_GT(report.longest_depth, 0u);
  EXPECT_GT(report.longest_latency, 0u);
  EXPECT_LT(static_cast<size_t>(report.dominant), kCycleBucketCount);
  Cycles chain_total = 0;
  for (Cycles c : report.chain_cycles) {
    chain_total += c;
  }
  EXPECT_GT(chain_total, 0u);
  // The chain is a subset of one request: it cannot outweigh the whole run.
  EXPECT_LE(chain_total, system.now());
  EXPECT_EQ(tracer.latency().count(), report.roots);
}

}  // namespace
}  // namespace imax432

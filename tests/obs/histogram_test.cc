#include "src/obs/histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(HistogramTest, ZeroGoesToBucketZero) {
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PowerOfTwoBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(7), 3u);
  EXPECT_EQ(Histogram::BucketFor(8), 4u);
  EXPECT_EQ(Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(Histogram::BucketFor(1024), 11u);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  constexpr size_t kLast = Histogram::kBuckets - 1;
  EXPECT_EQ(Histogram::BucketFor(1u << 24), kLast);
  EXPECT_EQ(Histogram::BucketFor(1ull << 40), kLast);
  EXPECT_EQ(Histogram::BucketFor(~0ull), kLast);
  Histogram h;
  h.Record(~0ull);
  EXPECT_EQ(h.bucket(kLast), 1u);
  EXPECT_EQ(h.max(), ~0ull);
}

TEST(HistogramTest, BucketLowerBoundInvertsBucketFor) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  for (size_t bucket = 1; bucket < Histogram::kBuckets; ++bucket) {
    Cycles lower = Histogram::BucketLowerBound(bucket);
    EXPECT_EQ(Histogram::BucketFor(lower), bucket) << "bucket " << bucket;
    if (bucket > 1) {
      EXPECT_EQ(Histogram::BucketFor(lower - 1), bucket - 1) << "bucket " << bucket;
    }
  }
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, EmptyHistogramIsInert) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0u);
  EXPECT_EQ(h.Percentile(99.0), 0u);
}

TEST(HistogramTest, PercentileReturnsBucketLowerBound) {
  Histogram h;
  // 90 small values in bucket 7 (64..127), 10 large in bucket 11 (1024..2047).
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(2000);
  EXPECT_EQ(h.Percentile(50.0), Histogram::BucketLowerBound(Histogram::BucketFor(100)));
  EXPECT_EQ(h.Percentile(99.0), Histogram::BucketLowerBound(Histogram::BucketFor(2000)));
}

// Documented accuracy bound (DESIGN.md §7): Percentile(p) returns the lower bound of the
// bucket holding the exact order statistic at the same rank, so for any sample set
// estimate <= exact < 2 * estimate (degenerating to exact == estimate == 0 at the bottom).
// p999 needs >= 1000 samples to be meaningful, so drive it with 5000.
TEST(HistogramTest, PercentileAccuracyBoundOnLargeSample) {
  auto check = [](const std::vector<Cycles>& raw) {
    Histogram h;
    std::vector<Cycles> values = raw;
    for (Cycles v : values) {
      h.Record(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {50.0, 95.0, 99.0, 99.9}) {
      // The histogram's rank convention: max(1, floor(p% of count)), clamped to count.
      uint64_t rank = static_cast<uint64_t>(p / 100.0 * values.size());
      if (rank < 1) rank = 1;
      if (rank > values.size()) rank = values.size();
      Cycles exact = values[rank - 1];
      Cycles estimate = h.Percentile(p);
      EXPECT_EQ(estimate, Histogram::BucketLowerBound(Histogram::BucketFor(exact)))
          << "p" << p;
      EXPECT_LE(estimate, exact) << "p" << p;
      if (estimate > 0) {
        EXPECT_LT(exact, 2 * estimate) << "p" << p;
      } else {
        EXPECT_EQ(exact, 0u) << "p" << p;
      }
    }
  };

  // Broad spread (latencies over five orders of magnitude) and a heavy-tailed mix with a
  // sharp p999 tail; both deterministic via a fixed LCG.
  uint64_t seed = 0x20260808u;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  std::vector<Cycles> broad;
  std::vector<Cycles> tailed;
  for (int i = 0; i < 5000; ++i) {
    broad.push_back(next() % 100000);
    tailed.push_back(i % 500 == 0 ? 1000000 + next() % 1000000 : 100 + next() % 300);
  }
  check(broad);
  check(tailed);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(h.bucket(i), 0u);
  }
}

TEST(HistogramTest, LatencyHistogramsResetTogether) {
  LatencyHistograms latency;
  latency.port_wait.Record(7);
  latency.dispatch_latency.Record(7);
  latency.domain_call.Record(7);
  latency.allocation.Record(7);
  latency.Reset();
  EXPECT_EQ(latency.port_wait.count(), 0u);
  EXPECT_EQ(latency.dispatch_latency.count(), 0u);
  EXPECT_EQ(latency.domain_call.count(), 0u);
  EXPECT_EQ(latency.allocation.count(), 0u);
}

}  // namespace
}  // namespace imax432

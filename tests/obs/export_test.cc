#include "src/obs/perfetto.h"

#include <gtest/gtest.h>

#include "src/base/log.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

SystemConfig TraceConfig() {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.trace = true;
  return config;
}

// Producer/consumer over a tiny port plus a domain call per item: every major event family
// appears in one run.
void RunTracedWorkload(System& system) {
  auto& kernel = system.kernel();
  auto port = kernel.ports().CreatePort(system.memory().global_heap(), 2,
                                        QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  kernel.symbols().Name(port.value().index(), "test port");

  Assembler leaf("leaf");
  leaf.Compute(64).ClearAd(7).Return();
  auto segment = kernel.programs().Register(leaf.Build());
  ASSERT_TRUE(segment.ok());
  auto domain = kernel.CreateDomain({segment.value()});
  ASSERT_TRUE(domain.ok());

  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 3,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  (void)system.machine().addressing().WriteAd(carrier.value(), 0, port.value());
  (void)system.machine().addressing().WriteAd(carrier.value(), 1,
                                              system.memory().global_heap());
  (void)system.machine().addressing().WriteAd(carrier.value(), 2, domain.value());

  Assembler producer("producer");
  auto send_loop = producer.NewLabel();
  producer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)
      .LoadAd(5, 1, 2)
      .LoadImm(0, 0)
      .LoadImm(1, 6)
      .Bind(send_loop)
      .CreateObject(4, 3, 32)
      .Call(5, 0)
      .Send(2, 4)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, send_loop)
      .Halt();
  Assembler consumer("consumer");
  auto recv_loop = consumer.NewLabel();
  consumer.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 6)
      .Bind(recv_loop)
      .Receive(4, 2)
      .Compute(1024)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, recv_loop)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(system.Spawn(consumer.Build(), options).ok());
  ASSERT_TRUE(system.Spawn(producer.Build(), options).ok());
  system.Run();
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
}

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTraceExportTest, ContainsEveryMajorEventFamily) {
  System system(TraceConfig());
  RunTracedWorkload(system);

  std::string json = ExportChromeTrace(system.machine().trace(), &system.kernel().symbols());

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // One named thread track per processor plus the GC and kernel tracks.
  EXPECT_NE(json.find("\"name\":\"GDP 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"GDP 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"GC\""), std::string::npos);
  // Domain calls are complete slices whose duration is the calibrated 65 us switch cost.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"domain call\""), 6u);
  EXPECT_NE(json.find("\"dur\":65.000"), std::string::npos);
  // Port waits are async begin/end pairs.
  EXPECT_NE(json.find("\"ph\":\"b\",\"cat\":\"port-wait\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\",\"cat\":\"port-wait\""), std::string::npos);
  // The collector's phases appear as slices on the GC track.
  EXPECT_NE(json.find("\"name\":\"gc whiten\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gc mark\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gc sweep\""), std::string::npos);
  // Symbol names survive into the timeline.
  EXPECT_NE(json.find("test port"), std::string::npos);
  // Every B has a matching E (close-at-end keeps them balanced).
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), CountOccurrences(json, "\"ph\":\"E\""));
  // JSON structure is balanced.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTraceExportTest, TimestampsAreMicrosecondsAtEightMegahertz) {
  std::vector<TraceEvent> events(1);
  events[0].ts = 800;  // 100 us at 8 MHz
  events[0].process = 1;
  events[0].a = 0;
  events[0].b = 0;
  events[0].c = 0;
  events[0].cpu = 0;
  events[0].kind = TraceEventKind::kDispatch;
  std::string json = ExportChromeTrace(events, {}, nullptr);
  EXPECT_NE(json.find("\"ts\":100.000"), std::string::npos);
}

TEST(ChromeTraceExportTest, EscapesNamesFromSymbolTable) {
  SymbolTable symbols;
  symbols.Name(1, "quo\"te\\path");
  std::vector<TraceEvent> events(1);
  events[0].ts = 8;
  events[0].process = 1;
  events[0].a = 0;
  events[0].b = 0;
  events[0].c = 0;
  events[0].cpu = 0;
  events[0].kind = TraceEventKind::kDispatch;
  std::string json = ExportChromeTrace(events, {}, &symbols);
  EXPECT_NE(json.find("quo\\\"te\\\\path"), std::string::npos);
}

TEST(ChromeTraceExportTest, EmptyTraceStillProducesValidSkeleton) {
  TraceRecorder trace;
  std::string json = ExportChromeTrace(trace, nullptr);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("iMAX-432"), std::string::npos);
}

// kTrace interpreter dumps route into the recorder as annotations instead of stderr while
// a system with tracing enabled is alive.
TEST(ChromeTraceExportTest, KTraceLogLinesBecomeAnnotations) {
  LogSeverity saved = GetLogSeverity();
  SetLogSeverity(LogSeverity::kTrace);
  {
    System system(TraceConfig());
    Assembler a("tiny");
    a.Compute(64).Halt();
    ASSERT_TRUE(system.Spawn(a.Build()).ok());
    system.Run();

    const TraceRecorder& trace = system.machine().trace();
    EXPECT_FALSE(trace.annotations().empty());
    // The per-instruction dump line mentions the pc; it must be in the annotations now.
    bool found = false;
    for (const auto& [ts, text] : trace.annotations()) {
      if (text.find("pc") != std::string::npos) found = true;
    }
    EXPECT_TRUE(found);

    // kInstruction events mirror the dump on the timeline.
    bool instruction_event = false;
    for (const TraceEvent& event : trace.Snapshot()) {
      if (event.kind == TraceEventKind::kInstruction) instruction_event = true;
    }
    EXPECT_TRUE(instruction_event);

    std::string json = ExportChromeTrace(trace, nullptr);
    EXPECT_NE(json.find("\"name\":\"log\""), std::string::npos);
  }
  SetLogSeverity(saved);
}

// The sink is uninstalled when the traced system dies: later kTrace lines must not touch
// freed machinery (regression guard for the thunk's lifetime).
TEST(ChromeTraceExportTest, SinkUninstalledAfterSystemDestruction) {
  {
    System system(TraceConfig());
    system.Run();
  }
  LogSeverity saved = GetLogSeverity();
  SetLogSeverity(LogSeverity::kTrace);
  IMAX_LOG_TRACE("dangling sink check %d", 1);  // must hit stderr, not a dead recorder
  SetLogSeverity(saved);
}

}  // namespace
}  // namespace imax432

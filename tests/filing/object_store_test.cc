#include "src/filing/object_store.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest()
      : machine_(MakeConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        types_(&kernel_),
        store_(&kernel_, &types_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 256 * 1024;
    config.object_table_capacity = 1024;
    return config;
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  TypeManagerFacility types_;
  ObjectStore store_;
};

TEST_F(ObjectStoreTest, PlainObjectRoundTrip) {
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 32, 0,
                                     rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(machine_.addressing().WriteData(object.value(), 8, 8, 0xfeedface).ok());

  ASSERT_TRUE(store_.File("doc", object.value()).ok());
  ASSERT_TRUE(store_.Contains("doc"));

  auto restored = store_.Retrieve("doc", memory_.global_heap());
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored.value().SameObject(object.value()));  // a fresh object
  EXPECT_EQ(machine_.addressing().ReadData(restored.value(), 8, 8).value(), 0xfeedfaceu);
}

TEST_F(ObjectStoreTest, TypedObjectKeepsIdentityThroughStore) {
  // §7.2: type identity survives a storage channel that could not know the type statically.
  auto tdo = types_.CreateTypeDefinition(0xBEEF);
  ASSERT_TRUE(tdo.ok());
  auto object =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 0,
                               rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(machine_.addressing().WriteData(object.value(), 0, 4, 1234).ok());

  ASSERT_TRUE(store_.File("drive-config", object.value()).ok());
  EXPECT_EQ(store_.FiledTypeId("drive-config").value(), 0xBEEFu);

  auto restored = store_.Retrieve("drive-config", memory_.global_heap(), tdo.value());
  ASSERT_TRUE(restored.ok());
  // The resurrected object is hardware-recognizably of the same user type.
  EXPECT_TRUE(types_.CheckType(restored.value(), tdo.value()).ok());
  EXPECT_EQ(machine_.addressing().ReadData(restored.value(), 0, 4).value(), 1234u);
}

TEST_F(ObjectStoreTest, TypedImageRejectsWrongTdo) {
  auto tdo_a = types_.CreateTypeDefinition(1);
  auto tdo_b = types_.CreateTypeDefinition(2);
  ASSERT_TRUE(tdo_a.ok() && tdo_b.ok());
  auto object =
      types_.CreateTypedObject(tdo_a.value(), memory_.global_heap(), 16, 0, rights::kRead);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(store_.File("x", object.value()).ok());

  EXPECT_EQ(store_.Retrieve("x", memory_.global_heap(), tdo_b.value()).fault(),
            Fault::kTypeMismatch);
  EXPECT_EQ(store_.Retrieve("x", memory_.global_heap()).fault(), Fault::kTypeMismatch);
  EXPECT_EQ(store_.stats().type_checks_failed, 2u);
}

TEST_F(ObjectStoreTest, UntypedImageRejectsTypedRetrieve) {
  auto plain = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                    rights::kRead);
  auto tdo = types_.CreateTypeDefinition(3);
  ASSERT_TRUE(plain.ok() && tdo.ok());
  ASSERT_TRUE(store_.File("p", plain.value()).ok());
  EXPECT_EQ(store_.Retrieve("p", memory_.global_heap(), tdo.value()).fault(),
            Fault::kTypeMismatch);
}

TEST_F(ObjectStoreTest, FilingRequiresReadRights) {
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                     rights::kWrite);
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(store_.File("no", object.value()).fault(), Fault::kRightsViolation);
}

TEST_F(ObjectStoreTest, LiveCapabilitiesDoNotFile) {
  auto holder = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 2,
                                     rights::kRead | rights::kWrite);
  auto payload = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                      rights::kRead);
  ASSERT_TRUE(holder.ok() && payload.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(holder.value(), 0, payload.value()).ok());
  EXPECT_EQ(store_.File("bad", holder.value()).fault(), Fault::kInvalidArgument);
}

TEST_F(ObjectStoreTest, RetrieveSurvivesOriginalDestruction) {
  // The store is passive: the filed image outlives the original object.
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                     rights::kRead | rights::kWrite | rights::kDelete);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(machine_.addressing().WriteData(object.value(), 0, 8, 777).ok());
  ASSERT_TRUE(store_.File("persistent", object.value()).ok());
  ASSERT_TRUE(memory_.DestroyObject(object.value()).ok());

  auto restored = store_.Retrieve("persistent", memory_.global_heap());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(machine_.addressing().ReadData(restored.value(), 0, 8).value(), 777u);
}

TEST_F(ObjectStoreTest, CompositeGraphRoundTrip) {
  // A three-node structure with a cycle: root -> a -> b -> a, root.data = 1, a.data = 2,
  // b.data = 3. Filed as structure, retrieved as a fresh isomorphic graph.
  auto make_node = [&](uint64_t stamp) {
    auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 2,
                                       rights::kRead | rights::kWrite);
    EXPECT_TRUE(object.ok());
    EXPECT_TRUE(machine_.addressing().WriteData(object.value(), 0, 8, stamp).ok());
    return object.value();
  };
  AccessDescriptor root = make_node(1);
  AccessDescriptor a = make_node(2);
  AccessDescriptor b = make_node(3);
  ASSERT_TRUE(machine_.addressing().WriteAd(root, 0, a).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(a, 0, b).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(b, 1, a).ok());  // cycle

  ASSERT_TRUE(store_.FileComposite("graph", root).ok());
  EXPECT_EQ(store_.CompositeSize("graph").value(), 3u);

  auto restored = store_.RetrieveComposite("graph", memory_.global_heap());
  ASSERT_TRUE(restored.ok());
  AccessDescriptor new_root = restored.value();
  EXPECT_FALSE(new_root.SameObject(root));
  EXPECT_EQ(machine_.addressing().ReadData(new_root, 0, 8).value(), 1u);
  auto new_a = machine_.addressing().ReadAd(new_root, 0);
  ASSERT_TRUE(new_a.ok());
  EXPECT_EQ(machine_.addressing().ReadData(new_a.value(), 0, 8).value(), 2u);
  auto new_b = machine_.addressing().ReadAd(new_a.value(), 0);
  ASSERT_TRUE(new_b.ok());
  EXPECT_EQ(machine_.addressing().ReadData(new_b.value(), 0, 8).value(), 3u);
  // The cycle is rebuilt: b's slot 1 is the same fresh a.
  auto back = machine_.addressing().ReadAd(new_b.value(), 1);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().SameObject(new_a.value()));
}

TEST_F(ObjectStoreTest, CompositeSurvivesOriginalDestruction) {
  auto root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 1,
                                   rights::kAll);
  auto leaf = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                   rights::kAll);
  ASSERT_TRUE(root.ok() && leaf.ok());
  ASSERT_TRUE(machine_.addressing().WriteData(leaf.value(), 0, 8, 55).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(root.value(), 0, leaf.value()).ok());
  ASSERT_TRUE(store_.FileComposite("tree", root.value()).ok());
  // Clear the edge first (destroying a referenced object would otherwise dangle), then
  // destroy both originals.
  ASSERT_TRUE(machine_.addressing().WriteAd(root.value(), 0, AccessDescriptor()).ok());
  ASSERT_TRUE(memory_.DestroyObject(leaf.value()).ok());
  ASSERT_TRUE(memory_.DestroyObject(root.value()).ok());

  auto restored = store_.RetrieveComposite("tree", memory_.global_heap());
  ASSERT_TRUE(restored.ok());
  auto new_leaf = machine_.addressing().ReadAd(restored.value(), 0);
  ASSERT_TRUE(new_leaf.ok());
  EXPECT_EQ(machine_.addressing().ReadData(new_leaf.value(), 0, 8).value(), 55u);
}

TEST_F(ObjectStoreTest, TypedCompositeNeedsResolver) {
  auto tdo = types_.CreateTypeDefinition(0x77);
  ASSERT_TRUE(tdo.ok());
  auto root = types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 1,
                                       rights::kRead | rights::kWrite);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(store_.FileComposite("typed-graph", root.value()).ok());

  // Without a resolver: type check fails.
  EXPECT_EQ(store_.RetrieveComposite("typed-graph", memory_.global_heap()).fault(),
            Fault::kTypeMismatch);
  // With the right resolver: identity restored and hardware-checkable.
  auto restored = store_.RetrieveComposite(
      "typed-graph", memory_.global_heap(),
      [&](uint32_t type_id) {
        return type_id == 0x77 ? tdo.value() : AccessDescriptor();
      });
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(types_.CheckType(restored.value(), tdo.value()).ok());
}

TEST_F(ObjectStoreTest, CompositeRejectsDanglingEdges) {
  auto root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 1,
                                   rights::kAll);
  auto doomed = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                     rights::kAll);
  ASSERT_TRUE(root.ok() && doomed.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(root.value(), 0, doomed.value()).ok());
  // Free the referent behind the store's back (simulates a racing explicit destroy).
  ASSERT_TRUE(machine_.table().Free(doomed.value().index()).ok());
  EXPECT_EQ(store_.FileComposite("broken", root.value()).fault(), Fault::kInvalidAccess);
}

TEST_F(ObjectStoreTest, RemoveAndMissingNames) {
  EXPECT_EQ(store_.Retrieve("ghost", memory_.global_heap()).fault(), Fault::kNotFound);
  EXPECT_EQ(store_.Remove("ghost").fault(), Fault::kNotFound);
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                     rights::kRead);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(store_.File("temp", object.value()).ok());
  ASSERT_TRUE(store_.Remove("temp").ok());
  EXPECT_FALSE(store_.Contains("temp"));
}

// --- Namespace consistency: composites are first-class citizens of the store ---

TEST_F(ObjectStoreTest, CompositeNamesAreVisibleToContainsSizeRemove) {
  auto root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                   rights::kRead);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(store_.FileComposite("graph", root.value()).ok());

  // Regression: Contains/size/Remove used to consult only the plain-image map, so a filed
  // composite was invisible to maintenance — unremovable and uncounted.
  EXPECT_TRUE(store_.Contains("graph"));
  EXPECT_EQ(store_.size(), 1u);
  ASSERT_TRUE(store_.Remove("graph").ok());
  EXPECT_FALSE(store_.Contains("graph"));
  EXPECT_EQ(store_.size(), 0u);
  EXPECT_EQ(store_.Remove("graph").fault(), Fault::kNotFound);
}

TEST_F(ObjectStoreTest, FiledTypeIdReportsCompositeRootType) {
  auto tdo = types_.CreateTypeDefinition(0x51);
  ASSERT_TRUE(tdo.ok());
  auto typed_root = types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 1,
                                             rights::kRead | rights::kWrite);
  auto plain_leaf = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                         rights::kRead);
  ASSERT_TRUE(typed_root.ok() && plain_leaf.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(typed_root.value(), 0, plain_leaf.value()).ok());
  ASSERT_TRUE(store_.FileComposite("typed-tree", typed_root.value()).ok());

  auto untyped_root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                           rights::kRead);
  ASSERT_TRUE(untyped_root.ok());
  ASSERT_TRUE(store_.FileComposite("plain-tree", untyped_root.value()).ok());

  EXPECT_EQ(store_.FiledTypeId("typed-tree").value(), 0x51u);
  EXPECT_EQ(store_.FiledTypeId("plain-tree").value(), 0u);
  EXPECT_EQ(store_.FiledTypeId("absent").fault(), Fault::kNotFound);
}

TEST_F(ObjectStoreTest, RefilingUnderSameNameReplacesAcrossKinds) {
  auto image = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                    rights::kRead);
  auto root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8, 0,
                                   rights::kRead);
  ASSERT_TRUE(image.ok() && root.ok());
  // Plain image, then a composite under the same name: one namespace, one entry.
  ASSERT_TRUE(store_.File("n", image.value()).ok());
  ASSERT_TRUE(store_.FileComposite("n", root.value()).ok());
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_TRUE(store_.CompositeSize("n").ok());
  // And back again: the composite entry must go away.
  ASSERT_TRUE(store_.File("n", image.value()).ok());
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_EQ(store_.CompositeSize("n").fault(), Fault::kNotFound);
}

// --- Composite edge cases: atomicity of failed retrievals ---

TEST_F(ObjectStoreTest, SelfEdgeCompositeRoundTrips) {
  auto root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 1,
                                   rights::kRead | rights::kWrite);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(machine_.addressing().WriteData(root.value(), 0, 8, 9).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(root.value(), 0, root.value()).ok());

  ASSERT_TRUE(store_.FileComposite("selfie", root.value()).ok());
  EXPECT_EQ(store_.CompositeSize("selfie").value(), 1u);

  auto restored = store_.RetrieveComposite("selfie", memory_.global_heap());
  ASSERT_TRUE(restored.ok());
  auto self = machine_.addressing().ReadAd(restored.value(), 0);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self.value().SameObject(restored.value()));
  EXPECT_EQ(machine_.addressing().ReadData(self.value(), 0, 8).value(), 9u);
}

TEST_F(ObjectStoreTest, EmptyDataPartsFileAndRetrieve) {
  auto root = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 0, 1,
                                   rights::kRead | rights::kWrite);
  auto leaf = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 0, 0,
                                   rights::kRead);
  ASSERT_TRUE(root.ok() && leaf.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(root.value(), 0, leaf.value()).ok());
  ASSERT_TRUE(store_.FileComposite("hollow", root.value()).ok());

  auto restored = store_.RetrieveComposite("hollow", memory_.global_heap());
  ASSERT_TRUE(restored.ok());
  auto new_leaf = machine_.addressing().ReadAd(restored.value(), 0);
  EXPECT_TRUE(new_leaf.ok());
}

TEST_F(ObjectStoreTest, ResolverReturningNullMidGraphLeavesNoPartialGraph) {
  // Two typed nodes: the resolver accepts the root's type but rejects the leaf's, so the
  // graph fails to materialize halfway through. Failure atomicity demands every object
  // created so far is destroyed — the table's live count must return to its pre-call value.
  auto tdo_root = types_.CreateTypeDefinition(0xA1);
  auto tdo_leaf = types_.CreateTypeDefinition(0xA2);
  ASSERT_TRUE(tdo_root.ok() && tdo_leaf.ok());
  auto root = types_.CreateTypedObject(tdo_root.value(), memory_.global_heap(), 16, 1,
                                       rights::kRead | rights::kWrite);
  auto leaf = types_.CreateTypedObject(tdo_leaf.value(), memory_.global_heap(), 16, 0,
                                       rights::kRead | rights::kWrite);
  ASSERT_TRUE(root.ok() && leaf.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(root.value(), 0, leaf.value()).ok());
  ASSERT_TRUE(store_.FileComposite("half-typed", root.value()).ok());

  uint32_t live_before = machine_.table().live_count();
  auto result = store_.RetrieveComposite(
      "half-typed", memory_.global_heap(),
      [&](uint32_t type_id) {
        return type_id == 0xA1 ? tdo_root.value() : AccessDescriptor();
      });
  EXPECT_EQ(result.fault(), Fault::kTypeMismatch);
  EXPECT_EQ(machine_.table().live_count(), live_before);
  EXPECT_GE(store_.stats().retrieve_cleanups, 1u);
  // The filed composite itself is untouched: a full resolver still succeeds.
  auto ok = store_.RetrieveComposite(
      "half-typed", memory_.global_heap(),
      [&](uint32_t type_id) {
        return type_id == 0xA1 ? tdo_root.value()
                               : (type_id == 0xA2 ? tdo_leaf.value() : AccessDescriptor());
      });
  EXPECT_TRUE(ok.ok());
}

TEST_F(ObjectStoreTest, SroTooSmallLeavesNoPartialGraph) {
  // A three-node chain filed from the global heap, retrieved into a local SRO big enough
  // for at most one node: allocation fails mid-graph and everything rolls back.
  auto make_node = [&] {
    auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric,
                                       4 * 1024, 1, rights::kRead | rights::kWrite);
    EXPECT_TRUE(object.ok());
    return object.value();
  };
  AccessDescriptor a = make_node();
  AccessDescriptor b = make_node();
  AccessDescriptor c = make_node();
  ASSERT_TRUE(machine_.addressing().WriteAd(a, 0, b).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(b, 0, c).ok());
  ASSERT_TRUE(store_.FileComposite("big", a).ok());

  auto tiny = memory_.CreateLocalSro(memory_.global_heap(), 6 * 1024, 1);
  ASSERT_TRUE(tiny.ok());
  uint32_t live_before = machine_.table().live_count();
  auto result = store_.RetrieveComposite("big", tiny.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(machine_.table().live_count(), live_before);
  // A big enough arena still works.
  auto ok = store_.RetrieveComposite("big", memory_.global_heap());
  EXPECT_TRUE(ok.ok());
}

TEST_F(ObjectStoreTest, SingleRetrieveRollsBackWhenSroTooSmall) {
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 8 * 1024,
                                     0, rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(store_.File("fat", object.value()).ok());
  auto tiny = memory_.CreateLocalSro(memory_.global_heap(), 1024, 1);
  ASSERT_TRUE(tiny.ok());
  uint32_t live_before = machine_.table().live_count();
  EXPECT_FALSE(store_.Retrieve("fat", tiny.value()).ok());
  EXPECT_EQ(machine_.table().live_count(), live_before);
}

}  // namespace
}  // namespace imax432

#include "src/filing/journal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/filing/stable_store.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

// Replays `journal` and returns the applied (type, payload) sequence.
std::vector<std::pair<JournalRecordType, std::vector<uint8_t>>> ReplayAll(Journal& journal) {
  std::vector<std::pair<JournalRecordType, std::vector<uint8_t>>> applied;
  EXPECT_TRUE(journal
                  .Replay([&](JournalRecordType type, const std::vector<uint8_t>& payload) {
                    applied.emplace_back(type, payload);
                    return Status::Ok();
                  })
                  .ok());
  return applied;
}

TEST(JournalTest, CommitsReplayInOrder) {
  StableStore device;
  Journal writer(&device, nullptr);  // no machine: syncs complete synchronously
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("alpha")).ok());
  ASSERT_TRUE(writer.Commit(JournalRecordType::kRemove, Bytes("beta")).ok());
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileComposite, Bytes("gamma")).ok());
  EXPECT_EQ(writer.appended_mutations(), 3u);
  EXPECT_EQ(writer.durable_mutations(), 3u);

  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0].first, JournalRecordType::kFileImage);
  EXPECT_EQ(applied[0].second, Bytes("alpha"));
  EXPECT_EQ(applied[1].first, JournalRecordType::kRemove);
  EXPECT_EQ(applied[2].first, JournalRecordType::kFileComposite);
  EXPECT_EQ(reader.stats().replayed_transactions, 3u);
  EXPECT_EQ(reader.stats().rolled_back_transactions, 0u);
  // Replay resumes sequencing after the highest seq it saw.
  EXPECT_EQ(reader.next_seq(), writer.next_seq());
}

TEST(JournalTest, TornTailRollsBackUnsealedTransaction) {
  StableStore device;
  Journal writer(&device, nullptr);
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("kept")).ok());
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("torn-away")).ok());
  // Tear the log mid-way through the second transaction's record: keep the first
  // transaction whole plus a partial header of the second.
  auto first = Journal::EncodeRecord(1, JournalRecordType::kFileImage, Bytes("kept"));
  auto seal = Journal::EncodeRecord(1, JournalRecordType::kCommit, {});
  size_t keep = first.size() + seal.size() + Journal::kRecordHeaderBytes / 2;
  device.TruncateDurable(keep);

  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].second, Bytes("kept"));
  EXPECT_EQ(reader.stats().torn_tail_truncations, 1u);
}

TEST(JournalTest, TornPayloadTruncates) {
  StableStore device;
  Journal writer(&device, nullptr);
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("payload-goes-missing")).ok());
  // Keep the full header but only part of the payload.
  device.TruncateDurable(Journal::kRecordHeaderBytes + 4);

  Journal reader(&device, nullptr);
  EXPECT_TRUE(ReplayAll(reader).empty());
  EXPECT_EQ(reader.stats().torn_tail_truncations, 1u);
  EXPECT_EQ(reader.stats().rolled_back_transactions, 0u);
}

TEST(JournalTest, CorruptRecordDropsRestOfLog) {
  StableStore device;
  Journal writer(&device, nullptr);
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("good")).ok());
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("flipped")).ok());
  ASSERT_TRUE(writer.Commit(JournalRecordType::kFileImage, Bytes("after")).ok());
  // Flip a payload bit inside the second transaction's mutation record; its CRC no longer
  // matches, so it and everything after it must be dropped.
  auto first = Journal::EncodeRecord(1, JournalRecordType::kFileImage, Bytes("good"));
  auto seal = Journal::EncodeRecord(1, JournalRecordType::kCommit, {});
  size_t offset = first.size() + seal.size() + Journal::kRecordHeaderBytes + 2;
  device.CorruptDurable(offset, 0x40);

  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].second, Bytes("good"));
  EXPECT_EQ(reader.stats().corrupt_records_dropped, 1u);
}

TEST(JournalTest, OrphanCommitIsCountedNotApplied) {
  StableStore device;
  // A commit record with no preceding mutation record (its mutation was torn away or the
  // log was tampered with): counted, never applied.
  device.LoadImage(Journal::EncodeRecord(7, JournalRecordType::kCommit, {}));
  Journal reader(&device, nullptr);
  EXPECT_TRUE(ReplayAll(reader).empty());
  EXPECT_EQ(reader.stats().orphan_commits, 1u);
  EXPECT_EQ(reader.next_seq(), 8u);
}

TEST(JournalTest, MismatchedSealSeqIsOrphanAndMutationRollsBack) {
  StableStore device;
  std::vector<uint8_t> log = Journal::EncodeRecord(3, JournalRecordType::kFileImage,
                                                   Bytes("unsealed"));
  std::vector<uint8_t> seal = Journal::EncodeRecord(9, JournalRecordType::kCommit, {});
  log.insert(log.end(), seal.begin(), seal.end());
  device.LoadImage(log);

  Journal reader(&device, nullptr);
  EXPECT_TRUE(ReplayAll(reader).empty());
  EXPECT_EQ(reader.stats().orphan_commits, 1u);
  EXPECT_EQ(reader.stats().rolled_back_transactions, 1u);
}

TEST(JournalTest, TransientAppendFailuresRetryWithBackoff) {
  StableStore device;
  Journal journal(&device, nullptr);
  device.InjectTransientFailures(2);  // both burned by retries of the same commit
  ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("eventually")).ok());
  EXPECT_EQ(journal.stats().retries, 2u);
  EXPECT_EQ(journal.stats().backoff_cycles,
            (StableStore::kAccessLatencyCycles << 0) + (StableStore::kAccessLatencyCycles << 1));
  EXPECT_EQ(journal.stats().device_errors, 0u);

  Journal reader(&device, nullptr);
  EXPECT_EQ(ReplayAll(reader).size(), 1u);
}

TEST(JournalTest, ExhaustedRetriesRejectAndLeaveLogClean) {
  StableStore device;
  Journal journal(&device, nullptr);
  ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("durable")).ok());
  device.InjectTransientFailures(Journal::kMaxAppendAttempts);
  EXPECT_EQ(journal.Commit(JournalRecordType::kFileImage, Bytes("refused")).fault(),
            Fault::kDeviceError);
  EXPECT_EQ(journal.stats().device_errors, 1u);
  EXPECT_EQ(journal.appended_mutations(), 1u);

  // The failed append left no partial bytes behind: replay sees exactly one transaction.
  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].second, Bytes("durable"));
  EXPECT_EQ(reader.stats().torn_tail_truncations, 0u);
  EXPECT_EQ(reader.stats().corrupt_records_dropped, 0u);
}

TEST(JournalTest, CheckpointCompactsTheLog) {
  StableStore device;
  Journal journal(&device, nullptr);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("mutation")).ok());
  }
  size_t before = device.durable_size();
  ASSERT_TRUE(journal.WriteCheckpoint(Bytes("snapshot")).ok());
  EXPECT_LT(device.durable_size(), before);
  EXPECT_EQ(journal.stats().checkpoints, 1u);

  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].first, JournalRecordType::kCheckpoint);
  EXPECT_EQ(applied[0].second, Bytes("snapshot"));
}

TEST(JournalTest, MutationsAfterCheckpointReplayOnTop) {
  StableStore device;
  Journal journal(&device, nullptr);
  ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("pre")).ok());
  ASSERT_TRUE(journal.WriteCheckpoint(Bytes("base")).ok());
  ASSERT_TRUE(journal.Commit(JournalRecordType::kRemove, Bytes("post")).ok());

  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0].first, JournalRecordType::kCheckpoint);
  EXPECT_EQ(applied[1].first, JournalRecordType::kRemove);
}

TEST(JournalTest, AsyncSyncLeavesTailVolatileUntilTransferCompletes) {
  MachineConfig config;
  config.memory_bytes = 64 * 1024;
  Machine machine(config);
  StableStore device;
  Journal journal(&device, &machine);

  ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("in-flight")).ok());
  EXPECT_EQ(journal.appended_mutations(), 1u);
  EXPECT_EQ(journal.durable_mutations(), 0u);  // sync still queued
  EXPECT_GT(device.tail_size(), 0u);

  machine.events().RunUntilIdle();
  EXPECT_EQ(journal.durable_mutations(), 1u);
  EXPECT_EQ(device.tail_size(), 0u);
  EXPECT_EQ(journal.stats().syncs, 1u);
}

TEST(JournalTest, PowerCutTearsUnsyncedTail) {
  MachineConfig config;
  config.memory_bytes = 64 * 1024;
  Machine machine(config);
  StableStore device;
  Journal journal(&device, &machine);

  ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("durable-first")).ok());
  machine.events().RunUntilIdle();  // first transaction reaches the durable region
  ASSERT_TRUE(journal.Commit(JournalRecordType::kFileImage, Bytes("unsynced")).ok());
  ASSERT_GT(device.tail_size(), 0u);
  device.PowerCut(17);  // keep a seeded prefix of the volatile tail
  EXPECT_EQ(device.power_cuts(), 1u);

  // Whatever the tear kept, recovery applies at most the two transactions, at least the
  // durable one, and never a partial record.
  Journal reader(&device, nullptr);
  auto applied = ReplayAll(reader);
  ASSERT_GE(applied.size(), 1u);
  ASSERT_LE(applied.size(), 2u);
  EXPECT_EQ(applied[0].second, Bytes("durable-first"));
}

TEST(JournalTest, EmptyDeviceReplaysNothing) {
  StableStore device;
  Journal journal(&device, nullptr);
  EXPECT_TRUE(ReplayAll(journal).empty());
  EXPECT_EQ(journal.next_seq(), 1u);
  EXPECT_EQ(journal.stats().replayed_records, 0u);
}

}  // namespace
}  // namespace imax432

// End-to-end crash-restart testing of the journaled filing system: seeded power-cut
// campaigns must recover every epoch (prefix-consistent store, zero patrol violations,
// type identity preserved across restart) and be bit-identical when re-run.

#include "src/filing/crash_campaign.h"

#include <gtest/gtest.h>

#include "src/filing/stable_store.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

CrashCampaignConfig SmallConfig() {
  CrashCampaignConfig config;
  config.seed = 77;
  config.events = 40;
  config.power_cuts = 6;
  config.horizon = 500'000;
  return config;
}

TEST(CrashRecoveryTest, SmallCampaignRecoversEveryEpoch) {
  CrashCampaignReport report = RunCrashCampaign(SmallConfig());
  EXPECT_EQ(report.epochs, 7u);  // power_cuts + 1
  EXPECT_EQ(report.power_cuts_fired, 6u);
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.recovery_mismatches, 0u);
  EXPECT_EQ(report.typed_identity_failures, 0u);
  EXPECT_EQ(report.post_recovery_violations, 0u);
  EXPECT_EQ(report.panics, 0u);
  // The workload actually exercised the journal.
  EXPECT_GT(report.mutations_applied, 0u);
  EXPECT_GT(report.journal.appends, 0u);
  // Every epoch after the first recovered from a real log and checked the sentinel.
  for (size_t i = 0; i < report.epoch_reports.size(); ++i) {
    const CrashEpochReport& epoch = report.epoch_reports[i];
    EXPECT_TRUE(epoch.recovery_matched) << "epoch " << i;
    EXPECT_EQ(epoch.patrol_violations, 0u) << "epoch " << i;
    if (i > 0) {
      EXPECT_TRUE(epoch.typed_identity_checked) << "epoch " << i;
      EXPECT_TRUE(epoch.typed_identity_ok) << "epoch " << i;
    }
  }
}

TEST(CrashRecoveryTest, CampaignIsBitIdenticalAcrossRuns) {
  CrashCampaignReport first = RunCrashCampaign(SmallConfig());
  CrashCampaignReport second = RunCrashCampaign(SmallConfig());
  EXPECT_EQ(first.campaign_fingerprint, second.campaign_fingerprint);
  ASSERT_EQ(first.epoch_reports.size(), second.epoch_reports.size());
  for (size_t i = 0; i < first.epoch_reports.size(); ++i) {
    EXPECT_EQ(first.epoch_reports[i].trace_fingerprint,
              second.epoch_reports[i].trace_fingerprint)
        << "epoch " << i;
    EXPECT_EQ(first.epoch_reports[i].store_digest, second.epoch_reports[i].store_digest)
        << "epoch " << i;
    EXPECT_EQ(first.epoch_reports[i].recovered_digest,
              second.epoch_reports[i].recovered_digest)
        << "epoch " << i;
  }
  EXPECT_EQ(first.virtual_cycles, second.virtual_cycles);
  EXPECT_EQ(first.mutations_applied, second.mutations_applied);
}

TEST(CrashRecoveryTest, SeedsDiverge) {
  CrashCampaignConfig a = SmallConfig();
  CrashCampaignConfig b = SmallConfig();
  b.seed = 78;
  EXPECT_NE(RunCrashCampaign(a).campaign_fingerprint,
            RunCrashCampaign(b).campaign_fingerprint);
}

TEST(CrashRecoveryTest, AcceptanceCampaignTwoHundredEventsTwentyFiveCuts) {
  // The issue's acceptance bar: a 200-event campaign with 25 seeded power cuts recovers
  // every time — journal replay restores all committed state, zero patrol violations after
  // recovery, type identity enforced across restart.
  CrashCampaignConfig config;  // defaults: seed 432, 200 events, 25 cuts
  CrashCampaignReport report = RunCrashCampaign(config);
  EXPECT_EQ(report.epochs, 26u);
  EXPECT_EQ(report.power_cuts_fired, 25u);
  EXPECT_TRUE(report.healthy());
  EXPECT_GT(report.mutations_applied, 25u);
  EXPECT_GT(report.journal.torn_tail_truncations + report.journal.rolled_back_transactions +
                report.journal.replayed_transactions,
            0u);
}

TEST(CrashRecoveryTest, SystemBootSurvivesGarbageJournal) {
  // A corrupt log must never panic the kernel: boot recovers what it can and keeps going.
  StableStore device;
  std::vector<uint8_t> garbage(300);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  device.LoadImage(garbage);

  SystemConfig config;
  config.processors = 1;
  config.machine.memory_bytes = 96 * 1024;
  config.stable_store = &device;
  System system(config);
  EXPECT_TRUE(system.filing_recovery_status().ok());  // garbage dropped, store empty
  EXPECT_EQ(system.filing().size(), 0u);
  EXPECT_GT(system.journal()->stats().corrupt_records_dropped, 0u);
}

TEST(CrashRecoveryTest, SystemBootRecoversCommittedState) {
  StableStore device;
  {
    SystemConfig config;
    config.processors = 1;
    config.machine.memory_bytes = 96 * 1024;
    config.stable_store = &device;
    System first(config);
    auto object = first.kernel().memory().CreateObject(
        first.kernel().memory().global_heap(), SystemType::kGeneric, 16, 0,
        rights::kRead | rights::kWrite);
    ASSERT_TRUE(object.ok());
    ASSERT_TRUE(first.machine().addressing().WriteData(object.value(), 0, 8, 0xabcd).ok());
    ASSERT_TRUE(first.filing().File("survivor", object.value()).ok());
    first.machine().events().RunUntilIdle();  // let the journal sync complete
    // `first` is destroyed here without any clean shutdown — the "crash".
  }

  SystemConfig config;
  config.processors = 1;
  config.machine.memory_bytes = 96 * 1024;
  config.stable_store = &device;
  System second(config);
  ASSERT_TRUE(second.filing_recovery_status().ok());
  ASSERT_TRUE(second.filing().Contains("survivor"));
  auto restored =
      second.filing().Retrieve("survivor", second.kernel().memory().global_heap());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(second.machine().addressing().ReadData(restored.value(), 0, 8).value(), 0xabcdu);
  EXPECT_EQ(second.filing().stats().recovered_images, 1u);
}

}  // namespace
}  // namespace imax432

#include "src/arch/object_table.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(ObjectTableTest, AllocateInitializesDescriptor) {
  ObjectTable table(16);
  auto index = table.Allocate(SystemType::kPort, /*level=*/2, /*data_base=*/100,
                              /*data_length=*/32, /*access_slots=*/4,
                              /*origin_sro=*/7, /*storage_claim=*/48);
  ASSERT_TRUE(index.ok());
  const ObjectDescriptor& d = table.At(index.value());
  EXPECT_TRUE(d.allocated);
  EXPECT_EQ(d.type, SystemType::kPort);
  EXPECT_EQ(d.level, 2u);
  EXPECT_EQ(d.data_base, 100u);
  EXPECT_EQ(d.data_length, 32u);
  EXPECT_EQ(d.access_count(), 4u);
  EXPECT_EQ(d.origin_sro, 7u);
  EXPECT_EQ(d.storage_claim, 48u);
  EXPECT_EQ(d.color, GcColor::kWhite);
  for (const AccessDescriptor& slot : d.access) {
    EXPECT_TRUE(slot.is_null());
  }
  EXPECT_EQ(table.live_count(), 1u);
}

TEST(ObjectTableTest, ExhaustionFaults) {
  ObjectTable table(2);
  ASSERT_TRUE(table.Allocate(SystemType::kGeneric, 0, 0, 0, 0, 0, 0).ok());
  ASSERT_TRUE(table.Allocate(SystemType::kGeneric, 0, 0, 0, 0, 0, 0).ok());
  auto third = table.Allocate(SystemType::kGeneric, 0, 0, 0, 0, 0, 0);
  EXPECT_EQ(third.fault(), Fault::kObjectTableFull);
}

TEST(ObjectTableTest, OversizedPartsFault) {
  ObjectTable table(4);
  EXPECT_EQ(table.Allocate(SystemType::kGeneric, 0, 0, kMaxDataPartBytes + 1, 0, 0, 0).fault(),
            Fault::kSegmentTooLarge);
  EXPECT_EQ(table.Allocate(SystemType::kGeneric, 0, 0, 0, kMaxAccessPartSlots + 1, 0, 0).fault(),
            Fault::kSegmentTooLarge);
  // The architectural maxima themselves are allowed.
  EXPECT_TRUE(
      table.Allocate(SystemType::kGeneric, 0, 0, kMaxDataPartBytes, kMaxAccessPartSlots, 0, 0)
          .ok());
}

TEST(ObjectTableTest, FreeRecyclesSlotWithNewGeneration) {
  ObjectTable table(2);
  auto first = table.Allocate(SystemType::kGeneric, 0, 0, 8, 0, 0, 8);
  ASSERT_TRUE(first.ok());
  uint32_t old_generation = table.At(first.value()).generation;
  ASSERT_TRUE(table.Free(first.value()).ok());
  EXPECT_EQ(table.live_count(), 0u);

  auto second = table.Allocate(SystemType::kGeneric, 0, 0, 8, 0, 0, 8);
  ASSERT_TRUE(second.ok());
  // Slot may be reused, but generation must have advanced.
  if (second.value() == first.value()) {
    EXPECT_GT(table.At(second.value()).generation, old_generation);
  }
}

TEST(ObjectTableTest, ResolveChecksNullStaleAndRange) {
  ObjectTable table(4);
  auto index = table.Allocate(SystemType::kGeneric, 0, 0, 8, 0, 0, 8);
  ASSERT_TRUE(index.ok());
  auto ad = table.MintAd(index.value(), rights::kRead);
  ASSERT_TRUE(ad.ok());

  EXPECT_TRUE(table.Resolve(ad.value()).ok());
  EXPECT_EQ(table.Resolve(AccessDescriptor()).fault(), Fault::kNullAccess);
  EXPECT_EQ(table.Resolve(AccessDescriptor(99, 0, rights::kRead)).fault(),
            Fault::kInvalidAccess);

  // Stale generation: free and re-resolve.
  ASSERT_TRUE(table.Free(index.value()).ok());
  EXPECT_EQ(table.Resolve(ad.value()).fault(), Fault::kInvalidAccess);
}

TEST(ObjectTableTest, StaleAdDiesEvenAfterSlotReuse) {
  ObjectTable table(1);  // force reuse of the single slot
  auto first = table.Allocate(SystemType::kGeneric, 0, 0, 8, 0, 0, 8);
  ASSERT_TRUE(first.ok());
  auto stale = table.MintAd(first.value(), rights::kAll);
  ASSERT_TRUE(stale.ok());
  ASSERT_TRUE(table.Free(first.value()).ok());

  auto second = table.Allocate(SystemType::kPort, 1, 0, 8, 0, 0, 8);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value(), first.value());  // same slot
  // The stale AD must not reach the new object.
  EXPECT_EQ(table.Resolve(stale.value()).fault(), Fault::kInvalidAccess);
}

TEST(ObjectTableTest, MintAdOnFreeSlotFaults) {
  ObjectTable table(2);
  EXPECT_EQ(table.MintAd(0, rights::kRead).fault(), Fault::kNotAllocated);
  EXPECT_EQ(table.MintAd(5, rights::kRead).fault(), Fault::kInvalidAccess);
}

TEST(ObjectTableTest, DoubleFreeFaults) {
  ObjectTable table(2);
  auto index = table.Allocate(SystemType::kGeneric, 0, 0, 0, 0, 0, 0);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(table.Free(index.value()).ok());
  EXPECT_EQ(table.Free(index.value()).fault(), Fault::kNotAllocated);
}

TEST(ObjectTableTest, StorePermittedFollowsLevelRule) {
  ObjectDescriptor global;
  global.level = 0;
  ObjectDescriptor local;
  local.level = 3;
  ObjectDescriptor deeper;
  deeper.level = 5;

  // A container may reference same-or-longer-lived objects only.
  EXPECT_TRUE(ObjectTable::StorePermitted(local, global));
  EXPECT_TRUE(ObjectTable::StorePermitted(local, local));
  EXPECT_FALSE(ObjectTable::StorePermitted(local, deeper));
  EXPECT_FALSE(ObjectTable::StorePermitted(global, local));
}

TEST(ObjectTableTest, CountsTrackAllocations) {
  ObjectTable table(8);
  EXPECT_EQ(table.free_count(), 8u);
  std::vector<ObjectIndex> indices;
  for (int i = 0; i < 5; ++i) {
    auto index = table.Allocate(SystemType::kGeneric, 0, 0, 0, 0, 0, 0);
    ASSERT_TRUE(index.ok());
    indices.push_back(index.value());
  }
  EXPECT_EQ(table.live_count(), 5u);
  EXPECT_EQ(table.free_count(), 3u);
  ASSERT_TRUE(table.Free(indices[2]).ok());
  EXPECT_EQ(table.live_count(), 4u);
}

}  // namespace
}  // namespace imax432

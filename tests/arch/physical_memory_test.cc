#include "src/arch/physical_memory.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(PhysicalMemoryTest, StartsZeroed) {
  PhysicalMemory memory(64);
  for (uint32_t i = 0; i < 64; ++i) {
    auto v = memory.Read(i, 1);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 0u);
  }
}

TEST(PhysicalMemoryTest, ScalarRoundTripAllWidths) {
  PhysicalMemory memory(64);
  for (uint32_t width : {1u, 2u, 4u, 8u}) {
    uint64_t value = 0x1122334455667788u & ((width == 8) ? ~0ull : ((1ull << (8 * width)) - 1));
    ASSERT_TRUE(memory.Write(8, width, value).ok());
    auto read = memory.Read(8, width);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), value) << "width " << width;
  }
}

TEST(PhysicalMemoryTest, LittleEndianLayout) {
  PhysicalMemory memory(16);
  ASSERT_TRUE(memory.Write(0, 4, 0x0A0B0C0Du).ok());
  EXPECT_EQ(memory.Read(0, 1).value(), 0x0Du);
  EXPECT_EQ(memory.Read(1, 1).value(), 0x0Cu);
  EXPECT_EQ(memory.Read(2, 1).value(), 0x0Bu);
  EXPECT_EQ(memory.Read(3, 1).value(), 0x0Au);
}

TEST(PhysicalMemoryTest, OutOfRangeFaults) {
  PhysicalMemory memory(16);
  EXPECT_EQ(memory.Read(16, 1).fault(), Fault::kBoundsViolation);
  EXPECT_EQ(memory.Read(15, 2).fault(), Fault::kBoundsViolation);
  EXPECT_EQ(memory.Write(13, 4, 0).fault(), Fault::kBoundsViolation);
  EXPECT_TRUE(memory.Write(12, 4, 0).ok());
}

TEST(PhysicalMemoryTest, OverflowingAddressFaults) {
  PhysicalMemory memory(16);
  // addr + length would wrap around 32 bits; must not be treated as in range.
  EXPECT_EQ(memory.Read(0xfffffff0u, 8).fault(), Fault::kBoundsViolation);
}

TEST(PhysicalMemoryTest, BlockRoundTrip) {
  PhysicalMemory memory(128);
  uint8_t out[32];
  uint8_t in[32];
  for (int i = 0; i < 32; ++i) {
    in[i] = static_cast<uint8_t>(i * 3);
  }
  ASSERT_TRUE(memory.WriteBlock(40, in, 32).ok());
  ASSERT_TRUE(memory.ReadBlock(40, out, 32).ok());
  EXPECT_EQ(std::memcmp(in, out, 32), 0);
}

TEST(PhysicalMemoryTest, ZeroClearsRange) {
  PhysicalMemory memory(64);
  ASSERT_TRUE(memory.Write(10, 8, ~0ull).ok());
  ASSERT_TRUE(memory.Zero(10, 8).ok());
  EXPECT_EQ(memory.Read(10, 8).value(), 0u);
}

}  // namespace
}  // namespace imax432

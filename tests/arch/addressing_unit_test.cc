#include "src/arch/addressing_unit.h"

#include <gtest/gtest.h>

#include "src/arch/object_table.h"
#include "src/arch/physical_memory.h"

namespace imax432 {
namespace {

class AddressingUnitTest : public ::testing::Test {
 protected:
  AddressingUnitTest() : memory_(4096), table_(64), unit_(&table_, &memory_) {}

  // Creates an object with the given geometry and returns an AD with `ad_rights`.
  AccessDescriptor MakeObject(Level level, uint32_t data_bytes, uint32_t access_slots,
                              RightsMask ad_rights, SystemType type = SystemType::kGeneric) {
    auto index = table_.Allocate(type, level, next_base_, data_bytes, access_slots,
                                 /*origin_sro=*/0, data_bytes + access_slots * kAdArchBytes);
    EXPECT_TRUE(index.ok());
    next_base_ += data_bytes ? data_bytes : 1;
    auto ad = table_.MintAd(index.value(), ad_rights);
    EXPECT_TRUE(ad.ok());
    return ad.value();
  }

  PhysicalMemory memory_;
  ObjectTable table_;
  AddressingUnit unit_;
  PhysAddr next_base_ = 0;
};

TEST_F(AddressingUnitTest, DataRoundTrip) {
  AccessDescriptor ad = MakeObject(0, 64, 0, rights::kRead | rights::kWrite);
  ASSERT_TRUE(unit_.WriteData(ad, 16, 4, 0xdeadbeef).ok());
  auto value = unit_.ReadData(ad, 16, 4);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 0xdeadbeefu);
}

TEST_F(AddressingUnitTest, ReadRequiresReadRight) {
  AccessDescriptor ad = MakeObject(0, 64, 0, rights::kWrite);
  EXPECT_EQ(unit_.ReadData(ad, 0, 4).fault(), Fault::kRightsViolation);
  EXPECT_TRUE(unit_.WriteData(ad, 0, 4, 1).ok());
}

TEST_F(AddressingUnitTest, WriteRequiresWriteRight) {
  AccessDescriptor ad = MakeObject(0, 64, 0, rights::kRead);
  EXPECT_EQ(unit_.WriteData(ad, 0, 4, 1).fault(), Fault::kRightsViolation);
  EXPECT_TRUE(unit_.ReadData(ad, 0, 4).ok());
}

TEST_F(AddressingUnitTest, DataBoundsEnforced) {
  AccessDescriptor ad = MakeObject(0, 16, 0, rights::kRead | rights::kWrite);
  EXPECT_TRUE(unit_.WriteData(ad, 12, 4, 1).ok());
  EXPECT_EQ(unit_.WriteData(ad, 13, 4, 1).fault(), Fault::kBoundsViolation);
  EXPECT_EQ(unit_.ReadData(ad, 16, 1).fault(), Fault::kBoundsViolation);
}

TEST_F(AddressingUnitTest, InvalidWidthFaults) {
  AccessDescriptor ad = MakeObject(0, 16, 0, rights::kRead | rights::kWrite);
  EXPECT_EQ(unit_.ReadData(ad, 0, 3).fault(), Fault::kInvalidArgument);
  EXPECT_EQ(unit_.WriteData(ad, 0, 5, 1).fault(), Fault::kInvalidArgument);
}

TEST_F(AddressingUnitTest, NullAdFaults) {
  EXPECT_EQ(unit_.ReadData(AccessDescriptor(), 0, 4).fault(), Fault::kNullAccess);
  EXPECT_EQ(unit_.ReadAd(AccessDescriptor(), 0).fault(), Fault::kNullAccess);
}

TEST_F(AddressingUnitTest, AdSlotRoundTrip) {
  AccessDescriptor container = MakeObject(2, 0, 4, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(1, 8, 0, rights::kRead);
  ASSERT_TRUE(unit_.WriteAd(container, 2, payload).ok());
  auto loaded = unit_.ReadAd(container, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), payload);
}

TEST_F(AddressingUnitTest, AdSlotBoundsEnforced) {
  AccessDescriptor container = MakeObject(0, 0, 2, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(0, 8, 0, rights::kRead);
  EXPECT_EQ(unit_.WriteAd(container, 2, payload).fault(), Fault::kBoundsViolation);
  EXPECT_EQ(unit_.ReadAd(container, 5).fault(), Fault::kBoundsViolation);
}

TEST_F(AddressingUnitTest, LevelRuleBlocksEscapingStores) {
  // "The hardware ensures that an access for an object may never be stored into an object
  // with a lower (more global) level number."
  AccessDescriptor global_container = MakeObject(0, 0, 2, rights::kRead | rights::kWrite);
  AccessDescriptor local_payload = MakeObject(3, 8, 0, rights::kRead);
  EXPECT_EQ(unit_.WriteAd(global_container, 0, local_payload).fault(), Fault::kLevelViolation);

  // The reverse direction (local container, global payload) is fine.
  AccessDescriptor local_container = MakeObject(3, 0, 2, rights::kRead | rights::kWrite);
  AccessDescriptor global_payload = MakeObject(0, 8, 0, rights::kRead);
  EXPECT_TRUE(unit_.WriteAd(local_container, 0, global_payload).ok());
}

TEST_F(AddressingUnitTest, SameLevelStoresAllowed) {
  AccessDescriptor container = MakeObject(2, 0, 1, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(2, 8, 0, rights::kRead);
  EXPECT_TRUE(unit_.WriteAd(container, 0, payload).ok());
}

TEST_F(AddressingUnitTest, StoringNullClearsSlot) {
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(0, 8, 0, rights::kRead);
  ASSERT_TRUE(unit_.WriteAd(container, 0, payload).ok());
  ASSERT_TRUE(unit_.WriteAd(container, 0, AccessDescriptor()).ok());
  auto loaded = unit_.ReadAd(container, 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().is_null());
}

TEST_F(AddressingUnitTest, AdStoreShadesReferencedObjectGray) {
  // "the 432 hardware implements the gray bit of that algorithm, setting it whenever access
  // descriptors are moved."
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(0, 8, 0, rights::kRead);
  ASSERT_EQ(table_.At(payload.index()).color, GcColor::kWhite);
  uint64_t shades_before = unit_.shade_count();
  ASSERT_TRUE(unit_.WriteAd(container, 0, payload).ok());
  EXPECT_EQ(table_.At(payload.index()).color, GcColor::kGray);
  EXPECT_EQ(unit_.shade_count(), shades_before + 1);

  // A second store of the same AD does not re-shade (already gray).
  ASSERT_TRUE(unit_.WriteAd(container, 0, payload).ok());
  EXPECT_EQ(unit_.shade_count(), shades_before + 1);
}

TEST_F(AddressingUnitTest, BlackObjectNotReshaded) {
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(0, 8, 0, rights::kRead);
  table_.At(payload.index()).color = GcColor::kBlack;
  ASSERT_TRUE(unit_.WriteAd(container, 0, payload).ok());
  EXPECT_EQ(table_.At(payload.index()).color, GcColor::kBlack);
}

TEST_F(AddressingUnitTest, WriteAdRequiresWriteRight) {
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kRead);
  AccessDescriptor payload = MakeObject(0, 8, 0, rights::kRead);
  EXPECT_EQ(unit_.WriteAd(container, 0, payload).fault(), Fault::kRightsViolation);
}

TEST_F(AddressingUnitTest, ReadAdRequiresReadRight) {
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kWrite);
  EXPECT_EQ(unit_.ReadAd(container, 0).fault(), Fault::kRightsViolation);
}

TEST_F(AddressingUnitTest, StaleAdStoreFaults) {
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kRead | rights::kWrite);
  AccessDescriptor payload = MakeObject(0, 8, 0, rights::kRead);
  ASSERT_TRUE(table_.Free(payload.index()).ok());
  EXPECT_EQ(unit_.WriteAd(container, 0, payload).fault(), Fault::kInvalidAccess);
}

TEST_F(AddressingUnitTest, ResolveTypedChecksTypeAndRights) {
  AccessDescriptor port =
      MakeObject(0, 16, 4, rights::kRead | rights::kPortSend, SystemType::kPort);
  EXPECT_TRUE(unit_.ResolveTyped(port, SystemType::kPort, rights::kPortSend).ok());
  EXPECT_EQ(unit_.ResolveTyped(port, SystemType::kProcess, rights::kNone).fault(),
            Fault::kTypeMismatch);
  EXPECT_EQ(unit_.ResolveTyped(port, SystemType::kPort, rights::kPortReceive).fault(),
            Fault::kRightsViolation);
}

TEST_F(AddressingUnitTest, BlockTransfersRespectBoundsAndRights) {
  AccessDescriptor ad = MakeObject(0, 32, 0, rights::kRead | rights::kWrite);
  uint8_t in[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  uint8_t out[16] = {};
  ASSERT_TRUE(unit_.WriteDataBlock(ad, 8, in, 16).ok());
  ASSERT_TRUE(unit_.ReadDataBlock(ad, 8, out, 16).ok());
  EXPECT_EQ(std::memcmp(in, out, 16), 0);
  EXPECT_EQ(unit_.WriteDataBlock(ad, 20, in, 16).fault(), Fault::kBoundsViolation);

  AccessDescriptor read_only = MakeObject(0, 32, 0, rights::kRead);
  EXPECT_EQ(unit_.WriteDataBlock(read_only, 0, in, 16).fault(), Fault::kRightsViolation);
}

TEST_F(AddressingUnitTest, SwappedOutSegmentFaults) {
  AccessDescriptor ad = MakeObject(0, 32, 0, rights::kRead | rights::kWrite);
  table_.At(ad.index()).swapped_out = true;
  EXPECT_EQ(unit_.ReadData(ad, 0, 4).fault(), Fault::kSegmentSwapped);
  EXPECT_EQ(unit_.WriteData(ad, 0, 4, 1).fault(), Fault::kSegmentSwapped);
  // Access part stays usable while the data part is swapped (descriptors stay resident).
  AccessDescriptor container = MakeObject(1, 0, 1, rights::kRead | rights::kWrite);
  EXPECT_TRUE(unit_.WriteAd(container, 0, ad).ok());
}

}  // namespace
}  // namespace imax432

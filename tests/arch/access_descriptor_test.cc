#include "src/arch/access_descriptor.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

TEST(AccessDescriptorTest, DefaultIsNull) {
  AccessDescriptor ad;
  EXPECT_TRUE(ad.is_null());
  EXPECT_EQ(ad.rights(), rights::kNone);
}

TEST(AccessDescriptorTest, CarriesIndexGenerationRights) {
  AccessDescriptor ad(5, 3, rights::kRead | rights::kWrite);
  EXPECT_FALSE(ad.is_null());
  EXPECT_EQ(ad.index(), 5u);
  EXPECT_EQ(ad.generation(), 3u);
  EXPECT_TRUE(ad.HasRights(rights::kRead));
  EXPECT_TRUE(ad.HasRights(rights::kRead | rights::kWrite));
  EXPECT_FALSE(ad.HasRights(rights::kDelete));
}

TEST(AccessDescriptorTest, RestrictedOnlyRemovesRights) {
  AccessDescriptor ad(1, 0, rights::kRead | rights::kWrite | rights::kPortSend);
  AccessDescriptor restricted = ad.Restricted(rights::kRead | rights::kDelete);
  // kDelete was not present, so restriction cannot add it.
  EXPECT_TRUE(restricted.HasRights(rights::kRead));
  EXPECT_FALSE(restricted.HasRights(rights::kWrite));
  EXPECT_FALSE(restricted.HasRights(rights::kDelete));
  EXPECT_FALSE(restricted.HasRights(rights::kPortSend));
  // The designated object is unchanged.
  EXPECT_TRUE(restricted.SameObject(ad));
}

TEST(AccessDescriptorTest, SameObjectIgnoresRights) {
  AccessDescriptor a(7, 2, rights::kRead);
  AccessDescriptor b(7, 2, rights::kAll);
  AccessDescriptor c(8, 2, rights::kRead);
  AccessDescriptor stale(7, 1, rights::kRead);
  EXPECT_TRUE(a.SameObject(b));
  EXPECT_FALSE(a.SameObject(c));
  EXPECT_FALSE(a.SameObject(stale));
}

TEST(AccessDescriptorTest, NullAdsNeverSameObject) {
  AccessDescriptor a;
  AccessDescriptor b;
  EXPECT_FALSE(a.SameObject(b));
}

TEST(RightsTest, HasRequiresAllBits) {
  RightsMask mask = rights::kRead | rights::kPortSend;
  EXPECT_TRUE(rights::Has(mask, rights::kRead));
  EXPECT_TRUE(rights::Has(mask, rights::kPortSend));
  EXPECT_FALSE(rights::Has(mask, rights::kRead | rights::kWrite));
  EXPECT_TRUE(rights::Has(mask, rights::kNone));
}

TEST(RightsTest, TypeRightAliases) {
  // Port send/receive map onto distinct type rights.
  EXPECT_NE(rights::kPortSend, rights::kPortReceive);
  EXPECT_EQ(rights::kPortSend, rights::kSroAllocate);  // same bit, per-type interpretation
}

}  // namespace
}  // namespace imax432

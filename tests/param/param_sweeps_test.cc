// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) across configuration
// dimensions the system claims to be invariant (or monotone) in:
//   - the two memory-manager implementations behind one specification,
//   - processor counts (transparency of multiprocessing),
//   - queue disciplines and port capacities (conservation + ordering laws),
//   - level pairs (the storing rule's exact truth table),
//   - segment geometries (allocation correctness at the architectural extremes).

#include <gtest/gtest.h>

#include <tuple>

#include "src/base/xorshift.h"
#include "src/os/system.h"

namespace imax432 {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: workload invariance across manager kind x processor count.
// ---------------------------------------------------------------------------

class ConfigSweepTest
    : public ::testing::TestWithParam<std::tuple<MemoryManagerKind, int>> {};

TEST_P(ConfigSweepTest, WorkloadResultIndependentOfConfiguration) {
  auto [manager_kind, processors] = GetParam();
  SystemConfig config;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.machine.object_table_capacity = 8192;
  config.memory_manager = manager_kind;
  config.processors = processors;
  System system(config);

  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 16, 1,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(system.machine()
                  .addressing()
                  .WriteAd(carrier.value(), 0, system.memory().global_heap())
                  .ok());

  // Allocate objects, chain-sum their stamps, store the result.
  Assembler a("invariant");
  auto loop = a.NewLabel();
  a.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadImm(0, 0)
      .LoadImm(1, 20)
      .LoadImm(2, 0)
      .Bind(loop)
      .CreateObject(3, 2, 256)
      .StoreData(3, 0, 0, 8)
      .LoadData(3, 3, 0, 8)
      .Add(2, 2, 3)
      .AddImm(0, 0, 1)
      .BranchIfLess(0, 1, loop)
      .StoreData(1, 2, 0, 8)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  auto process = system.Spawn(a.Build(), options);
  ASSERT_TRUE(process.ok());
  system.Run();
  ASSERT_EQ(system.kernel().process_view(process.value()).state(),
            ProcessState::kTerminated);
  // Sum of 0..19 = 190 regardless of configuration.
  EXPECT_EQ(system.machine().addressing().ReadData(carrier.value(), 0, 8).value(), 190u);
}

INSTANTIATE_TEST_SUITE_P(
    ManagerAndProcessors, ConfigSweepTest,
    ::testing::Combine(::testing::Values(MemoryManagerKind::kNonSwapping,
                                         MemoryManagerKind::kSwapping),
                       ::testing::Values(1, 2, 4, 8)));

// ---------------------------------------------------------------------------
// Sweep 2: port conservation law across discipline x capacity.
// Messages are neither lost nor duplicated, for any discipline and any capacity.
// ---------------------------------------------------------------------------

class PortSweepTest
    : public ::testing::TestWithParam<std::tuple<QueueDiscipline, uint16_t>> {};

TEST_P(PortSweepTest, MessagesConservedUnderRandomTraffic) {
  auto [discipline, capacity] = GetParam();
  MachineConfig machine_config;
  machine_config.memory_bytes = 512 * 1024;
  machine_config.object_table_capacity = 2048;
  Machine machine(machine_config);
  BasicMemoryManager memory(&machine);
  PortSubsystem ports(&machine, &memory);

  auto port = ports.CreatePort(memory.global_heap(), capacity, discipline);
  ASSERT_TRUE(port.ok());

  Xorshift rng(1234 + static_cast<uint64_t>(capacity) * 7 +
               static_cast<uint64_t>(discipline));
  int enqueued = 0;
  int dequeued = 0;
  std::vector<bool> seen(512, false);
  int next_tag = 0;

  for (int step = 0; step < 400 && next_tag < 512; ++step) {
    if (rng.NextChance(1, 2)) {
      auto message = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 0,
                                         rights::kRead | rights::kWrite);
      ASSERT_TRUE(message.ok());
      ASSERT_TRUE(machine.addressing()
                      .WriteData(message.value(), 0, 4,
                                 static_cast<uint64_t>(next_tag))
                      .ok());
      ++next_tag;
      Status status = ports.Enqueue(port.value(), message.value(),
                                    static_cast<uint8_t>(rng.NextBelow(256)),
                                    static_cast<uint32_t>(rng.NextBelow(10000)));
      if (status.ok()) {
        ++enqueued;
      } else {
        ASSERT_EQ(status.fault(), Fault::kQueueFull);
      }
    } else {
      auto message = ports.Dequeue(port.value());
      if (message.ok()) {
        ++dequeued;
        auto tag = machine.addressing().ReadData(message.value(), 0, 4);
        ASSERT_TRUE(tag.ok());
        ASSERT_LT(tag.value(), seen.size());
        ASSERT_FALSE(seen[tag.value()]) << "message duplicated";
        seen[tag.value()] = true;
      } else {
        ASSERT_EQ(message.fault(), Fault::kQueueEmpty);
      }
    }
    // Conservation invariant at every step.
    ASSERT_EQ(ports.QueuedCount(port.value()).value(), enqueued - dequeued);
    ASSERT_LE(enqueued - dequeued, capacity);
  }
  // Drain: everything enqueued comes out exactly once.
  while (true) {
    auto message = ports.Dequeue(port.value());
    if (!message.ok()) {
      break;
    }
    ++dequeued;
    auto tag = machine.addressing().ReadData(message.value(), 0, 4);
    ASSERT_FALSE(seen[tag.value()]);
    seen[tag.value()] = true;
  }
  EXPECT_EQ(enqueued, dequeued);
}

INSTANTIATE_TEST_SUITE_P(
    DisciplinesAndCapacities, PortSweepTest,
    ::testing::Combine(::testing::Values(QueueDiscipline::kFifo, QueueDiscipline::kPriority,
                                         QueueDiscipline::kDeadline),
                       ::testing::Values<uint16_t>(1, 3, 8, 64)));

// ---------------------------------------------------------------------------
// Sweep 3: the level storing rule's truth table, for every (container, referenced) pair.
// ---------------------------------------------------------------------------

class LevelRuleTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LevelRuleTest, StorePermittedIffContainerAtLeastAsDeep) {
  auto [container_level, referenced_level] = GetParam();
  MachineConfig machine_config;
  machine_config.memory_bytes = 1024 * 1024;
  machine_config.object_table_capacity = 1024;
  Machine machine(machine_config);
  BasicMemoryManager memory(&machine);

  // Build SROs at each level by nesting from the global heap; each nested region shrinks so
  // it fits inside its parent.
  auto sro_at_level = [&](int level) -> AccessDescriptor {
    AccessDescriptor current = memory.global_heap();
    for (int l = 1; l <= level; ++l) {
      auto child = memory.CreateLocalSro(current, 256 * 1024 >> (2 * l),
                                         static_cast<Level>(l));
      EXPECT_TRUE(child.ok()) << FaultName(child.fault());
      current = child.value();
    }
    return current;
  };

  auto container = memory.CreateObject(sro_at_level(container_level), SystemType::kGeneric,
                                       8, 2, rights::kRead | rights::kWrite);
  auto referenced = memory.CreateObject(sro_at_level(referenced_level), SystemType::kGeneric,
                                        8, 0, rights::kRead);
  ASSERT_TRUE(container.ok() && referenced.ok());

  Status stored = machine.addressing().WriteAd(container.value(), 0, referenced.value());
  if (container_level >= referenced_level) {
    EXPECT_TRUE(stored.ok()) << container_level << " <- " << referenced_level;
  } else {
    EXPECT_EQ(stored.fault(), Fault::kLevelViolation)
        << container_level << " <- " << referenced_level;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevelPairs, LevelRuleTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------------
// Sweep 4: segment geometry at the architectural extremes.
// ---------------------------------------------------------------------------

class GeometryTest : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(GeometryTest, CreateReadWriteDestroyRoundTrip) {
  auto [data_bytes, access_slots] = GetParam();
  MachineConfig machine_config;
  machine_config.memory_bytes = 2 * 1024 * 1024;
  machine_config.object_table_capacity = 256;
  Machine machine(machine_config);
  BasicMemoryManager memory(&machine);

  auto object = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, data_bytes,
                                    access_slots, rights::kAll);
  ASSERT_TRUE(object.ok());
  const ObjectDescriptor* descriptor = machine.table().Resolve(object.value()).value();
  EXPECT_EQ(descriptor->data_length, data_bytes);
  EXPECT_EQ(descriptor->access_count(), access_slots);

  if (data_bytes >= 16) {
    // First and last addressable words (distinct when the part holds at least two).
    ASSERT_TRUE(machine.addressing().WriteData(object.value(), 0, 8, 0x11).ok());
    ASSERT_TRUE(machine.addressing().WriteData(object.value(), data_bytes - 8, 8, 0x22).ok());
    EXPECT_EQ(machine.addressing().ReadData(object.value(), 0, 8).value(), 0x11u);
    EXPECT_EQ(machine.addressing().ReadData(object.value(), data_bytes - 8, 8).value(),
              0x22u);
  } else if (data_bytes >= 8) {
    ASSERT_TRUE(machine.addressing().WriteData(object.value(), 0, 8, 0x33).ok());
    EXPECT_EQ(machine.addressing().ReadData(object.value(), 0, 8).value(), 0x33u);
  }
  EXPECT_EQ(machine.addressing().ReadData(object.value(), data_bytes, 1).fault(),
            Fault::kBoundsViolation);
  if (access_slots > 0) {
    ASSERT_TRUE(machine.addressing().WriteAd(object.value(), access_slots - 1,
                                             memory.global_heap())
                    .ok());
    EXPECT_EQ(machine.addressing().ReadAd(object.value(), access_slots).fault(),
              Fault::kBoundsViolation);
  }
  EXPECT_TRUE(memory.DestroyObject(object.value()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, GeometryTest,
    ::testing::Values(std::make_tuple(0u, 1u),                       // access-only
                      std::make_tuple(1u, 0u),                       // minimal segment
                      std::make_tuple(8u, 8u),
                      std::make_tuple(4096u, 64u),
                      std::make_tuple(kMaxDataPartBytes, 0u),        // max data part
                      std::make_tuple(0u, kMaxAccessPartSlots),      // max access part
                      std::make_tuple(kMaxDataPartBytes, kMaxAccessPartSlots)));

// ---------------------------------------------------------------------------
// Sweep 5: GC exactness across random graph shapes (seeded).
// ---------------------------------------------------------------------------

class GcGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcGraphTest, OnlyUnreachableObjectsCollected) {
  uint64_t seed = GetParam();
  MachineConfig machine_config;
  machine_config.memory_bytes = 1024 * 1024;
  machine_config.object_table_capacity = 2048;
  Machine machine(machine_config);
  BasicMemoryManager memory(&machine);
  Kernel kernel(&machine, &memory);
  GarbageCollector gc(&kernel);

  constexpr int kObjects = 40;
  Xorshift rng(seed);
  std::vector<AccessDescriptor> objects;
  for (int i = 0; i < kObjects; ++i) {
    auto object = memory.CreateObject(memory.global_heap(), SystemType::kGeneric, 16, 3,
                                      rights::kAll);
    ASSERT_TRUE(object.ok());
    objects.push_back(object.value());
  }
  std::vector<std::vector<int>> edges(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    for (uint32_t slot = 0; slot < 3; ++slot) {
      if (rng.NextChance(2, 5)) {
        int target = static_cast<int>(rng.NextBelow(kObjects));
        ASSERT_TRUE(machine.addressing()
                        .WriteAd(objects[static_cast<size_t>(i)], slot,
                                 objects[static_cast<size_t>(target)])
                        .ok());
        edges[static_cast<size_t>(i)].push_back(target);
      }
    }
  }
  int root_id = static_cast<int>(rng.NextBelow(kObjects));
  kernel.AddRootProvider([&objects, root_id](std::vector<AccessDescriptor>* roots) {
    roots->push_back(objects[static_cast<size_t>(root_id)]);
  });

  std::vector<bool> reachable(kObjects, false);
  std::vector<int> work = {root_id};
  while (!work.empty()) {
    int node = work.back();
    work.pop_back();
    if (reachable[static_cast<size_t>(node)]) {
      continue;
    }
    reachable[static_cast<size_t>(node)] = true;
    for (int next : edges[static_cast<size_t>(node)]) {
      work.push_back(next);
    }
  }
  gc.CollectNow();
  for (int i = 0; i < kObjects; ++i) {
    EXPECT_EQ(machine.table().Resolve(objects[static_cast<size_t>(i)]).ok(),
              reachable[static_cast<size_t>(i)])
        << "object " << i << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcGraphTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace imax432

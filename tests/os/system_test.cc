#include "src/os/system.h"

#include <gtest/gtest.h>

namespace imax432 {
namespace {

SystemConfig TestConfig() {
  SystemConfig config;
  config.machine.memory_bytes = 2 * 1024 * 1024;
  config.machine.object_table_capacity = 8192;
  config.processors = 2;
  return config;
}

TEST(SystemTest, BootsAndRunsAProgram) {
  System system(TestConfig());
  Assembler a("hello");
  a.Compute(100).Halt();
  auto process = system.Spawn(a.Build());
  ASSERT_TRUE(process.ok());
  system.Run();
  EXPECT_EQ(system.kernel().process_view(process.value()).state(),
            ProcessState::kTerminated);
}

TEST(SystemTest, GcDaemonCollectsOnRequest) {
  System system(TestConfig());
  system.Run();  // let the daemon park at its request port

  std::vector<AccessDescriptor> garbage;
  for (int i = 0; i < 10; ++i) {
    auto object = system.memory().CreateObject(system.memory().global_heap(),
                                               SystemType::kGeneric, 64, 0, rights::kAll);
    ASSERT_TRUE(object.ok());
    garbage.push_back(object.value());
  }
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  for (const AccessDescriptor& object : garbage) {
    EXPECT_FALSE(system.machine().table().Resolve(object).ok());
  }
  EXPECT_GE(system.gc().stats().cycles_completed, 1u);
}

TEST(SystemTest, GcDaemonItselfSurvivesCollection) {
  System system(TestConfig());
  system.Run();
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  // A second collection still works: the daemon, its port and program all survived.
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  EXPECT_GE(system.gc().stats().cycles_completed, 2u);
}

TEST(SystemTest, ReclaimedPortShadowStateIsDropped) {
  System system(TestConfig());
  system.Run();
  auto port = system.ports().Create(4);
  ASSERT_TRUE(port.ok());
  ObjectIndex index = port.value().ad.index();
  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  // The port was garbage (we hold the AD host-side only, which is not a root).
  EXPECT_FALSE(system.machine().table().Resolve(port.value().ad).ok());
  // Its shadow state is gone: a forged query faults with kNotFound/kInvalidAccess.
  EXPECT_FALSE(system.kernel().ports().QueuedCount(port.value().ad).ok());
  (void)index;
}

TEST(SystemTest, LostProcessRecovery) {
  SystemConfig config = TestConfig();
  config.recover_lost_processes = true;
  System system(config);
  system.Run();

  // Create a process and lose it (never start, never store its AD anywhere reachable).
  Assembler a("lost");
  a.Halt();
  auto process = system.kernel().CreateProcess(a.Build(), {});
  ASSERT_TRUE(process.ok());

  ASSERT_TRUE(system.RequestCollection().ok());
  system.Run();
  // The process was recovered to the lost-process port instead of being freed.
  auto recovered = system.kernel().ports().Dequeue(system.lost_process_port());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().SameObject(process.value()));
}

TEST(SystemTest, SwappingConfigurationIsTransparent) {
  // §6.2: "most applications will not be affected by this selection." The same workload
  // runs under both managers.
  for (MemoryManagerKind kind :
       {MemoryManagerKind::kNonSwapping, MemoryManagerKind::kSwapping}) {
    SystemConfig config = TestConfig();
    config.memory_manager = kind;
    System system(config);
    Assembler a("workload");
    a.MoveAd(1, kArgAdReg);
    for (int i = 0; i < 5; ++i) {
      a.CreateObject(2, 1, 1024).LoadImm(0, 7).StoreData(2, 0, 0, 8).LoadData(3, 2, 0, 8);
    }
    a.Halt();
    ProcessOptions options;
    options.initial_arg = system.memory().global_heap();
    auto process = system.Spawn(a.Build(), options);
    ASSERT_TRUE(process.ok());
    system.Run();
    EXPECT_EQ(system.kernel().process_view(process.value()).state(),
              ProcessState::kTerminated)
        << "manager kind " << static_cast<int>(kind);
  }
}

TEST(SystemTest, MultiprocessorConfigurationTransparent) {
  // "the existence of multiple general data processors [is] transparent to virtually all of
  // the system software": the same program yields the same result on 1 and 8 processors.
  for (int processors : {1, 8}) {
    SystemConfig config = TestConfig();
    config.processors = processors;
    System system(config);
    auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                                SystemType::kGeneric, 8, 0,
                                                rights::kRead | rights::kWrite);
    ASSERT_TRUE(carrier.ok());
    Assembler a("sum");
    auto loop = a.NewLabel();
    a.MoveAd(1, kArgAdReg)
        .LoadImm(0, 0)
        .LoadImm(1, 100)
        .LoadImm(2, 0)
        .Bind(loop)
        .Add(2, 2, 0)
        .AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop)
        .StoreData(1, 2, 0, 8)
        .Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    ASSERT_TRUE(system.Spawn(a.Build(), options).ok());
    system.Run();
    EXPECT_EQ(system.machine().addressing().ReadData(carrier.value(), 0, 8).value(), 4950u)
        << processors << " processors";
  }
}

TEST(SystemTest, TypedPortsZeroOverheadCodeIdentity) {
  // §4: "the code generated for any instance of this package [Typed_Ports] to be identical
  // to that generated for the untyped port package."
  struct TapeRequest {};  // a user message type

  Assembler untyped("untyped");
  UntypedPorts::EmitSend(untyped, 1, 2);
  UntypedPorts::EmitReceive(untyped, 3, 1);
  ProgramRef u = untyped.Build();

  Assembler typed("typed");
  TypedPorts<TapeRequest>::EmitSend(typed, 1, 2);
  TypedPorts<TapeRequest>::EmitReceive(typed, 3, 1);
  ProgramRef t = typed.Build();

  ASSERT_EQ(u->size(), t->size());
  for (uint32_t i = 0; i < u->size(); ++i) {
    EXPECT_EQ(static_cast<int>(u->at(i).op), static_cast<int>(t->at(i).op));
    EXPECT_EQ(u->at(i).a, t->at(i).a);
    EXPECT_EQ(u->at(i).b, t->at(i).b);
    EXPECT_EQ(u->at(i).c, t->at(i).c);
    EXPECT_EQ(u->at(i).imm, t->at(i).imm);
  }
}

TEST(SystemTest, TypedPortsHostSideCompileTimeChecking) {
  System system(TestConfig());
  struct Red {};
  struct Blue {};
  TypedPorts<Red> red_ports(&system.kernel());
  TypedPorts<Blue> blue_ports(&system.kernel());
  auto red_port = red_ports.Create(4);
  ASSERT_TRUE(red_port.ok());
  auto message = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 0, rights::kRead);
  ASSERT_TRUE(message.ok());
  TypedPorts<Red>::Message red_message{message.value()};
  ASSERT_TRUE(red_ports.Send(red_port.value(), red_message).ok());
  auto received = red_ports.Receive(red_port.value());
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().ad.SameObject(message.value()));
  // blue_ports.Send(red_port.value(), red_message) would not compile: the generic-instance
  // types are distinct, exactly like Ada's.
  (void)blue_ports;
}

// Results captured by the checked-ports helper (gtest ASSERTs need void contexts).
ProcessState last_state_ = ProcessState::kEmbryo;
Fault last_fault_ = Fault::kNone;

TEST(SystemTest, CheckedPortsRejectWrongTypeAtRuntime) {
  System system(TestConfig());
  system.Run();
  struct TapeMsg {};
  auto tdo = system.types().CreateTypeDefinition(0x5150);
  ASSERT_TRUE(tdo.ok());
  CheckedPorts<TapeMsg> checked(&system.kernel(), &system.types(), tdo.value());
  auto port = checked.Create(4);
  ASSERT_TRUE(port.ok());

  // A correctly-typed message passes the runtime check.
  auto good = system.types().CreateTypedObject(tdo.value(), system.memory().global_heap(),
                                               16, 0, rights::kRead);
  ASSERT_TRUE(good.ok());
  // A plain object does not.
  auto bad = system.memory().CreateObject(system.memory().global_heap(),
                                          SystemType::kGeneric, 16, 0, rights::kRead);
  ASSERT_TRUE(bad.ok());

  auto carrier = system.memory().CreateObject(system.memory().global_heap(),
                                              SystemType::kGeneric, 8, 2,
                                              rights::kRead | rights::kWrite);
  ASSERT_TRUE(carrier.ok());
  ASSERT_TRUE(system.machine().addressing().WriteAd(carrier.value(), 0, port.value().ad).ok());

  auto run_receiver = [&](const AccessDescriptor& message) {
    ASSERT_TRUE(system.kernel().PostMessage(port.value().ad, message).ok());
    Assembler a("checked-receiver");
    a.MoveAd(1, kArgAdReg).LoadAd(2, 1, 0);
    checked.EmitReceive(a, 3, 2);
    a.Halt();
    ProcessOptions options;
    options.initial_arg = carrier.value();
    auto process = system.Spawn(a.Build(), options);
    ASSERT_TRUE(process.ok());
    system.Run();
    last_state_ = system.kernel().process_view(process.value()).state();
    last_fault_ = system.kernel().process_view(process.value()).fault_code();
  };

  run_receiver(good.value());
  EXPECT_EQ(last_state_, ProcessState::kTerminated);
  EXPECT_EQ(last_fault_, Fault::kNone);

  run_receiver(bad.value());
  EXPECT_EQ(last_state_, ProcessState::kTerminated);
  EXPECT_EQ(last_fault_, Fault::kTypeMismatch);
}

}  // namespace
}  // namespace imax432

#include "src/os/type_manager.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class TypeManagerTest : public ::testing::Test {
 protected:
  TypeManagerTest()
      : machine_(MakeConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        types_(&kernel_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 256 * 1024;
    config.object_table_capacity = 1024;
    return config;
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  TypeManagerFacility types_;
};

TEST_F(TypeManagerTest, TypedObjectCarriesIdentity) {
  auto tdo = types_.CreateTypeDefinition(/*type_id=*/77);
  ASSERT_TRUE(tdo.ok());
  auto object =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 32, 0, rights::kRead);
  ASSERT_TRUE(object.ok());
  EXPECT_TRUE(types_.CheckType(object.value(), tdo.value()).ok());
  EXPECT_EQ(types_.TypeIdOf(object.value()).value(), 77u);
  EXPECT_EQ(types_.CreatedCount(tdo.value()).value(), 1u);
}

TEST_F(TypeManagerTest, PlainObjectHasNoUserType) {
  auto plain =
      memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0, rights::kRead);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(types_.TypeIdOf(plain.value()).fault(), Fault::kNotFound);
}

TEST_F(TypeManagerTest, TypeCheckRejectsOtherTypes) {
  auto tape = types_.CreateTypeDefinition(1);
  auto disk = types_.CreateTypeDefinition(2);
  ASSERT_TRUE(tape.ok() && disk.ok());
  auto object =
      types_.CreateTypedObject(tape.value(), memory_.global_heap(), 16, 0, rights::kRead);
  ASSERT_TRUE(object.ok());
  EXPECT_TRUE(types_.CheckType(object.value(), tape.value()).ok());
  EXPECT_EQ(types_.CheckType(object.value(), disk.value()).fault(), Fault::kTypeMismatch);
}

TEST_F(TypeManagerTest, TypeIdentitySurvivesChannels) {
  // §7.2: the hardware-recognized type identity is preserved "no matter what path a system
  // object follows within the 432". Pass the AD through a port and re-verify.
  auto tdo = types_.CreateTypeDefinition(9);
  ASSERT_TRUE(tdo.ok());
  auto object =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 0, rights::kRead);
  ASSERT_TRUE(object.ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(kernel_.PostMessage(port.value(), object.value()).ok());
  auto back = kernel_.ports().Dequeue(port.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(types_.CheckType(back.value(), tdo.value()).ok());
}

TEST_F(TypeManagerTest, CreateRequiresCreateRights) {
  auto tdo = types_.CreateTypeDefinition(5);
  ASSERT_TRUE(tdo.ok());
  AccessDescriptor weak = tdo.value().Restricted(rights::kRead);
  EXPECT_EQ(
      types_.CreateTypedObject(weak, memory_.global_heap(), 16, 0, rights::kRead).fault(),
      Fault::kRightsViolation);
}

TEST_F(TypeManagerTest, AmplifyRestoresRights) {
  auto tdo = types_.CreateTypeDefinition(6);
  ASSERT_TRUE(tdo.ok());
  auto object = types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 0,
                                         rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  // The manager hands out a read-only AD...
  AccessDescriptor handed_out = object.value().Restricted(rights::kRead);
  ASSERT_FALSE(handed_out.HasRights(rights::kWrite));
  // ...and can amplify it back inside its own domain.
  auto amplified = types_.Amplify(handed_out, tdo.value(), rights::kWrite);
  ASSERT_TRUE(amplified.ok());
  EXPECT_TRUE(amplified.value().HasRights(rights::kWrite));
  EXPECT_TRUE(amplified.value().SameObject(object.value()));
}

TEST_F(TypeManagerTest, AmplifyRequiresAmplifyRights) {
  auto tdo = types_.CreateTypeDefinition(7);
  ASSERT_TRUE(tdo.ok());
  auto object =
      types_.CreateTypedObject(tdo.value(), memory_.global_heap(), 16, 0, rights::kRead);
  ASSERT_TRUE(object.ok());
  AccessDescriptor weak_tdo = tdo.value().Restricted(rights::kTdoCreate);
  EXPECT_EQ(types_.Amplify(object.value(), weak_tdo, rights::kWrite).fault(),
            Fault::kRightsViolation);
}

TEST_F(TypeManagerTest, AmplifyRejectsForeignObjects) {
  auto tdo_a = types_.CreateTypeDefinition(10);
  auto tdo_b = types_.CreateTypeDefinition(11);
  ASSERT_TRUE(tdo_a.ok() && tdo_b.ok());
  auto object =
      types_.CreateTypedObject(tdo_a.value(), memory_.global_heap(), 16, 0, rights::kRead);
  ASSERT_TRUE(object.ok());
  // Manager B cannot amplify manager A's objects even with full rights on its own TDO.
  EXPECT_EQ(types_.Amplify(object.value(), tdo_b.value(), rights::kAll).fault(),
            Fault::kTypeMismatch);
}

TEST_F(TypeManagerTest, FilterPortMustBeAPort) {
  auto not_a_port =
      memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0, rights::kRead);
  ASSERT_TRUE(not_a_port.ok());
  EXPECT_EQ(types_.CreateTypeDefinition(12, not_a_port.value()).fault(),
            Fault::kTypeMismatch);
}

}  // namespace
}  // namespace imax432

#include "src/os/fault_service.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class FaultServiceTest : public ::testing::Test {
 protected:
  FaultServiceTest()
      : machine_(MakeConfig()), memory_(&machine_), kernel_(&machine_, &memory_) {
    EXPECT_TRUE(kernel_.AddProcessors(1).ok());
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 512 * 1024;
    config.object_table_capacity = 2048;
    return config;
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
};

TEST_F(FaultServiceTest, RetryPolicyRecoversTransientFault) {
  // The process faults on a null a1; a helper event fixes a1 between fault and retry, so
  // the first retry succeeds — the transient-fault recovery pattern.
  FaultPolicy policy;
  policy.actions[Fault::kNullAccess] = FaultAction::kRetry;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();  // daemon parks

  auto target = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                     rights::kRead | rights::kWrite);
  ASSERT_TRUE(target.ok());

  Assembler a("transient");
  a.LoadData(0, 1, 0, 8)  // a1 null: faults the first time
      .Halt();
  ProcessOptions options;
  options.fault_port = fault_port.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  kernel_.AddRootProvider([ad = process.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });

  // Intercede once the fault has landed: a repeating fix-up poller (standing in for the
  // external condition clearing) gives the process a valid a1 the first time it observes
  // the faulted state; the service's Resume then re-executes the instruction successfully.
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  // `fixer` outlives kernel_.Run(), so the event lambdas capture it by reference; a
  // self-owning shared_ptr capture would cycle and leak.
  std::function<void(int)> fixer;
  fixer = [this, process = process.value(), target = target.value(), &fixer](int remaining) {
    ProcessView proc = kernel_.process_view(process);
    if (proc.state() == ProcessState::kFaulted) {
      ContextView ctx(&machine_.addressing(), proc.context());
      ctx.set_ad_reg(1, target);
      return;  // condition cleared; no more polling
    }
    if (proc.state() != ProcessState::kTerminated && remaining > 0) {
      machine_.events().ScheduleAfter(200, [&fixer, remaining] { fixer(remaining - 1); });
    }
  };
  machine_.events().ScheduleAfter(1, [&fixer] { fixer(100); });
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
  EXPECT_GE(service.stats().retried, 1u);
  EXPECT_LE(service.stats().retried, policy.retry_budget);
  EXPECT_EQ(service.stats().terminated, 0u);
}

TEST_F(FaultServiceTest, RetryBudgetStopsFaultLoops) {
  // A process that faults forever: the service retries `retry_budget` times, then gives up.
  FaultPolicy policy;
  policy.actions[Fault::kNullAccess] = FaultAction::kRetry;
  policy.retry_budget = 3;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  Assembler a("loop-fault");
  a.LoadData(0, 1, 0, 8).Halt();  // a1 stays null: faults on every retry
  ProcessOptions options;
  options.fault_port = fault_port.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  kernel_.AddRootProvider([ad = process.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();
  EXPECT_EQ(service.stats().retried, 3u);
  EXPECT_EQ(service.stats().budget_exhausted, 1u);
  EXPECT_EQ(service.stats().terminated, 1u);
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
}

TEST_F(FaultServiceTest, DefaultActionTerminates) {
  FaultPolicy policy;  // nothing listed: everything terminates
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  Assembler a("doomed");
  a.LoadData(0, 1, 0, 8).Halt();
  ProcessOptions options;
  options.fault_port = fault_port.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  kernel_.AddRootProvider([ad = process.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();
  EXPECT_EQ(service.stats().terminated, 1u);
  EXPECT_EQ(service.stats().retried, 0u);
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
}

TEST_F(FaultServiceTest, EscalationForwardsTheProcessObject) {
  auto escalation =
      kernel_.ports().CreatePort(memory_.global_heap(), 8, QueueDiscipline::kFifo);
  ASSERT_TRUE(escalation.ok());
  FaultPolicy policy;
  policy.actions[Fault::kRightsViolation] = FaultAction::kDeliver;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn(escalation.value());
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  Assembler a("rights-fault");
  a.MoveAd(1, kArgAdReg).RestrictRights(1, rights::kNone).LoadData(0, 1, 0, 8).Halt();
  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                     rights::kRead);
  ASSERT_TRUE(object.ok());
  ProcessOptions options;
  options.fault_port = fault_port.value();
  options.initial_arg = object.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();

  EXPECT_EQ(service.stats().escalated, 1u);
  auto forwarded = kernel_.ports().Dequeue(escalation.value());
  ASSERT_TRUE(forwarded.ok());
  EXPECT_TRUE(forwarded.value().SameObject(process.value()));
  EXPECT_EQ(kernel_.process_view(process.value()).fault_code(), Fault::kRightsViolation);
}

TEST_F(FaultServiceTest, DeliverWithoutEscalationPortTerminates) {
  // kDeliver is only as good as the smarter handler behind it: spawned with no escalation
  // port, the service falls back to termination instead of leaving the process in limbo.
  FaultPolicy policy;
  policy.actions[Fault::kNullAccess] = FaultAction::kDeliver;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();  // no escalation port
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  Assembler a("undeliverable");
  a.LoadData(0, 1, 0, 8).Halt();
  ProcessOptions options;
  options.fault_port = fault_port.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  kernel_.AddRootProvider([ad = process.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();

  EXPECT_EQ(service.stats().escalated, 0u);
  EXPECT_EQ(service.stats().terminated, 1u);
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
}

TEST_F(FaultServiceTest, PerFaultCodeBudgetOverridesTheGlobalBudget) {
  // The global budget is 1 but kNullAccess carries an override of 4: the mid-retry-loop
  // exhaustion must trip at the override, not the default.
  FaultPolicy policy;
  policy.actions[Fault::kNullAccess] = FaultAction::kRetry;
  policy.retry_budget = 1;
  policy.retry_budgets[Fault::kNullAccess] = 4;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  Assembler a("loop-fault");
  a.LoadData(0, 1, 0, 8).Halt();  // a1 stays null: faults on every retry
  ProcessOptions options;
  options.fault_port = fault_port.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  kernel_.AddRootProvider([ad = process.value()](std::vector<AccessDescriptor>* roots) {
    roots->push_back(ad);
  });
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();

  EXPECT_EQ(service.stats().retried, 4u);
  EXPECT_EQ(service.stats().budget_exhausted, 1u);
  EXPECT_EQ(service.stats().terminated, 1u);
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
}

TEST_F(FaultServiceTest, QuarantinedFaultBudgetIsForcedToZero) {
  // Even a policy that asks for generous retries on kObjectQuarantined gets none: retrying
  // an access to a corrupt object can never succeed, so the service refuses the first one.
  FaultPolicy policy;
  policy.actions[Fault::kObjectQuarantined] = FaultAction::kRetry;
  policy.retry_budgets[Fault::kObjectQuarantined] = 5;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  auto object = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, 16, 0,
                                     rights::kRead | rights::kWrite);
  ASSERT_TRUE(object.ok());
  machine_.table().At(object.value().index()).quarantined = true;

  Assembler a("touch-quarantined");
  a.MoveAd(1, kArgAdReg).LoadData(0, 1, 0, 8).Halt();
  ProcessOptions options;
  options.fault_port = fault_port.value();
  options.initial_arg = object.value();
  auto process = kernel_.CreateProcess(a.Build(), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  kernel_.Run();

  EXPECT_EQ(service.stats().retried, 0u);
  EXPECT_EQ(service.stats().budget_exhausted, 1u);
  EXPECT_EQ(service.stats().terminated, 1u);
  EXPECT_EQ(kernel_.process_view(process.value()).fault_code(), Fault::kObjectQuarantined);
  EXPECT_EQ(kernel_.process_view(process.value()).state(), ProcessState::kTerminated);
}

TEST_F(FaultServiceTest, MixedFleetUnderOnePolicy) {
  FaultPolicy policy;
  policy.actions[Fault::kNullAccess] = FaultAction::kRetry;
  policy.retry_budget = 1;
  FaultService service(&kernel_, policy);
  auto fault_port = service.Spawn();
  ASSERT_TRUE(fault_port.ok());
  kernel_.Run();

  std::vector<AccessDescriptor> fleet;
  kernel_.AddRootProvider([&fleet](std::vector<AccessDescriptor>* roots) {
    for (const AccessDescriptor& ad : fleet) {
      roots->push_back(ad);
    }
  });
  for (int i = 0; i < 6; ++i) {
    Assembler a(i % 2 == 0 ? "healthy" : "faulty");
    if (i % 2 == 0) {
      a.Compute(500).Halt();
    } else {
      a.LoadData(0, 1, 0, 8).Halt();
    }
    ProcessOptions options;
    options.fault_port = fault_port.value();
    auto process = kernel_.CreateProcess(a.Build(), options);
    ASSERT_TRUE(process.ok());
    fleet.push_back(process.value());
    ASSERT_TRUE(kernel_.StartProcess(process.value()).ok());
  }
  kernel_.Run();
  // All six end terminal; the three faulty ones consumed one retry each then terminated.
  for (const AccessDescriptor& process : fleet) {
    EXPECT_EQ(kernel_.process_view(process).state(), ProcessState::kTerminated);
  }
  EXPECT_EQ(service.stats().retried, 3u);
  EXPECT_EQ(service.stats().terminated, 3u);
}

}  // namespace
}  // namespace imax432

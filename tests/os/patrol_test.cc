// ObjectPatrol: corruption is detected by sweep and answered with quarantine, never repair.
// Covers the three integrity checks (descriptor checksum, level invariant via the seal, data
// CRC against the epoch-keyed shadow) and the downstream contract: quarantined objects fault
// on access, are pinned out of the swap mix, and legitimate rewrites re-baseline instead of
// condemning.

#include "src/os/patrol.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/memory/swapping_memory_manager.h"
#include "src/os/system.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class PatrolTest : public ::testing::Test {
 protected:
  PatrolTest()
      : machine_(MakeConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        patrol_(&kernel_) {}

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 256 * 1024;
    config.object_table_capacity = 1024;  // SweepNow walks the whole table; keep it small
    return config;
  }

  AccessDescriptor MustCreate(uint32_t bytes) {
    auto ad = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric, bytes, 0,
                                   rights::kRead | rights::kWrite);
    EXPECT_TRUE(ad.ok());
    return ad.ok() ? ad.value() : AccessDescriptor();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  ObjectPatrol patrol_;
};

TEST_F(PatrolTest, CleanTableSurvivesASweepUntouched) {
  MustCreate(128);
  PatrolStats stats = patrol_.SweepNow();
  EXPECT_EQ(stats.sweeps_completed, 1u);
  EXPECT_GT(stats.descriptors_scanned, 0u);
  EXPECT_EQ(stats.objects_quarantined, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_EQ(stats.data_crc_failures, 0u);
  EXPECT_GE(stats.shadow_refreshes, 1u);  // data-part baselines established
}

TEST_F(PatrolTest, CorruptChecksumQuarantinesAndAccessFaults) {
  AccessDescriptor ad = MustCreate(64);
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 8, 42).ok());
  machine_.table().At(ad.index()).checksum ^= 0x5a5a5a5au;

  PatrolStats stats = patrol_.SweepNow();
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.objects_quarantined, 1u);
  EXPECT_TRUE(machine_.table().At(ad.index()).quarantined);
  // Quarantine revokes rep-rights: every checked access now faults instead of exposing the
  // suspect contents, and the swap layer pins the object where the patrol froze it.
  EXPECT_EQ(machine_.addressing().ReadData(ad, 0, 8).fault(), Fault::kObjectQuarantined);
  EXPECT_EQ(machine_.addressing().WriteData(ad, 0, 8, 1).fault(), Fault::kObjectQuarantined);
  EXPECT_FALSE(SwappingMemoryManager::IsSwappable(machine_.table().At(ad.index())));
}

TEST_F(PatrolTest, SystemObjectsAreFlaggedButNeverQuarantined) {
  auto port = memory_.CreateObject(memory_.global_heap(), SystemType::kPort, 64, 4,
                                   rights::kRead | rights::kWrite);
  ASSERT_TRUE(port.ok());
  machine_.table().At(port.value().index()).checksum ^= 1u;

  PatrolStats stats = patrol_.SweepNow();
  EXPECT_GE(stats.checksum_failures, 1u);
  // Kernel paths through system objects cannot tolerate faults; the damage is counted but
  // the object is left usable.
  EXPECT_FALSE(machine_.table().At(port.value().index()).quarantined);
}

TEST_F(PatrolTest, SilentBitRotIsCaughtByTheSecondSweep) {
  AccessDescriptor ad = MustCreate(256);
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 16, 8, 0xdeadbeefull).ok());
  ASSERT_EQ(patrol_.SweepNow().data_crc_failures, 0u);  // first sweep: baseline only

  // Flip a bit behind the addressing unit's back — no epoch advance, the injector's bit-rot
  // model. The CRC now disagrees with the shadow at an unchanged epoch.
  const ObjectDescriptor& descriptor = machine_.table().At(ad.index());
  uint8_t byte = 0;
  ASSERT_TRUE(machine_.memory().ReadBlock(descriptor.data_base + 16, &byte, 1).ok());
  byte ^= 0x04;
  ASSERT_TRUE(machine_.memory().WriteBlock(descriptor.data_base + 16, &byte, 1).ok());

  PatrolStats stats = patrol_.SweepNow();
  EXPECT_EQ(stats.data_crc_failures, 1u);
  EXPECT_EQ(stats.objects_quarantined, 1u);
  EXPECT_TRUE(machine_.table().At(ad.index()).quarantined);
}

TEST_F(PatrolTest, LegitimateRewriteRebaselinesInsteadOfCondemning) {
  AccessDescriptor ad = MustCreate(256);
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 8, 1).ok());
  uint64_t baselines = patrol_.SweepNow().shadow_refreshes;

  // A mutator write goes through the addressing unit, which bumps data_epoch: the next
  // sweep sees a moved epoch and re-baselines rather than comparing stale CRCs.
  ASSERT_TRUE(machine_.addressing().WriteData(ad, 0, 8, 2).ok());
  PatrolStats stats = patrol_.SweepNow();
  EXPECT_EQ(stats.data_crc_failures, 0u);
  EXPECT_EQ(stats.objects_quarantined, 0u);
  EXPECT_GT(stats.shadow_refreshes, baselines);
  EXPECT_FALSE(machine_.table().At(ad.index()).quarantined);
}

TEST_F(PatrolTest, QuarantinedObjectsAreNotRescanned) {
  AccessDescriptor ad = MustCreate(64);
  machine_.table().At(ad.index()).checksum ^= 2u;
  ASSERT_EQ(patrol_.SweepNow().objects_quarantined, 1u);
  // Already frozen: later sweeps learn nothing new and condemn nothing twice.
  PatrolStats stats = patrol_.SweepNow();
  EXPECT_EQ(stats.objects_quarantined, 1u);
  EXPECT_EQ(stats.checksum_failures, 1u);
}

TEST_F(PatrolTest, IncrementalStepsCoverTheWholeTable) {
  MustCreate(64);
  patrol_.BeginSweep();
  ASSERT_TRUE(patrol_.sweep_in_progress());
  uint32_t steps = 0;
  while (patrol_.Step(64)) {
    ++steps;
  }
  EXPECT_FALSE(patrol_.sweep_in_progress());
  EXPECT_GT(steps, 1u);  // 1024 descriptors at 64 per step: genuinely incremental
  EXPECT_EQ(patrol_.stats().sweeps_completed, 1u);
}

TEST(PatrolDaemonTest, RequestedSweepRunsInVirtualTime) {
  SystemConfig config;
  config.processors = 1;
  config.machine.memory_bytes = 1024 * 1024;
  config.machine.object_table_capacity = 2048;
  config.start_patrol_daemon = true;
  System system(config);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(system.memory()
                    .CreateObject(system.memory().global_heap(), SystemType::kGeneric, 128, 0,
                                  rights::kRead | rights::kWrite)
                    .ok());
  }
  ASSERT_TRUE(system.RequestPatrolSweep().ok());
  system.Run();
  EXPECT_EQ(system.patrol().stats().sweeps_completed, 1u);
  EXPECT_GT(system.now(), 0u);  // the sweep was paid for in virtual cycles
}

TEST(PatrolDaemonTest, SweepRequestWithoutDaemonIsRejected) {
  SystemConfig config;
  config.processors = 1;
  System system(config);
  EXPECT_FALSE(system.RequestPatrolSweep().ok());
}

}  // namespace
}  // namespace imax432

#include "src/os/ada_runtime.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

class AdaRuntimeTest : public ::testing::Test {
 protected:
  AdaRuntimeTest()
      : machine_(MakeConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        manager_(&kernel_) {
    EXPECT_TRUE(kernel_.AddProcessors(2).ok());
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.memory_bytes = 2 * 1024 * 1024;
    config.object_table_capacity = 8192;
    return config;
  }

  static ProgramRef SmallTask(Cycles work = 5000) {
    Assembler a("task");
    a.Compute(work).Halt();
    return a.Build();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  BasicProcessManager manager_;
};

TEST_F(AdaRuntimeTest, ScopeLifecycle) {
  auto scope = TaskScope::Open(&kernel_, &manager_, 256 * 1024);
  ASSERT_TRUE(scope.ok());
  auto t1 = scope.value().DeclareTask(SmallTask());
  auto t2 = scope.value().DeclareTask(SmallTask());
  ASSERT_TRUE(t1.ok() && t2.ok());
  // Declared but not activated: nothing runs yet.
  kernel_.Run();
  EXPECT_EQ(kernel_.process_view(t1.value()).state(), ProcessState::kEmbryo);

  ASSERT_TRUE(scope.value().Activate().ok());
  EXPECT_TRUE(scope.value().AwaitCompletion(machine_.now() + 10000000));
  EXPECT_TRUE(scope.value().AllTasksCompleted().value());

  uint32_t live_before = machine_.table().live_count();
  auto reclaimed = scope.value().Close();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(reclaimed.value(), 0u);
  EXPECT_LT(machine_.table().live_count(), live_before);
  // The task objects are gone with the scope.
  EXPECT_FALSE(machine_.table().Resolve(t1.value()).ok());
}

TEST_F(AdaRuntimeTest, MasterCannotLeaveScopeWithRunningTasks) {
  auto scope = TaskScope::Open(&kernel_, &manager_, 256 * 1024);
  ASSERT_TRUE(scope.ok());
  // A task that blocks forever on a scope port.
  auto port = scope.value().DeclarePort(2);
  ASSERT_TRUE(port.ok());
  Assembler a("waiter");
  a.MoveAd(1, kArgAdReg).Receive(2, 1).Halt();
  ProcessOptions options;
  options.initial_arg = port.value();
  ASSERT_TRUE(scope.value().DeclareTask(a.Build(), options).ok());
  ASSERT_TRUE(scope.value().Activate().ok());
  kernel_.Run();  // task blocks

  EXPECT_EQ(scope.value().Close().fault(), Fault::kWrongState);
  // Satisfy the wait; then the scope can close.
  ASSERT_TRUE(kernel_.PostMessage(port.value(), memory_.global_heap()).ok());
  kernel_.Run();
  EXPECT_TRUE(scope.value().Close().ok());
}

TEST_F(AdaRuntimeTest, TasksCommunicateThroughScopePorts) {
  auto scope = TaskScope::Open(&kernel_, &manager_, 256 * 1024);
  ASSERT_TRUE(scope.ok());
  auto port = scope.value().DeclarePort(4);
  // A scope object carries the result out to slot... results must stay in-scope: read
  // through the data part before closing.
  auto result_cell = scope.value().DeclareObject(8, 0, rights::kRead | rights::kWrite);
  auto carrier = scope.value().DeclareObject(8, 3, rights::kRead | rights::kWrite);
  ASSERT_TRUE(port.ok() && result_cell.ok() && carrier.ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 0, port.value()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 1, scope.value().sro()).ok());
  ASSERT_TRUE(machine_.addressing().WriteAd(carrier.value(), 2, result_cell.value()).ok());

  Assembler sender("sender");
  sender.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(3, 1, 1)      // the scope SRO: in-scope allocation by a task
      .CreateObject(4, 3, 16)
      .LoadImm(0, 99)
      .StoreData(4, 0, 0, 8)
      .Send(2, 4)
      .Halt();
  Assembler receiver("receiver");
  receiver.MoveAd(1, kArgAdReg)
      .LoadAd(2, 1, 0)
      .LoadAd(5, 1, 2)
      .Receive(4, 2)
      .LoadData(0, 4, 0, 8)
      .StoreData(5, 0, 0, 8)
      .Halt();
  ProcessOptions options;
  options.initial_arg = carrier.value();
  ASSERT_TRUE(scope.value().DeclareTask(receiver.Build(), options).ok());
  ASSERT_TRUE(scope.value().DeclareTask(sender.Build(), options).ok());
  ASSERT_TRUE(scope.value().Activate().ok());
  ASSERT_TRUE(scope.value().AwaitCompletion(machine_.now() + 10000000));
  EXPECT_EQ(machine_.addressing().ReadData(result_cell.value(), 0, 8).value(), 99u);
  EXPECT_TRUE(scope.value().Close().ok());
}

TEST_F(AdaRuntimeTest, ScopeObjectsCannotEscapeToGlobal) {
  // The Ada accessibility rule via the level rule: a scope object's AD cannot be stored in
  // a global container.
  auto scope = TaskScope::Open(&kernel_, &manager_, 64 * 1024);
  ASSERT_TRUE(scope.ok());
  auto local_object = scope.value().DeclareObject(16, 0, rights::kRead);
  ASSERT_TRUE(local_object.ok());
  auto global_container = memory_.CreateObject(memory_.global_heap(), SystemType::kGeneric,
                                               8, 1, rights::kRead | rights::kWrite);
  ASSERT_TRUE(global_container.ok());
  EXPECT_EQ(
      machine_.addressing().WriteAd(global_container.value(), 0, local_object.value()).fault(),
      Fault::kLevelViolation);
}

TEST_F(AdaRuntimeTest, NestedScopesNestLifetimes) {
  auto outer = TaskScope::Open(&kernel_, &manager_, 512 * 1024);
  ASSERT_TRUE(outer.ok());
  auto inner = outer.value().Nested(128 * 1024);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner.value().level(), outer.value().level() + 1);

  // Outer objects may be referenced from inner containers, not vice versa.
  auto outer_object = outer.value().DeclareObject(16, 0, rights::kRead);
  auto inner_container = inner.value().DeclareObject(8, 1, rights::kRead | rights::kWrite);
  auto inner_object = inner.value().DeclareObject(16, 0, rights::kRead);
  auto outer_container = outer.value().DeclareObject(8, 1, rights::kRead | rights::kWrite);
  ASSERT_TRUE(outer_object.ok() && inner_container.ok() && inner_object.ok() &&
              outer_container.ok());
  EXPECT_TRUE(
      machine_.addressing().WriteAd(inner_container.value(), 0, outer_object.value()).ok());
  EXPECT_EQ(
      machine_.addressing().WriteAd(outer_container.value(), 0, inner_object.value()).fault(),
      Fault::kLevelViolation);

  // Closing the inner scope reclaims its objects; the outer scope is intact.
  ASSERT_TRUE(inner.value().Close().ok());
  EXPECT_FALSE(machine_.table().Resolve(inner_object.value()).ok());
  EXPECT_TRUE(machine_.table().Resolve(outer_object.value()).ok());
  ASSERT_TRUE(outer.value().Close().ok());
}

TEST_F(AdaRuntimeTest, ClosedScopeRejectsDeclarations) {
  auto scope = TaskScope::Open(&kernel_, &manager_, 64 * 1024);
  ASSERT_TRUE(scope.ok());
  ASSERT_TRUE(scope.value().Close().ok());
  EXPECT_EQ(scope.value().DeclareTask(SmallTask()).fault(), Fault::kWrongState);
  EXPECT_EQ(scope.value().DeclarePort(2).fault(), Fault::kWrongState);
  EXPECT_EQ(scope.value().Close().fault(), Fault::kWrongState);
}

TEST_F(AdaRuntimeTest, ScopeCloseIsBulkReclamation) {
  // Closing a populated scope uses the SRO bulk path, not the collector.
  auto scope = TaskScope::Open(&kernel_, &manager_, 512 * 1024);
  ASSERT_TRUE(scope.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(scope.value().DeclareObject(64, 1, rights::kAll).ok());
  }
  MemoryStats before = memory_.stats();
  auto reclaimed = scope.value().Close();
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GE(reclaimed.value(), 50u);
  EXPECT_GE(memory_.stats().bulk_reclaimed_objects - before.bulk_reclaimed_objects, 50u);
}

}  // namespace
}  // namespace imax432

#include "src/os/introspection.h"

#include <gtest/gtest.h>

#include "src/os/system.h"

namespace imax432 {
namespace {

SystemConfig MonitorConfig() {
  SystemConfig config;
  config.processors = 2;
  config.machine.memory_bytes = 1024 * 1024;
  config.machine.object_table_capacity = 4096;
  config.start_gc_daemon = false;
  return config;
}

TEST(IntrospectionTest, CensusCountsByType) {
  System system(MonitorConfig());
  Introspection monitor(&system.kernel());
  ObjectCensus before = monitor.TakeCensus();

  ASSERT_TRUE(system.memory()
                  .CreateObject(system.memory().global_heap(), SystemType::kGeneric, 100, 2,
                                rights::kAll)
                  .ok());
  ASSERT_TRUE(system.kernel()
                  .ports()
                  .CreatePort(system.memory().global_heap(), 4, QueueDiscipline::kFifo)
                  .ok());

  ObjectCensus after = monitor.TakeCensus();
  EXPECT_EQ(after.live_objects, before.live_objects + 2);
  EXPECT_EQ(after.count_by_type[static_cast<int>(SystemType::kGeneric)],
            before.count_by_type[static_cast<int>(SystemType::kGeneric)] + 1);
  EXPECT_EQ(after.count_by_type[static_cast<int>(SystemType::kPort)],
            before.count_by_type[static_cast<int>(SystemType::kPort)] + 1);
  EXPECT_EQ(after.total_data_bytes,
            before.total_data_bytes + 100 + PortLayout::kDataBytes);
}

TEST(IntrospectionTest, BootInventoryIsVisible) {
  System system(MonitorConfig());
  Introspection monitor(&system.kernel());
  ObjectCensus census = monitor.TakeCensus();
  // The boot image: the global heap SRO, the default dispatching port, two processors.
  EXPECT_GE(census.count_by_type[static_cast<int>(SystemType::kStorageResource)], 1u);
  EXPECT_GE(census.count_by_type[static_cast<int>(SystemType::kPort)], 1u);
  EXPECT_EQ(census.count_by_type[static_cast<int>(SystemType::kProcessor)], 2u);
}

TEST(IntrospectionTest, ProcessorUtilizationAccounted) {
  System system(MonitorConfig());
  Introspection monitor(&system.kernel());
  Assembler a("work");
  a.Compute(80000).Halt();  // 10 ms of work
  ASSERT_TRUE(system.Spawn(a.Build()).ok());
  system.Run();

  SystemReport report = monitor.Report();
  ASSERT_EQ(report.processors.size(), 2u);
  // One processor did the work; total busy is at least the computation.
  uint64_t total_busy = 0;
  uint64_t total_dispatches = 0;
  for (const ProcessorReport& processor : report.processors) {
    total_busy += processor.busy_cycles;
    total_dispatches += processor.dispatches;
  }
  EXPECT_GE(total_busy, 80000u);
  EXPECT_GE(total_dispatches, 1u);
  EXPECT_GT(report.now, 0u);
}

TEST(IntrospectionTest, UserTypedObjectsCounted) {
  System system(MonitorConfig());
  Introspection monitor(&system.kernel());
  auto tdo = system.types().CreateTypeDefinition(1);
  ASSERT_TRUE(tdo.ok());
  ASSERT_TRUE(system.types()
                  .CreateTypedObject(tdo.value(), system.memory().global_heap(), 16, 0,
                                     rights::kRead)
                  .ok());
  ObjectCensus census = monitor.TakeCensus();
  EXPECT_EQ(census.user_typed, 1u);
  EXPECT_EQ(census.count_by_type[static_cast<int>(SystemType::kTypeDefinition)], 1u);
}

TEST(IntrospectionTest, FormatProducesReadableReport) {
  System system(MonitorConfig());
  Introspection monitor(&system.kernel());
  std::string text = Introspection::Format(monitor.Report());
  EXPECT_NE(text.find("objects:"), std::string::npos);
  EXPECT_NE(text.find("gdp 0:"), std::string::npos);
  EXPECT_NE(text.find("bus:"), std::string::npos);
  EXPECT_NE(text.find("memory:"), std::string::npos);
}

TEST(CycleModelTest, CalibrationMatchesThePaper) {
  // The two published absolute numbers, exactly.
  EXPECT_EQ(cycles::ToMicroseconds(cycles::kDomainCall), 65.0);
  EXPECT_EQ(cycles::ToMicroseconds(cycles::CreateObjectCost(64, 0)), 80.0);
  // 8 MHz clock.
  EXPECT_EQ(cycles::kPerMicrosecond, 8u);
}

TEST(CycleModelTest, CreateCostMonotoneInSize) {
  Cycles last = 0;
  for (uint32_t bytes : {16u, 64u, 256u, 4096u, 65536u}) {
    Cycles cost = cycles::CreateObjectCost(bytes, 0);
    EXPECT_GE(cost, last);
    last = cost;
  }
  // Access slots count toward the zeroing/init cost too.
  EXPECT_GT(cycles::CreateObjectCost(0, 1024), cycles::CreateObjectCost(0, 0));
}

TEST(CycleModelTest, RelativeCostOrderingIsSane) {
  // Orderings the 432 literature supports: domain call > local call > send/receive single
  // instructions > AD move > simple op; dispatch between send and domain call.
  EXPECT_GT(cycles::kDomainCall, cycles::kLocalCall);
  EXPECT_GT(cycles::kLocalCall, cycles::kSend);
  EXPECT_GT(cycles::kSend, cycles::kAdMove);
  EXPECT_GT(cycles::kAdMove, cycles::kSimpleOp);
  EXPECT_GT(cycles::kDispatch, cycles::kSend);
  EXPECT_GT(cycles::kCreateObjectBase, cycles::kDomainCall);
}

}  // namespace
}  // namespace imax432

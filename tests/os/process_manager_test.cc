#include "src/os/process_manager.h"

#include <gtest/gtest.h>

#include "src/memory/basic_memory_manager.h"
#include "src/os/schedulers.h"
#include "src/sim/machine.h"

namespace imax432 {
namespace {

MachineConfig PmConfig() {
  MachineConfig config;
  config.memory_bytes = 2 * 1024 * 1024;
  config.object_table_capacity = 8192;
  config.time_slice = 4000;  // small slice so trees interleave
  return config;
}

class ProcessManagerTest : public ::testing::Test {
 protected:
  ProcessManagerTest()
      : machine_(PmConfig()),
        memory_(&machine_),
        kernel_(&machine_, &memory_),
        manager_(&kernel_) {}

  static ProgramRef Spinner(uint64_t iterations) {
    Assembler a("spinner");
    auto loop = a.NewLabel();
    a.LoadImm(0, 0).LoadImm(1, iterations).Bind(loop).Compute(100).AddImm(0, 0, 1)
        .BranchIfLess(0, 1, loop).Halt();
    return a.Build();
  }

  // Builds a parent with `children` child processes (all spinners).
  AccessDescriptor MakeTree(int children) {
    auto parent = manager_.Create(Spinner(100000), {});
    EXPECT_TRUE(parent.ok());
    for (int i = 0; i < children; ++i) {
      ProcessOptions options;
      options.parent = parent.value();
      EXPECT_TRUE(manager_.Create(Spinner(100000), options).ok());
    }
    return parent.value();
  }

  ProcessState StateOf(const AccessDescriptor& process) {
    return kernel_.process_view(process).state();
  }

  Machine machine_;
  BasicMemoryManager memory_;
  Kernel kernel_;
  BasicProcessManager manager_;
};

TEST_F(ProcessManagerTest, TreeSizeCountsDescendants) {
  AccessDescriptor root = MakeTree(3);
  EXPECT_EQ(manager_.TreeSize(root).value(), 4u);

  // Grandchildren count too.
  ProcessView parent_view = kernel_.process_view(root);
  AccessDescriptor first_child = parent_view.Slot(ProcessLayout::kSlotFirstChild);
  ProcessOptions options;
  options.parent = first_child;
  ASSERT_TRUE(manager_.Create(Spinner(10), options).ok());
  EXPECT_EQ(manager_.TreeSize(root).value(), 5u);
}

TEST_F(ProcessManagerTest, StartAdmitsWholeTree) {
  ASSERT_TRUE(kernel_.AddProcessors(2).ok());
  AccessDescriptor root = MakeTree(3);
  std::vector<AccessDescriptor> nodes;
  ASSERT_TRUE(
      manager_.VisitTree(root, [&](const AccessDescriptor& n) { nodes.push_back(n); }).ok());
  // Everything starts stopped.
  for (const AccessDescriptor& n : nodes) {
    EXPECT_FALSE(manager_.IsRunnable(n).value());
  }
  ASSERT_TRUE(manager_.Start(root).ok());
  for (const AccessDescriptor& n : nodes) {
    EXPECT_TRUE(manager_.IsRunnable(n).value());
  }
  kernel_.RunUntil(machine_.now() + 50000);
  // All four have consumed cycles.
  for (const AccessDescriptor& n : nodes) {
    EXPECT_GT(kernel_.process_view(n).consumed(), 0u);
  }
}

TEST_F(ProcessManagerTest, StopHaltsWholeTreeWithoutKnowingItsStructure) {
  ASSERT_TRUE(kernel_.AddProcessors(2).ok());
  AccessDescriptor root = MakeTree(3);
  ASSERT_TRUE(manager_.Start(root).ok());
  kernel_.RunUntil(machine_.now() + 30000);

  // "a user wishing to control a computation need not be aware of the internal structure of
  // that process": one Stop against the root freezes all four.
  ASSERT_TRUE(manager_.Stop(root).ok());
  kernel_.Run();  // drain: everything parks

  std::vector<uint64_t> consumed;
  ASSERT_TRUE(manager_
                  .VisitTree(root,
                             [&](const AccessDescriptor& n) {
                               consumed.push_back(kernel_.process_view(n).consumed());
                               EXPECT_EQ(StateOf(n), ProcessState::kStopped);
                             })
                  .ok());

  // Nothing advances while stopped.
  kernel_.RunUntil(machine_.now() + 50000);
  size_t i = 0;
  ASSERT_TRUE(manager_
                  .VisitTree(root,
                             [&](const AccessDescriptor& n) {
                               EXPECT_EQ(kernel_.process_view(n).consumed(), consumed[i++]);
                             })
                  .ok());
}

TEST_F(ProcessManagerTest, NestedStopStartCountsAreHonored) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  AccessDescriptor root = MakeTree(1);
  ASSERT_TRUE(manager_.Start(root).ok());
  kernel_.RunUntil(machine_.now() + 10000);

  // Two independent controllers stop the tree; both must start it before it runs.
  ASSERT_TRUE(manager_.Stop(root).ok());
  ASSERT_TRUE(manager_.Stop(root).ok());
  kernel_.Run();
  ASSERT_EQ(StateOf(root), ProcessState::kStopped);

  ASSERT_TRUE(manager_.Start(root).ok());
  kernel_.Run();
  EXPECT_EQ(StateOf(root), ProcessState::kStopped);  // still one stop outstanding

  ASSERT_TRUE(manager_.Start(root).ok());
  kernel_.RunUntil(machine_.now() + 10000);
  EXPECT_NE(StateOf(root), ProcessState::kStopped);
}

TEST_F(ProcessManagerTest, StartsDoNotAccumulate) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto process = manager_.Create(Spinner(1000), {});
  ASSERT_TRUE(process.ok());
  // Extra starts are inert: a single later stop still stops it.
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  ASSERT_TRUE(manager_.Stop(process.value()).ok());
  kernel_.Run();
  EXPECT_EQ(StateOf(process.value()), ProcessState::kStopped);
}

TEST_F(ProcessManagerTest, BlockedProcessHonorsStopOnWake) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  auto port = kernel_.ports().CreatePort(memory_.global_heap(), 4, QueueDiscipline::kFifo);
  ASSERT_TRUE(port.ok());
  Assembler a("waiter");
  a.MoveAd(1, kArgAdReg).Receive(2, 1).Compute(1000).Halt();
  ProcessOptions options;
  options.initial_arg = port.value();
  auto process = manager_.Create(a.Build(), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  kernel_.Run();
  ASSERT_EQ(StateOf(process.value()), ProcessState::kBlocked);

  // Stop it while blocked, then satisfy the receive: it must park, not run.
  ASSERT_TRUE(manager_.Stop(process.value()).ok());
  ASSERT_TRUE(kernel_.PostMessage(port.value(), memory_.global_heap()).ok());
  kernel_.Run();
  EXPECT_EQ(StateOf(process.value()), ProcessState::kStopped);

  // Start releases it to finish.
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  kernel_.Run();
  EXPECT_EQ(StateOf(process.value()), ProcessState::kTerminated);
}

TEST_F(ProcessManagerTest, SchedulerPortMediatesTransitions) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  SchedulerStats sched_stats;
  auto scheduler = SpawnPassThroughScheduler(&kernel_, &manager_, &sched_stats);
  ASSERT_TRUE(scheduler.ok());

  ProcessOptions options;
  options.scheduler_port = scheduler.value().port;
  auto process = manager_.Create(Spinner(50), options);
  ASSERT_TRUE(process.ok());

  // Start routes through the scheduler daemon rather than straight into the mix.
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  kernel_.Run();
  EXPECT_EQ(StateOf(process.value()), ProcessState::kTerminated);
  EXPECT_EQ(manager_.stats().scheduler_notifications, 1u);
  EXPECT_EQ(sched_stats.admitted, 1u);
}

TEST_F(ProcessManagerTest, FairShareSchedulerDemotesHeavyConsumers) {
  ASSERT_TRUE(kernel_.AddProcessors(1).ok());
  SchedulerStats sched_stats;
  auto scheduler =
      SpawnFairShareScheduler(&kernel_, &manager_, &sched_stats, /*base_priority=*/128,
                              /*cycles_per_priority_step=*/1000);
  ASSERT_TRUE(scheduler.ok());

  ProcessOptions options;
  options.scheduler_port = scheduler.value().port;
  auto process = manager_.Create(Spinner(500), options);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(manager_.Start(process.value()).ok());
  kernel_.RunUntil(machine_.now() + 30000);

  // Stop and restart after it consumed cycles: readmission lowers its priority.
  ASSERT_TRUE(manager_.Stop(process.value()).ok());
  kernel_.Run();
  if (StateOf(process.value()) == ProcessState::kStopped) {
    ASSERT_TRUE(manager_.Start(process.value()).ok());
    kernel_.Run();
    EXPECT_GE(sched_stats.adjusted, 1u);
    EXPECT_LT(kernel_.process_view(process.value()).priority(), 128);
  }
}

TEST_F(ProcessManagerTest, BatchSchedulerLimitsConcurrency) {
  ASSERT_TRUE(kernel_.AddProcessors(4).ok());
  BatchScheduler batch(&kernel_, &manager_, /*max_concurrent=*/1);
  auto scheduler = batch.Spawn();
  ASSERT_TRUE(scheduler.ok());
  kernel_.SetProcessEventHandler([&](const AccessDescriptor& process, ProcessEvent event) {
    if (event == ProcessEvent::kTerminated) {
      batch.NotifyTermination(process);
    }
  });

  // Three jobs, four processors, but at most one admitted at a time: their execution
  // windows must not overlap, observable as strictly increasing completion order with no
  // concurrent consumption. We check that total makespan >= sum of individual runtimes.
  std::vector<AccessDescriptor> jobs;
  for (int i = 0; i < 3; ++i) {
    ProcessOptions options;
    options.scheduler_port = scheduler.value().port;
    auto job = manager_.Create(Spinner(100), options);
    ASSERT_TRUE(job.ok());
    jobs.push_back(job.value());
    ASSERT_TRUE(manager_.Start(job.value()).ok());
  }
  kernel_.Run();
  for (const AccessDescriptor& job : jobs) {
    EXPECT_EQ(StateOf(job), ProcessState::kTerminated);
  }
  EXPECT_EQ(batch.stats().admitted, 3u);
}

TEST_F(ProcessManagerTest, NoCentralProcessTable) {
  // §7.1: "there is no central table of all processes in the system." The manager's state
  // is the tree links inside the process objects; creating processes leaves no manager-side
  // record (verified by the manager exposing only traversal, not enumeration).
  auto a = manager_.Create(Spinner(10), {});
  auto b = manager_.Create(Spinner(10), {});
  ASSERT_TRUE(a.ok() && b.ok());
  // Two unrelated processes have no common root: the only way to reach b is to hold its AD.
  EXPECT_EQ(manager_.TreeSize(a.value()).value(), 1u);
  EXPECT_EQ(manager_.TreeSize(b.value()).value(), 1u);
}

}  // namespace
}  // namespace imax432

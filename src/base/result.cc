#include "src/base/result.h"

namespace imax432 {

const char* FaultName(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      return "kNone";
    case Fault::kNullAccess:
      return "kNullAccess";
    case Fault::kInvalidAccess:
      return "kInvalidAccess";
    case Fault::kRightsViolation:
      return "kRightsViolation";
    case Fault::kBoundsViolation:
      return "kBoundsViolation";
    case Fault::kTypeMismatch:
      return "kTypeMismatch";
    case Fault::kLevelViolation:
      return "kLevelViolation";
    case Fault::kNotAllocated:
      return "kNotAllocated";
    case Fault::kObjectTableFull:
      return "kObjectTableFull";
    case Fault::kStorageExhausted:
      return "kStorageExhausted";
    case Fault::kSegmentTooLarge:
      return "kSegmentTooLarge";
    case Fault::kSegmentSwapped:
      return "kSegmentSwapped";
    case Fault::kInvalidInstruction:
      return "kInvalidInstruction";
    case Fault::kRegisterOutOfRange:
      return "kRegisterOutOfRange";
    case Fault::kContextUnderflow:
      return "kContextUnderflow";
    case Fault::kTimeout:
      return "kTimeout";
    case Fault::kProcessorHalted:
      return "kProcessorHalted";
    case Fault::kFaultNotPermitted:
      return "kFaultNotPermitted";
    case Fault::kInvalidArgument:
      return "kInvalidArgument";
    case Fault::kAlreadyExists:
      return "kAlreadyExists";
    case Fault::kNotFound:
      return "kNotFound";
    case Fault::kWrongState:
      return "kWrongState";
    case Fault::kQueueFull:
      return "kQueueFull";
    case Fault::kQueueEmpty:
      return "kQueueEmpty";
    case Fault::kDeviceError:
      return "kDeviceError";
    case Fault::kFilingFormatError:
      return "kFilingFormatError";
    case Fault::kPermissionDenied:
      return "kPermissionDenied";
    case Fault::kVerificationFailed:
      return "kVerificationFailed";
    case Fault::kObjectQuarantined:
      return "kObjectQuarantined";
  }
  return "kUnknown";
}

}  // namespace imax432

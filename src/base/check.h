// Invariant checking. IMAX_CHECK aborts on violated invariants (always on, like ZX_ASSERT);
// IMAX_DCHECK compiles out in NDEBUG builds (like ZX_DEBUG_ASSERT).

#ifndef IMAX432_SRC_BASE_CHECK_H_
#define IMAX432_SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace imax432::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "IMAX_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace imax432::internal

#define IMAX_CHECK(expr)                                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::imax432::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define IMAX_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define IMAX_DCHECK(expr) IMAX_CHECK(expr)
#endif

#endif  // IMAX432_SRC_BASE_CHECK_H_

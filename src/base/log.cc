#include "src/base/log.h"

#include <cstdio>

namespace imax432 {
namespace {

LogSeverity g_min_severity = LogSeverity::kWarning;

TraceLogSink g_trace_sink = nullptr;
void* g_trace_sink_user = nullptr;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kTrace:
      return "TRACE";
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogSeverity(LogSeverity severity) { g_min_severity = severity; }

LogSeverity GetLogSeverity() { return g_min_severity; }

void SetTraceLogSink(TraceLogSink sink, void* user) {
  g_trace_sink = sink;
  g_trace_sink_user = user;
}

void Logf(LogSeverity severity, const char* format, ...) {
  if (severity == LogSeverity::kTrace && g_trace_sink != nullptr) {
    char buffer[512];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof(buffer), format, args);
    va_end(args);
    g_trace_sink(g_trace_sink_user, buffer);
    return;
  }
  if (severity < g_min_severity) {
    return;
  }
  std::fprintf(stderr, "[imax432 %s] ", SeverityTag(severity));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace imax432

// Deterministic pseudo-random number generator for workload generation.
//
// Benchmarks and property tests must be reproducible run-to-run, so all randomized workloads
// draw from this explicitly-seeded xorshift64* generator rather than std::random_device.

#ifndef IMAX432_SRC_BASE_XORSHIFT_H_
#define IMAX432_SRC_BASE_XORSHIFT_H_

#include <cstdint>

#include "src/base/check.h"

namespace imax432 {

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15u : seed) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1du;
  }

  // Uniform in [0, bound).
  uint64_t NextBelow(uint64_t bound) {
    IMAX_CHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform in [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    IMAX_CHECK(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Bernoulli draw with probability numerator/denominator.
  bool NextChance(uint64_t numerator, uint64_t denominator) {
    IMAX_CHECK(denominator > 0);
    return NextBelow(denominator) < numerator;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_BASE_XORSHIFT_H_

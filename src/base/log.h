// Minimal leveled logging for the emulator and OS layers.
//
// iMAX components log through this sink so tests can silence or capture output. Severity
// follows the usual kernel convention; kTrace is used by the interpreter to dump instruction
// streams when diagnosing workload programs.

#ifndef IMAX432_SRC_BASE_LOG_H_
#define IMAX432_SRC_BASE_LOG_H_

#include <cstdarg>
#include <cstdint>

namespace imax432 {

enum class LogSeverity : uint8_t {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarning,
  kError,
};

// Global minimum severity; messages below it are discarded. Defaults to kWarning so unit
// tests stay quiet; examples raise it to kInfo.
void SetLogSeverity(LogSeverity severity);
LogSeverity GetLogSeverity();

// printf-style log statement.
void Logf(LogSeverity severity, const char* format, ...) __attribute__((format(printf, 2, 3)));

// Optional sink for kTrace-level messages. While installed, every kTrace line is delivered
// to the sink — regardless of the minimum severity — and never reaches stderr, so
// instruction-level interpreter dumps have a single destination. System installs a sink
// forwarding into the machine's TraceRecorder when SystemConfig::trace is set. Pass nullptr
// to uninstall.
using TraceLogSink = void (*)(void* user, const char* message);
void SetTraceLogSink(TraceLogSink sink, void* user);

#define IMAX_LOG_TRACE(...) ::imax432::Logf(::imax432::LogSeverity::kTrace, __VA_ARGS__)
#define IMAX_LOG_DEBUG(...) ::imax432::Logf(::imax432::LogSeverity::kDebug, __VA_ARGS__)
#define IMAX_LOG_INFO(...) ::imax432::Logf(::imax432::LogSeverity::kInfo, __VA_ARGS__)
#define IMAX_LOG_WARNING(...) ::imax432::Logf(::imax432::LogSeverity::kWarning, __VA_ARGS__)
#define IMAX_LOG_ERROR(...) ::imax432::Logf(::imax432::LogSeverity::kError, __VA_ARGS__)

}  // namespace imax432

#endif  // IMAX432_SRC_BASE_LOG_H_

// Result<T> / Status: kernel-style error propagation without exceptions.
//
// Hardware faults on the 432 are delivered as data (ultimately as messages to fault ports),
// never as non-local control transfers, so every fallible operation in the emulator and in the
// iMAX layers returns a Result<T> carrying either a value or a Fault code. This mirrors the
// fault model of the machine and keeps all kernel paths exception-free.

#ifndef IMAX432_SRC_BASE_RESULT_H_
#define IMAX432_SRC_BASE_RESULT_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/base/check.h"

namespace imax432 {

// Hardware- and OS-level fault codes. The first group corresponds to faults the 432 processor
// raises during operand evaluation; the second group to conditions detected by iMAX software.
enum class Fault : uint8_t {
  kNone = 0,

  // -- Hardware (processor-detected) faults --
  kNullAccess,            // an operation dereferenced a null access descriptor
  kInvalidAccess,         // AD names a freed / reused object-table entry (generation mismatch)
  kRightsViolation,       // AD lacks the read/write/type right required by the operation
  kBoundsViolation,       // offset outside the segment's data or access part
  kTypeMismatch,          // object's system type does not match the instruction's requirement
  kLevelViolation,        // attempted to store an AD into an object with a lower level number
  kNotAllocated,          // object descriptor slot not allocated
  kObjectTableFull,       // no free object descriptors
  kStorageExhausted,      // SRO cannot satisfy an allocation request
  kSegmentTooLarge,       // requested size exceeds the 64K per-part architectural limit
  kSegmentSwapped,        // segment not present in physical memory (swapping systems only)
  kInvalidInstruction,    // interpreter met an ill-formed instruction
  kRegisterOutOfRange,    // context register index out of range
  kContextUnderflow,      // RETURN with no caller context
  kTimeout,               // a timed wait expired
  kProcessorHalted,       // operation on a halted processor

  // -- Software (iMAX-detected) faults --
  kFaultNotPermitted,     // a process below iMAX level 3 faulted (design rule violation)
  kInvalidArgument,       // malformed request to an iMAX package
  kAlreadyExists,         // name or resource already registered
  kNotFound,              // no such object / registration
  kWrongState,            // operation invalid in the object's current state
  kQueueFull,             // a non-blocking send found the port full
  kQueueEmpty,            // a non-blocking receive found the port empty
  kDeviceError,           // simulated device-level failure
  kFilingFormatError,     // object filing store corrupt or version mismatch
  kPermissionDenied,      // caller's domain lacks access to the requested package facility
  kVerificationFailed,    // static verifier rejected the program at load time
  kObjectQuarantined,     // object failed a patrol integrity check; rep-rights revoked
};

// Human-readable fault name (for logs and test diagnostics).
const char* FaultName(Fault fault);

// Result<T> holds either a value of type T or a Fault. Modeled after absl::StatusOr, but
// minimal and exception-free.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from a fault keeps call sites terse, the same way
  // StatusOr does.
  Result(T value) : value_(std::move(value)), fault_(Fault::kNone) {}  // NOLINT(runtime/explicit)
  Result(Fault fault) : fault_(fault) {                                // NOLINT(runtime/explicit)
    IMAX_CHECK(fault != Fault::kNone);
  }

  bool ok() const { return fault_ == Fault::kNone; }
  Fault fault() const { return fault_; }

  T& value() & {
    IMAX_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    IMAX_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    IMAX_CHECK(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Fault fault_;
};

// Status is Result<void>: success or a fault.
class [[nodiscard]] Status {
 public:
  Status() : fault_(Fault::kNone) {}
  Status(Fault fault) : fault_(fault) {}  // NOLINT(runtime/explicit)

  static Status Ok() { return Status(); }

  bool ok() const { return fault_ == Fault::kNone; }
  Fault fault() const { return fault_; }

 private:
  Fault fault_;
};

// Propagation macros, in the style of RETURN_IF_ERROR / ASSIGN_OR_RETURN.
#define IMAX_RETURN_IF_FAULT(expr)          \
  do {                                      \
    auto imax_status_ = (expr);             \
    if (!imax_status_.ok()) {               \
      return imax_status_.fault();          \
    }                                       \
  } while (0)

#define IMAX_ASSIGN_OR_RETURN(lhs, expr)    \
  auto IMAX_CONCAT_(result_, __LINE__) = (expr);                \
  if (!IMAX_CONCAT_(result_, __LINE__).ok()) {                  \
    return IMAX_CONCAT_(result_, __LINE__).fault();             \
  }                                                             \
  lhs = std::move(IMAX_CONCAT_(result_, __LINE__)).value()

#define IMAX_CONCAT_INNER_(a, b) a##b
#define IMAX_CONCAT_(a, b) IMAX_CONCAT_INNER_(a, b)

}  // namespace imax432

#endif  // IMAX432_SRC_BASE_RESULT_H_

// SwappingMemoryManager: the swapping implementation of the common memory specification.
//
// "Both a swapping and a non-swapping implementation meet this specification but are
// optimized internally to the level of function they provide." This implementation adds a
// backing store and evicts resident data parts (second-chance/clock over swappable objects)
// when an allocation cannot be satisfied. Processes touching a swapped-out segment fault with
// kSegmentSwapped; the interpreter calls EnsureResident, which charges the faulting process
// the transfer cycles — user code is unaware of any of this, which is the §6.2 point.
//
// Only the data part swaps: the access part and the descriptor stay resident, exactly as 432
// object descriptors remained in the object table while their segments were swapped.

#ifndef IMAX432_SRC_MEMORY_SWAPPING_MEMORY_MANAGER_H_
#define IMAX432_SRC_MEMORY_SWAPPING_MEMORY_MANAGER_H_

#include <cstdint>

#include "src/memory/backing_store.h"
#include "src/memory/basic_memory_manager.h"

namespace imax432 {

class SwappingMemoryManager : public BasicMemoryManager {
 public:
  explicit SwappingMemoryManager(Machine* machine) : BasicMemoryManager(machine) {}

  Result<Cycles> EnsureResident(ObjectIndex index) override;
  MemoryStats stats() const override;

  // Management interface: objects of these system types are never evicted (processors,
  // processes, ports and SROs must stay resident for the hardware algorithms to run).
  // Quarantined objects are pinned too: their contents are already suspect and must stay
  // where the patrol froze them.
  static bool IsSwappable(const ObjectDescriptor& descriptor) {
    return (descriptor.type == SystemType::kGeneric ||
            descriptor.type == SystemType::kInstructionSegment) &&
           descriptor.data_length > 0 && !descriptor.quarantined;
  }

  const BackingStore& backing_store() const { return store_; }
  // Mutable access for the fault injector (failure windows are device state).
  BackingStore& mutable_backing_store() { return store_; }

  // Bounded retry-with-backoff around device transfers. Each failed attempt charges an
  // exponentially growing backoff (kAccessLatencyCycles << attempt) to the process that
  // eventually takes the transfer cost; after kMaxDeviceRetries the kDeviceError surfaces.
  static constexpr uint32_t kMaxDeviceRetries = 3;

 protected:
  Result<PhysAddr> AllocateSpace(Sro* sro, uint32_t bytes) override;
  void ReleaseBackingCopy(const ObjectDescriptor& descriptor) override {
    (void)store_.Discard(descriptor.backing_slot);
  }

 private:
  // Evicts one swappable resident object allocated from `sro` (so its extent can be reused
  // by that SRO). Returns the number of bytes freed, or kStorageExhausted if nothing is
  // evictable, or kDeviceError if the swap device failed past the retry budget.
  Result<uint32_t> EvictOne(Sro* sro);

  // Retrying transfer wrappers. `index` is the object being moved (trace payload only).
  Result<uint32_t> StoreOutWithRetry(const std::vector<uint8_t>& data, ObjectIndex index);
  Result<std::vector<uint8_t>> FetchInWithRetry(uint32_t slot, ObjectIndex index);

  BackingStore store_;
  uint32_t evict_cursor_ = 0;  // clock hand for EvictOne's round-robin victim scan
  uint64_t swap_ins_ = 0;
  uint64_t swap_outs_ = 0;
  uint64_t device_retries_ = 0;
  uint64_t device_errors_ = 0;
  // Backoff cycles accrued by retries on the evict path, where no faulting process is on
  // hand to charge; the next EnsureResident folds them into its returned transfer cost.
  Cycles pending_penalty_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_SWAPPING_MEMORY_MANAGER_H_

// SwappingMemoryManager: the swapping implementation of the common memory specification.
//
// "Both a swapping and a non-swapping implementation meet this specification but are
// optimized internally to the level of function they provide." This implementation adds a
// backing store and evicts resident data parts (second-chance/clock over swappable objects)
// when an allocation cannot be satisfied. Processes touching a swapped-out segment fault with
// kSegmentSwapped; the interpreter calls EnsureResident, which charges the faulting process
// the transfer cycles — user code is unaware of any of this, which is the §6.2 point.
//
// Only the data part swaps: the access part and the descriptor stay resident, exactly as 432
// object descriptors remained in the object table while their segments were swapped.

#ifndef IMAX432_SRC_MEMORY_SWAPPING_MEMORY_MANAGER_H_
#define IMAX432_SRC_MEMORY_SWAPPING_MEMORY_MANAGER_H_

#include <cstdint>

#include "src/memory/backing_store.h"
#include "src/memory/basic_memory_manager.h"

namespace imax432 {

class SwappingMemoryManager : public BasicMemoryManager {
 public:
  explicit SwappingMemoryManager(Machine* machine) : BasicMemoryManager(machine) {}

  Result<Cycles> EnsureResident(ObjectIndex index) override;
  MemoryStats stats() const override;

  // Management interface: objects of these system types are never evicted (processors,
  // processes, ports and SROs must stay resident for the hardware algorithms to run).
  static bool IsSwappable(const ObjectDescriptor& descriptor) {
    return (descriptor.type == SystemType::kGeneric ||
            descriptor.type == SystemType::kInstructionSegment) &&
           descriptor.data_length > 0;
  }

  const BackingStore& backing_store() const { return store_; }

 protected:
  Result<PhysAddr> AllocateSpace(Sro* sro, uint32_t bytes) override;
  void ReleaseBackingCopy(const ObjectDescriptor& descriptor) override {
    (void)store_.Discard(descriptor.backing_slot);
  }

 private:
  // Evicts one swappable resident object allocated from `sro` (so its extent can be reused
  // by that SRO). Returns the number of bytes freed, or kStorageExhausted if nothing is
  // evictable.
  Result<uint32_t> EvictOne(Sro* sro);

  BackingStore store_;
  uint64_t swap_ins_ = 0;
  uint64_t swap_outs_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_SWAPPING_MEMORY_MANAGER_H_

#include "src/memory/swapping_memory_manager.h"

#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

Result<PhysAddr> SwappingMemoryManager::AllocateSpace(Sro* sro, uint32_t bytes) {
  // Try plain allocation first; on exhaustion, evict resident data parts from the same SRO
  // until the request fits or nothing evictable remains.
  for (;;) {
    auto base = BasicMemoryManager::AllocateSpace(sro, bytes);
    if (base.ok() || base.fault() != Fault::kStorageExhausted) {
      return base;
    }
    auto evicted = EvictOne(sro);
    if (!evicted.ok()) {
      return Fault::kStorageExhausted;  // genuinely out: not even eviction can help
    }
  }
}

Result<uint32_t> SwappingMemoryManager::EvictOne(Sro* sro) {
  const std::vector<ObjectIndex>& objects = sro->objects();
  if (objects.empty()) {
    return Fault::kStorageExhausted;
  }
  ObjectTable& table = machine()->table();
  // Round-robin scan (approximates the clock policy without per-object reference bits; the
  // emulated workloads exercise capacity behaviour, not recency precision).
  static thread_local uint32_t cursor = 0;
  for (size_t step = 0; step < objects.size(); ++step) {
    ObjectIndex index = objects[(cursor + step) % objects.size()];
    ObjectDescriptor& descriptor = table.At(index);
    if (!descriptor.allocated || descriptor.swapped_out || !IsSwappable(descriptor)) {
      continue;
    }
    cursor = static_cast<uint32_t>((cursor + step + 1) % objects.size());

    // Stream the data part out.
    std::vector<uint8_t> data(descriptor.data_length);
    IMAX_CHECK(machine()->memory().ReadBlock(descriptor.data_base, data.data(),
                                             descriptor.data_length)
                   .ok());
    IMAX_ASSIGN_OR_RETURN(uint32_t slot, store_.StoreOut(data));
    sro->FreeRange(descriptor.data_base, descriptor.storage_claim);
    descriptor.swapped_out = true;
    descriptor.backing_slot = slot;
    mutable_stats().resident_bytes -= descriptor.data_length;
    ++swap_outs_;
    machine()->trace().Emit(TraceEventKind::kSwapOut, machine()->now(), kTraceNoProcessor,
                            kTraceNoProcess, index, descriptor.data_length);
    IMAX_LOG_DEBUG("swapped out object %u (%u bytes)", index, descriptor.data_length);
    return descriptor.storage_claim;
  }
  return Fault::kStorageExhausted;
}

Result<Cycles> SwappingMemoryManager::EnsureResident(ObjectIndex index) {
  ObjectDescriptor& descriptor = machine()->table().At(index);
  if (!descriptor.allocated) {
    return Fault::kNotAllocated;
  }
  if (!descriptor.swapped_out) {
    return Cycles{0};
  }
  auto it = sros().find(descriptor.origin_sro);
  if (it == sros().end()) {
    return Fault::kNotFound;
  }
  Sro* origin = it->second.get();

  // Re-place the data part; this may evict other objects (never this one: it is swapped).
  IMAX_ASSIGN_OR_RETURN(PhysAddr base, AllocateSpace(origin, descriptor.storage_claim));
  IMAX_ASSIGN_OR_RETURN(std::vector<uint8_t> data, store_.FetchIn(descriptor.backing_slot));
  IMAX_CHECK(data.size() == descriptor.data_length);
  IMAX_CHECK(
      machine()->memory().WriteBlock(base, data.data(), descriptor.data_length).ok());
  descriptor.data_base = base;
  descriptor.swapped_out = false;
  mutable_stats().resident_bytes += descriptor.data_length;
  ++swap_ins_;
  machine()->trace().Emit(TraceEventKind::kSwapIn, machine()->now(), kTraceNoProcessor,
                          kTraceNoProcess, index, descriptor.data_length);
  SyncSroCounters(*origin);
  IMAX_LOG_DEBUG("swapped in object %u (%u bytes)", index, descriptor.data_length);
  return BackingStore::TransferCost(descriptor.data_length);
}

MemoryStats SwappingMemoryManager::stats() const {
  MemoryStats combined = BasicMemoryManager::stats();
  combined.swap_ins = swap_ins_;
  combined.swap_outs = swap_outs_;
  return combined;
}

}  // namespace imax432

#include "src/memory/swapping_memory_manager.h"

#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

Result<PhysAddr> SwappingMemoryManager::AllocateSpace(Sro* sro, uint32_t bytes) {
  // Try plain allocation first; on exhaustion, evict resident data parts from the same SRO
  // until the request fits or nothing evictable remains.
  for (;;) {
    auto base = BasicMemoryManager::AllocateSpace(sro, bytes);
    if (base.ok() || base.fault() != Fault::kStorageExhausted) {
      return base;
    }
    auto evicted = EvictOne(sro);
    if (!evicted.ok()) {
      if (evicted.fault() == Fault::kDeviceError) {
        return Fault::kDeviceError;  // swap device dead: distinct from plain exhaustion
      }
      return Fault::kStorageExhausted;  // genuinely out: not even eviction can help
    }
  }
}

Result<uint32_t> SwappingMemoryManager::StoreOutWithRetry(const std::vector<uint8_t>& data,
                                                          ObjectIndex index) {
  for (uint32_t attempt = 0;; ++attempt) {
    auto slot = store_.StoreOut(data);
    if (slot.ok() || slot.fault() != Fault::kDeviceError) {
      return slot;
    }
    if (attempt >= kMaxDeviceRetries) {
      ++device_errors_;
      return Fault::kDeviceError;
    }
    Cycles backoff = BackingStore::kAccessLatencyCycles << attempt;
    pending_penalty_ += backoff;
    ++device_retries_;
    machine()->trace().Emit(TraceEventKind::kDeviceRetry, machine()->now(), kTraceNoProcessor,
                            kTraceNoProcess, index, attempt + 1,
                            static_cast<uint32_t>(backoff));
  }
}

Result<std::vector<uint8_t>> SwappingMemoryManager::FetchInWithRetry(uint32_t slot,
                                                                     ObjectIndex index) {
  for (uint32_t attempt = 0;; ++attempt) {
    auto data = store_.FetchIn(slot);
    if (data.ok() || data.fault() != Fault::kDeviceError) {
      return data;
    }
    if (attempt >= kMaxDeviceRetries) {
      ++device_errors_;
      return Fault::kDeviceError;
    }
    Cycles backoff = BackingStore::kAccessLatencyCycles << attempt;
    pending_penalty_ += backoff;
    ++device_retries_;
    machine()->trace().Emit(TraceEventKind::kDeviceRetry, machine()->now(), kTraceNoProcessor,
                            kTraceNoProcess, index, attempt + 1,
                            static_cast<uint32_t>(backoff));
  }
}

Result<uint32_t> SwappingMemoryManager::EvictOne(Sro* sro) {
  const std::vector<ObjectIndex>& objects = sro->objects();
  if (objects.empty()) {
    return Fault::kStorageExhausted;
  }
  ObjectTable& table = machine()->table();
  // Round-robin scan (approximates the clock policy without per-object reference bits; the
  // emulated workloads exercise capacity behaviour, not recency precision). The cursor is
  // per-manager state, NOT a function-local static: a process-wide cursor would leak the
  // previous system's scan position into the next one and break bit-identical replay of
  // fault-injection campaigns run back-to-back in one process.
  for (size_t step = 0; step < objects.size(); ++step) {
    ObjectIndex index = objects[(evict_cursor_ + step) % objects.size()];
    ObjectDescriptor& descriptor = table.At(index);
    if (!descriptor.allocated || descriptor.swapped_out || !IsSwappable(descriptor)) {
      continue;
    }
    evict_cursor_ = static_cast<uint32_t>((evict_cursor_ + step + 1) % objects.size());

    // Stream the data part out.
    std::vector<uint8_t> data(descriptor.data_length);
    IMAX_CHECK(machine()->memory().ReadBlock(descriptor.data_base, data.data(),
                                             descriptor.data_length)
                   .ok());
    IMAX_ASSIGN_OR_RETURN(uint32_t slot, StoreOutWithRetry(data, index));
    sro->FreeRange(descriptor.data_base, descriptor.storage_claim);
    descriptor.swapped_out = true;
    descriptor.backing_slot = slot;
    mutable_stats().resident_bytes -= descriptor.data_length;
    ++swap_outs_;
    machine()->trace().Emit(TraceEventKind::kSwapOut, machine()->now(), kTraceNoProcessor,
                            kTraceNoProcess, index, descriptor.data_length);
    IMAX_LOG_DEBUG("swapped out object %u (%u bytes)", index, descriptor.data_length);
    return descriptor.storage_claim;
  }
  return Fault::kStorageExhausted;
}

Result<Cycles> SwappingMemoryManager::EnsureResident(ObjectIndex index) {
  ObjectDescriptor& descriptor = machine()->table().At(index);
  if (!descriptor.allocated) {
    return Fault::kNotAllocated;
  }
  if (!descriptor.swapped_out) {
    return Cycles{0};
  }
  auto it = sros().find(descriptor.origin_sro);
  if (it == sros().end()) {
    return Fault::kNotFound;
  }
  Sro* origin = it->second.get();

  // Re-place the data part; this may evict other objects (never this one: it is swapped).
  IMAX_ASSIGN_OR_RETURN(PhysAddr base, AllocateSpace(origin, descriptor.storage_claim));
  auto fetched = FetchInWithRetry(descriptor.backing_slot, index);
  if (!fetched.ok()) {
    // Give the space back: the object stays swapped out and the caller sees the device
    // error (typically delivered to the faulting process's fault port).
    origin->FreeRange(base, descriptor.storage_claim);
    SyncSroCounters(*origin);
    return fetched.fault();
  }
  std::vector<uint8_t> data = std::move(fetched).value();
  IMAX_CHECK(data.size() == descriptor.data_length);
  IMAX_CHECK(
      machine()->memory().WriteBlock(base, data.data(), descriptor.data_length).ok());
  descriptor.data_base = base;
  descriptor.swapped_out = false;
  mutable_stats().resident_bytes += descriptor.data_length;
  ++swap_ins_;
  machine()->trace().Emit(TraceEventKind::kSwapIn, machine()->now(), kTraceNoProcessor,
                          kTraceNoProcess, index, descriptor.data_length);
  SyncSroCounters(*origin);
  IMAX_LOG_DEBUG("swapped in object %u (%u bytes)", index, descriptor.data_length);
  // Charge this transfer plus any retry backoff accrued since the last fault (including
  // evict-path retries, which have no faulting process of their own to bill).
  Cycles cost = BackingStore::TransferCost(descriptor.data_length) + pending_penalty_;
  pending_penalty_ = 0;
  return cost;
}

MemoryStats SwappingMemoryManager::stats() const {
  MemoryStats combined = BasicMemoryManager::stats();
  combined.swap_ins = swap_ins_;
  combined.swap_outs = swap_outs_;
  combined.device_retries = device_retries_;
  combined.device_errors = device_errors_;
  combined.backing_peak_used = store_.peak_used();
  return combined;
}

}  // namespace imax432

// MemoryManager: the single memory-management specification of iMAX.
//
// "Virtually all processes make use of memory management facilities via a standard interface
// that permits allocation of new objects. ... A single Ada specification defines the common
// interface. This interface defines mechanisms corresponding to the stack allocation, global
// heap allocation, and local heap allocation described earlier. Both a swapping and a
// non-swapping implementation meet this specification but are optimized internally to the
// level of function they provide."
//
// The two implementations are BasicMemoryManager (non-swapping, the first iMAX release) and
// SwappingMemoryManager (the second release). Either can be plugged into a System; almost no
// client code is affected by the selection, which is the configurability point of §6.2.

#ifndef IMAX432_SRC_MEMORY_MEMORY_MANAGER_H_
#define IMAX432_SRC_MEMORY_MEMORY_MANAGER_H_

#include <cstdint>

#include "src/arch/access_descriptor.h"
#include "src/arch/types.h"
#include "src/base/result.h"

namespace imax432 {

struct MemoryStats {
  uint64_t objects_created = 0;
  uint64_t objects_destroyed = 0;
  uint64_t sros_created = 0;
  uint64_t sros_destroyed = 0;
  uint64_t bulk_reclaimed_objects = 0;  // objects reclaimed by DestroySro cascades
  uint64_t swap_ins = 0;                // swapping implementation only
  uint64_t swap_outs = 0;
  uint64_t device_retries = 0;          // backing-store transfers retried after kDeviceError
  uint64_t device_errors = 0;           // transfers abandoned after the retry budget
  uint32_t resident_bytes = 0;          // bytes of live data parts in physical memory
  uint32_t backing_peak_used = 0;       // high-water mark of occupied backing-store slots
};

class MemoryManager {
 public:
  virtual ~MemoryManager() = default;

  // --- The common interface (every client uses only this) ---

  // The global heap SRO: allocates at level 0; objects live until garbage collected.
  virtual AccessDescriptor global_heap() const = 0;

  // Allocates a new object from `sro_ad` (requires kSroAllocate rights). The returned AD
  // carries `ad_rights`. Cost: the create-object instruction (cycles::CreateObjectCost) is
  // charged by the interpreter; callers outside the simulation charge nothing.
  virtual Result<AccessDescriptor> CreateObject(const AccessDescriptor& sro_ad, SystemType type,
                                                uint32_t data_bytes, uint32_t access_slots,
                                                RightsMask ad_rights) = 0;

  // Explicitly destroys an object (requires kDelete rights on the AD). Most objects are
  // never explicitly destroyed — they are garbage collected — but type managers may destroy
  // objects they know to be unreferenced.
  virtual Status DestroyObject(const AccessDescriptor& ad) = 0;

  // Creates a local heap: a child SRO managing `bytes` of space carved from `parent_sro`,
  // allocating at `level` (> the parent's level). Returns an AD with allocate+destroy rights.
  virtual Result<AccessDescriptor> CreateLocalSro(const AccessDescriptor& parent_sro,
                                                  uint32_t bytes, Level level) = 0;

  // Destroys an SRO and *everything allocated from it*, transitively (local heap reclamation:
  // "those allocated from local SRO's will be collected more efficiently whenever their
  // ancestral SRO is destroyed"). Requires kSroDestroy rights. Returns the number of objects
  // reclaimed.
  virtual Result<uint32_t> DestroySro(const AccessDescriptor& sro_ad) = 0;

  // --- Residency (used by the interpreter on kSegmentSwapped faults) ---

  // Ensures the object's data part is in physical memory. Returns the cycle cost of any
  // transfer performed (0 when already resident). The non-swapping implementation returns
  // kWrongState: a kSegmentSwapped fault cannot occur under it.
  virtual Result<Cycles> EnsureResident(ObjectIndex index) = 0;

  // --- Management interface ("Each may provide an additional management interface") ---

  virtual MemoryStats stats() const = 0;

  // Frees the storage of a garbage object on behalf of the garbage collector. Unlike
  // DestroyObject this takes a bare index (the collector works from the table, not from ADs)
  // and does not require rights: the collector is the system's most privileged storage agent.
  virtual Status ReclaimGarbage(ObjectIndex index) = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_MEMORY_MANAGER_H_

// Sro: per-storage-resource-object allocation state.
//
// "For memory management, the hardware defines a storage resource object (SRO) which
// describes free areas of memory and provides the information necessary to allocate both
// physical and logical address space." Each SRO allocates objects at one fixed level number;
// the global heap SRO allocates at level 0, local heaps at the depth of their creating
// activation.
//
// The free-extent list is kept as C++ state owned by the memory manager (keyed by the SRO's
// object index); the architectural counters (size, allocated bytes, object count, level) are
// mirrored into the SRO object's data part so programs running on the machine can inspect
// them, as they could on the real hardware.

#ifndef IMAX432_SRC_MEMORY_SRO_H_
#define IMAX432_SRC_MEMORY_SRO_H_

#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/base/result.h"

namespace imax432 {

// Architectural layout of an SRO object's data part (offsets in bytes).
struct SroLayout {
  static constexpr uint32_t kOffTotalBytes = 0;      // u32: size of the managed region
  static constexpr uint32_t kOffAllocatedBytes = 4;  // u32: bytes currently claimed
  static constexpr uint32_t kOffObjectCount = 8;     // u32: live objects allocated here
  static constexpr uint32_t kOffLevel = 12;          // u16: allocation level number
  static constexpr uint32_t kDataBytes = 16;
  static constexpr uint32_t kAccessSlots = 1;        // slot 0: parent SRO
  static constexpr uint32_t kSlotParent = 0;
};

class Sro {
 public:
  // Manages [base, base + length) and allocates objects at `level`.
  Sro(ObjectIndex self, Level level, PhysAddr base, uint32_t length, ObjectIndex parent)
      : self_(self), level_(level), parent_(parent), region_base_(base), region_length_(length) {
    if (length > 0) {
      extents_.push_back(Extent{base, length});
    }
  }

  Sro(const Sro&) = delete;
  Sro& operator=(const Sro&) = delete;

  // First-fit allocation of `bytes` of physical space. Faults with kStorageExhausted when no
  // extent is large enough (external fragmentation counts as exhaustion, as on the 432, whose
  // answer to fragmentation was compaction by the memory managers — modelled by the swapping
  // implementation's eviction path).
  Result<PhysAddr> AllocateRange(uint32_t bytes);

  // Returns a range to the free list, coalescing with neighbours.
  void FreeRange(PhysAddr base, uint32_t bytes);

  // Object bookkeeping: the manager records every object allocated from this SRO so that
  // destroying the SRO can reclaim them in bulk ("objects may be destroyed whenever their
  // ancestral SRO is destroyed, without leaving dangling references").
  void RecordObject(ObjectIndex index) { objects_.push_back(index); }
  void ForgetObject(ObjectIndex index);

  const std::vector<ObjectIndex>& objects() const { return objects_; }
  std::vector<ObjectIndex> TakeObjects() { return std::move(objects_); }

  ObjectIndex self() const { return self_; }
  Level level() const { return level_; }
  ObjectIndex parent() const { return parent_; }
  PhysAddr region_base() const { return region_base_; }
  uint32_t region_length() const { return region_length_; }

  uint32_t allocated_bytes() const { return allocated_bytes_; }
  uint32_t free_bytes() const { return region_length_ - allocated_bytes_; }
  // Size of the largest free extent (what a single allocation could get).
  uint32_t largest_free_extent() const;
  size_t extent_count() const { return extents_.size(); }

 private:
  struct Extent {
    PhysAddr base;
    uint32_t length;
  };

  ObjectIndex self_;
  Level level_;
  ObjectIndex parent_;
  PhysAddr region_base_;
  uint32_t region_length_;
  uint32_t allocated_bytes_ = 0;
  std::vector<Extent> extents_;  // sorted by base, non-adjacent
  std::vector<ObjectIndex> objects_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_SRO_H_

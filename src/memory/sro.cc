#include "src/memory/sro.h"

#include <algorithm>

#include "src/base/check.h"

namespace imax432 {

Result<PhysAddr> Sro::AllocateRange(uint32_t bytes) {
  if (bytes == 0) {
    bytes = 1;  // a segment is at least 1 byte
  }
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (extents_[i].length >= bytes) {
      PhysAddr base = extents_[i].base;
      extents_[i].base += bytes;
      extents_[i].length -= bytes;
      if (extents_[i].length == 0) {
        extents_.erase(extents_.begin() + static_cast<ptrdiff_t>(i));
      }
      allocated_bytes_ += bytes;
      return base;
    }
  }
  return Fault::kStorageExhausted;
}

void Sro::FreeRange(PhysAddr base, uint32_t bytes) {
  if (bytes == 0) {
    bytes = 1;
  }
  IMAX_CHECK(base >= region_base_ && base + bytes <= region_base_ + region_length_);
  IMAX_CHECK(allocated_bytes_ >= bytes);
  allocated_bytes_ -= bytes;

  // Insert keeping the list sorted by base, then coalesce with neighbours.
  auto it = std::lower_bound(
      extents_.begin(), extents_.end(), base,
      [](const Extent& extent, PhysAddr addr) { return extent.base < addr; });
  it = extents_.insert(it, Extent{base, bytes});

  // Coalesce with successor.
  auto next = it + 1;
  if (next != extents_.end() && it->base + it->length == next->base) {
    it->length += next->length;
    extents_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != extents_.begin()) {
    auto prev = it - 1;
    if (prev->base + prev->length == it->base) {
      prev->length += it->length;
      extents_.erase(it);
    }
  }
}

void Sro::ForgetObject(ObjectIndex index) {
  auto it = std::find(objects_.begin(), objects_.end(), index);
  if (it != objects_.end()) {
    *it = objects_.back();
    objects_.pop_back();
  }
}

uint32_t Sro::largest_free_extent() const {
  uint32_t best = 0;
  for (const Extent& extent : extents_) {
    best = std::max(best, extent.length);
  }
  return best;
}

}  // namespace imax432

// BasicMemoryManager: the non-swapping implementation of the memory specification.
//
// "We have implemented the non-swapping version for the first release of the system."
// All data parts are permanently resident; allocation fails with kStorageExhausted when the
// target SRO has no sufficient free extent.
//
// Construction boots the storage system: it hand-crafts the root (global heap) SRO covering
// all of physical memory above a small reserved boot area, mirroring iMAX initialization.

#ifndef IMAX432_SRC_MEMORY_BASIC_MEMORY_MANAGER_H_
#define IMAX432_SRC_MEMORY_BASIC_MEMORY_MANAGER_H_

#include <map>
#include <memory>

#include "src/memory/memory_manager.h"
#include "src/memory/sro.h"
#include "src/sim/machine.h"

namespace imax432 {

class BasicMemoryManager : public MemoryManager {
 public:
  explicit BasicMemoryManager(Machine* machine);

  AccessDescriptor global_heap() const override { return global_heap_; }

  Result<AccessDescriptor> CreateObject(const AccessDescriptor& sro_ad, SystemType type,
                                        uint32_t data_bytes, uint32_t access_slots,
                                        RightsMask ad_rights) override;
  Status DestroyObject(const AccessDescriptor& ad) override;
  Result<AccessDescriptor> CreateLocalSro(const AccessDescriptor& parent_sro, uint32_t bytes,
                                          Level level) override;
  Result<uint32_t> DestroySro(const AccessDescriptor& sro_ad) override;
  Result<Cycles> EnsureResident(ObjectIndex index) override;
  MemoryStats stats() const override { return stats_; }
  Status ReclaimGarbage(ObjectIndex index) override;

  // Testing/diagnostic access to SRO allocation state.
  const Sro* FindSro(ObjectIndex index) const;

 protected:
  // Allocates physical space from `sro`; the swapping subclass overrides this to evict on
  // exhaustion. `bytes` is the total architectural claim of the new object.
  virtual Result<PhysAddr> AllocateSpace(Sro* sro, uint32_t bytes);

  // Resolves an SRO AD (type + rights checked) to its allocation state.
  Result<Sro*> ResolveSro(const AccessDescriptor& sro_ad, RightsMask required);

  // Called when an object is destroyed while its data part is swapped out, so the swapping
  // subclass can release the backing-store slot. No-op for the non-swapping implementation
  // (the situation cannot arise).
  virtual void ReleaseBackingCopy(const ObjectDescriptor& descriptor) { (void)descriptor; }

  // Destroys one object: returns storage to its origin SRO and frees its descriptor.
  // `forget_in_origin` is false during bulk SRO destruction (the whole origin dies anyway).
  Status DestroyByIndex(ObjectIndex index, bool forget_in_origin);

  // Recursive bulk destruction used by DestroySro.
  Result<uint32_t> DestroySroState(Sro* sro);

  // Mirrors counters into the SRO object's data part.
  void SyncSroCounters(const Sro& sro);

  Machine* machine() { return machine_; }
  MemoryStats& mutable_stats() { return stats_; }
  std::map<ObjectIndex, std::unique_ptr<Sro>>& sros() { return sros_; }

 private:
  Machine* machine_;
  AccessDescriptor global_heap_;
  std::map<ObjectIndex, std::unique_ptr<Sro>> sros_;
  MemoryStats stats_;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_BASIC_MEMORY_MANAGER_H_

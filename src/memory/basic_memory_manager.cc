#include "src/memory/basic_memory_manager.h"

#include "src/base/check.h"
#include "src/base/log.h"

namespace imax432 {

namespace {

// Physical memory reserved below the heap for boot structures.
constexpr PhysAddr kBootReservedBytes = 256;

// Total architectural bytes claimed by an object: data part plus 4 bytes per AD slot.
uint32_t ClaimBytes(uint32_t data_bytes, uint32_t access_slots) {
  uint32_t claim = data_bytes + access_slots * kAdArchBytes;
  return claim == 0 ? 1 : claim;  // a segment is at least one byte
}

}  // namespace

BasicMemoryManager::BasicMemoryManager(Machine* machine) : machine_(machine) {
  // Boot the storage system: carve the global heap SRO out of raw memory. The SRO object's
  // own data part is placed in the boot-reserved area; the heap it manages is everything
  // above it.
  IMAX_CHECK(machine_->memory().size() > kBootReservedBytes);
  PhysAddr heap_base = kBootReservedBytes;
  uint32_t heap_length = machine_->memory().size() - kBootReservedBytes;

  auto index = machine_->table().Allocate(SystemType::kStorageResource, kGlobalLevel,
                                          /*data_base=*/0, SroLayout::kDataBytes,
                                          SroLayout::kAccessSlots,
                                          /*origin_sro=*/kInvalidObjectIndex,
                                          /*storage_claim=*/0);
  IMAX_CHECK(index.ok());
  auto sro = std::make_unique<Sro>(index.value(), kGlobalLevel, heap_base, heap_length,
                                   kInvalidObjectIndex);
  SyncSroCounters(*sro);
  sros_[index.value()] = std::move(sro);

  auto ad = machine_->table().MintAd(
      index.value(), rights::kRead | rights::kSroAllocate | rights::kSroDestroy);
  IMAX_CHECK(ad.ok());
  global_heap_ = ad.value();
  ++stats_.sros_created;
}

Result<Sro*> BasicMemoryManager::ResolveSro(const AccessDescriptor& sro_ad,
                                            RightsMask required) {
  IMAX_ASSIGN_OR_RETURN(
      ObjectDescriptor * descriptor,
      machine_->addressing().ResolveTyped(sro_ad, SystemType::kStorageResource, required));
  (void)descriptor;
  auto it = sros_.find(sro_ad.index());
  if (it == sros_.end()) {
    return Fault::kNotFound;
  }
  return it->second.get();
}

Result<PhysAddr> BasicMemoryManager::AllocateSpace(Sro* sro, uint32_t bytes) {
  return sro->AllocateRange(bytes);
}

Result<AccessDescriptor> BasicMemoryManager::CreateObject(const AccessDescriptor& sro_ad,
                                                          SystemType type, uint32_t data_bytes,
                                                          uint32_t access_slots,
                                                          RightsMask ad_rights) {
  if (data_bytes > kMaxDataPartBytes || access_slots > kMaxAccessPartSlots) {
    return Fault::kSegmentTooLarge;
  }
  IMAX_ASSIGN_OR_RETURN(Sro * sro, ResolveSro(sro_ad, rights::kSroAllocate));

  uint32_t claim = ClaimBytes(data_bytes, access_slots);
  IMAX_ASSIGN_OR_RETURN(PhysAddr base, AllocateSpace(sro, claim));

  auto index = machine_->table().Allocate(type, sro->level(), base, data_bytes, access_slots,
                                          sro->self(), claim);
  if (!index.ok()) {
    sro->FreeRange(base, claim);
    return index.fault();
  }
  // The create-object instruction delivers a zeroed segment.
  IMAX_CHECK(machine_->memory().Zero(base, data_bytes).ok());

  sro->RecordObject(index.value());
  SyncSroCounters(*sro);
  ++stats_.objects_created;
  stats_.resident_bytes += data_bytes;
  machine_->latency().allocation.Record(cycles::CreateObjectCost(data_bytes, access_slots));
  machine_->trace().Emit(TraceEventKind::kAllocate, machine_->now(), kTraceNoProcessor,
                         kTraceNoProcess, index.value(), data_bytes, access_slots);
  return machine_->table().MintAd(index.value(), ad_rights);
}

Status BasicMemoryManager::DestroyObject(const AccessDescriptor& ad) {
  IMAX_ASSIGN_OR_RETURN(ObjectDescriptor * descriptor,
                        machine_->addressing().ResolveChecked(ad, rights::kDelete));
  if (descriptor->type == SystemType::kStorageResource) {
    // SROs are destroyed via DestroySro so their contents are reclaimed too.
    return Fault::kInvalidArgument;
  }
  return DestroyByIndex(ad.index(), /*forget_in_origin=*/true);
}

Status BasicMemoryManager::DestroyByIndex(ObjectIndex index, bool forget_in_origin) {
  ObjectDescriptor& descriptor = machine_->table().At(index);
  IMAX_CHECK(descriptor.allocated);

  auto origin_it = sros_.find(descriptor.origin_sro);
  if (origin_it != sros_.end()) {
    Sro* origin = origin_it->second.get();
    if (!descriptor.swapped_out) {
      origin->FreeRange(descriptor.data_base, descriptor.storage_claim);
    }
    if (forget_in_origin) {
      origin->ForgetObject(index);
    }
    SyncSroCounters(*origin);
  }
  if (descriptor.swapped_out) {
    ReleaseBackingCopy(descriptor);
  } else {
    stats_.resident_bytes -= descriptor.data_length;
  }
  ++stats_.objects_destroyed;
  machine_->trace().Emit(TraceEventKind::kDestroy, machine_->now(), kTraceNoProcessor,
                         kTraceNoProcess, index, descriptor.data_length);
  return machine_->table().Free(index);
}

Result<AccessDescriptor> BasicMemoryManager::CreateLocalSro(const AccessDescriptor& parent_sro,
                                                            uint32_t bytes, Level level) {
  IMAX_ASSIGN_OR_RETURN(Sro * parent, ResolveSro(parent_sro, rights::kSroAllocate));
  // A child SRO may never allocate longer-lived (more global) objects than its parent: that
  // would let storage escape the parent's reclamation.
  if (level < parent->level()) {
    return Fault::kInvalidArgument;
  }

  // Carve the child's managed region from the parent.
  IMAX_ASSIGN_OR_RETURN(PhysAddr region_base, AllocateSpace(parent, bytes));

  // The child SRO object itself is allocated from the parent as well.
  uint32_t claim = ClaimBytes(SroLayout::kDataBytes, SroLayout::kAccessSlots);
  auto self_base = AllocateSpace(parent, claim);
  if (!self_base.ok()) {
    parent->FreeRange(region_base, bytes);
    return self_base.fault();
  }
  auto index =
      machine_->table().Allocate(SystemType::kStorageResource, parent->level(), self_base.value(),
                                 SroLayout::kDataBytes, SroLayout::kAccessSlots, parent->self(),
                                 claim);
  if (!index.ok()) {
    parent->FreeRange(region_base, bytes);
    parent->FreeRange(self_base.value(), claim);
    return index.fault();
  }
  parent->RecordObject(index.value());
  SyncSroCounters(*parent);

  auto sro = std::make_unique<Sro>(index.value(), level, region_base, bytes, parent->self());
  SyncSroCounters(*sro);
  sros_[index.value()] = std::move(sro);
  ++stats_.sros_created;

  auto parent_self_ad = machine_->table().MintAd(parent->self(), rights::kRead);
  if (parent_self_ad.ok()) {
    ObjectDescriptor& child = machine_->table().At(index.value());
    child.access[SroLayout::kSlotParent] = parent_self_ad.value();
  }
  return machine_->table().MintAd(
      index.value(), rights::kRead | rights::kSroAllocate | rights::kSroDestroy);
}

Result<uint32_t> BasicMemoryManager::DestroySroState(Sro* sro) {
  uint32_t reclaimed = 0;
  // Destroy everything the SRO allocated. Children SROs recurse first. TakeObjects avoids
  // iterator invalidation: nothing new can be allocated from a dying SRO.
  std::vector<ObjectIndex> objects = sro->TakeObjects();
  for (ObjectIndex index : objects) {
    ObjectDescriptor& descriptor = machine_->table().At(index);
    if (!descriptor.allocated) {
      continue;  // already reclaimed (e.g., by the GC or explicit destroy)
    }
    auto child_it = sros_.find(index);
    if (child_it != sros_.end()) {
      IMAX_ASSIGN_OR_RETURN(uint32_t child_count, DestroySroState(child_it->second.get()));
      reclaimed += child_count;
      // Return the child's managed region to this SRO, then destroy the child object itself.
      Sro* child = child_it->second.get();
      sro->FreeRange(child->region_base(), child->region_length());
      sros_.erase(child_it);
      ++stats_.sros_destroyed;
    }
    IMAX_RETURN_IF_FAULT(DestroyByIndex(index, /*forget_in_origin=*/false));
    ++reclaimed;
    ++stats_.bulk_reclaimed_objects;
  }
  SyncSroCounters(*sro);
  return reclaimed;
}

Result<uint32_t> BasicMemoryManager::DestroySro(const AccessDescriptor& sro_ad) {
  IMAX_ASSIGN_OR_RETURN(Sro * sro, ResolveSro(sro_ad, rights::kSroDestroy));
  if (sro->self() == global_heap_.index()) {
    return Fault::kInvalidArgument;  // the global heap is never destroyed
  }
  IMAX_ASSIGN_OR_RETURN(uint32_t reclaimed, DestroySroState(sro));

  // Return the managed region and the SRO object itself to the parent.
  ObjectIndex self = sro->self();
  auto parent_it = sros_.find(sro->parent());
  if (parent_it != sros_.end()) {
    parent_it->second->FreeRange(sro->region_base(), sro->region_length());
  }
  sros_.erase(self);
  ++stats_.sros_destroyed;
  IMAX_RETURN_IF_FAULT(DestroyByIndex(self, /*forget_in_origin=*/true));
  return reclaimed;
}

Result<Cycles> BasicMemoryManager::EnsureResident(ObjectIndex index) {
  const ObjectDescriptor& descriptor = machine_->table().At(index);
  if (!descriptor.allocated) {
    return Fault::kNotAllocated;
  }
  if (descriptor.swapped_out) {
    // Impossible under the non-swapping implementation.
    return Fault::kWrongState;
  }
  return Cycles{0};
}

Status BasicMemoryManager::ReclaimGarbage(ObjectIndex index) {
  const ObjectDescriptor& descriptor = machine_->table().At(index);
  if (!descriptor.allocated) {
    return Fault::kNotAllocated;
  }
  if (sros_.count(index) != 0) {
    // A garbage SRO reclaims its whole subtree.
    auto it = sros_.find(index);
    IMAX_ASSIGN_OR_RETURN(uint32_t reclaimed, DestroySroState(it->second.get()));
    (void)reclaimed;
    auto parent_it = sros_.find(it->second->parent());
    if (parent_it != sros_.end()) {
      parent_it->second->FreeRange(it->second->region_base(), it->second->region_length());
    }
    sros_.erase(it);
    ++stats_.sros_destroyed;
  }
  return DestroyByIndex(index, /*forget_in_origin=*/true);
}

const Sro* BasicMemoryManager::FindSro(ObjectIndex index) const {
  auto it = sros_.find(index);
  return it == sros_.end() ? nullptr : it->second.get();
}

void BasicMemoryManager::SyncSroCounters(const Sro& sro) {
  ObjectDescriptor& descriptor = machine_->table().At(sro.self());
  if (!descriptor.allocated || descriptor.swapped_out) {
    return;
  }
  PhysAddr base = descriptor.data_base;
  PhysicalMemory& memory = machine_->memory();
  IMAX_CHECK(memory.Write(base + SroLayout::kOffTotalBytes, 4, sro.region_length()).ok());
  IMAX_CHECK(memory.Write(base + SroLayout::kOffAllocatedBytes, 4, sro.allocated_bytes()).ok());
  IMAX_CHECK(
      memory.Write(base + SroLayout::kOffObjectCount, 4, sro.objects().size()).ok());
  IMAX_CHECK(memory.Write(base + SroLayout::kOffLevel, 2, sro.level()).ok());
}

}  // namespace imax432

// BackingStore: the simulated swap device behind the swapping memory manager.
//
// The paper's second iMAX release adds swapping; the swap device itself is not described, so
// this models a simple slotted disk: fixed per-transfer latency plus per-byte transfer time,
// charged in virtual cycles to whichever process triggered the transfer.

#ifndef IMAX432_SRC_MEMORY_BACKING_STORE_H_
#define IMAX432_SRC_MEMORY_BACKING_STORE_H_

#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/base/check.h"
#include "src/base/result.h"

namespace imax432 {

class BackingStore {
 public:
  // Transfer cost model: ~3 ms access latency + 1 cycle per 2 bytes streamed (a slow early-
  // 1980s Winchester through the IP subsystem).
  static constexpr Cycles kAccessLatencyCycles = 24000;
  static Cycles TransferCost(uint32_t bytes) { return kAccessLatencyCycles + bytes / 2; }

  explicit BackingStore(uint32_t capacity_slots = 4096) : slots_(capacity_slots) {}

  // Writes `data` to a free slot; returns the slot id.
  Result<uint32_t> StoreOut(const std::vector<uint8_t>& data) {
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].used) {
        slots_[i].used = true;
        slots_[i].data = data;
        ++writes_;
        return i;
      }
    }
    return Fault::kStorageExhausted;
  }

  // Reads a slot back and frees it.
  Result<std::vector<uint8_t>> FetchIn(uint32_t slot) {
    if (slot >= slots_.size() || !slots_[slot].used) {
      return Fault::kNotFound;
    }
    slots_[slot].used = false;
    ++reads_;
    return std::move(slots_[slot].data);
  }

  // Discards a slot without reading (object died while swapped out).
  Status Discard(uint32_t slot) {
    if (slot >= slots_.size() || !slots_[slot].used) {
      return Fault::kNotFound;
    }
    slots_[slot].used = false;
    slots_[slot].data.clear();
    return Status::Ok();
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  struct Slot {
    bool used = false;
    std::vector<uint8_t> data;
  };

  std::vector<Slot> slots_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_BACKING_STORE_H_

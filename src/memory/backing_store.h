// BackingStore: the simulated swap device behind the swapping memory manager.
//
// The paper's second iMAX release adds swapping; the swap device itself is not described, so
// this models a simple slotted disk: fixed per-transfer latency plus per-byte transfer time,
// charged in virtual cycles to whichever process triggered the transfer.

#ifndef IMAX432_SRC_MEMORY_BACKING_STORE_H_
#define IMAX432_SRC_MEMORY_BACKING_STORE_H_

#include <cstdint>
#include <vector>

#include "src/arch/types.h"
#include "src/base/check.h"
#include "src/base/result.h"

namespace imax432 {

class BackingStore {
 public:
  // Transfer cost model: ~3 ms access latency + 1 cycle per 2 bytes streamed (a slow early-
  // 1980s Winchester through the IP subsystem).
  static constexpr Cycles kAccessLatencyCycles = 24000;
  static Cycles TransferCost(uint32_t bytes) { return kAccessLatencyCycles + bytes / 2; }

  explicit BackingStore(uint32_t capacity_slots = 4096) : slots_(capacity_slots) {
    free_list_.reserve(capacity_slots);
    // Hand out low slot ids first: push in reverse so pop_back yields ascending order.
    for (uint32_t i = capacity_slots; i > 0; --i) {
      free_list_.push_back(i - 1);
    }
  }

  // Writes `data` to a free slot; returns the slot id. O(1) via the free list.
  Result<uint32_t> StoreOut(const std::vector<uint8_t>& data) {
    IMAX_RETURN_IF_FAULT(CheckDevice());
    if (free_list_.empty()) {
      return Fault::kStorageExhausted;
    }
    uint32_t slot = free_list_.back();
    free_list_.pop_back();
    slots_[slot].used = true;
    slots_[slot].data = data;
    ++writes_;
    ++used_;
    if (used_ > peak_used_) peak_used_ = used_;
    return slot;
  }

  // Reads a slot back and frees it.
  Result<std::vector<uint8_t>> FetchIn(uint32_t slot) {
    if (slot >= slots_.size() || !slots_[slot].used) {
      return Fault::kNotFound;
    }
    IMAX_RETURN_IF_FAULT(CheckDevice());
    slots_[slot].used = false;
    free_list_.push_back(slot);
    --used_;
    ++reads_;
    return std::move(slots_[slot].data);
  }

  // Discards a slot without reading (object died while swapped out). Pure bookkeeping —
  // no media transfer — so it never takes a device error: reclamation cannot fail.
  Status Discard(uint32_t slot) {
    if (slot >= slots_.size() || !slots_[slot].used) {
      return Fault::kNotFound;
    }
    slots_[slot].used = false;
    slots_[slot].data.clear();
    free_list_.push_back(slot);
    --used_;
    return Status::Ok();
  }

  // --- Fault injection (driven by the FaultInjector) ---
  // The next `count` media transfers fail with kDeviceError, then the device recovers.
  void InjectTransientFailures(uint32_t count) { transient_failures_ += count; }
  // While set, every media transfer fails (a dead drive until the injector heals it).
  void SetPermanentFailure(bool failed) { permanent_failure_ = failed; }
  bool permanent_failure() const { return permanent_failure_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t failed_transfers() const { return failed_transfers_; }
  uint32_t used() const { return used_; }
  uint32_t peak_used() const { return peak_used_; }
  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }

 private:
  struct Slot {
    bool used = false;
    std::vector<uint8_t> data;
  };

  Status CheckDevice() {
    if (permanent_failure_) {
      ++failed_transfers_;
      return Fault::kDeviceError;
    }
    if (transient_failures_ > 0) {
      --transient_failures_;
      ++failed_transfers_;
      return Fault::kDeviceError;
    }
    return Status::Ok();
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_list_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t failed_transfers_ = 0;
  uint32_t used_ = 0;
  uint32_t peak_used_ = 0;
  uint32_t transient_failures_ = 0;
  bool permanent_failure_ = false;
};

}  // namespace imax432

#endif  // IMAX432_SRC_MEMORY_BACKING_STORE_H_

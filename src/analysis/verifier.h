// Static capability verifier: forward dataflow analysis over a Program's AD registers.
//
// The 432's protection guarantees — rights can only be removed when copying an AD, and an AD
// may never be stored into an object with a lower (more global) level number — are enforced
// by the AddressingUnit on every instruction at run time. This pass proves a useful subset of
// those properties *before dispatch*, so a program from an untrusted source can be rejected
// at load time instead of faulting deep inside the interpreter.
//
// The abstract state per AD register is:
//   - nullness:  definitely null / definitely an object / either,
//   - rights:    an upper bound on the rights the AD can carry (exact for ADs minted by
//                kCreateObject/kCreateSro, monotonically shrunk by kRestrictRights, copied
//                by kMoveAd, reset to "all" when the value comes from memory or a port),
//   - type:      the SystemType when statically known,
//   - level:     bounds on the object's lifetime level (created objects are exactly
//                entry-level + 1; seeded facts can pin absolute levels),
//   - sizes:     data bytes / access slots when the object was created in this program.
//
// Everything the analysis cannot prove is left to the AddressingUnit: the verifier never
// rejects a program unless *every* execution reaching the flagged instruction would fault.
// Joins at control-flow merges go toward "unknown", and native steps (whose C++ bodies can
// rewrite any register and jump anywhere) havoc the whole register file.

#ifndef IMAX432_SRC_ANALYSIS_VERIFIER_H_
#define IMAX432_SRC_ANALYSIS_VERIFIER_H_

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/arch/rights.h"
#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {
namespace analysis {

// Bounds on an object's lifetime level. `lo`/`hi` bound the absolute level number; values
// allocated in the analyzed activation are additionally *exactly* entry_level + delta, which
// lets the level rule compare two such values even when the entry level itself is unknown.
struct LevelRange {
  static constexpr uint32_t kUnbounded = 0xffffffffu;

  uint32_t lo = 0;
  uint32_t hi = kUnbounded;
  bool entry_relative = false;
  uint32_t delta = 0;

  static LevelRange Unknown() { return LevelRange{}; }
  static LevelRange Exact(uint32_t level) { return LevelRange{level, level, false, 0}; }
  // Exactly entry-context level + delta. Contexts always run at level >= 1 (their process
  // allocates at >= 0 and the context one deeper), so the absolute lower bound is 1 + delta.
  static LevelRange EntryPlus(uint32_t d) { return LevelRange{1 + d, kUnbounded, true, d}; }

  static LevelRange Join(const LevelRange& a, const LevelRange& b);
  friend bool operator==(const LevelRange& a, const LevelRange& b) {
    return a.lo == b.lo && a.hi == b.hi && a.entry_relative == b.entry_relative &&
           a.delta == b.delta;
  }
};

// True when storing a `value`-level AD into a `container`-level object provably violates the
// lifetime rule (container.level < value.level on every execution).
bool ProvablyViolatesLevelRule(const LevelRange& container, const LevelRange& value);

// Abstract value of one AD register.
struct AdAbstract {
  static constexpr uint32_t kUnknownSize = 0xffffffffu;

  enum class Nullness : uint8_t { kNull, kObject, kMaybeNull };

  Nullness nullness = Nullness::kMaybeNull;
  RightsMask rights = rights::kAll;  // upper bound, meaningful whenever possibly non-null
  bool type_known = false;
  SystemType type = SystemType::kGeneric;
  LevelRange level;
  uint32_t data_bytes = kUnknownSize;
  uint32_t access_slots = kUnknownSize;

  static AdAbstract Null() {
    AdAbstract s;
    s.nullness = Nullness::kNull;
    s.rights = rights::kNone;
    return s;
  }
  static AdAbstract Unknown() { return AdAbstract{}; }
  static AdAbstract Object(SystemType object_type, RightsMask rights_bound,
                           LevelRange level_range,
                           uint32_t data_bytes_known = kUnknownSize,
                           uint32_t access_slots_known = kUnknownSize) {
    AdAbstract s;
    s.nullness = Nullness::kObject;
    s.rights = rights_bound;
    s.type_known = true;
    s.type = object_type;
    s.level = level_range;
    s.data_bytes = data_bytes_known;
    s.access_slots = access_slots_known;
    return s;
  }

  bool definitely_null() const { return nullness == Nullness::kNull; }
  bool maybe_object() const { return nullness != Nullness::kNull; }
  // Provably lacks `required` on every non-null execution.
  bool ProvablyLacks(RightsMask required) const {
    return maybe_object() && !rights::Has(rights, required);
  }

  static AdAbstract Join(const AdAbstract& a, const AdAbstract& b);
  friend bool operator==(const AdAbstract& a, const AdAbstract& b) {
    return a.nullness == b.nullness && a.rights == b.rights && a.type_known == b.type_known &&
           a.type == b.type && a.level == b.level && a.data_bytes == b.data_bytes &&
           a.access_slots == b.access_slots;
  }
};

// The verifier's rule taxonomy; each diagnostic names exactly one.
enum class Rule : uint8_t {
  kNullAdUse,      // dereference of a definitely-null / uninitialized AD register
  kMissingRights,  // AD's rights upper bound lacks a right the instruction requires
  kLevelRule,      // store provably violates the lifetime level rule
  kBranchRange,    // branch target beyond the end of the program
  kUnreachable,    // basic block unreachable from entry (warning)
  kDataBounds,     // data access provably outside the object's data part
  kSlotBounds,     // access-slot index provably outside the object's access part
  kBadWidth,       // data access width not in {1, 2, 4, 8}
  kBadRegister,    // register operand index out of range
  kTypeConfusion,  // operand's known SystemType cannot satisfy the instruction
};

const char* RuleName(Rule rule);

enum class Severity : uint8_t { kWarning, kError };

struct Diagnostic {
  uint32_t pc = 0;
  Rule rule = Rule::kNullAdUse;
  Severity severity = Severity::kError;
  std::string message;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;

  bool ok() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Severity::kError) {
        return false;
      }
    }
    return true;
  }
  size_t error_count() const {
    size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      n += d.severity == Severity::kError ? 1 : 0;
    }
    return n;
  }
};

// Renders diagnostics as "pc NNNN [rule] message — disassembly" lines.
std::string FormatDiagnostics(const Program& program, const VerifyResult& result);

struct VerifyOptions {
  enum class EntryKind : uint8_t {
    kProcessEntry,  // top-level program of a process: no current domain, a7 = initial arg
    kDomainEntry,   // instruction segment invoked through a domain: a6 = current domain
  };

  EntryKind entry = EntryKind::kProcessEntry;
  // Abstract value of the argument register a7 at entry (defaults to unknown).
  AdAbstract initial_arg = AdAbstract::Unknown();
  // Absolute level of the entry context, when the loader knows it.
  std::optional<uint32_t> entry_level;
  // Extra seeded facts: AD register index -> abstract value, overriding the defaults above.
  std::map<uint8_t, AdAbstract> seeded_ad_regs;
};

class Verifier {
 public:
  // Analyzes `program` to a fixpoint and reports every provable violation. A result with
  // ok() == false means the program faults on every execution that reaches a flagged
  // instruction, and a loader is entitled to reject it outright.
  static VerifyResult Verify(const Program& program, const VerifyOptions& options = {});
};

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_VERIFIER_H_

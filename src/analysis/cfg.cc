#include "src/analysis/cfg.h"

#include <algorithm>

namespace imax432 {
namespace analysis {

bool IsBranch(Opcode op) {
  switch (op) {
    case Opcode::kBranch:
    case Opcode::kBranchIfZero:
    case Opcode::kBranchIfNotZero:
    case Opcode::kBranchIfLess:
      return true;
    default:
      return false;
  }
}

bool IsBlockTerminator(Opcode op) {
  switch (op) {
    case Opcode::kBranch:
    case Opcode::kBranchIfZero:
    case Opcode::kBranchIfNotZero:
    case Opcode::kBranchIfLess:
    case Opcode::kReturn:
    case Opcode::kHalt:
      return true;
    default:
      return false;
  }
}

ControlFlowGraph ControlFlowGraph::Build(const Program& program) {
  ControlFlowGraph cfg;
  const uint32_t size = program.size();
  if (size == 0) {
    return cfg;
  }

  // Pass 1: leaders. Instruction 0, every in-range branch target, and every instruction
  // after a terminator.
  std::vector<bool> leader(size, false);
  leader[0] = true;
  for (uint32_t pc = 0; pc < size; ++pc) {
    const Instruction& in = program.at(pc);
    if (in.op == Opcode::kNative) {
      cfg.has_native_ = true;
    }
    if (IsBranch(in.op) && in.imm < size) {
      leader[in.imm] = true;
    }
    if (IsBlockTerminator(in.op) && pc + 1 < size) {
      leader[pc + 1] = true;
    }
  }

  // Pass 2: carve blocks.
  cfg.block_of_.assign(size, 0);
  for (uint32_t pc = 0; pc < size; ++pc) {
    if (leader[pc]) {
      BasicBlock block;
      block.begin = pc;
      cfg.blocks_.push_back(block);
    }
    uint32_t id = static_cast<uint32_t>(cfg.blocks_.size() - 1);
    cfg.block_of_[pc] = id;
    cfg.blocks_[id].end = pc + 1;
  }

  // Pass 3: edges. A block's last instruction decides its successors; branch targets at or
  // beyond program end are implicit returns (no edge).
  for (BasicBlock& block : cfg.blocks_) {
    const Instruction& last = program.at(block.end - 1);
    auto add = [&](uint32_t target_pc) {
      if (target_pc >= size) {
        return;  // falls off the end: implicit return
      }
      uint32_t target = cfg.block_of_[target_pc];
      if (std::find(block.successors.begin(), block.successors.end(), target) ==
          block.successors.end()) {
        block.successors.push_back(target);
      }
    };
    switch (last.op) {
      case Opcode::kBranch:
        add(last.imm);
        break;
      case Opcode::kBranchIfZero:
      case Opcode::kBranchIfNotZero:
      case Opcode::kBranchIfLess:
        add(last.imm);
        add(block.end);
        break;
      case Opcode::kReturn:
      case Opcode::kHalt:
        break;
      default:
        add(block.end);
        break;
    }
  }

  // Pass 4: reachability from the entry block. Native steps may jump anywhere at run time,
  // so native-bearing programs treat every block as reachable.
  if (cfg.has_native_) {
    for (BasicBlock& block : cfg.blocks_) {
      block.reachable = true;
    }
    return cfg;
  }
  std::vector<uint32_t> worklist{0};
  cfg.blocks_[0].reachable = true;
  while (!worklist.empty()) {
    uint32_t id = worklist.back();
    worklist.pop_back();
    for (uint32_t successor : cfg.blocks_[id].successors) {
      if (!cfg.blocks_[successor].reachable) {
        cfg.blocks_[successor].reachable = true;
        worklist.push_back(successor);
      }
    }
  }
  return cfg;
}

}  // namespace analysis
}  // namespace imax432

// Control-flow graph over a Program's instruction stream.
//
// Basic blocks are maximal straight-line runs: a leader is instruction 0, any branch target,
// and any instruction following a control transfer (branch, return, halt). kCall/kCallLocal/
// kOsCall fall through in the *caller's* stream — the callee executes in a fresh context with
// its own program, so a call is an ordinary instruction from this CFG's point of view.
//
// kNative is special: a native step may return NativeResult::Action::kJump with an arbitrary
// target computed at run time (the GC daemon's batch loop does exactly this), so a program
// containing natives has statically unknowable edges. The CFG records that fact in
// `has_native`; the verifier responds by treating every block as reachable and joining the
// all-unknown state into each block entry, which keeps the analysis sound (it can only make
// it more permissive).

#ifndef IMAX432_SRC_ANALYSIS_CFG_H_
#define IMAX432_SRC_ANALYSIS_CFG_H_

#include <cstdint>
#include <vector>

#include "src/isa/program.h"

namespace imax432 {
namespace analysis {

struct BasicBlock {
  uint32_t begin = 0;  // first instruction index
  uint32_t end = 0;    // one past the last instruction index
  std::vector<uint32_t> successors;  // block ids; branches past program end fall off (exit)
  bool reachable = false;            // from block 0 along static edges
};

class ControlFlowGraph {
 public:
  // Builds the CFG. Branch targets beyond program.size() do not create edges (at run time
  // pc >= size is an implicit return); the verifier reports them separately.
  static ControlFlowGraph Build(const Program& program);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(uint32_t id) const { return blocks_[id]; }
  // Block containing instruction `pc`.
  uint32_t block_of(uint32_t pc) const { return block_of_[pc]; }
  bool has_native() const { return has_native_; }
  uint32_t size() const { return static_cast<uint32_t>(blocks_.size()); }

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<uint32_t> block_of_;
  bool has_native_ = false;
};

// True when the instruction ends a basic block (control does not implicitly continue to the
// next instruction in this stream, or continues only conditionally).
bool IsBlockTerminator(Opcode op);

// True when the instruction names a branch target in `imm`.
bool IsBranch(Opcode op);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_CFG_H_

#include "src/analysis/lifetime/lifetime.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "src/analysis/cfg.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Kernel service ids modeled precisely; kept in sync with src/exec/kernel.h (duplicated so
// the analysis layer does not depend on the execution layer, like effects.cc).
constexpr uint32_t kOsYield = 1;
constexpr uint32_t kOsGetTime = 2;
constexpr uint32_t kOsSetPriority = 3;
constexpr uint32_t kOsSetDeadline = 4;
constexpr uint32_t kOsTimedReceive = 5;

// Widening bound on the concrete-object component per register (matches effects.cc).
constexpr size_t kMaxAdSet = 8;
// Bound on tracked abstract heap cells per state; past it anomaly claims are voided.
constexpr size_t kMaxCells = 32;

// Abstract AD value: the pre-existing objects the register may name (top = any of them)
// plus the allocation sites it may name. The site component stays exact even under top:
// sites enter a value only at their create_object and flow only through moves, so a value
// widened to top cannot silently carry a site — any site reachable through an untracked
// path (a load from a dirtied container, a receive, a call return) was already marked
// escaped when it entered that path. That invariant is what makes per-site facts sound.
struct AbsVal {
  bool top = false;
  std::vector<ObjectIndex> objs;   // sorted, deduped, size <= kMaxAdSet
  std::vector<uint16_t> sites;     // sorted, deduped

  static AbsVal Top() {
    AbsVal v;
    v.top = true;
    return v;
  }

  void AddObj(ObjectIndex index) {
    if (top || index == kInvalidObjectIndex) return;
    auto it = std::lower_bound(objs.begin(), objs.end(), index);
    if (it != objs.end() && *it == index) return;
    objs.insert(it, index);
    if (objs.size() > kMaxAdSet) {
      top = true;
      objs.clear();
    }
  }

  void AddSite(uint16_t site) {
    auto it = std::lower_bound(sites.begin(), sites.end(), site);
    if (it == sites.end() || *it != site) sites.insert(it, site);
  }

  bool HasSite(uint16_t site) const {
    return std::binary_search(sites.begin(), sites.end(), site);
  }

  // Least upper bound; returns true when this value changed.
  bool Join(const AbsVal& other) {
    bool changed = false;
    if (!top) {
      if (other.top) {
        top = true;
        objs.clear();
        changed = true;
      } else {
        const size_t before = objs.size();
        for (ObjectIndex index : other.objs) AddObj(index);
        changed |= top || objs.size() != before;
      }
    }
    const size_t sites_before = sites.size();
    for (uint16_t site : other.sites) AddSite(site);
    changed |= sites.size() != sites_before;
    return changed;
  }

  bool DefinitelyNull() const { return !top && objs.empty() && sites.empty(); }
};

// One tracked access slot of a pre-existing object.
using Cell = std::pair<ObjectIndex, uint32_t>;  // (container, slot)

struct AbstractState {
  AbsVal regs[kNumAdRegs];
  // What each stored-to cell may currently hold. Absent = still the boot-time value, which
  // names no site. Weak updates (ambiguous container) join; strong updates (unique
  // container, constant slot) replace — the replacement point is where anomalies surface.
  std::map<Cell, AbsVal> cells;

  bool Join(const AbstractState& other) {
    bool changed = false;
    for (uint8_t r = 0; r < kNumAdRegs; ++r) changed |= regs[r].Join(other.regs[r]);
    for (const auto& [cell, val] : other.cells) {
      auto [it, inserted] = cells.emplace(cell, val);
      if (inserted) {
        changed = true;
      } else {
        changed |= it->second.Join(val);
      }
    }
    return changed;
  }
};

struct Analyzer {
  const Program& program;
  const EffectOptions& options;
  const ControlFlowGraph cfg;
  LifetimeSummary summary;

  std::map<uint32_t, uint16_t> site_of_pc;  // create_object pc -> site index

  // Containers whose access parts this program may overwrite (same role as in effects.cc:
  // loads through a dirtied container must not trust the boot-time snapshot).
  std::set<ObjectIndex> dirty;
  bool dirty_all = false;

  std::set<std::pair<uint16_t, uint32_t>> reported_anomalies;  // (site, overwrite_pc)

  Analyzer(const Program& p, const EffectOptions& o)
      : program(p), options(o), cfg(ControlFlowGraph::Build(p)) {
    // Site identities must be stable across the fixpoint: one pre-pass assigns them.
    for (uint32_t pc = 0; pc < program.size(); ++pc) {
      const Instruction& in = program.at(pc);
      if (in.op != Opcode::kCreateObject) continue;
      AllocationSite site;
      site.pc = pc;
      site.data_bytes = in.imm;
      site.access_slots = in.c;
      char prefix[16];
      std::snprintf(prefix, sizeof(prefix), "%04u  ", pc);
      site.disasm = prefix + DisassembleInstruction(in, kInvalidObjectIndex, options.symbols);
      site_of_pc.emplace(pc, static_cast<uint16_t>(summary.sites.size()));
      summary.sites.push_back(std::move(site));
    }
  }

  AbstractState EntryState() const {
    AbstractState state;
    if (!options.initial_arg.is_null()) {
      state.regs[kArgAdReg].AddObj(options.initial_arg.index());
    } else {
      state.regs[kArgAdReg] = AbsVal::Top();
    }
    return state;
  }

  AccessDescriptor ReadSlot(ObjectIndex container, uint32_t slot) const {
    if (!options.slot_reader) return {};
    return options.slot_reader(container, slot);
  }

  bool IsDirty(ObjectIndex container) const {
    return dirty_all || dirty.count(container) != 0;
  }

  // Resolves `load_ad dst, container[slot]`. Loaded values carry no sites: a site can only
  // be loaded back out of a container it was stored into, the store dirtied that container,
  // and loads through dirty containers go to top (see the AbsVal invariant above).
  AbsVal LoadSlot(const AbsVal& container, uint32_t slot) const {
    if (container.top || !container.sites.empty() || !options.slot_reader) {
      return container.DefinitelyNull() ? AbsVal() : AbsVal::Top();
    }
    AbsVal out;
    for (ObjectIndex obj : container.objs) {
      if (IsDirty(obj)) return AbsVal::Top();
      const AccessDescriptor slot_ad = ReadSlot(obj, slot);
      if (!slot_ad.is_null()) out.AddObj(slot_ad.index());
    }
    return out;
  }

  AllocationSite& Site(uint16_t index) { return summary.sites[index]; }

  void NoteHeapStore(uint16_t site, ObjectIndex container, uint32_t slot, uint32_t pc) {
    auto& stores = Site(site).heap_stores;
    for (const HeapStore& s : stores) {
      if (s.container == container && s.slot == slot && s.pc == pc) return;
    }
    stores.push_back(HeapStore{container, slot, pc});
  }

  void NoteSiteStore(uint16_t site, uint16_t target) {
    auto& targets = Site(site).stored_into_sites;
    if (std::find(targets.begin(), targets.end(), target) == targets.end()) {
      targets.push_back(target);
    }
  }

  // Records the escape facts of storing `value` into `container` at `pc` (slot may be
  // kUnknownSlot for indexed stores).
  void NoteStoreFacts(const AbsVal& container, uint32_t slot, const AbsVal& value,
                      uint32_t pc) {
    if (value.top) summary.stored_top = true;
    if (value.sites.empty()) return;
    for (uint16_t site : value.sites) {
      if (container.top) Site(site).unresolved = true;
      for (ObjectIndex obj : container.objs) NoteHeapStore(site, obj, slot, pc);
      for (uint16_t target : container.sites) NoteSiteStore(site, target);
    }
  }

  void MarkStoreInto(const AbsVal& container) {
    if (container.top) {
      dirty_all = true;
      return;
    }
    for (ObjectIndex obj : container.objs) dirty.insert(obj);
  }

  void HavocRegs(AbstractState& state) {
    for (uint8_t r = 0; r < kNumAdRegs; ++r) state.regs[r] = AbsVal::Top();
  }

  void Opaque(AbstractState& state) {
    summary.opaque = true;
    HavocRegs(state);
    dirty_all = true;
    // Native code may rewrite any tracked cell with anything.
    for (auto& [cell, val] : state.cells) val = AbsVal::Top();
  }

  // True when the site's facts allow a sole-referent claim anchored at one cell: its only
  // escapes are heap stores, and all of them target exactly (container, slot).
  bool SoleCellSite(uint16_t index, ObjectIndex container, uint32_t slot) const {
    const AllocationSite& site = summary.sites[index];
    if (site.sent || site.passed_to_call || site.returned || site.destroyed ||
        site.unresolved || !site.stored_into_sites.empty() || site.heap_stores.empty()) {
      return false;
    }
    for (const HeapStore& s : site.heap_stores) {
      if (s.container != container || s.slot != slot) return false;
    }
    return true;
  }

  // Strong update of (container, slot): the old value dies. Any site the old value named
  // that the new one does not, that no register or other tracked cell still names, and
  // whose every escape was a store into exactly this cell, has just lost its last AD.
  void CheckOverwrite(uint32_t pc, const AbstractState& state, const Cell& cell,
                      const AbsVal& old_value, const AbsVal& new_value, bool record) {
    if (!record || old_value.sites.empty()) return;
    // Unresolved machinery anywhere voids the flow-sensitive argument: a top value or an
    // overflowed cell set could be hiding the AD.
    if (summary.opaque || summary.cells_overflowed || summary.stored_top || dirty_all) return;
    for (uint8_t r = 0; r < kNumAdRegs; ++r) {
      if (state.regs[r].top) return;  // a top register may hold any heap-stored site
    }
    for (const auto& [other, val] : state.cells) {
      if (other != cell && val.top) return;
    }
    for (uint16_t site : old_value.sites) {
      if (new_value.HasSite(site)) continue;  // re-stored, not killed
      if (!SoleCellSite(site, cell.first, cell.second)) continue;
      bool held_elsewhere = false;
      for (uint8_t r = 0; r < kNumAdRegs && !held_elsewhere; ++r) {
        held_elsewhere = state.regs[r].HasSite(site);
      }
      for (const auto& [other, val] : state.cells) {
        if (held_elsewhere) break;
        if (other != cell) held_elsewhere = val.HasSite(site);
      }
      if (held_elsewhere) continue;
      if (!reported_anomalies.emplace(site, pc).second) continue;
      RetentionAnomaly anomaly;
      anomaly.site = site;
      anomaly.store_pc = summary.sites[site].heap_stores.front().pc;
      anomaly.overwrite_pc = pc;
      anomaly.container = cell.first;
      anomaly.slot = cell.second;
      char prefix[16];
      std::snprintf(prefix, sizeof(prefix), "%04u  ", pc);
      anomaly.disasm =
          prefix + DisassembleInstruction(program.at(pc), kInvalidObjectIndex, options.symbols);
      summary.anomalies.push_back(std::move(anomaly));
    }
  }

  // Applies one access-part store to the tracked cells. Constant slot + unique container =
  // strong update; everything else joins weakly (the store may or may not hit each cell).
  void StoreCells(uint32_t pc, AbstractState& state, const AbsVal& container, uint32_t slot,
                  const AbsVal& value, bool record) {
    if (summary.cells_overflowed) return;
    if (container.top) {
      // Could hit any tracked cell.
      for (auto& [cell, val] : state.cells) val.Join(value);
      return;
    }
    for (ObjectIndex obj : container.objs) {
      if (slot == kUnknownSlot) {
        for (auto& [cell, val] : state.cells) {
          if (cell.first == obj) val.Join(value);
        }
        continue;
      }
      const Cell cell{obj, slot};
      auto it = state.cells.find(cell);
      if (container.objs.size() == 1 && container.sites.empty()) {
        if (it != state.cells.end()) {
          CheckOverwrite(pc, state, cell, it->second, value, record);
          it->second = value;
        } else {
          state.cells.emplace(cell, value);
        }
      } else if (it != state.cells.end()) {
        it->second.Join(value);
      } else {
        state.cells.emplace(cell, value);
      }
    }
    if (state.cells.size() > kMaxCells) {
      summary.cells_overflowed = true;
      state.cells.clear();
    }
  }

  // Applies one instruction to `state`. `record` marks the reporting pass (facts are
  // recorded in both passes — they are monotone and deduplicated — but anomalies only in
  // the reporting pass, once per site pair).
  void Transfer(uint32_t pc, AbstractState& state, bool record) {
    const Instruction& in = program.at(pc);
    switch (in.op) {
      case Opcode::kMoveAd:
        state.regs[in.a] = state.regs[in.b];
        break;
      case Opcode::kClearAd:
        state.regs[in.a] = AbsVal();
        break;
      case Opcode::kLoadAd:
        state.regs[in.a] = LoadSlot(state.regs[in.b], in.imm);
        break;
      case Opcode::kLoadAdIndexed:
        state.regs[in.a] =
            state.regs[in.b].DefinitelyNull() ? AbsVal() : AbsVal::Top();
        break;
      case Opcode::kStoreAd:
        NoteStoreFacts(state.regs[in.a], in.imm, state.regs[in.b], pc);
        StoreCells(pc, state, state.regs[in.a], in.imm, state.regs[in.b], record);
        MarkStoreInto(state.regs[in.a]);
        break;
      case Opcode::kStoreAdIndexed:
        NoteStoreFacts(state.regs[in.a], kUnknownSlot, state.regs[in.b], pc);
        StoreCells(pc, state, state.regs[in.a], kUnknownSlot, state.regs[in.b], record);
        MarkStoreInto(state.regs[in.a]);
        break;
      case Opcode::kRestrictRights:
      case Opcode::kAdIsNull:
        break;  // object identity unchanged / data result only
      case Opcode::kCreateObject: {
        AbsVal fresh;
        fresh.AddSite(site_of_pc.at(pc));
        state.regs[in.a] = std::move(fresh);
        break;
      }
      case Opcode::kCreateSro:
        state.regs[in.a] = AbsVal();  // fresh SRO: not a tracked site
        break;
      case Opcode::kDestroyObject:
        for (uint16_t site : state.regs[in.a].sites) Site(site).destroyed = true;
        break;
      case Opcode::kDestroySro:
        break;
      case Opcode::kSend:
      case Opcode::kCondSend:
        for (uint16_t site : state.regs[in.b].sites) Site(site).sent = true;
        if (state.regs[in.b].top) summary.sent_unknown = true;
        break;
      case Opcode::kReceive:
      case Opcode::kCondReceive:
        state.regs[in.a] = AbsVal::Top();
        break;
      case Opcode::kCall:
      case Opcode::kCallLocal:
        for (uint16_t site : state.regs[kArgAdReg].sites) Site(site).passed_to_call = true;
        state.regs[kArgAdReg] = AbsVal::Top();  // callee return value
        break;
      case Opcode::kReturn:
        for (uint16_t site : state.regs[kArgAdReg].sites) Site(site).returned = true;
        break;
      case Opcode::kOsCall:
        switch (in.imm) {
          case kOsYield:
          case kOsGetTime:
          case kOsSetPriority:
          case kOsSetDeadline:
            break;  // data-only services, no AD effect
          case kOsTimedReceive:
            state.regs[kArgAdReg] = AbsVal::Top();
            break;
          default:
            Opaque(state);  // unknown / package service
            break;
        }
        break;
      case Opcode::kNative:
        Opaque(state);
        break;
      default:
        break;  // data / branch / halt: no AD effect
    }
  }

  LifetimeSummary Run() {
    summary.program_name = program.name();
    if (program.size() == 0) return summary;

    std::vector<AbstractState> entry(cfg.size());
    std::vector<bool> seen(cfg.size(), false);
    std::vector<bool> queued(cfg.size(), false);
    std::vector<uint32_t> worklist;

    auto enqueue = [&](uint32_t block) {
      if (!queued[block]) {
        queued[block] = true;
        worklist.push_back(block);
      }
    };

    auto seed = [&](uint32_t block, const AbstractState& state) {
      if (!seen[block]) {
        seen[block] = true;
        entry[block] = state;
        enqueue(block);
      } else if (entry[block].Join(state)) {
        enqueue(block);
      }
    };

    seed(0, EntryState());
    if (cfg.has_native()) {
      // Native jumps make every block a potential entry with unknown registers (mirrors
      // effects.cc; the opaque flag already voids every claim for this program).
      AbstractState unknown;
      HavocRegs(unknown);
      for (uint32_t b = 0; b < cfg.size(); ++b) seed(b, unknown);
    }

    // Fixpoint. The dirty set only grows; when it does, resolved loads may need to weaken,
    // so every seen block re-runs (same discipline as effects.cc).
    while (!worklist.empty()) {
      const uint32_t block = worklist.back();
      worklist.pop_back();
      queued[block] = false;

      const size_t dirty_before = dirty.size();
      const bool dirty_all_before = dirty_all;

      AbstractState state = entry[block];
      const BasicBlock& bb = cfg.block(block);
      for (uint32_t pc = bb.begin; pc < bb.end; ++pc) Transfer(pc, state, false);
      for (uint32_t succ : bb.successors) seed(succ, state);

      if (dirty.size() != dirty_before || dirty_all != dirty_all_before) {
        for (uint32_t b = 0; b < cfg.size(); ++b) {
          if (seen[b]) enqueue(b);
        }
      }
    }

    // Reporting pass: replay each analyzed block once, in program order. All escape facts
    // are final by now, so the sole-cell anomaly test sees the whole program's stores.
    for (uint32_t b = 0; b < cfg.size(); ++b) {
      if (!seen[b]) continue;
      AbstractState state = entry[b];
      const BasicBlock& bb = cfg.block(b);
      for (uint32_t pc = bb.begin; pc < bb.end; ++pc) Transfer(pc, state, true);
    }

    return summary;
  }
};

bool SiteEscapes(const AllocationSite& site) {
  return site.sent || site.passed_to_call || site.returned || site.destroyed ||
         site.unresolved || !site.heap_stores.empty();
}

}  // namespace

LifetimeSummary LifetimeAnalyzer::Analyze(const Program& program,
                                          const EffectOptions& options) {
  Analyzer analyzer(program, options);
  return analyzer.Run();
}

std::vector<uint32_t> DemotableSites(const LifetimeSummary& summary) {
  std::vector<uint32_t> result;
  if (summary.opaque) return result;
  const size_t n = summary.sites.size();
  std::vector<bool> demotable(n);
  for (size_t i = 0; i < n; ++i) demotable[i] = !SiteEscapes(summary.sites[i]);
  // A site stored into a sibling lives exactly as long as that sibling: demotability
  // propagates backward along store edges until nothing changes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (!demotable[i]) continue;
      for (uint16_t target : summary.sites[i].stored_into_sites) {
        if (!demotable[target]) {
          demotable[i] = false;
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (demotable[i]) result.push_back(summary.sites[i].pc);
  }
  return result;
}

LifetimeAnalysisReport AnalyzeLifetimes(
    const SystemEffectGraph& graph,
    const std::map<ObjectIndex, LifetimeSummary>& lifetimes) {
  LifetimeAnalysisReport report;

  // Whole-system opacity: any program that could read an arbitrary access part or ship an
  // unresolvable payload could hold any stored AD, so every leak / anomaly claim dies.
  bool suppress_all = false;
  for (const auto& [segment, entry] : graph.programs()) {
    if (entry.summary.has_native) {
      ++report.opaque_programs;
      suppress_all = true;
    }
    if (entry.summary.has_unresolved_access) {
      ++report.unresolved_programs;
      suppress_all = true;
    }
  }
  for (const auto& [segment, summary] : lifetimes) {
    if (summary.sent_unknown) {
      ++report.unresolved_programs;
      suppress_all = true;
    }
  }

  // True when some summarized program may read slot ADs back out of `container`.
  auto container_read = [&graph](ObjectIndex container) {
    for (const auto& [segment, entry] : graph.programs()) {
      if (entry.summary.Reads(container, ObjectPart::kAccess)) return true;
    }
    return false;
  };

  for (const auto& [segment, summary] : lifetimes) {
    ++report.programs_analyzed;
    report.sites_analyzed += static_cast<uint32_t>(summary.sites.size());
    report.sites_demotable += static_cast<uint32_t>(DemotableSites(summary).size());

    if (!summary.opaque) {
      for (const AllocationSite& site : summary.sites) {
        // Leak suspect: the site's only escapes are stores into pre-existing containers
        // nothing ever reads back — retained forever, reachable by no program.
        if (site.heap_stores.empty() || site.sent || site.passed_to_call || site.returned ||
            site.destroyed || site.unresolved || !site.stored_into_sites.empty()) {
          continue;
        }
        if (suppress_all) {
          ++report.leaks_suppressed;
          continue;
        }
        bool read_back = false;
        for (const HeapStore& store : site.heap_stores) {
          if (container_read(store.container)) {
            read_back = true;
            break;
          }
        }
        if (read_back) {
          ++report.leaks_suppressed;  // retrievable, not lost
          continue;
        }
        const HeapStore& first = site.heap_stores.front();
        LeakDiagnostic leak;
        leak.program = summary.program_name;
        leak.alloc_pc = site.pc;
        leak.container = first.container;
        leak.store_pc = first.pc;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "leak suspect: '%s' stores the object allocated at pc %u into object "
                      "%u (pc %u); no program ever loads it back\n  %s",
                      summary.program_name.c_str(), site.pc, first.container, first.pc,
                      site.disasm.c_str());
        leak.message = line;
        report.leaks.push_back(std::move(leak));
      }
    }

    for (const RetentionAnomaly& anomaly : summary.anomalies) {
      // Another program reading the container could have copied the AD out before the
      // overwrite; opacity anywhere could be hiding the same thing.
      if (suppress_all || container_read(anomaly.container)) {
        ++report.anomalies_suppressed;
        continue;
      }
      AnomalyDiagnostic diagnostic;
      diagnostic.program = summary.program_name;
      diagnostic.anomaly = anomaly;
      char line[200];
      std::snprintf(line, sizeof(line),
                    "retention anomaly: '%s' overwrites object %u slot %u at pc %u, the "
                    "sole AD of the object allocated at pc %u (stored at pc %u)\n  %s",
                    summary.program_name.c_str(), anomaly.container, anomaly.slot,
                    anomaly.overwrite_pc, summary.sites[anomaly.site].pc, anomaly.store_pc,
                    anomaly.disasm.c_str());
      diagnostic.message = line;
      report.anomalies.push_back(std::move(diagnostic));
    }
  }
  return report;
}

std::string FormatLifetimeReport(const LifetimeAnalysisReport& report) {
  std::string out;
  for (const LeakDiagnostic& leak : report.leaks) {
    out += leak.message;
    out += '\n';
  }
  for (const AnomalyDiagnostic& anomaly : report.anomalies) {
    out += anomaly.message;
    out += '\n';
  }
  return out;
}

}  // namespace analysis
}  // namespace imax432

// Dynamic lifetime auditor: the ground-truth cross-check for demotion verdicts.
//
// The static pass (lifetime.h) proves sites context-local; the kernel then allocates them
// from a per-context demote SRO, marks them GC-exempt, and bulk-destroys the SRO at context
// exit. This auditor validates that bargain against the concrete execution
// (SystemConfig::lifetime_audit): the kernel registers every demoted allocation, and at each
// scope exit — immediately before the demote SRO dies — the auditor flat-scans every other
// live object's access part for an AD still naming a member of the dying population. Any hit
// is a violation: the static analysis called an escaping site demotable, and the bulk
// destroy is about to turn a live AD dangling (the generation check would fault it on use;
// the auditor catches the lie at its source). The kernel raises a kLifetimeViolation trace
// event per hit.
//
// Pure observer, same contract as the race sanitizer (races/sanitizer.h): nothing here
// consumes virtual time, so the simulated timeline is bit-identical with the audit on or
// off, preserving the PR 5 replay contract. Entries are keyed by (index, generation): an
// object reclaimed early (explicit destroy) simply fails the generation check and drops out.

#ifndef IMAX432_SRC_ANALYSIS_LIFETIME_AUDITOR_H_
#define IMAX432_SRC_ANALYSIS_LIFETIME_AUDITOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/arch/types.h"

namespace imax432 {

class ObjectTable;

namespace analysis {

// One demoted object found referenced from outside its dying population.
struct LifetimeViolation {
  ObjectIndex object = kInvalidObjectIndex;   // the demoted object
  ObjectIndex holder = kInvalidObjectIndex;   // live object whose access part names it
  uint32_t holder_slot = 0;
  ObjectIndex segment = kInvalidObjectIndex;  // program the allocation site lives in
  uint32_t alloc_pc = 0;                      // its create_object pc
};

struct LifetimeAuditorStats {
  uint64_t demoted_tracked = 0;   // registrations seen
  uint64_t scopes_audited = 0;    // scope exits scanned
  uint64_t objects_scanned = 0;   // live objects examined across all audits
  uint64_t violations = 0;
};

class LifetimeAuditor {
 public:
  // Registers one demoted allocation. `sro` is the demote SRO it came from; (segment, pc)
  // identify the allocation site for diagnostics.
  void OnDemoted(ObjectIndex object, uint32_t generation, ObjectIndex sro,
                 ObjectIndex segment, uint32_t pc);

  // An explicitly destroyed object leaves the tracked set (its slot may be reused).
  void OnObjectDestroyed(ObjectIndex object);

  // Scans for ADs into the population demoted from `sro`, excluding population members
  // themselves and `owner_context` (the returning context's registers legally still name
  // its own demoted objects — both die together). Returns the violations found by this
  // audit; they are also accumulated in violations(). Tracked entries for the population
  // are dropped: the caller destroys the SRO immediately after.
  std::vector<LifetimeViolation> AuditScopeExit(const ObjectTable& table, ObjectIndex sro,
                                                ObjectIndex owner_context);

  const std::vector<LifetimeViolation>& violations() const { return violations_; }
  const LifetimeAuditorStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint32_t generation = 0;
    ObjectIndex sro = kInvalidObjectIndex;
    ObjectIndex segment = kInvalidObjectIndex;
    uint32_t pc = 0;
  };

  std::map<ObjectIndex, Entry> demoted_;
  std::vector<LifetimeViolation> violations_;
  LifetimeAuditorStats stats_;
};

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_LIFETIME_AUDITOR_H_

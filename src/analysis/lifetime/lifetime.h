// Static object-lifetime and escape analysis over allocation sites.
//
// The paper's storage model is lifetime-driven: local SROs are bulk-destroyed at scope exit
// (level numbers guarantee no dangling references), while global-heap objects wait for the
// parallel GC, with destruction filters recovering "lost objects" (§1.3–1.4). This pass is
// the static side of that story. Phase 1 computes, per program, one summary per
// `create_object` site: where the fresh object's ADs flow — stores into pre-existing
// ("longer-lived") objects, stores into other allocation sites, port sends, domain-call
// arguments (a7 at call), context returns (a7 at return), explicit destroys — with an
// `unresolved` tier for anything the bounded AD-set machinery (effects.h) cannot follow.
// Phase 2 composes summaries across the whole system through the PR 2 SystemEffectGraph and
// yields three verdict classes:
//
//   demotable         — the site provably never escapes the allocating context's lifetime:
//                       no heap store, no send, no call argument, no return, no destroy,
//                       nothing unresolved, and any store into a *sibling site* only reaches
//                       sites that are themselves demotable. The kernel may allocate such
//                       sites from a per-context local SRO and bulk-destroy them at context
//                       exit, skipping GC registration entirely (see kernel.h,
//                       SystemConfig::lifetime_demote).
//   leak suspect      — the static analogue of the paper's lost object: the site is stored
//                       into a pre-existing object whose access part no summarized program
//                       ever reads back, and the site never escapes any other way. The AD is
//                       retained forever but unreachable to every program.
//   retention anomaly — the mirror image: a store overwrites the one heap cell that held the
//                       site's sole remaining AD while no register or tracked cell still
//                       names it — the object silently becomes garbage that only the GC (or
//                       a destruction filter) will ever recover.
//
// Soundness posture (DESIGN.md §6.3): verdicts follow the suite's zero-false-positive rule.
// A site is demotable only when every fact about it resolved; leak and anomaly claims are
// additionally suppressed — counted, never reported — whenever any summarized program is
// opaque (native steps, unknown services), has unresolved accesses, or sent an unresolvable
// payload, since such code could read the container back or hold the AD. The dynamic
// cross-check for demotion verdicts is the lifetime auditor (auditor.h,
// SystemConfig::lifetime_audit).

#ifndef IMAX432_SRC_ANALYSIS_LIFETIME_LIFETIME_H_
#define IMAX432_SRC_ANALYSIS_LIFETIME_LIFETIME_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/effects.h"
#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {
namespace analysis {

// Slot sentinel for a store whose slot index is computed at run time (store_ad_indexed).
inline constexpr uint32_t kUnknownSlot = 0xFFFFFFFFu;

// One store of a site's AD into a resolved pre-existing object.
struct HeapStore {
  ObjectIndex container = kInvalidObjectIndex;
  uint32_t slot = kUnknownSlot;
  uint32_t pc = 0;
};

// Everything known about one `create_object` instruction. All escape facts are monotone
// may-facts accumulated to a fixpoint; a site with no fact set at all is context-local.
struct AllocationSite {
  uint32_t pc = 0;
  uint32_t data_bytes = 0;
  uint32_t access_slots = 0;
  std::string disasm;

  std::vector<HeapStore> heap_stores;        // stores into pre-existing objects
  std::vector<uint16_t> stored_into_sites;   // stores into sibling allocation sites
  bool sent = false;                         // payload of a send / cond_send
  bool passed_to_call = false;               // in a7 at a call / call_local
  bool returned = false;                     // in a7 at a return
  bool destroyed = false;                    // destroy_object may target it
  bool unresolved = false;                   // stored through an unresolvable container
};

// One provable last-reference kill: the store at `overwrite_pc` replaces the contents of
// access slot `slot` of `container` — the only place the site's AD was ever stored — while
// no register or other tracked cell still names the site.
struct RetentionAnomaly {
  uint16_t site = 0;           // index into LifetimeSummary::sites
  uint32_t store_pc = 0;       // the store that put the sole AD into the cell
  uint32_t overwrite_pc = 0;   // the store that kills it
  ObjectIndex container = kInvalidObjectIndex;
  uint32_t slot = 0;
  std::string disasm;          // disassembly of the overwrite site
};

struct LifetimeSummary {
  std::string program_name;
  std::vector<AllocationSite> sites;       // ascending pc
  std::vector<RetentionAnomaly> anomalies; // per-program candidates; phase 2 suppresses
  bool opaque = false;          // native steps or unknown OS services present
  bool sent_unknown = false;    // some send's payload chain did not resolve
  bool stored_top = false;      // some store's value did not resolve (voids anomaly claims)
  bool cells_overflowed = false;  // abstract heap-cell bound hit (voids anomaly claims)
};

class LifetimeAnalyzer {
 public:
  // Computes the per-program summary to a fixpoint over the program's CFG. Reuses the
  // effect-analysis options: the seeded initial argument and slot reader resolve store
  // containers exactly as effects.h resolves ports.
  static LifetimeSummary Analyze(const Program& program, const EffectOptions& options = {});
};

// The pcs of this program's demotable sites (sorted): sites with no escape fact whose
// sibling-site stores reach only demotable sites, in a non-opaque program. Per-program by
// construction — a demoted object can only ever be referenced by registers of its own
// context and by sibling demoted objects in the same per-context SRO.
std::vector<uint32_t> DemotableSites(const LifetimeSummary& summary);

struct LeakDiagnostic {
  std::string program;
  uint32_t alloc_pc = 0;
  ObjectIndex container = kInvalidObjectIndex;
  uint32_t store_pc = 0;
  std::string message;  // rendered, disassembly-anchored
};

struct AnomalyDiagnostic {
  std::string program;
  RetentionAnomaly anomaly;
  std::string message;
};

struct LifetimeAnalysisReport {
  std::vector<LeakDiagnostic> leaks;
  std::vector<AnomalyDiagnostic> anomalies;
  uint32_t programs_analyzed = 0;
  uint32_t sites_analyzed = 0;
  uint32_t sites_demotable = 0;
  uint32_t leaks_suppressed = 0;      // candidate leaks voided by opacity / container reads
  uint32_t anomalies_suppressed = 0;  // candidate anomalies voided the same way
  uint32_t opaque_programs = 0;
  uint32_t unresolved_programs = 0;   // unresolved accesses or unresolvable send payloads

  bool ok() const { return leaks.empty() && anomalies.empty(); }
};

// One report as text, one block per diagnostic ("" when the report is clean).
std::string FormatLifetimeReport(const LifetimeAnalysisReport& report);

// Phase 2: composes per-program lifetime summaries with the whole-system effect graph.
// `lifetimes` is keyed by instruction-segment index like the graph's own program map; graph
// programs without a lifetime entry still participate in suppression (their effect
// summaries say whether they could read a container back).
LifetimeAnalysisReport AnalyzeLifetimes(
    const SystemEffectGraph& graph,
    const std::map<ObjectIndex, LifetimeSummary>& lifetimes);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_LIFETIME_LIFETIME_H_

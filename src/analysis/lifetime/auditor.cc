#include "src/analysis/lifetime/auditor.h"

#include "src/arch/object_table.h"

namespace imax432 {
namespace analysis {

void LifetimeAuditor::OnDemoted(ObjectIndex object, uint32_t generation, ObjectIndex sro,
                                ObjectIndex segment, uint32_t pc) {
  Entry entry;
  entry.generation = generation;
  entry.sro = sro;
  entry.segment = segment;
  entry.pc = pc;
  demoted_[object] = entry;
  ++stats_.demoted_tracked;
}

void LifetimeAuditor::OnObjectDestroyed(ObjectIndex object) { demoted_.erase(object); }

std::vector<LifetimeViolation> LifetimeAuditor::AuditScopeExit(const ObjectTable& table,
                                                               ObjectIndex sro,
                                                               ObjectIndex owner_context) {
  ++stats_.scopes_audited;

  // The dying population: tracked entries from this SRO whose table slot still holds the
  // same incarnation. (A stale generation means the object was already reclaimed and the
  // index possibly reused — that object is not being destroyed now.)
  std::map<ObjectIndex, const Entry*> population;
  for (auto it = demoted_.begin(); it != demoted_.end();) {
    if (it->second.sro != sro) {
      ++it;
      continue;
    }
    const ObjectDescriptor& descriptor = table.At(it->first);
    if (descriptor.allocated && descriptor.generation == it->second.generation) {
      population.emplace(it->first, &it->second);
    }
    // Dropped either way: the caller bulk-destroys the SRO right after this audit.
    it = demoted_.erase(it);
  }

  std::vector<LifetimeViolation> found;
  if (population.empty()) return found;

  for (ObjectIndex holder = 0; holder < table.capacity(); ++holder) {
    if (holder == owner_context || population.count(holder) != 0) continue;
    const ObjectDescriptor& descriptor = table.At(holder);
    if (!descriptor.allocated) continue;
    ++stats_.objects_scanned;
    for (uint32_t slot = 0; slot < descriptor.access_count(); ++slot) {
      const AccessDescriptor& ad = descriptor.access[slot];
      if (ad.is_null()) continue;
      auto member = population.find(ad.index());
      if (member == population.end() ||
          ad.generation() != member->second->generation) {
        continue;
      }
      LifetimeViolation violation;
      violation.object = member->first;
      violation.holder = holder;
      violation.holder_slot = slot;
      violation.segment = member->second->segment;
      violation.alloc_pc = member->second->pc;
      found.push_back(violation);
      ++stats_.violations;
    }
  }
  violations_.insert(violations_.end(), found.begin(), found.end());
  return found;
}

}  // namespace analysis
}  // namespace imax432

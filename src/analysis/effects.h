// Per-program IPC effect summaries: which ports a program may send to or receive from.
//
// The capability verifier (verifier.h) proves per-instruction facts inside one program; this
// pass computes the complementary *interface* fact — the program's communication footprint —
// so a whole-system analysis (deadlock.h) can reason across program boundaries. The abstract
// value per AD register is the set of concrete objects the register may name, grown from the
// seeded initial argument (the loader knows exactly what lands in a7) and chased through
// move_ad / load_ad chains by reading the live machine's access parts via a slot-reader
// callback. Every send / receive / cond_send / cond_receive site is recorded with the
// resolved port object when the chain resolves, and flagged unresolved otherwise. The same
// resolution also yields per-program *access summaries* — may-read / may-write sets over
// abstract objects, annotated with must-send-after / must-receive-before port facts — which
// the whole-system race detector (races/races.h) turns into a message-passing
// happens-before relation.
//
// Soundness posture (see DESIGN.md §6): this is a *may* analysis over the ISA stream.
// Native steps and unknown OS services havoc the register file and mark the summary opaque —
// their C++ bodies can talk to any port without appearing here. Known AD-free OS services
// (yield, get-time, set-priority/deadline) are modeled precisely, and the timed-receive
// service is modeled as a blocking receive through a7. Access-part stores performed by the
// program itself dirty the stored-into objects: later load_ad chains through a dirtied
// object resolve to "unknown" rather than to the boot-time snapshot the slot reader sees.

#ifndef IMAX432_SRC_ANALYSIS_EFFECTS_H_
#define IMAX432_SRC_ANALYSIS_EFFECTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/arch/access_descriptor.h"
#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {

class ObjectTable;
class SymbolTable;  // disassembler.h

namespace analysis {

// Sentinel port identity for a send/receive whose AD chain could not be followed.
inline constexpr ObjectIndex kUnresolvedPort = kInvalidObjectIndex;

enum class PortOp : uint8_t { kSend, kReceive };

// One send/receive site in a program.
struct PortUse {
  PortOp op = PortOp::kSend;
  uint32_t pc = 0;
  // Resolved port object, or kUnresolvedPort. A site whose register resolves to several
  // concrete objects produces one PortUse per candidate.
  ObjectIndex port = kUnresolvedPort;
  // False for cond_send / cond_receive: the op has a fallback and never blocks the process.
  bool blocking = true;
  // Ports this program has provably sent to on *every* path from entry to this site
  // (must-analysis). The deadlock detector uses it to recognize primed request/reply
  // cycles: a receive preceded by a guaranteed send into the cycle cannot be the first
  // blocker.
  std::vector<ObjectIndex> sends_before;
  // Ports this program has provably *completed a blocking receive from* on every path to
  // this site. The race detector chains happens-before through relay processes with it: a
  // relay that only sends after receiving extends the ordering its input port carries.
  std::vector<ObjectIndex> recvs_before;
  // Disassembly of the site, for diagnostics ("receive a4, port=a2 ; port 12 'ring.0'").
  std::string disasm;
};

enum class AccessKind : uint8_t { kRead, kWrite };

// Which half of an object an access touches. Data reads/writes never conflict with
// access-part (AD slot) reads/writes: the two parts are disjoint storage.
enum class ObjectPart : uint8_t { kData, kAccess };

// One memory access site: a data or access-part read/write of a resolved abstract object.
// load_data / store_data touch the data part; load_ad / store_ad touch the access part;
// destroy_object writes both. A site whose object register resolves to several candidates
// produces one ObjectAccess per candidate; fresh objects (create_object results) and
// definitely-null registers produce none.
struct ObjectAccess {
  AccessKind kind = AccessKind::kRead;
  ObjectPart part = ObjectPart::kData;
  uint32_t pc = 0;
  ObjectIndex object = kInvalidObjectIndex;
  // Must-analysis context for message-passing happens-before (DESIGN.md §6.2):
  //   sends_after  — ports provably sent to (blocking send, unique target) on every path
  //                  from this site to program exit. A write followed by a guaranteed send
  //                  happens-before reads after the matching receive.
  //   recvs_before — ports a blocking receive provably completed from on every path from
  //                  entry to this site. A read after a guaranteed receive happens-after
  //                  writes before the matching send.
  std::vector<ObjectIndex> sends_after;
  std::vector<ObjectIndex> recvs_before;
  // Disassembly of the site, for diagnostics.
  std::string disasm;
};

// One inter-domain (or local) call site.
struct DomainCall {
  uint32_t pc = 0;
  uint32_t entry = 0;
  // Resolved instruction-segment object the call lands in, or kInvalidObjectIndex. The
  // system analysis composes callee summaries into callers through this edge.
  ObjectIndex callee_segment = kInvalidObjectIndex;
};

struct EffectSummary {
  std::string program_name;
  std::vector<PortUse> uses;          // every send/receive site, ascending pc
  std::vector<ObjectAccess> accesses; // every resolved data/AD access site, ascending pc
  std::vector<DomainCall> calls;      // every call / call_local site
  bool has_native = false;            // opaque native / unknown OS-call steps present
  bool has_unresolved_send = false;   // some send's port chain did not resolve
  bool has_unresolved_receive = false;
  bool has_unresolved_access = false; // some access's object chain did not resolve
  // The CFG has a reachable cycle (or opaque code): the program may never terminate, so
  // its sends may repeat without bound.
  bool may_not_terminate = false;

  bool SendsTo(ObjectIndex port) const;
  bool ReceivesFrom(ObjectIndex port) const;
  bool Reads(ObjectIndex object, ObjectPart part = ObjectPart::kData) const;
  bool Writes(ObjectIndex object, ObjectPart part = ObjectPart::kData) const;
};

struct EffectOptions {
  // Concrete AD in a7 at entry. Null = unknown entry argument (domain entries, offline
  // analysis): a7 starts at "any object" and nothing resolves through it.
  AccessDescriptor initial_arg;
  // Reads access slot `slot` of live object `index`; returns a null AD when the object or
  // slot does not exist. Without it no load_ad chain resolves.
  std::function<AccessDescriptor(ObjectIndex index, uint32_t slot)> slot_reader;
  // Optional names for resolved port operands in the per-site disassembly.
  const SymbolTable* symbols = nullptr;
};

class EffectAnalyzer {
 public:
  // Computes the summary to a fixpoint over the program's CFG.
  static EffectSummary Analyze(const Program& program, const EffectOptions& options = {});
};

// Options whose slot reader chases chains through a live object table. The table must
// outlive the Analyze call (it is consulted synchronously, never stored).
EffectOptions EffectOptionsForTable(const ObjectTable& table,
                                    const AccessDescriptor& initial_arg,
                                    const SymbolTable* symbols = nullptr);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_EFFECTS_H_

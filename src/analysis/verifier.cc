#include "src/analysis/verifier.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <deque>

#include "src/analysis/cfg.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {

namespace {

bool ValidReg(uint8_t r) { return r < kNumDataRegs; }
bool ValidAdReg(uint8_t r) { return r < kNumAdRegs; }

bool ValidWidth(uint32_t width) {
  return width == 1 || width == 2 || width == 4 || width == 8;
}

std::string Format(const char* fmt, ...) {
  char buffer[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kNullAdUse: return "null-ad-use";
    case Rule::kMissingRights: return "missing-rights";
    case Rule::kLevelRule: return "level-rule";
    case Rule::kBranchRange: return "branch-range";
    case Rule::kUnreachable: return "unreachable";
    case Rule::kDataBounds: return "data-bounds";
    case Rule::kSlotBounds: return "slot-bounds";
    case Rule::kBadWidth: return "bad-width";
    case Rule::kBadRegister: return "bad-register";
    case Rule::kTypeConfusion: return "type-confusion";
  }
  return "?";
}

LevelRange LevelRange::Join(const LevelRange& a, const LevelRange& b) {
  LevelRange joined;
  joined.lo = std::min(a.lo, b.lo);
  joined.hi = (a.hi == b.hi) ? a.hi : kUnbounded;
  if (a.entry_relative && b.entry_relative && a.delta == b.delta) {
    joined.entry_relative = true;
    joined.delta = a.delta;
  }
  return joined;
}

bool ProvablyViolatesLevelRule(const LevelRange& container, const LevelRange& value) {
  // The store is legal iff container.level >= value.level; it provably faults when the
  // container's highest possible level is still below the value's lowest possible level.
  if (container.hi != LevelRange::kUnbounded && container.hi < value.lo) {
    return true;
  }
  // Both exactly entry + delta: compare symbolically even though the entry level is unknown.
  if (container.entry_relative && value.entry_relative && container.delta < value.delta) {
    return true;
  }
  // Container exactly entry + d stores a value of level >= entry + d' with d' > d. The
  // value's entry-relative lower bound dominates any absolute one.
  return false;
}

AdAbstract AdAbstract::Join(const AdAbstract& a, const AdAbstract& b) {
  AdAbstract joined;
  joined.nullness = a.nullness == b.nullness ? a.nullness : Nullness::kMaybeNull;
  // Rights of a definitely-null value are vacuous; joining them in would erase what is
  // known about the other arm (a null arm faults with kNullAccess, not by gaining rights).
  if (a.nullness == Nullness::kNull) {
    joined.rights = b.rights;
  } else if (b.nullness == Nullness::kNull) {
    joined.rights = a.rights;
  } else {
    joined.rights = static_cast<RightsMask>(a.rights | b.rights);
  }
  joined.type_known = a.type_known && b.type_known && a.type == b.type;
  joined.type = joined.type_known ? a.type : SystemType::kGeneric;
  joined.level = LevelRange::Join(a.level, b.level);
  joined.data_bytes = a.data_bytes == b.data_bytes ? a.data_bytes : kUnknownSize;
  joined.access_slots = a.access_slots == b.access_slots ? a.access_slots : kUnknownSize;
  return joined;
}

namespace {

// Full register-file state at one program point. The `domain` pseudo-register models
// ctx.domain(), which kCallLocal dereferences without naming a register.
struct RegisterState {
  std::array<AdAbstract, kNumAdRegs> ad;
  AdAbstract domain;

  static RegisterState Join(const RegisterState& a, const RegisterState& b) {
    RegisterState joined;
    for (uint8_t i = 0; i < kNumAdRegs; ++i) {
      joined.ad[i] = AdAbstract::Join(a.ad[i], b.ad[i]);
    }
    joined.domain = AdAbstract::Join(a.domain, b.domain);
    return joined;
  }
  friend bool operator==(const RegisterState& a, const RegisterState& b) {
    return a.ad == b.ad && a.domain == b.domain;
  }
};

class Analysis {
 public:
  Analysis(const Program& program, const VerifyOptions& options)
      : program_(program), options_(options), cfg_(ControlFlowGraph::Build(program)) {}

  VerifyResult Run() {
    VerifyResult result;
    if (program_.size() == 0) {
      return result;
    }
    RegisterState entry = EntryState();

    // Fixpoint: worklist over basic blocks. All joins move toward "unknown" and the level
    // bounds move toward the interval hull over a finite set of constants, so the transfer
    // functions are monotone over a finite-height lattice and the loop terminates.
    std::vector<RegisterState> in_state(cfg_.size(), HavocState(entry));
    std::vector<bool> seen(cfg_.size(), false);
    in_state[0] = cfg_.has_native() ? RegisterState::Join(entry, HavocState(entry)) : entry;
    seen[0] = true;
    if (cfg_.has_native()) {
      // Native steps can jump to any instruction with an arbitrary register file; every
      // block entry must absorb that state to stay sound.
      for (uint32_t id = 1; id < cfg_.size(); ++id) {
        seen[id] = true;
      }
    }
    std::deque<uint32_t> worklist;
    for (uint32_t id = 0; id < cfg_.size(); ++id) {
      if (seen[id]) {
        worklist.push_back(id);
      }
    }
    while (!worklist.empty()) {
      uint32_t id = worklist.front();
      worklist.pop_front();
      RegisterState state = in_state[id];
      const BasicBlock& block = cfg_.block(id);
      for (uint32_t pc = block.begin; pc < block.end; ++pc) {
        Apply(program_.at(pc), pc, state, nullptr);
      }
      for (uint32_t successor : block.successors) {
        RegisterState merged =
            seen[successor] ? RegisterState::Join(in_state[successor], state) : state;
        if (!seen[successor] || !(merged == in_state[successor])) {
          in_state[successor] = merged;
          seen[successor] = true;
          if (std::find(worklist.begin(), worklist.end(), successor) == worklist.end()) {
            worklist.push_back(successor);
          }
        }
      }
    }

    // Reporting pass: one walk per reachable block against its fixpoint entry state.
    for (uint32_t id = 0; id < cfg_.size(); ++id) {
      const BasicBlock& block = cfg_.block(id);
      if (!block.reachable) {
        result.diagnostics.push_back(
            {block.begin, Rule::kUnreachable, Severity::kWarning,
             Format("block at %u unreachable from entry", block.begin)});
        continue;
      }
      RegisterState state = in_state[id];
      for (uint32_t pc = block.begin; pc < block.end; ++pc) {
        Apply(program_.at(pc), pc, state, &result.diagnostics);
      }
    }
    std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) { return a.pc < b.pc; });
    return result;
  }

 private:
  RegisterState EntryState() const {
    RegisterState state;
    // A fresh context's AD registers are null: using one before initializing it is the
    // static form of kNullAccess.
    for (uint8_t i = 0; i < kNumAdRegs; ++i) {
      state.ad[i] = AdAbstract::Null();
    }
    state.ad[kArgAdReg] = options_.initial_arg;
    if (options_.entry == VerifyOptions::EntryKind::kDomainEntry) {
      // The call instruction amplified a6 with read rights on the domain itself.
      AdAbstract domain = AdAbstract::Unknown();
      domain.nullness = AdAbstract::Nullness::kObject;
      domain.type_known = true;
      domain.type = SystemType::kDomain;
      state.ad[kDomainAdReg] = domain;
      state.domain = domain;
    } else {
      state.domain = AdAbstract::Null();
    }
    for (const auto& [reg, fact] : options_.seeded_ad_regs) {
      if (ValidAdReg(reg)) {
        state.ad[reg] = fact;
      }
    }
    return state;
  }

  // The all-unknown state a native step can leave behind. The current domain survives: no
  // native or OS-call path rebinds a context's domain.
  RegisterState HavocState(const RegisterState& entry) const {
    RegisterState state;
    for (uint8_t i = 0; i < kNumAdRegs; ++i) {
      state.ad[i] = AdAbstract::Unknown();
    }
    state.domain = entry.domain;
    return state;
  }

  LevelRange EntryLevelPlus(uint32_t delta) const {
    if (options_.entry_level.has_value()) {
      return LevelRange::Exact(*options_.entry_level + delta);
    }
    return LevelRange::EntryPlus(delta);
  }

  void Report(std::vector<Diagnostic>* sink, uint32_t pc, Rule rule, Severity severity,
              std::string message) const {
    if (sink != nullptr) {
      sink->push_back({pc, rule, severity, std::move(message)});
    }
  }

  // Checks a dereference of AD register `reg` needing `required` rights (and `type` when
  // the instruction is type-checked at run time). `required_name` is the human name of the
  // right — the type-right bit values alias across types (kPortSend == kSroAllocate), so the
  // mask alone cannot be rendered. Returns the abstract operand.
  AdAbstract Deref(RegisterState& state, uint32_t pc, uint8_t reg, RightsMask required,
                   const char* required_name, std::optional<SystemType> type,
                   std::vector<Diagnostic>* sink) {
    if (!ValidAdReg(reg)) {
      Report(sink, pc, Rule::kBadRegister, Severity::kError,
             Format("AD register a%u out of range", reg));
      return AdAbstract::Unknown();
    }
    const AdAbstract& operand = state.ad[reg];
    if (operand.definitely_null()) {
      Report(sink, pc, Rule::kNullAdUse, Severity::kError,
             Format("a%u is null (never initialized on any path to this instruction)", reg));
      return operand;
    }
    if (type.has_value() && operand.type_known && operand.type != *type) {
      Report(sink, pc, Rule::kTypeConfusion, Severity::kError,
             Format("a%u is a %s object; instruction requires %s", reg,
                    SystemTypeName(operand.type), SystemTypeName(*type)));
    } else if (operand.ProvablyLacks(required)) {
      Report(sink, pc, Rule::kMissingRights, Severity::kError,
             Format("a%u provably lacks %s rights (upper bound 0x%02x)", reg, required_name,
                    operand.rights));
    }
    return operand;
  }

  void CheckDataReg(uint32_t pc, uint8_t reg, std::vector<Diagnostic>* sink) const {
    if (!ValidReg(reg)) {
      Report(sink, pc, Rule::kBadRegister, Severity::kError,
             Format("data register r%u out of range", reg));
    }
  }

  void CheckDataBounds(uint32_t pc, const AdAbstract& object, uint32_t min_offset,
                       uint32_t width, std::vector<Diagnostic>* sink) const {
    if (!ValidWidth(width)) {
      Report(sink, pc, Rule::kBadWidth, Severity::kError,
             Format("width %u not in {1, 2, 4, 8}", width));
      return;
    }
    if (object.data_bytes != AdAbstract::kUnknownSize &&
        static_cast<uint64_t>(min_offset) + width > object.data_bytes) {
      Report(sink, pc, Rule::kDataBounds, Severity::kError,
             Format("access at offset %u width %u exceeds the object's %u data bytes",
                    min_offset, width, object.data_bytes));
    }
  }

  void CheckSlotBounds(uint32_t pc, const AdAbstract& object, uint32_t min_slot,
                       std::vector<Diagnostic>* sink) const {
    if (object.access_slots != AdAbstract::kUnknownSize && min_slot >= object.access_slots) {
      Report(sink, pc, Rule::kSlotBounds, Severity::kError,
             Format("slot %u outside the object's %u access slots", min_slot,
                    object.access_slots));
    }
  }

  void CheckBranchTarget(uint32_t pc, uint32_t target, std::vector<Diagnostic>* sink) const {
    // Branching exactly to program.size() is the fall-off-the-end implicit return; anything
    // beyond that is a malformed (likely unpatched) target.
    if (target > program_.size()) {
      Report(sink, pc, Rule::kBranchRange, Severity::kError,
             Format("branch target %u beyond program end %u", target, program_.size()));
    }
  }

  void SetAd(RegisterState& state, uint8_t reg, const AdAbstract& value) {
    if (ValidAdReg(reg)) {
      state.ad[reg] = value;
    }
  }

  // Transfer function: mutates `state` across one instruction, reporting provable
  // violations into `sink` when non-null (the fixpoint passes run with sink == nullptr).
  void Apply(const Instruction& in, uint32_t pc, RegisterState& state,
             std::vector<Diagnostic>* sink) {
    switch (in.op) {
      case Opcode::kCompute:
        return;

      case Opcode::kLoadImm:
        CheckDataReg(pc, in.a, sink);
        return;

      case Opcode::kMove:
        CheckDataReg(pc, in.a, sink);
        CheckDataReg(pc, in.b, sink);
        return;

      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
        CheckDataReg(pc, in.a, sink);
        CheckDataReg(pc, in.b, sink);
        CheckDataReg(pc, in.c, sink);
        return;

      case Opcode::kAddImm:
        CheckDataReg(pc, in.a, sink);
        CheckDataReg(pc, in.b, sink);
        return;

      case Opcode::kLoadData: {
        CheckDataReg(pc, in.a, sink);
        AdAbstract object = Deref(state, pc, in.b, rights::kRead, "read", std::nullopt, sink);
        CheckDataBounds(pc, object, in.imm, in.c, sink);
        return;
      }

      case Opcode::kStoreData: {
        CheckDataReg(pc, in.b, sink);
        AdAbstract object = Deref(state, pc, in.a, rights::kWrite, "write", std::nullopt, sink);
        CheckDataBounds(pc, object, in.imm, in.c, sink);
        return;
      }

      case Opcode::kLoadDataIndexed: {
        CheckDataReg(pc, in.a, sink);
        CheckDataReg(pc, in.c, sink);
        AdAbstract object = Deref(state, pc, in.b, rights::kRead, "read", std::nullopt, sink);
        // The index register is unknown but non-negative, so `imm` is the smallest offset
        // this access can touch.
        CheckDataBounds(pc, object, in.imm, 8, sink);
        return;
      }

      case Opcode::kStoreDataIndexed: {
        CheckDataReg(pc, in.b, sink);
        CheckDataReg(pc, in.c, sink);
        AdAbstract object = Deref(state, pc, in.a, rights::kWrite, "write", std::nullopt, sink);
        CheckDataBounds(pc, object, in.imm, 8, sink);
        return;
      }

      case Opcode::kMoveAd:
        if (!ValidAdReg(in.a) || !ValidAdReg(in.b)) {
          Report(sink, pc, Rule::kBadRegister, Severity::kError,
                 Format("AD register a%u or a%u out of range", in.a, in.b));
          return;
        }
        state.ad[in.a] = state.ad[in.b];
        return;

      case Opcode::kClearAd:
        SetAd(state, in.a, AdAbstract::Null());
        return;

      case Opcode::kLoadAd: {
        AdAbstract container = Deref(state, pc, in.b, rights::kRead, "read", std::nullopt, sink);
        CheckSlotBounds(pc, container, in.imm, sink);
        SetAd(state, in.a, AdAbstract::Unknown());  // slot contents are not tracked
        return;
      }

      case Opcode::kLoadAdIndexed: {
        CheckDataReg(pc, in.c, sink);
        AdAbstract container = Deref(state, pc, in.b, rights::kRead, "read", std::nullopt, sink);
        CheckSlotBounds(pc, container, in.imm, sink);
        SetAd(state, in.a, AdAbstract::Unknown());
        return;
      }

      case Opcode::kStoreAd:
      case Opcode::kStoreAdIndexed: {
        if (in.op == Opcode::kStoreAdIndexed) {
          CheckDataReg(pc, in.c, sink);
        }
        if (!ValidAdReg(in.b)) {
          Report(sink, pc, Rule::kBadRegister, Severity::kError,
                 Format("AD register a%u out of range", in.b));
        }
        AdAbstract container = Deref(state, pc, in.a, rights::kWrite, "write", std::nullopt, sink);
        CheckSlotBounds(pc, container, in.imm, sink);
        if (ValidAdReg(in.b) && state.ad[in.b].nullness == AdAbstract::Nullness::kObject &&
            ProvablyViolatesLevelRule(container.level, state.ad[in.b].level)) {
          Report(sink, pc, Rule::kLevelRule, Severity::kError,
                 Format("storing a%u (level >= %u) into a%u (level <= %u) violates the "
                        "lifetime rule",
                        in.b, state.ad[in.b].level.lo, in.a, container.level.hi));
        }
        return;
      }

      case Opcode::kRestrictRights:
        if (ValidAdReg(in.a) && state.ad[in.a].maybe_object()) {
          state.ad[in.a].rights =
              rights::Restrict(state.ad[in.a].rights, static_cast<RightsMask>(in.imm));
        }
        return;

      case Opcode::kAdIsNull:
        CheckDataReg(pc, in.a, sink);
        if (!ValidAdReg(in.b)) {
          Report(sink, pc, Rule::kBadRegister, Severity::kError,
                 Format("AD register a%u out of range", in.b));
        }
        return;

      case Opcode::kCreateObject: {
        AdAbstract sro = Deref(state, pc, in.b, rights::kSroAllocate, "sro-allocate",
                               SystemType::kStorageResource, sink);
        if (in.imm > kMaxDataPartBytes) {
          Report(sink, pc, Rule::kDataBounds, Severity::kError,
                 Format("object of %u bytes exceeds the %u-byte architectural limit", in.imm,
                        kMaxDataPartBytes));
        }
        // The new object allocates at the SRO's level and carries the full generic rights.
        SetAd(state, in.a,
              AdAbstract::Object(SystemType::kGeneric,
                                 rights::kRead | rights::kWrite | rights::kDelete, sro.level,
                                 in.imm, in.c));
        return;
      }

      case Opcode::kDestroyObject:
        Deref(state, pc, in.a, rights::kDelete, "delete", std::nullopt, sink);
        SetAd(state, in.a, AdAbstract::Null());
        return;

      case Opcode::kCreateSro:
        Deref(state, pc, in.b, rights::kSroAllocate, "sro-allocate",
              SystemType::kStorageResource, sink);
        // A local SRO allocates one level below the executing context, whatever the parent.
        SetAd(state, in.a,
              AdAbstract::Object(SystemType::kStorageResource,
                                 rights::kRead | rights::kSroAllocate | rights::kSroDestroy,
                                 EntryLevelPlus(1)));
        return;

      case Opcode::kDestroySro:
        Deref(state, pc, in.a, rights::kSroDestroy, "sro-destroy",
              SystemType::kStorageResource, sink);
        SetAd(state, in.a, AdAbstract::Null());
        return;

      case Opcode::kSend:
        Deref(state, pc, in.a, rights::kPortSend, "port-send", SystemType::kPort, sink);
        if (!ValidAdReg(in.b)) {
          Report(sink, pc, Rule::kBadRegister, Severity::kError,
                 Format("AD register a%u out of range", in.b));
        }
        return;

      case Opcode::kCondSend:
        CheckDataReg(pc, in.c, sink);
        Deref(state, pc, in.a, rights::kPortSend, "port-send", SystemType::kPort, sink);
        if (!ValidAdReg(in.b)) {
          Report(sink, pc, Rule::kBadRegister, Severity::kError,
                 Format("AD register a%u out of range", in.b));
        }
        return;

      case Opcode::kReceive:
        Deref(state, pc, in.b, rights::kPortReceive, "port-receive", SystemType::kPort, sink);
        SetAd(state, in.a, AdAbstract::Unknown());
        return;

      case Opcode::kCondReceive:
        CheckDataReg(pc, in.c, sink);
        Deref(state, pc, in.b, rights::kPortReceive, "port-receive", SystemType::kPort, sink);
        SetAd(state, in.a, AdAbstract::Unknown());
        return;

      case Opcode::kCall:
        Deref(state, pc, in.a, rights::kDomainCall, "domain-call", SystemType::kDomain, sink);
        // The callee's return value lands in r7/a7; everything else is caller-saved by the
        // context machinery.
        SetAd(state, kArgAdReg, AdAbstract::Unknown());
        return;

      case Opcode::kCallLocal:
        if (state.domain.definitely_null()) {
          Report(sink, pc, Rule::kNullAdUse, Severity::kError,
                 "call_local at process top level: no current domain");
        }
        SetAd(state, kArgAdReg, AdAbstract::Unknown());
        return;

      case Opcode::kReturn:
        // Returning an activation-local AD escapes the activation's lifetime; the checked
        // store into the caller's context provably faults. Only meaningful when a caller
        // exists, i.e. for domain entries (a process's top-level return just terminates).
        if (options_.entry == VerifyOptions::EntryKind::kDomainEntry &&
            state.ad[kArgAdReg].nullness == AdAbstract::Nullness::kObject &&
            state.ad[kArgAdReg].level.entry_relative) {
          Report(sink, pc, Rule::kLevelRule, Severity::kError,
                 Format("returning a7 (activation-local, level = entry + %u) to the caller "
                        "violates the lifetime rule",
                        state.ad[kArgAdReg].level.delta));
        }
        return;

      case Opcode::kBranch:
      case Opcode::kBranchIfZero:
      case Opcode::kBranchIfNotZero:
        if (in.op != Opcode::kBranch) {
          CheckDataReg(pc, in.a, sink);
        }
        CheckBranchTarget(pc, in.imm, sink);
        return;

      case Opcode::kBranchIfLess:
        CheckDataReg(pc, in.a, sink);
        CheckDataReg(pc, in.b, sink);
        CheckBranchTarget(pc, in.imm, sink);
        return;

      case Opcode::kHalt:
        return;

      case Opcode::kNative:
        if (program_.native(in.imm) == nullptr) {
          Report(sink, pc, Rule::kBranchRange, Severity::kError,
                 Format("native step %u not registered with the program", in.imm));
        }
        state = HavocState(state);
        return;

      case Opcode::kOsCall:
        // Services run arbitrary native code against the register file (kTimedReceive, for
        // one, rewrites a7).
        state = HavocState(state);
        return;
    }
  }

  const Program& program_;
  const VerifyOptions& options_;
  ControlFlowGraph cfg_;
};

}  // namespace

VerifyResult Verifier::Verify(const Program& program, const VerifyOptions& options) {
  return Analysis(program, options).Run();
}

std::string FormatDiagnostics(const Program& program, const VerifyResult& result) {
  std::string out;
  for (const Diagnostic& d : result.diagnostics) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "%s %04u [%s] ",
                  d.severity == Severity::kError ? "error  " : "warning", d.pc,
                  RuleName(d.rule));
    out += prefix;
    out += d.message;
    if (d.pc < program.size()) {
      out += "\n           | ";
      out += DisassembleInstruction(program.at(d.pc));
    }
    out += '\n';
  }
  return out;
}

}  // namespace analysis
}  // namespace imax432

#include "src/analysis/deadlock.h"

#include <algorithm>
#include <queue>

#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

// Strongly connected components by iterative Tarjan; returns one vector of node ids per SCC.
std::vector<std::vector<uint32_t>> Sccs(const std::vector<std::set<uint32_t>>& adjacency) {
  const uint32_t n = static_cast<uint32_t>(adjacency.size());
  std::vector<std::vector<uint32_t>> components;
  std::vector<uint32_t> index(n, 0), lowlink(n, 0);
  std::vector<bool> visited(n, false), on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 1;

  struct Frame {
    uint32_t node;
    std::set<uint32_t>::const_iterator next;
  };
  for (uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<Frame> frames;
    visited[root] = true;
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back({root, adjacency[root].begin()});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next != adjacency[frame.node].end()) {
        const uint32_t child = *frame.next++;
        if (!visited[child]) {
          visited[child] = true;
          index[child] = lowlink[child] = next_index++;
          stack.push_back(child);
          on_stack[child] = true;
          frames.push_back({child, adjacency[child].begin()});
        } else if (on_stack[child]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[child]);
        }
        continue;
      }
      const uint32_t node = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] = std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        std::vector<uint32_t> component;
        uint32_t member;
        do {
          member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component.push_back(member);
        } while (member != node);
        components.push_back(std::move(component));
      }
    }
  }
  return components;
}

}  // namespace

const char* SystemRuleName(SystemRule rule) {
  switch (rule) {
    case SystemRule::kDeadlockCycle: return "deadlock-cycle";
    case SystemRule::kOrphanPort: return "orphan-port";
    case SystemRule::kStarvedPort: return "starved-port";
  }
  return "?";
}

std::string FormatReport(const SystemAnalysisReport& report) {
  std::string out;
  for (const SystemDiagnostic& diagnostic : report.diagnostics) out += diagnostic.message;
  return out;
}

std::string PortLabel(ObjectIndex port, const SymbolTable* symbols) {
  std::string label = "port " + std::to_string(port);
  if (symbols != nullptr) {
    if (const std::string* name = symbols->Find(port)) label += " '" + *name + "'";
  }
  return label;
}

void SystemEffectGraph::AddProgram(ObjectIndex segment, EffectSummary summary,
                                   ProgramKind kind) {
  programs_[segment] = ProgramEntry{std::move(summary), kind};
}

void SystemEffectGraph::RemoveProgram(ObjectIndex segment) { programs_.erase(segment); }

// Only processes become actors; domain entries contribute through composition, never as
// independent traffic sources (they execute only when a process calls them).
std::vector<EffectiveProgram> ComposeProcesses(const SystemEffectGraph& graph) {
  const auto& programs = graph.programs();
  std::vector<EffectiveProgram> effective;
  effective.reserve(programs.size());
  for (const auto& [segment, entry] : programs) {
    if (entry.kind != ProgramKind::kProcess) continue;
    EffectiveProgram e;
    e.segment = segment;
    e.own = &entry.summary;
    std::set<ObjectIndex> reached;
    std::queue<ObjectIndex> frontier;
    reached.insert(segment);
    frontier.push(segment);
    while (!frontier.empty()) {
      const ObjectIndex current = frontier.front();
      frontier.pop();
      auto it = programs.find(current);
      if (it == programs.end()) {
        // Calls land in code this graph has no summary for: anything could happen there.
        e.opaque = true;
        e.may_not_terminate = true;
        continue;
      }
      const EffectSummary& s = it->second.summary;
      e.opaque |= s.has_native;
      e.unresolved_send |= s.has_unresolved_send;
      e.unresolved_receive |= s.has_unresolved_receive;
      e.unresolved_access |= s.has_unresolved_access;
      e.may_not_terminate |= s.may_not_terminate;
      for (const PortUse& use : s.uses) e.uses.push_back({&use, current});
      for (const ObjectAccess& access : s.accesses) e.accesses.push_back({&access, current});
      for (const DomainCall& call : s.calls) {
        if (call.callee_segment == kInvalidObjectIndex) {
          e.opaque = true;
          e.may_not_terminate = true;
        } else if (reached.insert(call.callee_segment).second) {
          frontier.push(call.callee_segment);
        }
      }
    }
    effective.push_back(std::move(e));
  }
  return effective;
}

SystemAnalysisReport SystemEffectGraph::Analyze() const {
  SystemAnalysisReport report;
  report.programs_analyzed = program_count();

  // --- Compose domain callees into callers (transitive, cycle-safe via BFS). ---
  const std::vector<EffectiveProgram> effective = ComposeProcesses(*this);

  // --- Per-port sender/receiver sets from resolved traffic only. ---
  const uint32_t n = static_cast<uint32_t>(effective.size());
  std::map<ObjectIndex, std::set<uint32_t>> senders;    // port -> program ids sending to it
  std::map<ObjectIndex, std::set<uint32_t>> receivers;  // port -> program ids receiving
  std::set<ObjectIndex> ports;
  bool unknown_sender = false;
  bool unknown_receiver = false;
  for (uint32_t p = 0; p < n; ++p) {
    const EffectiveProgram& e = effective[p];
    if (e.opaque) {
      // An opaque program could send to or receive from any port.
      unknown_sender = true;
      unknown_receiver = true;
      report.opaque_programs++;
    }
    if (e.unresolved_send) {
      unknown_sender = true;
      report.unresolved_send_programs++;
    }
    if (e.unresolved_receive) {
      unknown_receiver = true;
      report.unresolved_receive_programs++;
    }
    for (const OwnedPortUse& owned : e.uses) {
      if (owned.use->port == kUnresolvedPort) continue;
      ports.insert(owned.use->port);
      if (owned.use->op == PortOp::kSend) {
        senders[owned.use->port].insert(p);
      } else {
        receivers[owned.use->port].insert(p);
      }
    }
  }
  report.ports_seen = static_cast<uint32_t>(ports.size());

  auto name_of = [&](uint32_t p) { return effective[p].own->program_name; };
  auto externally_fed = [&](ObjectIndex port) {
    return external_senders_.count(port) != 0 || unknown_sender;
  };

  // --- Deadlock cycles: wait-for edges between programs, SCCs, priming filter. ---
  // edge_uses[p] holds the blocking receive sites that create p's outgoing edges, by port.
  std::vector<std::set<uint32_t>> adjacency(n);
  std::vector<std::map<ObjectIndex, std::vector<const PortUse*>>> edge_uses(n);
  for (uint32_t p = 0; p < n; ++p) {
    for (const OwnedPortUse& owned : effective[p].uses) {
      const PortUse& use = *owned.use;
      if (use.op != PortOp::kReceive || !use.blocking || use.port == kUnresolvedPort) continue;
      if (externally_fed(use.port)) continue;  // an outside sender can always unblock this
      auto it = senders.find(use.port);
      if (it == senders.end()) continue;  // no sender at all: the starvation report below
      for (uint32_t s : it->second) adjacency[p].insert(s);
      edge_uses[p][use.port].push_back(&use);
    }
  }

  for (const std::vector<uint32_t>& component : Sccs(adjacency)) {
    const std::set<uint32_t> members(component.begin(), component.end());
    const bool self_loop =
        component.size() == 1 && adjacency[component[0]].count(component[0]) != 0;
    if (component.size() < 2 && !self_loop) continue;

    // Ports whose wait edges stay inside the component.
    std::set<ObjectIndex> cycle_ports;
    bool escapable = false;
    for (uint32_t p : component) {
      for (const auto& [port, uses] : edge_uses[p]) {
        (void)uses;
        for (uint32_t s : senders[port]) {
          if (members.count(s) == 0) escapable = true;  // a non-member may feed the cycle
        }
        cycle_ports.insert(port);
      }
    }
    if (escapable) continue;
    // Primed cycle: some member provably sent into the cycle before its receive, so a
    // message is in flight and the ring makes progress (request/reply, pre-primed token
    // rings). Suppress.
    bool primed = false;
    for (uint32_t p : component) {
      for (const auto& [port, uses] : edge_uses[p]) {
        (void)port;
        for (const PortUse* use : uses) {
          for (ObjectIndex sent : use->sends_before) {
            if (cycle_ports.count(sent) != 0) primed = true;
          }
        }
      }
    }
    if (primed) continue;

    SystemDiagnostic diagnostic;
    diagnostic.rule = SystemRule::kDeadlockCycle;
    diagnostic.ports.assign(cycle_ports.begin(), cycle_ports.end());
    std::vector<uint32_t> ordered(component);
    std::sort(ordered.begin(), ordered.end(),
              [&](uint32_t a, uint32_t b) { return name_of(a) < name_of(b); });
    std::string message = std::string("error  ") + SystemRuleName(diagnostic.rule) + "  " +
                          std::to_string(component.size()) +
                          " program(s) in a blocking-receive cycle with no external sender\n";
    for (uint32_t p : ordered) {
      diagnostic.programs.push_back(name_of(p));
      for (const auto& [port, uses] : edge_uses[p]) {
        std::vector<std::string> feeders;
        for (uint32_t s : senders[port]) feeders.push_back(name_of(s));
        std::sort(feeders.begin(), feeders.end());
        message += "  " + name_of(p) + " blocks on " + PortLabel(port, symbols_) +
                   ", fed only by " + JoinNames(feeders) + "\n";
        for (const PortUse* use : uses) message += "    | " + use->disasm + "\n";
      }
    }
    diagnostic.message = std::move(message);
    report.diagnostics.push_back(std::move(diagnostic));
  }

  // --- Orphan ports: resolved senders, no possible receiver. ---
  for (const auto& [port, sending] : senders) {
    if (receivers.count(port) != 0) continue;
    if (external_receivers_.count(port) != 0 || unknown_receiver) continue;
    SystemDiagnostic diagnostic;
    diagnostic.rule = SystemRule::kOrphanPort;
    diagnostic.ports.push_back(port);
    std::string message = std::string("error  ") + SystemRuleName(diagnostic.rule) + "  " +
                          PortLabel(port, symbols_) +
                          " is sent to but never received from (unbounded queue growth)\n";
    for (uint32_t p : sending) {
      diagnostic.programs.push_back(name_of(p));
      message += "  sent from " + name_of(p) + ":\n";
      for (const OwnedPortUse& owned : effective[p].uses) {
        if (owned.use->op == PortOp::kSend && owned.use->port == port) {
          message += "    | " + owned.use->disasm + "\n";
        }
      }
    }
    diagnostic.message = std::move(message);
    report.diagnostics.push_back(std::move(diagnostic));
  }

  // --- Starved ports: a blocking receive nothing can ever satisfy. ---
  for (const auto& [port, receiving] : receivers) {
    if (senders.count(port) != 0) continue;
    if (external_senders_.count(port) != 0 || unknown_sender) continue;
    // Only unguarded receives block forever; a port polled purely via cond_receive is fine.
    std::vector<uint32_t> blocked;
    for (uint32_t p : receiving) {
      for (const OwnedPortUse& owned : effective[p].uses) {
        if (owned.use->op == PortOp::kReceive && owned.use->port == port &&
            owned.use->blocking) {
          blocked.push_back(p);
          break;
        }
      }
    }
    if (blocked.empty()) continue;
    SystemDiagnostic diagnostic;
    diagnostic.rule = SystemRule::kStarvedPort;
    diagnostic.ports.push_back(port);
    std::string message = std::string("error  ") + SystemRuleName(diagnostic.rule) + "  " +
                          PortLabel(port, symbols_) +
                          " is received from but nothing ever sends to it (permanent block)\n";
    for (uint32_t p : blocked) {
      diagnostic.programs.push_back(name_of(p));
      message += "  " + name_of(p) + " blocks at:\n";
      for (const OwnedPortUse& owned : effective[p].uses) {
        if (owned.use->op == PortOp::kReceive && owned.use->port == port &&
            owned.use->blocking) {
          message += "    | " + owned.use->disasm + "\n";
        }
      }
    }
    diagnostic.message = std::move(message);
    report.diagnostics.push_back(std::move(diagnostic));
  }

  return report;
}

}  // namespace analysis
}  // namespace imax432

#include "src/analysis/guards/auditor.h"

namespace imax432 {
namespace analysis {

const char* GuardViolationKindName(GuardViolationKind kind) {
  switch (kind) {
    case GuardViolationKind::kRights:
      return "rights";
    case GuardViolationKind::kDataBounds:
      return "data-bounds";
    case GuardViolationKind::kSlotBounds:
      return "slot-bounds";
  }
  return "unknown";
}

GuardAuditor::Check GuardAuditor::Flag(const AccessDescriptor& ad, GuardViolationKind kind) {
  ++stats_.violations;
  Check check;
  check.ok = false;
  check.violation.object = ad.index();
  check.violation.generation = ad.generation();
  check.violation.kind = kind;
  return check;
}

GuardAuditor::Check GuardAuditor::CheckElidedData(const ObjectTable& table,
                                                  const AccessDescriptor& ad, uint32_t offset,
                                                  uint32_t width, RightsMask required) {
  ++stats_.hits_checked;
  // Conditions the elided path still checks dynamically (null, stale generation,
  // quarantine, residency) fault identically to the full path — not elision divergence.
  if (ad.is_null() || ad.index() >= table.capacity()) return Check{};
  const ObjectDescriptor& descriptor = table.At(ad.index());
  if (!descriptor.allocated || descriptor.generation != ad.generation() ||
      descriptor.quarantined || descriptor.swapped_out) {
    return Check{};
  }
  if (!ad.HasRights(required)) return Flag(ad, GuardViolationKind::kRights);
  if (static_cast<uint64_t>(offset) + width > descriptor.data_length) {
    return Flag(ad, GuardViolationKind::kDataBounds);
  }
  return Check{};
}

GuardAuditor::Check GuardAuditor::CheckElidedSlot(const ObjectTable& table,
                                                  const AccessDescriptor& container,
                                                  uint32_t slot, RightsMask required) {
  ++stats_.hits_checked;
  if (container.is_null() || container.index() >= table.capacity()) return Check{};
  const ObjectDescriptor& descriptor = table.At(container.index());
  if (!descriptor.allocated || descriptor.generation != container.generation() ||
      descriptor.quarantined) {
    return Check{};
  }
  if (!container.HasRights(required)) return Flag(container, GuardViolationKind::kRights);
  if (slot >= descriptor.access_count()) return Flag(container, GuardViolationKind::kSlotBounds);
  return Check{};
}

}  // namespace analysis
}  // namespace imax432

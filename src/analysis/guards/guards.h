// Static guard-dominance analysis: which dynamic descriptor checks are provably redundant.
//
// The 432 model pays a descriptor-check tax on every instruction — rights sufficiency, data
// bounds, access-slot bounds, and the level rule — yet inside a basic block most of those
// checks are dominated by an equivalent or stronger check on the same AD register earlier in
// the block. The ADs themselves are immutable values (rights travel in the register, not in
// the object), and an object's data_length / access_count never change after creation, so a
// check that passed once cannot start failing until the register is overwritten or a
// synchronization point admits cross-process mutation of the *object's liveness*. This pass
// certifies exactly that redundancy so the kernel can elide it (DESIGN.md §6.5).
//
// Phase 1 (GuardAnalyzer::Analyze) computes a per-program guard summary over the PR 2/PR 4
// CFG machinery: for every data / access-part touch, the set of dynamic checks the
// interpreter performs at that site (guard_check::* bits), and a block-local forward
// dominance dataflow proving which of those bits are subsumed on every path from block entry.
// Facts are tracked per AD register and reset at every block boundary (entering edges are
// not joined — strictly conservative), killed by any register overwrite, and killed en masse
// at every synchronization instruction (send / receive / call / return / destroy / os-call /
// native): a sync point may run the scheduler, and the window in which a fresh object is
// private to its creator ends there. create_object establishes exact facts (all generic
// rights, exact data length and slot count); a passed check establishes the facts it proved
// (the block faults and aborts otherwise), giving the classic "second identical check is
// free" dominance.
//
// Phase 2 (AnalyzeGuards) composes Phase 1 verdicts system-wide into per-(program, block)
// ElisionCertificates. The suite's zero-false-positive posture applies: a site survives only
// if its facts flow from a same-block create_object (the object is provably unpublished for
// the whole window — fresh sites), or if the site's object resolves uniquely and *no*
// summarized program writes that (object, part) per the PR 7 interference footprints while
// the system contains no opaque or unresolved program. Everything else is suppressed and
// counted by cause, never certified.
//
// Phase 3 lives in the kernel (exec/kernel.h): `SystemConfig::decode_cache` arms
// per-processor decode caches (arch/decode_cache.h) of pre-decoded segments keyed by
// (instruction segment, generation, data_epoch, ProgramStore version); certified
// instructions carry their elision mask into a check-elided addressing-unit fast path, and
// `SystemConfig::guard_audit` arms the pure-observer auditor (auditor.h) that re-executes
// the skipped checks on every elided hit and raises kGuardViolation trace events without
// perturbing virtual time — the PR 5 replay fingerprint is the correctness oracle.

#ifndef IMAX432_SRC_ANALYSIS_GUARDS_GUARDS_H_
#define IMAX432_SRC_ANALYSIS_GUARDS_GUARDS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/deadlock.h"
#include "src/analysis/effects.h"
#include "src/analysis/interference/interference.h"
#include "src/arch/types.h"
#include "src/isa/program.h"

namespace imax432 {
namespace analysis {

// Dynamic check classes the interpreter performs at an access site. A site's `checks` mask
// records what the full layered path does; `elidable` records what a dominating check
// already proved.
namespace guard_check {
inline constexpr uint8_t kRights = 1u << 0;      // rights::Has(ad.rights(), required)
inline constexpr uint8_t kDataBounds = 1u << 1;  // offset + width <= data_length
inline constexpr uint8_t kSlotBounds = 1u << 2;  // slot < access_count
inline constexpr uint8_t kLevel = 1u << 3;       // store_ad level rule (never static)
}  // namespace guard_check

// Renders a check mask as "rights|data-bounds" (or "none").
std::string GuardCheckMaskName(uint8_t mask);

// Why a site's non-elidable check bits were suppressed (zero-false-positive accounting).
enum class GuardSuppression : uint8_t {
  kNone = 0,       // every check the site performs is elidable
  kOpaque,         // program has native steps — control flow and effects unknowable
  kDynamic,        // run-time offset/slot operand or non-constant width: bounds unprovable
  kUnproven,       // no dominating check established the needed facts by this point
  kLevel,          // the store_ad level rule depends on the stored value; never elidable
};
const char* GuardSuppressionName(GuardSuppression suppression);

// One guarded access site (load_data / store_data / load_ad / store_ad and their indexed
// variants), with the Phase 1 dominance verdict.
struct GuardSite {
  uint32_t pc = 0;
  uint32_t block = 0;        // CFG block id containing the site
  Opcode op = Opcode::kHalt;
  uint8_t checks = 0;        // guard_check bits the full interpreter path performs here
  uint8_t elidable = 0;      // subset proven dominated on every path from block entry
  // Site of the dominating instruction that first established the register's facts
  // (create_object or the first passed check). Valid when elidable != 0.
  uint32_t dominator_pc = 0;
  // Facts flow from a create_object in the same block: the object is unpublished (fresh
  // objects never appear in effects footprints) until the next sync point, which also kills
  // the facts — Phase 2 certifies these sites without any interference screen.
  bool fresh = false;
  // Unique resolved target per the effects footprint, or kInvalidObjectIndex (fresh or
  // multi-candidate or unresolved chain).
  ObjectIndex object = kInvalidObjectIndex;
  ObjectPart part = ObjectPart::kData;
  GuardSuppression suppression = GuardSuppression::kNone;
  std::string disasm;
};

// Per-cause suppression counters. Counts individual check *bits*, not sites, so
// checks_seen == checks_elidable + sum(suppressed_*).
struct GuardCounters {
  uint32_t checks_seen = 0;
  uint32_t checks_elidable = 0;
  uint32_t suppressed_opaque = 0;
  uint32_t suppressed_dynamic = 0;
  uint32_t suppressed_unproven = 0;
  uint32_t suppressed_level = 0;
};

// Phase 1 per-program summary.
struct GuardSummary {
  std::string program_name;
  std::vector<GuardSite> sites;  // ascending pc
  uint32_t block_count = 0;
  bool opaque = false;      // native steps: every check suppressed
  bool unresolved = false;  // some access chain did not resolve (effects bit)
  GuardCounters counters;
};

class GuardAnalyzer {
 public:
  // Computes the guard summary, deriving the effect summary internally.
  static GuardSummary Analyze(const Program& program, const EffectOptions& options = {});
  // Shares an already-computed effect summary (the kernel path: RecordEffectSummary computes
  // effects once and derives lifetime + interference + guard summaries from it).
  static GuardSummary Analyze(const Program& program, const EffectOptions& options,
                              const EffectSummary& effects);
};

// --- Phase 2: whole-system composition -------------------------------------------------

// One certified elision: at `pc`, the checks in `mask` were proven by the instruction at
// `dominator_pc` and no intervening instruction (or foreign program) can invalidate them.
struct ElidedCheck {
  uint32_t pc = 0;
  uint8_t mask = 0;
  uint32_t dominator_pc = 0;
  bool fresh = false;
};

// Per-(program, block) certificate the kernel folds into decoded superblocks.
struct ElisionCertificate {
  ObjectIndex segment = kInvalidObjectIndex;
  uint32_t block = 0;
  uint32_t begin = 0;  // [begin, end) pc range of the block
  uint32_t end = 0;
  std::vector<ElidedCheck> checks;
};

struct GuardAnalysisReport {
  std::vector<ElisionCertificate> certificates;  // ascending (segment, block)
  uint32_t programs_analyzed = 0;
  uint32_t sites_seen = 0;
  uint32_t checks_seen = 0;
  uint32_t checks_elidable = 0;   // Phase 1 dominance verdicts
  uint32_t checks_certified = 0;  // surviving the Phase 2 interference screen
  uint32_t certified_fresh = 0;   // certified via the fresh-object exemption
  // Phase 2 suppression accounting (check bits that were elidable but not certified).
  uint32_t suppressed_interference = 0;  // some summarized program writes the (object, part)
  uint32_t suppressed_system_opaque = 0; // an opaque/unresolved program exists system-wide
  uint32_t suppressed_unresolved_object = 0;  // non-fresh site without a unique object
  GuardCounters phase1;  // aggregated Phase 1 counters
};

// Composes Phase 1 summaries into elision certificates. `interference` supplies the PR 7
// footprints used as the foreign-writer screen for non-fresh sites; `graph` supplies the
// system-opacity scan (any opaque or unresolved program suppresses every non-fresh
// elision — such code could publish or mutate anything).
GuardAnalysisReport AnalyzeGuards(const SystemEffectGraph& graph,
                                  const std::map<ObjectIndex, GuardSummary>& summaries,
                                  const std::map<ObjectIndex, InterferenceSummary>& interference);

// Renders the report for imax_lint --guards.
std::string FormatGuardReport(const GuardAnalysisReport& report,
                              const std::map<ObjectIndex, GuardSummary>& summaries);

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_GUARDS_GUARDS_H_

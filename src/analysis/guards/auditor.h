// Pure-observer runtime auditor for check-elided execution (guard-dominance Phase 3).
//
// When `SystemConfig::guard_audit` is armed, the kernel calls CheckElidedData /
// CheckElidedSlot immediately before every check-elided access and re-executes exactly the
// checks the ElisionCertificate skipped — rights sufficiency and bounds. Checks the elided
// fast path still performs dynamically (liveness/generation, quarantine, residency) are NOT
// violations when they would fail: the elided path faults there identically to the full
// path, so the auditor ignores them and only flags divergence the certificate could cause.
// A violation means the static dominance proof was wrong; the kernel raises a
// kGuardViolation trace event and counts it, but never alters execution — virtual time is
// bit-identical with the auditor armed or not (the PR 5 replay contract).

#ifndef IMAX432_SRC_ANALYSIS_GUARDS_AUDITOR_H_
#define IMAX432_SRC_ANALYSIS_GUARDS_AUDITOR_H_

#include <cstdint>

#include "src/arch/access_descriptor.h"
#include "src/arch/object_table.h"
#include "src/arch/rights.h"
#include "src/arch/types.h"

namespace imax432 {
namespace analysis {

enum class GuardViolationKind : uint8_t {
  kRights = 0,      // the AD lacks a right the certificate claimed proven
  kDataBounds = 1,  // offset + width exceeds the live data_length
  kSlotBounds = 2,  // slot >= the live access_count
};
const char* GuardViolationKindName(GuardViolationKind kind);

struct GuardViolationRec {
  ObjectIndex object = kInvalidObjectIndex;
  uint32_t generation = 0;
  GuardViolationKind kind = GuardViolationKind::kRights;
};

struct GuardAuditorStats {
  uint64_t hits_checked = 0;  // elided executions cross-checked
  uint64_t violations = 0;
};

class GuardAuditor {
 public:
  struct Check {
    bool ok = true;
    GuardViolationRec violation;
  };

  // Re-executes the skipped rights + data-bounds checks for an elided data access.
  Check CheckElidedData(const ObjectTable& table, const AccessDescriptor& ad, uint32_t offset,
                        uint32_t width, RightsMask required);
  // Re-executes the skipped rights + slot-bounds checks for an elided access-part read.
  Check CheckElidedSlot(const ObjectTable& table, const AccessDescriptor& container,
                        uint32_t slot, RightsMask required);

  const GuardAuditorStats& stats() const { return stats_; }

 private:
  Check Flag(const AccessDescriptor& ad, GuardViolationKind kind);

  GuardAuditorStats stats_;
};

}  // namespace analysis
}  // namespace imax432

#endif  // IMAX432_SRC_ANALYSIS_GUARDS_AUDITOR_H_

#include "src/analysis/guards/guards.h"

#include <algorithm>
#include <set>

#include "src/analysis/cfg.h"
#include "src/arch/rights.h"
#include "src/isa/disassembler.h"

namespace imax432 {
namespace analysis {
namespace {

// Same synchronization set as the interference pass (interference.cc): every blocking
// rendezvous, domain call/return, object destruction, OS service, and native step. Crossing
// one may run the scheduler, so the private window of a fresh object ends there and every
// register fact is conservatively killed.
bool IsSyncInstruction(Opcode op) {
  switch (op) {
    case Opcode::kSend:
    case Opcode::kReceive:
    case Opcode::kCondSend:
    case Opcode::kCondReceive:
    case Opcode::kCall:
    case Opcode::kCallLocal:
    case Opcode::kReturn:
    case Opcode::kDestroyObject:
    case Opcode::kDestroySro:
    case Opcode::kOsCall:
    case Opcode::kNative:
      return true;
    default:
      return false;
  }
}

// Widths the data path accepts. An out-of-range width faults kInvalidArgument *before* the
// rights check in the full path, so eliding a check at such a site would reorder faults —
// bounds at a bad-width site are never elidable (counted kDynamic).
bool ValidWidth(uint32_t width) {
  return width == 1 || width == 2 || width == 4 || width == 8;
}

// Dominance facts for one AD register at one program point. Everything here is a
// must-fact: it holds on every path from block entry to the current pc.
struct RegFacts {
  bool valid = false;         // register provably holds a live, resolvable AD
  bool fresh = false;         // value flows from a create_object in this block
  RightsMask rights = 0;      // rights proven present (checked and passed, or granted)
  bool len_known = false;     // exact data length known (create_object)
  uint64_t data_len = 0;
  uint64_t data_hi = 0;       // proven-in-bounds data watermark: offset+width <= data_hi passed
  bool slots_known = false;   // exact access slot count known (create_object)
  uint32_t slot_count = 0;
  uint32_t slot_hi = 0;       // proven-in-bounds slot watermark: slot < slot_hi passed
  uint32_t dominator_pc = 0;  // instruction that first established these facts
};

struct BlockState {
  RegFacts ad[kNumAdRegs];
  void Reset() {
    for (RegFacts& f : ad) f = RegFacts{};
  }
  void KillAll() { Reset(); }
};

// Effects-footprint join: unique resolved object per (pc, part), or invalid when the site
// has zero or several candidates.
struct SiteObject {
  ObjectIndex object = kInvalidObjectIndex;
  bool unique = false;
};

SiteObject ResolveSite(const EffectSummary& effects, uint32_t pc, ObjectPart part) {
  SiteObject result;
  for (const ObjectAccess& access : effects.accesses) {
    if (access.pc != pc || access.part != part) continue;
    if (!result.unique) {
      result.object = access.object;
      result.unique = true;
    } else if (result.object != access.object) {
      result.object = kInvalidObjectIndex;
      result.unique = false;
      break;
    }
  }
  return result;
}

int BitCount(uint8_t mask) {
  int count = 0;
  for (uint8_t bit = 1; bit != 0; bit = static_cast<uint8_t>(bit << 1)) {
    if ((mask & bit) != 0) ++count;
  }
  return count;
}

// Attributes each non-elidable check bit of a finished site to a suppression counter and
// picks the site-level suppression label (worst cause wins: opaque > level > dynamic >
// unproven).
void AccountSite(GuardSite& site, bool opaque, uint8_t dynamic_bits, GuardCounters& counters) {
  counters.checks_seen += static_cast<uint32_t>(BitCount(site.checks));
  counters.checks_elidable += static_cast<uint32_t>(BitCount(site.elidable));
  const uint8_t suppressed = static_cast<uint8_t>(site.checks & ~site.elidable);
  if (suppressed == 0) {
    site.suppression = GuardSuppression::kNone;
    return;
  }
  if (opaque) {
    counters.suppressed_opaque += static_cast<uint32_t>(BitCount(suppressed));
    site.suppression = GuardSuppression::kOpaque;
    return;
  }
  GuardSuppression label = GuardSuppression::kUnproven;
  if ((suppressed & guard_check::kLevel) != 0) {
    counters.suppressed_level += static_cast<uint32_t>(BitCount(suppressed & guard_check::kLevel));
    label = GuardSuppression::kLevel;
  }
  const uint8_t dynamic = static_cast<uint8_t>(suppressed & dynamic_bits & ~guard_check::kLevel);
  if (dynamic != 0) {
    counters.suppressed_dynamic += static_cast<uint32_t>(BitCount(dynamic));
    if (label == GuardSuppression::kUnproven) label = GuardSuppression::kDynamic;
  }
  const uint8_t unproven =
      static_cast<uint8_t>(suppressed & ~dynamic_bits & ~guard_check::kLevel);
  if (unproven != 0) {
    counters.suppressed_unproven += static_cast<uint32_t>(BitCount(unproven));
  }
  site.suppression = label;
}

}  // namespace

std::string GuardCheckMaskName(uint8_t mask) {
  if (mask == 0) return "none";
  std::string name;
  const auto append = [&name](const char* part) {
    if (!name.empty()) name += "|";
    name += part;
  };
  if ((mask & guard_check::kRights) != 0) append("rights");
  if ((mask & guard_check::kDataBounds) != 0) append("data-bounds");
  if ((mask & guard_check::kSlotBounds) != 0) append("slot-bounds");
  if ((mask & guard_check::kLevel) != 0) append("level");
  return name;
}

const char* GuardSuppressionName(GuardSuppression suppression) {
  switch (suppression) {
    case GuardSuppression::kNone:
      return "none";
    case GuardSuppression::kOpaque:
      return "opaque";
    case GuardSuppression::kDynamic:
      return "dynamic";
    case GuardSuppression::kUnproven:
      return "unproven";
    case GuardSuppression::kLevel:
      return "level";
  }
  return "unknown";
}

GuardSummary GuardAnalyzer::Analyze(const Program& program, const EffectOptions& options) {
  return Analyze(program, options, EffectAnalyzer::Analyze(program, options));
}

GuardSummary GuardAnalyzer::Analyze(const Program& program, const EffectOptions& options,
                                    const EffectSummary& effects) {
  (void)options;
  GuardSummary summary;
  summary.program_name = effects.program_name;
  summary.opaque = effects.has_native;
  summary.unresolved = effects.has_unresolved_access;

  const ControlFlowGraph cfg = ControlFlowGraph::Build(program);
  summary.block_count = cfg.size();

  BlockState state;
  for (uint32_t block_id = 0; block_id < cfg.size(); ++block_id) {
    const BasicBlock& block = cfg.block(block_id);
    // Entering edges are not joined: every block starts with no facts. Inside an opaque
    // program even block boundaries are unknowable (native steps may jump anywhere), so the
    // dataflow still runs for reporting but every site is suppressed below.
    state.Reset();
    for (uint32_t pc = block.begin; pc < block.end; ++pc) {
      const Instruction& in = program.at(pc);
      GuardSite site;
      site.pc = pc;
      site.block = block_id;
      site.op = in.op;
      uint8_t dynamic_bits = 0;  // bits unprovable at this site for structural reasons
      bool is_site = false;

      switch (in.op) {
        case Opcode::kLoadData:
        case Opcode::kStoreData:
        case Opcode::kLoadDataIndexed:
        case Opcode::kStoreDataIndexed: {
          const bool load = in.op == Opcode::kLoadData || in.op == Opcode::kLoadDataIndexed;
          const bool indexed =
              in.op == Opcode::kLoadDataIndexed || in.op == Opcode::kStoreDataIndexed;
          const uint8_t ad_reg = load ? in.b : in.a;
          const uint32_t width = indexed ? 8 : in.c;
          const RightsMask required = load ? rights::kRead : rights::kWrite;
          if (ad_reg >= kNumAdRegs) break;  // interpreter faults before any guard check
          is_site = true;
          site.part = ObjectPart::kData;
          site.checks = guard_check::kRights | guard_check::kDataBounds;
          RegFacts& f = state.ad[ad_reg];
          if (indexed || !ValidWidth(width)) {
            // Run-time offset (r[c] + imm) or a width the slow path rejects before the
            // rights check: bounds can never be proven dominated.
            dynamic_bits |= guard_check::kDataBounds;
          }
          if (f.valid) {
            if (rights::Has(f.rights, required)) site.elidable |= guard_check::kRights;
            if ((dynamic_bits & guard_check::kDataBounds) == 0) {
              const uint64_t hi = static_cast<uint64_t>(in.imm) + width;
              if ((f.len_known && hi <= f.data_len) || hi <= f.data_hi) {
                site.elidable |= guard_check::kDataBounds;
              }
            }
            site.dominator_pc = f.dominator_pc;
            site.fresh = f.fresh;
          }
          // A passed check establishes its facts for the rest of the block (a failed one
          // faults and aborts the block).
          if (ValidWidth(width)) {
            if (!f.valid) {
              f = RegFacts{};
              f.valid = true;
              f.dominator_pc = pc;
            }
            f.rights = static_cast<RightsMask>(f.rights | required);
            if (!indexed) {
              f.data_hi = std::max(f.data_hi, static_cast<uint64_t>(in.imm) + width);
            }
          }
          break;
        }
        case Opcode::kLoadAd:
        case Opcode::kLoadAdIndexed: {
          const uint8_t container = in.b;
          const bool indexed = in.op == Opcode::kLoadAdIndexed;
          if (container < kNumAdRegs) {
            is_site = true;
            site.part = ObjectPart::kAccess;
            site.checks = guard_check::kRights | guard_check::kSlotBounds;
            RegFacts& f = state.ad[container];
            if (indexed) dynamic_bits |= guard_check::kSlotBounds;
            if (f.valid) {
              if (rights::Has(f.rights, rights::kRead)) site.elidable |= guard_check::kRights;
              if (!indexed) {
                if ((f.slots_known && in.imm < f.slot_count) || in.imm < f.slot_hi) {
                  site.elidable |= guard_check::kSlotBounds;
                }
              }
              site.dominator_pc = f.dominator_pc;
              site.fresh = f.fresh;
            }
            if (!f.valid) {
              f = RegFacts{};
              f.valid = true;
              f.dominator_pc = pc;
            }
            f.rights = static_cast<RightsMask>(f.rights | rights::kRead);
            if (!indexed) f.slot_hi = std::max(f.slot_hi, in.imm + 1);
          }
          // The destination register now holds an unknown (possibly null) AD.
          if (in.a < kNumAdRegs) state.ad[in.a] = RegFacts{};
          break;
        }
        case Opcode::kStoreAd:
        case Opcode::kStoreAdIndexed: {
          const uint8_t container = in.a;
          const bool indexed = in.op == Opcode::kStoreAdIndexed;
          if (container >= kNumAdRegs) break;
          is_site = true;
          site.part = ObjectPart::kAccess;
          site.checks = guard_check::kRights | guard_check::kSlotBounds | guard_check::kLevel;
          // The level rule compares the container's level against the *stored value's*
          // level and shades the GC gray bit — inherently dynamic, never elided.
          dynamic_bits |= guard_check::kLevel;
          RegFacts& f = state.ad[container];
          if (indexed) dynamic_bits |= guard_check::kSlotBounds;
          if (f.valid) {
            if (rights::Has(f.rights, rights::kWrite)) site.elidable |= guard_check::kRights;
            if (!indexed) {
              if ((f.slots_known && in.imm < f.slot_count) || in.imm < f.slot_hi) {
                site.elidable |= guard_check::kSlotBounds;
              }
            }
            site.dominator_pc = f.dominator_pc;
            site.fresh = f.fresh;
          }
          // The level check can still fault after rights/bounds passed, so a store_ad only
          // proves rights/bounds for *later* sites once it fully retires — which it has by
          // the time any later instruction in the block runs.
          if (!f.valid) {
            f = RegFacts{};
            f.valid = true;
            f.dominator_pc = pc;
          }
          f.rights = static_cast<RightsMask>(f.rights | rights::kWrite);
          if (!indexed) f.slot_hi = std::max(f.slot_hi, in.imm + 1);
          break;
        }
        case Opcode::kCreateObject: {
          if (in.a < kNumAdRegs) {
            RegFacts f;
            f.valid = true;
            f.fresh = true;
            f.rights = rights::kRead | rights::kWrite | rights::kDelete;
            f.len_known = true;
            f.data_len = in.imm;
            f.slots_known = true;
            f.slot_count = in.c;
            f.dominator_pc = pc;
            state.ad[in.a] = f;
          }
          break;
        }
        case Opcode::kCreateSro: {
          // New SRO AD with kernel-chosen rights: no facts.
          if (in.a < kNumAdRegs) state.ad[in.a] = RegFacts{};
          break;
        }
        case Opcode::kMoveAd: {
          if (in.a < kNumAdRegs && in.b < kNumAdRegs) state.ad[in.a] = state.ad[in.b];
          break;
        }
        case Opcode::kClearAd: {
          if (in.a < kNumAdRegs) state.ad[in.a] = RegFacts{};
          break;
        }
        case Opcode::kRestrictRights: {
          if (in.a < kNumAdRegs) {
            state.ad[in.a].rights = rights::Restrict(state.ad[in.a].rights,
                                                     static_cast<RightsMask>(in.imm));
          }
          break;
        }
        default:
          break;
      }

      if (IsSyncInstruction(in.op)) state.KillAll();

      if (is_site) {
        if (summary.opaque) {
          // Native steps may jump into the middle of any block: no dominance claim stands.
          site.elidable = 0;
          site.fresh = false;
        }
        const SiteObject resolved = ResolveSite(effects, pc, site.part);
        site.object = resolved.unique ? resolved.object : kInvalidObjectIndex;
        site.disasm = DisassembleInstruction(in);
        AccountSite(site, summary.opaque, dynamic_bits, summary.counters);
        summary.sites.push_back(site);
      }
    }
  }
  return summary;
}

// --- Phase 2 ---------------------------------------------------------------------------

namespace {

// True when any summarized program's interference footprint writes (object, part).
// Includes the site's own program: two processes may share one instruction segment, so even
// a "self" write is a foreign write from the other instance's point of view.
bool AnyWriter(const std::map<ObjectIndex, InterferenceSummary>& interference,
               ObjectIndex object, ObjectPart part) {
  for (const auto& [segment, summary] : interference) {
    (void)segment;
    if (summary.Writes(object, part)) return true;
  }
  return false;
}

}  // namespace

GuardAnalysisReport AnalyzeGuards(
    const SystemEffectGraph& graph, const std::map<ObjectIndex, GuardSummary>& summaries,
    const std::map<ObjectIndex, InterferenceSummary>& interference) {
  GuardAnalysisReport report;
  report.programs_analyzed = static_cast<uint32_t>(summaries.size());

  // System opacity: an opaque or unresolved program anywhere could write any object's
  // metadata path (native C++ bodies bypass the footprint discipline), so only fresh-object
  // elisions survive. Scan the effect graph (it covers every registered program, whether or
  // not it has a guard summary) plus the guard summaries themselves.
  bool system_opaque = false;
  for (const auto& [segment, entry] : graph.programs()) {
    (void)segment;
    if (entry.summary.has_native || entry.summary.has_unresolved_access) system_opaque = true;
  }
  for (const auto& [segment, summary] : summaries) {
    (void)segment;
    if (summary.opaque || summary.unresolved) system_opaque = true;
    report.phase1.checks_seen += summary.counters.checks_seen;
    report.phase1.checks_elidable += summary.counters.checks_elidable;
    report.phase1.suppressed_opaque += summary.counters.suppressed_opaque;
    report.phase1.suppressed_dynamic += summary.counters.suppressed_dynamic;
    report.phase1.suppressed_unproven += summary.counters.suppressed_unproven;
    report.phase1.suppressed_level += summary.counters.suppressed_level;
    report.sites_seen += static_cast<uint32_t>(summary.sites.size());
  }
  report.checks_seen = report.phase1.checks_seen;
  report.checks_elidable = report.phase1.checks_elidable;

  for (const auto& [segment, summary] : summaries) {
    ElisionCertificate cert;
    cert.segment = segment;
    cert.block = 0xffffffffu;
    const auto flush = [&]() {
      if (!cert.checks.empty()) report.certificates.push_back(cert);
      cert.checks.clear();
    };
    for (const GuardSite& site : summary.sites) {
      // The level bit is never certified; the kernel additionally requires the full
      // rights+bounds mask per site kind, but the certificate records exactly what the
      // dominance proof covers.
      const uint8_t mask = static_cast<uint8_t>(site.elidable & ~guard_check::kLevel);
      if (mask == 0) continue;
      const int bits = BitCount(mask);
      if (site.fresh) {
        // Fresh exemption: the object cannot be named by any other process inside the
        // dominance window (create_object results never enter effects footprints, and the
        // window closes at the first sync point, which also kills the facts).
        report.certified_fresh += static_cast<uint32_t>(bits);
      } else if (site.object == kInvalidObjectIndex) {
        report.suppressed_unresolved_object += static_cast<uint32_t>(bits);
        continue;
      } else if (system_opaque) {
        report.suppressed_system_opaque += static_cast<uint32_t>(bits);
        continue;
      } else if (AnyWriter(interference, site.object, site.part)) {
        report.suppressed_interference += static_cast<uint32_t>(bits);
        continue;
      }
      report.checks_certified += static_cast<uint32_t>(bits);
      if (site.block != cert.block) {
        flush();
        cert.block = site.block;
        cert.begin = site.pc;
        cert.end = site.pc + 1;
      }
      cert.begin = std::min(cert.begin, site.pc);
      cert.end = std::max(cert.end, site.pc + 1);
      ElidedCheck check;
      check.pc = site.pc;
      check.mask = mask;
      check.dominator_pc = site.dominator_pc;
      check.fresh = site.fresh;
      cert.checks.push_back(check);
    }
    flush();
  }
  return report;
}

std::string FormatGuardReport(const GuardAnalysisReport& report,
                              const std::map<ObjectIndex, GuardSummary>& summaries) {
  std::string out = "guard-dominance analysis: " + std::to_string(report.programs_analyzed) +
                    " program(s), " + std::to_string(report.sites_seen) + " site(s), " +
                    std::to_string(report.checks_seen) + " check(s)\n";
  out += "  elidable (phase 1): " + std::to_string(report.checks_elidable) +
         "  certified (phase 2): " + std::to_string(report.checks_certified) + " (" +
         std::to_string(report.certified_fresh) + " fresh)\n";
  out += "  suppressed: opaque=" + std::to_string(report.phase1.suppressed_opaque) +
         " dynamic=" + std::to_string(report.phase1.suppressed_dynamic) +
         " unproven=" + std::to_string(report.phase1.suppressed_unproven) +
         " level=" + std::to_string(report.phase1.suppressed_level) +
         " interference=" + std::to_string(report.suppressed_interference) +
         " system-opaque=" + std::to_string(report.suppressed_system_opaque) +
         " unresolved-object=" + std::to_string(report.suppressed_unresolved_object) + "\n";
  for (const ElisionCertificate& cert : report.certificates) {
    std::string name = "segment " + std::to_string(cert.segment);
    const auto it = summaries.find(cert.segment);
    if (it != summaries.end() && !it->second.program_name.empty()) {
      name += " '" + it->second.program_name + "'";
    }
    out += "  certificate " + name + " block " + std::to_string(cert.block) + " [" +
           std::to_string(cert.begin) + ", " + std::to_string(cert.end) + "):\n";
    for (const ElidedCheck& check : cert.checks) {
      out += "    pc " + std::to_string(check.pc) + ": elide " + GuardCheckMaskName(check.mask) +
             " (dominator pc " + std::to_string(check.dominator_pc) +
             (check.fresh ? ", fresh" : "") + ")\n";
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace imax432
